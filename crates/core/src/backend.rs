//! Solver backend: owns the discretized problem and builds the operators
//! each method needs (assembled BCRS for the CRS-CG baselines, compact
//! matrix-free EBE for the proposed method), plus the exact Newmark
//! right-hand side.
//!
//! All methods produce *identical numerics*: the RHS is always evaluated
//! with the exact matrix-free operators, so the four methods differ only in
//! which operator drives the CG iteration (assembled CRS vs. matrix-free
//! EBE — themselves equal to rounding) and in the modeled execution
//! timeline. This realizes the paper's "accuracy is guaranteed" property
//! and is verified by the cross-method equivalence tests.

use hetsolve_fem::{CompactEbe, CompactElements, FemProblem};
use hetsolve_mesh::{color_elements, Coloring};
use hetsolve_sparse::{assemble_global, Bcrs3, BlockJacobi, KernelCounts, LinearOperator};

/// Owned problem + every precomputed structure the methods share.
pub struct Backend {
    pub problem: FemProblem,
    pub coloring: Coloring,
    pub compact: CompactElements,
    /// Dirichlet mask as a bool slice.
    pub fixed: Vec<bool>,
    /// Assembled system matrix `A` (built on demand by CRS methods).
    pub crs_a: Option<Bcrs3>,
    /// Assembled mass matrix `M` (RHS cost accounting for CRS methods).
    pub crs_m: Option<Bcrs3>,
    /// Block-Jacobi preconditioner of `A`.
    pub precond: BlockJacobi,
    /// Run kernels with rayon.
    pub parallel: bool,
}

impl Backend {
    /// Build the backend; `with_crs` assembles the global matrices (the
    /// CRS-CG baselines need them; EBE-MCG does not).
    pub fn new(problem: FemProblem, with_crs: bool, parallel: bool) -> Self {
        let coloring = color_elements(&problem.model.mesh);
        let compact = CompactElements::compute(&problem.model.mesh, &problem.materials);
        let fixed: Vec<bool> = problem.mask.as_slice().to_vec();
        let a = problem.a_coeffs();
        let (crs_a, crs_m) = if with_crs {
            let mesh = &problem.model.mesh;
            let crs_a = assemble_global(
                mesh.n_nodes(),
                &mesh.elems,
                &problem.elements.me,
                &problem.elements.ke,
                a.c_m,
                a.c_k,
                &problem.dashpots.faces,
                &problem.dashpots.cb,
                a.c_b,
                &fixed,
                parallel,
            );
            let crs_m = assemble_global(
                mesh.n_nodes(),
                &mesh.elems,
                &problem.elements.me,
                &problem.elements.ke,
                1.0,
                0.0,
                &[],
                &[],
                0.0,
                &[],
                parallel,
            );
            (Some(crs_a), Some(crs_m))
        } else {
            (None, None)
        };
        // preconditioner blocks from the matrix-free diagonal (identical to
        // the assembled diagonal; see fem::ebe_compact tests)
        let op = Self::compact_op_parts(
            &problem,
            &compact,
            &coloring,
            &fixed,
            (a.c_m, a.c_k, a.c_b),
            parallel,
            1,
        );
        let precond = BlockJacobi::from_blocks(&op.diagonal_blocks(), parallel);
        Backend {
            problem,
            coloring,
            compact,
            fixed,
            crs_a,
            crs_m,
            precond,
            parallel,
        }
    }

    fn compact_op_parts<'a>(
        problem: &'a FemProblem,
        compact: &'a CompactElements,
        coloring: &'a Coloring,
        fixed: &'a [bool],
        coeffs: (f64, f64, f64),
        parallel: bool,
        r: usize,
    ) -> CompactEbe<'a> {
        CompactEbe::new(
            problem.n_nodes(),
            &problem.model.mesh.elems,
            compact,
            &problem.dashpots.faces,
            &problem.dashpots.cb,
            coeffs,
            fixed,
            coloring,
            parallel,
            r,
        )
    }

    /// Matrix-free system operator `A` with `r` fused RHS.
    pub fn ebe_a(&self, r: usize) -> CompactEbe<'_> {
        let a = self.problem.a_coeffs();
        Self::compact_op_parts(
            &self.problem,
            &self.compact,
            &self.coloring,
            &self.fixed,
            (a.c_m, a.c_k, a.c_b),
            self.parallel,
            r,
        )
    }

    /// Matrix-free mass operator `M` (no Dirichlet identity: used inside
    /// the RHS where fixed rows are projected to zero afterwards).
    pub fn ebe_m(&self) -> CompactEbe<'_> {
        Self::compact_op_parts(
            &self.problem,
            &self.compact,
            &self.coloring,
            &[],
            (1.0, 0.0, 0.0),
            self.parallel,
            1,
        )
    }

    /// Matrix-free damping operator `C = α M + β K + C_b`.
    pub fn ebe_c(&self) -> CompactEbe<'_> {
        let c = self.problem.c_coeffs();
        Self::compact_op_parts(
            &self.problem,
            &self.compact,
            &self.coloring,
            &[],
            (c.c_m, c.c_k, c.c_b),
            self.parallel,
            1,
        )
    }

    /// Were the assembled (CRS) matrices built? The run drivers check
    /// this at entry and return [`crate::recovery::RunError::Config`]
    /// for CRS methods on a matrix-free backend.
    pub fn has_crs(&self) -> bool {
        self.crs_a.is_some()
    }

    /// Assembled system matrix (panics if built without CRS).
    pub fn crs_a(&self) -> &Bcrs3 {
        self.crs_a
            .as_ref()
            // PANIC-OK: drivers reject CRS methods on matrix-free backends
            // at entry (`has_crs` precheck → RunError::Config); direct
            // callers own the documented panic contract.
            .expect("backend built without CRS matrices")
    }

    /// Newmark RHS for one case:
    /// `rhs = f + M (c_m u + 4/dt v + a) + C (c_c u + v)`, with fixed DOFs
    /// zeroed.
    pub fn newmark_rhs(
        &self,
        f: &[f64],
        u: &[f64],
        v: &[f64],
        a: &[f64],
        rhs: &mut [f64],
        scratch: &mut RhsScratch,
    ) {
        let nm = &self.problem.newmark;
        nm.rhs_aux(u, v, a, &mut scratch.m_aux, &mut scratch.c_aux);
        let op_m = self.ebe_m();
        let op_c = self.ebe_c();
        op_m.apply(&scratch.m_aux, &mut scratch.t1);
        op_c.apply(&scratch.c_aux, &mut scratch.t2);
        for i in 0..rhs.len() {
            rhs[i] = f[i] + scratch.t1[i] + scratch.t2[i];
        }
        self.problem.mask.project(rhs);
    }

    /// Modeled cost of the RHS evaluation when performed with assembled
    /// matrices (charged to CRS methods): A·x-shaped + M·x-shaped SpMVs.
    pub fn rhs_counts_crs(&self) -> KernelCounts {
        let a = self.crs_a().counts();
        // PANIC-OK: `crs_a` and `crs_m` are built together (`with_crs`),
        // and the line above already enforced the crs_a half.
        let m = self.crs_m.as_ref().expect("CRS backend").counts();
        a.merged(m)
    }

    /// Modeled cost of the RHS evaluation with matrix-free operators
    /// (charged to EBE methods), for `r` fused cases.
    pub fn rhs_counts_ebe(&self, r: usize) -> KernelCounts {
        use hetsolve_fem::compact_ebe_counts;
        let p = &self.problem;
        compact_ebe_counts(p.model.mesh.n_elems(), p.dashpots.n_faces(), p.n_dofs(), r).scaled(2.0)
    }

    pub fn n_dofs(&self) -> usize {
        self.problem.n_dofs()
    }
}

/// Scratch vectors reused across RHS evaluations.
pub struct RhsScratch {
    pub m_aux: Vec<f64>,
    pub c_aux: Vec<f64>,
    pub t1: Vec<f64>,
    pub t2: Vec<f64>,
}

impl RhsScratch {
    pub fn new(n: usize) -> Self {
        RhsScratch {
            m_aux: vec![0.0; n],
            c_aux: vec![0.0; n],
            t1: vec![0.0; n],
            t2: vec![0.0; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};
    use hetsolve_sparse::{pcg, CgConfig};

    fn backend() -> Backend {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        Backend::new(FemProblem::paper_like(&spec), true, false)
    }

    #[test]
    fn ebe_and_crs_systems_agree() {
        let b = backend();
        let n = b.n_dofs();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        b.ebe_a(1).apply(&x, &mut y1);
        b.crs_a().apply(&x, &mut y2);
        let scale = y2.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-9 * scale, "dof {i}");
        }
    }

    #[test]
    fn cg_converges_with_both_operators_to_same_solution() {
        let b = backend();
        let n = b.n_dofs();
        let mut f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).cos()).collect();
        b.problem.mask.project(&mut f);
        let cfg = CgConfig {
            tol: 1e-10,
            max_iter: 2000,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let s1 = pcg(&b.ebe_a(1), &b.precond, &f, &mut x1, &cfg);
        let mut x2 = vec![0.0; n];
        let s2 = pcg(b.crs_a(), &b.precond, &f, &mut x2, &cfg);
        assert!(
            s1.converged && s2.converged,
            "{} {}",
            s1.final_rel_res,
            s2.final_rel_res
        );
        let scale = x2.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-6 * scale, "dof {i}");
        }
        // iteration counts should be essentially identical
        assert!((s1.iterations as i64 - s2.iterations as i64).abs() <= 2);
    }

    #[test]
    fn rhs_is_zero_at_fixed_dofs() {
        let b = backend();
        let n = b.n_dofs();
        let mut scratch = RhsScratch::new(n);
        let f: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos() * 1e-3).collect();
        let v = vec![1e-4; n];
        let a = vec![1e-5; n];
        let mut rhs = vec![0.0; n];
        b.newmark_rhs(&f, &u, &v, &a, &mut rhs, &mut scratch);
        for d in b.problem.mask.fixed_dofs() {
            assert_eq!(rhs[d], 0.0);
        }
        // and nonzero somewhere free
        assert!(rhs.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn rhs_cost_models_exist() {
        let b = backend();
        let crs = b.rhs_counts_crs();
        let ebe = b.rhs_counts_ebe(4);
        assert!(crs.flops > 0.0 && ebe.flops > 0.0);
        assert!(crs.bytes_stream > ebe.bytes_stream);
    }

    #[test]
    fn backend_without_crs_skips_assembly() {
        let spec = GroundModelSpec::small(InterfaceShape::Stratified);
        let b = Backend::new(FemProblem::paper_like(&spec), false, false);
        assert!(b.crs_a.is_none());
        // EBE operator still available
        let n = b.n_dofs();
        let mut y = vec![0.0; n];
        b.ebe_a(1).apply(&vec![1.0; n], &mut y);
    }
}
