//! The per-step recovery ladder and the typed run-level error.
//!
//! The paper's safety claim — the CG solver "refines the guess so accuracy
//! is still guaranteed" — only holds for guesses the solver can iterate
//! from. A NaN-poisoned guess fails the very first residual comparison, so
//! the drivers wrap every solve in a ladder:
//!
//! 1. solve from the configured guess (data-driven, or Adams-Bashforth for
//!    the AB-only methods);
//! 2. on an abnormal [`Termination`], retry from the plain Adams-Bashforth
//!    extrapolation (the data-driven correction is the usual suspect);
//! 3. retry from the zero guess with a 4× iteration budget — the
//!    unconditional cold start that an SPD system always converges from.
//!
//! Every rung that fires is recorded as a [`RecoveryEvent`] in the run
//! report; a ladder that runs dry returns a typed
//! [`SolveError`](hetsolve_sparse::SolveError) instead of panicking, so an
//! ensemble drops one case instead of aborting thousands of healthy steps.

use std::fmt;

use hetsolve_obs::Termination;
use hetsolve_sparse::{
    mcg_masked, pcg, CgConfig, CgStats, LinearOperator, McgStats, MultiOperator, Preconditioner,
    SolveError,
};

/// Factor by which the zero-guess rung raises the iteration cap.
pub(crate) const ZERO_GUESS_ITER_FACTOR: usize = 4;

/// Which initial guess a solve (re)started from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuessSource {
    /// Adams-Bashforth + data-driven correction (the paper's predictor).
    DataDriven,
    /// Plain Adams-Bashforth extrapolation.
    AdamsBashforth,
    /// Zero vector (cold start).
    Zero,
}

impl GuessSource {
    pub fn label(&self) -> &'static str {
        match self {
            GuessSource::DataDriven => "data_driven",
            GuessSource::AdamsBashforth => "adams_bashforth",
            GuessSource::Zero => "zero",
        }
    }

    /// Stable wire code for checkpoint encoding (append-only).
    pub fn code(&self) -> u8 {
        match self {
            GuessSource::DataDriven => 0,
            GuessSource::AdamsBashforth => 1,
            GuessSource::Zero => 2,
        }
    }

    /// Inverse of [`GuessSource::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => GuessSource::DataDriven,
            1 => GuessSource::AdamsBashforth,
            2 => GuessSource::Zero,
            _ => return None,
        })
    }
}

/// One recovery performed by the ladder: the step survived, on a downgraded
/// guess.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Time step the recovery happened in.
    pub step: usize,
    /// Failing case for multi-RHS solves (global case index); `None` for
    /// single-RHS drivers.
    pub case: Option<usize>,
    /// Process set running the solve.
    pub set: usize,
    /// Abnormal termination of the first (failed) attempt.
    pub failed: Termination,
    /// Guess the step finally converged from.
    pub recovered_with: GuessSource,
    /// Solve attempts made, including the successful one.
    pub attempts: usize,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {} set {}{}: {} recovered with {} guess ({} attempts)",
            self.step,
            self.set,
            match self.case {
                Some(c) => format!(" case {c}"),
                None => String::new(),
            },
            self.failed.label(),
            self.recovered_with.label(),
            self.attempts,
        )
    }
}

/// Why a driver run stopped early.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A step's solve exhausted the recovery ladder.
    Solve(SolveError),
    /// A worker thread of the realtime driver panicked; `phase` names the
    /// half-step ("solve" or "predict") that died.
    WorkerPanic { phase: &'static str },
    /// An injected crash point killed the durable run at step boundary
    /// `step` (chaos testing); resume from the latest checkpoint.
    Crashed { step: usize },
    /// A checkpoint write failed (I/O); the run stopped rather than keep
    /// computing results it could not make durable.
    Checkpoint { message: String },
    /// The run configuration is inconsistent with the backend it was
    /// given (e.g. a CRS method on a backend built without assembled
    /// matrices); caught at driver entry instead of panicking mid-run.
    Config { message: String },
    /// The integrity layer found corruption its ladder cannot repair:
    /// non-finite state that slipped past every checksum and sentinel, or
    /// the pristine operator payload failing its own construction-time
    /// checksum (host-memory corruption). `target` is the
    /// [`CorruptTarget`](crate::integrity::CorruptTarget) label. The run
    /// stops typed instead of carrying a silently wrong answer forward.
    Corruption {
        step: usize,
        case: Option<usize>,
        target: &'static str,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Solve(e) => write!(f, "{e}"),
            RunError::WorkerPanic { phase } => {
                write!(f, "realtime worker thread panicked during {phase}")
            }
            RunError::Crashed { step } => {
                write!(f, "injected crash at step boundary {step}")
            }
            RunError::Checkpoint { message } => {
                write!(f, "checkpoint write failed: {message}")
            }
            RunError::Config { message } => {
                write!(f, "invalid run configuration: {message}")
            }
            RunError::Corruption { step, case, target } => {
                write!(
                    f,
                    "unrecoverable data corruption at step {step}{}: {target}",
                    match case {
                        Some(c) => format!(" case {c}"),
                        None => String::new(),
                    }
                )
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Solve(e) => Some(e),
            RunError::WorkerPanic { .. } => None,
            RunError::Crashed { .. } => None,
            RunError::Checkpoint { .. } => None,
            RunError::Config { .. } => None,
            RunError::Corruption { .. } => None,
        }
    }
}

impl From<SolveError> for RunError {
    fn from(e: SolveError) -> Self {
        RunError::Solve(e)
    }
}

/// Single-RHS recovery ladder around [`pcg`].
///
/// `x` enters holding the first-attempt guess and leaves holding the
/// solution of whichever rung converged. `first_cfg` is the configuration
/// of the first attempt only (it may carry an injected iteration cap);
/// retries always use the clean `cfg`. `retry_ab` selects whether the
/// Adams-Bashforth rung is distinct from the first attempt (false when the
/// first attempt already started from `ab_guess`). Iterations and kernel
/// counts of all attempts are merged into the returned stats; the recorded
/// initial residual stays the first attempt's (the guess-quality metric).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_with_ladder<A: LinearOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    rhs: &[f64],
    x: &mut [f64],
    ab_guess: &[f64],
    cfg: &CgConfig,
    first_cfg: &CgConfig,
    step: usize,
    set: usize,
    retry_ab: bool,
    recoveries: &mut Vec<RecoveryEvent>,
) -> Result<CgStats, SolveError> {
    let mut stats = pcg(a, prec, rhs, x, first_cfg);
    if stats.converged {
        return Ok(stats);
    }
    let failed = stats.termination;
    let initial_rel_res = stats.initial_rel_res;
    let mut attempts = 1;

    if retry_ab {
        x.copy_from_slice(ab_guess);
        let retry = pcg(a, prec, rhs, x, cfg);
        attempts += 1;
        stats = merge_cg(stats, retry);
        if stats.converged {
            recoveries.push(RecoveryEvent {
                step,
                case: None,
                set,
                failed,
                recovered_with: GuessSource::AdamsBashforth,
                attempts,
            });
            stats.initial_rel_res = initial_rel_res;
            return Ok(stats);
        }
    }

    x.fill(0.0);
    let cold_cfg = CgConfig {
        max_iter: cfg.max_iter.saturating_mul(ZERO_GUESS_ITER_FACTOR),
        ..*cfg
    };
    let cold = pcg(a, prec, rhs, x, &cold_cfg);
    attempts += 1;
    stats = merge_cg(stats, cold);
    stats.initial_rel_res = initial_rel_res;
    if stats.converged {
        recoveries.push(RecoveryEvent {
            step,
            case: None,
            set,
            failed,
            recovered_with: GuessSource::Zero,
            attempts,
        });
        return Ok(stats);
    }
    Err(SolveError {
        step,
        case: None,
        termination: stats.termination,
        rel_res: stats.final_rel_res,
        iterations: stats.iterations,
        attempts,
    })
}

/// Fold a retry into the running stats: iterations and work accumulate,
/// convergence state and history come from the latest attempt.
fn merge_cg(prev: CgStats, latest: CgStats) -> CgStats {
    CgStats {
        iterations: prev.iterations + latest.iterations,
        counts: prev.counts.merged(latest.counts),
        ..latest
    }
}

/// Result of [`solve_set_resumable`]: the merged solver stats plus the
/// ladder attempts made. Per-lane outcomes are in
/// [`McgStats::case_termination`] — the caller decides what a residual
/// failure means (the ensemble drivers abort the run; the serving layer
/// fails one request and backfills the slot).
#[derive(Debug, Clone)]
pub struct SetSolveOutcome {
    pub stats: McgStats,
    /// Solve attempts made (1 = first attempt converged every lane).
    pub attempts: usize,
}

/// Multi-RHS recovery ladder around [`mcg_masked`], resumable per lane.
///
/// Only the failing lanes are restarted: their slots in the interleaved
/// `x` are overwritten with the downgraded guess and the whole set is
/// re-solved — already-converged lanes re-enter with a sub-tolerance
/// residual, are inactive from iteration zero, and keep their solution
/// bitwise (the MCG freeze contract). `ab_guesses[k]` is the
/// Adams-Bashforth guess of lane `k` (ignored for vacant lanes, which may
/// hold an empty vec); `occupied[k] == false` marks a vacant lane that is
/// skipped entirely (see [`mcg_masked`]); `lane_cases[k]` is lane `k`'s
/// global case/request id for the recovery log.
///
/// Unlike the driver-facing wrapper this never errors: lanes that exhaust
/// the ladder simply keep their failure in `case_termination`, so a caller
/// with independent lanes can harvest the healthy ones.
#[allow(clippy::too_many_arguments)]
pub fn solve_set_resumable<A: MultiOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    ab_guesses: &[Vec<f64>],
    occupied: &[bool],
    lane_cases: &[Option<usize>],
    cfg: &CgConfig,
    first_cfg: &CgConfig,
    step: usize,
    set: usize,
    retry_ab: bool,
    recoveries: &mut Vec<RecoveryEvent>,
) -> SetSolveOutcome {
    let r = a.r();
    let mut stats = mcg_masked(a, prec, f, x, first_cfg, occupied);
    if stats.converged {
        return SetSolveOutcome { stats, attempts: 1 };
    }
    let failing = |st: &McgStats, k: usize| occupied[k] && st.case_termination[k].is_failure();
    let first_failed: Vec<Termination> = stats.case_termination.clone();
    let initial_rel_res = stats.initial_rel_res.clone();
    let mut attempts = 1;

    if retry_ab {
        for k in 0..r {
            if failing(&stats, k) {
                hetsolve_sparse::vecops::insert_case(x, r, k, &ab_guesses[k]);
            }
        }
        let retry = mcg_masked(a, prec, f, x, cfg, occupied);
        attempts += 1;
        let recovered: Vec<usize> = (0..r)
            .filter(|&k| failing(&stats, k) && retry.case_termination[k] == Termination::Converged)
            .collect();
        stats = merge_mcg(stats, retry);
        for &k in &recovered {
            recoveries.push(RecoveryEvent {
                step,
                case: lane_cases[k],
                set,
                failed: first_failed[k],
                recovered_with: GuessSource::AdamsBashforth,
                attempts,
            });
        }
        if stats.converged {
            stats.initial_rel_res = initial_rel_res;
            return SetSolveOutcome { stats, attempts };
        }
    }

    let n = a.n();
    let zero = vec![0.0; n];
    for k in 0..r {
        if failing(&stats, k) {
            hetsolve_sparse::vecops::insert_case(x, r, k, &zero);
        }
    }
    let cold_cfg = CgConfig {
        max_iter: cfg.max_iter.saturating_mul(ZERO_GUESS_ITER_FACTOR),
        ..*cfg
    };
    let cold = mcg_masked(a, prec, f, x, &cold_cfg, occupied);
    attempts += 1;
    let recovered: Vec<usize> = (0..r)
        .filter(|&k| failing(&stats, k) && cold.case_termination[k] == Termination::Converged)
        .collect();
    stats = merge_mcg(stats, cold);
    stats.initial_rel_res = initial_rel_res;
    for &k in &recovered {
        recoveries.push(RecoveryEvent {
            step,
            case: lane_cases[k],
            set,
            failed: first_failed[k],
            recovered_with: GuessSource::Zero,
            attempts,
        });
    }
    SetSolveOutcome { stats, attempts }
}

/// Driver-facing multi-RHS ladder: fully-occupied lane, and a lane that
/// exhausts the ladder aborts the run with a typed [`SolveError`] naming
/// the first failing case.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_set_with_ladder<A: MultiOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    ab_guesses: &[Vec<f64>],
    cfg: &CgConfig,
    first_cfg: &CgConfig,
    step: usize,
    set: usize,
    case_base: usize,
    retry_ab: bool,
    recoveries: &mut Vec<RecoveryEvent>,
) -> Result<McgStats, SolveError> {
    let r = a.r();
    let occupied = vec![true; r];
    let lane_cases: Vec<Option<usize>> = (0..r).map(|k| Some(case_base + k)).collect();
    let SetSolveOutcome { stats, attempts } = solve_set_resumable(
        a,
        prec,
        f,
        x,
        ab_guesses,
        &occupied,
        &lane_cases,
        cfg,
        first_cfg,
        step,
        set,
        retry_ab,
        recoveries,
    );
    if stats.converged {
        return Ok(stats);
    }
    let worst = (0..r)
        .find(|&k| stats.case_termination[k].is_failure())
        // PANIC-OK: `!stats.converged` (checked above) means at least one
        // lane's termination is a failure by `mcg_multi`'s contract.
        .expect("non-converged MCG must have a failing lane");
    Err(SolveError {
        step,
        case: Some(case_base + worst),
        termination: stats.case_termination[worst],
        rel_res: stats.final_rel_res[worst],
        iterations: stats.case_iterations[worst],
        attempts,
    })
}

/// Fold an MCG retry into the running stats: fused iterations and work
/// accumulate, per-case iterations add (a lane inactive in the retry adds
/// zero), convergence state comes from the latest attempt.
fn merge_mcg(prev: McgStats, latest: McgStats) -> McgStats {
    McgStats {
        fused_iterations: prev.fused_iterations + latest.fused_iterations,
        case_iterations: prev
            .case_iterations
            .iter()
            .zip(&latest.case_iterations)
            .map(|(a, b)| a + b)
            .collect(),
        counts: prev.counts.merged(latest.counts),
        ..latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guess_source_labels() {
        assert_eq!(GuessSource::DataDriven.label(), "data_driven");
        assert_eq!(GuessSource::AdamsBashforth.label(), "adams_bashforth");
        assert_eq!(GuessSource::Zero.label(), "zero");
    }

    #[test]
    fn run_error_display_and_source() {
        let e = RunError::from(SolveError {
            step: 3,
            case: None,
            termination: Termination::MaxIter,
            rel_res: 0.5,
            iterations: 10,
            attempts: 3,
        });
        assert!(e.to_string().contains("step 3"));
        assert!(std::error::Error::source(&e).is_some());
        let p = RunError::WorkerPanic { phase: "solve" };
        assert!(p.to_string().contains("solve"));
        assert!(std::error::Error::source(&p).is_none());
    }

    #[test]
    fn recovery_event_display_names_everything() {
        let ev = RecoveryEvent {
            step: 7,
            case: Some(2),
            set: 1,
            failed: Termination::NanResidual,
            recovered_with: GuessSource::AdamsBashforth,
            attempts: 2,
        };
        let s = ev.to_string();
        assert!(s.contains("step 7"), "{s}");
        assert!(s.contains("case 2"), "{s}");
        assert!(s.contains("nan_residual"), "{s}");
        assert!(s.contains("adams_bashforth"), "{s}");
    }
}
