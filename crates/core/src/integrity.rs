//! Silent-data-corruption defense: ABFT checksums, step-boundary state
//! guards, and the detect-rollback-recover ladder.
//!
//! A bit flip in solver state is the one fault class the recovery ladder
//! of [`crate::recovery`] cannot see: the solve converges, the numbers are
//! finite, and the answer is silently wrong. This module adds the
//! algorithm-based fault-tolerance layer the drivers thread through every
//! step boundary:
//!
//! * **Checksums over mutable state** — [`StateGuard`] captures a CRC32
//!   per component (`u`/`v`/`a`, Adams history, predictor basis) plus the
//!   rollback snapshot at each boundary; any single-bit flip between
//!   capture and verify is detected with certainty (CRC32 has Hamming
//!   distance ≥ 2 at these lengths) and pinpointed to its component.
//! * **Checksums over immutable data** — the operator payload (EBE element
//!   data or assembled CRS blocks) is checksummed once at run start and
//!   re-verified every step boundary; a corrupted working copy is dropped
//!   and the pristine payload reused ([`operator_guard`]).
//! * **RHS verification** — the assembled Newmark right-hand side is
//!   checksummed between assembly and the solve; a mismatch triggers a
//!   bitwise recompute from the (guarded, intact) inputs ([`rhs_guard`]).
//! * **Invariant sentinels** — the CG solvers audit their own recursive
//!   residual against the recomputed true residual (see
//!   `hetsolve-sparse::CgConfig::sentinel_every`); the predictor basis is
//!   periodically audited through its MGS orthogonality defect
//!   ([`basis_sentinel`]) and non-finite state is scrubbed at every step
//!   boundary ([`scrub_state`]).
//!
//! The recovery ladder is graded: recompute (RHS), restore (state
//! snapshot), rebuild (operator from pristine source), reset (predictor
//! history — the basis is an accelerator, never a correctness dependency),
//! and — in the serving layer — restart the lane from its checkpoint or
//! evict the request typed. Every rung that fires is a
//! [`CorruptionReport`] in the run result; corruption the ladder cannot
//! repair surfaces as `RunError::Corruption`, never as a silently wrong
//! answer.
//!
//! Everything here is read-only until a checksum actually mismatches, so a
//! clean run with detection enabled is bitwise-identical to one with
//! detection disabled (asserted by `tests/sdc_suite.rs`).

use std::fmt;

use hetsolve_ckpt::Crc32;
use hetsolve_fault::{BitFlip, FaultInjector, StateField};
use hetsolve_fem::CompactElements;
use hetsolve_sparse::Bcrs3;

use crate::backend::{Backend, RhsScratch};
use crate::slot::CaseSlot;

/// Default period (in steps) of the predictor-basis orthogonality audit.
pub const DEFAULT_BASIS_CHECK_EVERY: usize = 32;

/// Default bound on the MGS orthogonality defect of the predictor basis.
/// A healthy re-orthonormalized basis sits at rounding level (~1e-14);
/// past this bound the history is reset rather than trusted.
pub const DEFAULT_BASIS_DEFECT_TOL: f64 = 1e-6;

/// Integrity-layer configuration carried by `RunConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Master switch: capture/verify state guards, RHS and operator
    /// checksums, non-finite scrubbing. Detection is read-only on clean
    /// data, so enabling it leaves clean results bitwise-unchanged.
    pub detect: bool,
    /// Audit the predictor basis (MGS orthogonality defect) every this
    /// many steps; `0` disables the audit.
    pub basis_check_every: usize,
    /// Defect bound for the basis audit.
    pub basis_defect_tol: f64,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            detect: true,
            basis_check_every: DEFAULT_BASIS_CHECK_EVERY,
            basis_defect_tol: DEFAULT_BASIS_DEFECT_TOL,
        }
    }
}

impl IntegrityConfig {
    /// Detection fully off — the baseline configuration the overhead
    /// benchmark compares against.
    pub fn disabled() -> Self {
        IntegrityConfig {
            detect: false,
            basis_check_every: 0,
            basis_defect_tol: DEFAULT_BASIS_DEFECT_TOL,
        }
    }
}

/// What a detected corruption hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// A Newmark state vector (`u`, `v` or `a`).
    State(StateField),
    /// The Adams-Bashforth velocity history.
    AdamsHistory,
    /// The data-driven predictor's correction history (the MGS basis
    /// source).
    BasisHistory,
    /// The assembled Newmark right-hand side.
    Rhs,
    /// The operator payload (EBE element data or CRS blocks).
    Operator,
}

impl CorruptTarget {
    pub fn label(&self) -> &'static str {
        match self {
            CorruptTarget::State(StateField::U) => "state_u",
            CorruptTarget::State(StateField::V) => "state_v",
            CorruptTarget::State(StateField::A) => "state_a",
            CorruptTarget::AdamsHistory => "adams_history",
            CorruptTarget::BasisHistory => "basis_history",
            CorruptTarget::Rhs => "rhs",
            CorruptTarget::Operator => "operator",
        }
    }

    /// Stable wire code for checkpoint encoding (append-only).
    pub fn code(&self) -> u8 {
        match self {
            CorruptTarget::State(StateField::U) => 0,
            CorruptTarget::State(StateField::V) => 1,
            CorruptTarget::State(StateField::A) => 2,
            CorruptTarget::AdamsHistory => 3,
            CorruptTarget::BasisHistory => 4,
            CorruptTarget::Rhs => 5,
            CorruptTarget::Operator => 6,
        }
    }

    /// Inverse of [`CorruptTarget::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => CorruptTarget::State(StateField::U),
            1 => CorruptTarget::State(StateField::V),
            2 => CorruptTarget::State(StateField::A),
            3 => CorruptTarget::AdamsHistory,
            4 => CorruptTarget::BasisHistory,
            5 => CorruptTarget::Rhs,
            6 => CorruptTarget::Operator,
            _ => return None,
        })
    }
}

/// Which ladder rung repaired a detected corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionAction {
    /// State rolled back to the boundary snapshot (bitwise).
    RestoredState,
    /// RHS recomputed from the intact `f`/`u`/`v`/`a` (bitwise).
    RecomputedRhs,
    /// Corrupted operator working copy dropped; solve uses the pristine
    /// checksummed payload.
    RebuiltOperator,
    /// Predictor history reset — the next steps fall back to plain
    /// Adams-Bashforth until the basis re-accumulates.
    ResetPredictor,
    /// Serving layer: the lane was restarted from its last checkpoint.
    RestartedLane,
    /// Serving layer: persistent corruption — the request was evicted
    /// typed instead of retried forever.
    Evicted,
}

impl CorruptionAction {
    pub fn label(&self) -> &'static str {
        match self {
            CorruptionAction::RestoredState => "restored_state",
            CorruptionAction::RecomputedRhs => "recomputed_rhs",
            CorruptionAction::RebuiltOperator => "rebuilt_operator",
            CorruptionAction::ResetPredictor => "reset_predictor",
            CorruptionAction::RestartedLane => "restarted_lane",
            CorruptionAction::Evicted => "evicted",
        }
    }

    /// Stable wire code for checkpoint encoding (append-only).
    pub fn code(&self) -> u8 {
        match self {
            CorruptionAction::RestoredState => 0,
            CorruptionAction::RecomputedRhs => 1,
            CorruptionAction::RebuiltOperator => 2,
            CorruptionAction::ResetPredictor => 3,
            CorruptionAction::RestartedLane => 4,
            CorruptionAction::Evicted => 5,
        }
    }

    /// Inverse of [`CorruptionAction::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => CorruptionAction::RestoredState,
            1 => CorruptionAction::RecomputedRhs,
            2 => CorruptionAction::RebuiltOperator,
            3 => CorruptionAction::ResetPredictor,
            4 => CorruptionAction::RestartedLane,
            5 => CorruptionAction::Evicted,
            _ => return None,
        })
    }
}

/// One corruption the integrity layer detected and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Time step the corruption was detected at.
    pub step: usize,
    /// Affected case (global index / request id); `None` for run-wide
    /// targets like the operator payload.
    pub case: Option<usize>,
    pub target: CorruptTarget,
    pub action: CorruptionAction,
}

impl fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}{}: {} corruption detected, {}",
            self.step,
            match self.case {
                Some(c) => format!(" case {c}"),
                None => String::new(),
            },
            self.target.label(),
            self.action.label(),
        )
    }
}

/// CRC32 of an `f64` slice by IEEE-754 bit pattern.
pub fn crc_f64s(v: &[f64]) -> u32 {
    let mut c = Crc32::new();
    c.update_f64s(v);
    c.finish()
}

/// CRC32 over a sequence of `f64` columns; column boundaries are folded in
/// so reshaping the same values is not checksum-neutral.
pub fn crc_cols<'a>(cols: impl Iterator<Item = &'a [f64]>) -> u32 {
    let mut c = Crc32::new();
    for col in cols {
        c.update_u64(col.len() as u64);
        c.update_f64s(col);
    }
    c.finish()
}

/// The operator payload a run's ABFT checksum covers.
#[derive(Clone, Copy)]
pub enum OperatorPayload<'a> {
    /// Matrix-free EBE: the compact per-element geometry data.
    Ebe(&'a CompactElements),
    /// Assembled BCRS: structure plus block values.
    Crs(&'a Bcrs3),
}

/// Construction-time checksum of the immutable operator payload — the
/// reference every step boundary re-verifies against.
pub fn operator_crc(payload: OperatorPayload<'_>) -> u32 {
    let mut c = Crc32::new();
    match payload {
        OperatorPayload::Ebe(compact) => {
            c.update_u64(compact.n_elems as u64);
            c.update_f64s(&compact.geo);
        }
        OperatorPayload::Crs(m) => {
            c.update_u64(m.n_brows as u64);
            for &p in &m.row_ptr {
                c.update_u64(p as u64);
            }
            for &j in &m.cols {
                c.update_u64(j as u64);
            }
            for b in &m.blocks {
                c.update_f64s(b);
            }
        }
    }
    c.finish()
}

/// Step-boundary guard of one case: per-component checksums plus the
/// rollback snapshot. Captured before faults can land at a boundary and
/// verified right after; any mismatch pinpoints the component and
/// [`StateGuard::restore_into`] rolls the slot back bitwise. The waveform
/// and load are deliberately outside the guard: neither is an input to the
/// step about to execute.
pub struct StateGuard {
    step: usize,
    u: Vec<f64>,
    v: Vec<f64>,
    a: Vec<f64>,
    adams_hist: Vec<Vec<f64>>,
    dd_hist: Vec<Vec<f64>>,
    crc_u: u32,
    crc_v: u32,
    crc_a: u32,
    crc_adams: u32,
    crc_dd: u32,
}

impl StateGuard {
    /// Checksum and snapshot `slot`'s boundary state.
    pub fn capture(slot: &CaseSlot) -> Self {
        StateGuard {
            step: slot.time.step,
            u: slot.time.u.clone(),
            v: slot.time.v.clone(),
            a: slot.time.a.clone(),
            adams_hist: slot.adams.history(),
            dd_hist: slot.dd.history(),
            crc_u: crc_f64s(&slot.time.u),
            crc_v: crc_f64s(&slot.time.v),
            crc_a: crc_f64s(&slot.time.a),
            crc_adams: crc_cols(slot.adams.history_cols()),
            crc_dd: crc_cols(slot.dd.history_cols()),
        }
    }

    /// Re-checksum the slot; `Some(target)` names the first component
    /// whose bits changed since capture.
    pub fn verify(&self, slot: &CaseSlot) -> Option<CorruptTarget> {
        if crc_f64s(&slot.time.u) != self.crc_u {
            return Some(CorruptTarget::State(StateField::U));
        }
        if crc_f64s(&slot.time.v) != self.crc_v {
            return Some(CorruptTarget::State(StateField::V));
        }
        if crc_f64s(&slot.time.a) != self.crc_a {
            return Some(CorruptTarget::State(StateField::A));
        }
        if crc_cols(slot.adams.history_cols()) != self.crc_adams {
            return Some(CorruptTarget::AdamsHistory);
        }
        if crc_cols(slot.dd.history_cols()) != self.crc_dd {
            return Some(CorruptTarget::BasisHistory);
        }
        None
    }

    /// Roll the slot back to the captured boundary state, bitwise. The
    /// load, waveform and scratch are untouched — the first is immutable,
    /// the latter two are not step inputs.
    pub fn restore_into(&self, slot: &mut CaseSlot) {
        slot.time.step = self.step;
        slot.time.u.copy_from_slice(&self.u);
        slot.time.v.copy_from_slice(&self.v);
        slot.time.a.copy_from_slice(&self.a);
        slot.adams.restore_history(self.adams_hist.clone());
        slot.dd.restore_history(self.dd_hist.clone());
    }
}

/// Apply an injected single-bit flip to one state vector of `slot` — the
/// fault layer's memory-soft-error model.
pub fn inject_state_flip(slot: &mut CaseSlot, field: StateField, flip: BitFlip) {
    let v = match field {
        StateField::U => &mut slot.time.u,
        StateField::V => &mut slot.time.v,
        StateField::A => &mut slot.time.a,
    };
    flip.apply(v);
}

/// Apply an injected single-bit flip to the newest column of `slot`'s
/// predictor history; a no-op while the history is empty.
pub fn inject_basis_flip(slot: &mut CaseSlot, flip: BitFlip) -> bool {
    let newest = slot.dd.available_s();
    match slot.dd.column_mut(newest) {
        Some(col) => flip.apply(col).is_some(),
        None => false,
    }
}

/// The step-boundary guard cycle of one case: capture → (injected state /
/// basis flips land here) → verify → rollback. With detection off the
/// injected flips land unguarded — the baseline that demonstrates silent
/// corruption; with detection on and no fault this is pure read-only
/// overhead, so clean runs stay bitwise-identical.
pub fn boundary_guard<F: FaultInjector>(
    slot: &mut CaseSlot,
    faults: &mut F,
    step: usize,
    case: usize,
    detect: bool,
    reports: &mut Vec<CorruptionReport>,
) {
    let guard = if detect {
        Some(StateGuard::capture(slot))
    } else {
        None
    };
    if let Some((field, flip)) = faults.state_flip_fault(step, case) {
        inject_state_flip(slot, field, flip);
    }
    if let Some(flip) = faults.basis_flip_fault(step, case) {
        inject_basis_flip(slot, flip);
    }
    if let Some(guard) = guard {
        if let Some(target) = guard.verify(slot) {
            guard.restore_into(slot);
            reports.push(CorruptionReport {
                step,
                case: Some(case),
                target,
                action: CorruptionAction::RestoredState,
            });
        }
    }
}

/// RHS checksum between assembly and the solve: an injected flip of the
/// assembled right-hand side is detected and the column recomputed —
/// bitwise, because the guarded `f`/`u`/`v`/`a` inputs are still intact.
#[allow(clippy::too_many_arguments)]
pub fn rhs_guard<F: FaultInjector>(
    backend: &Backend,
    slot: &mut CaseSlot,
    scratch: &mut RhsScratch,
    faults: &mut F,
    step: usize,
    case: usize,
    detect: bool,
    reports: &mut Vec<CorruptionReport>,
) {
    let crc = if detect {
        Some(crc_f64s(&slot.rhs))
    } else {
        None
    };
    if let Some(flip) = faults.rhs_flip_fault(step, case) {
        flip.apply(&mut slot.rhs);
    }
    if let Some(crc) = crc {
        if crc_f64s(&slot.rhs) != crc {
            backend.newmark_rhs(
                &slot.f,
                &slot.time.u,
                &slot.time.v,
                &slot.time.a,
                &mut slot.rhs,
                scratch,
            );
            reports.push(CorruptionReport {
                step,
                case: Some(case),
                target: CorruptTarget::Rhs,
                action: CorruptionAction::RecomputedRhs,
            });
        }
    }
}

/// Per-step ABFT audit of the operator payload. An injected flip corrupts
/// a shadow copy of the payload values (the modeled device copy; the
/// pristine host payload is immutable); the checksum catches the mismatch
/// before the copy is used and the solve proceeds on the pristine data.
/// Returns `Some(report)` when a corrupted copy was dropped; the pristine
/// payload failing its own baseline would be unrecoverable host-memory
/// corruption, surfaced by the caller as `RunError::Corruption`.
pub fn operator_guard<F: FaultInjector>(
    payload: OperatorPayload<'_>,
    baseline: u32,
    faults: &mut F,
    step: usize,
    detect: bool,
    reports: &mut Vec<CorruptionReport>,
) -> Result<(), CorruptTarget> {
    if let Some(flip) = faults.operator_flip_fault(step) {
        let corrupted_copy_detected = match payload {
            OperatorPayload::Ebe(compact) => {
                let mut shadow = compact.geo.clone();
                flip.apply(&mut shadow);
                let mut c = Crc32::new();
                c.update_u64(compact.n_elems as u64);
                c.update_f64s(&shadow);
                c.finish() != baseline
            }
            OperatorPayload::Crs(m) => {
                let mut shadow: Vec<f64> = m.blocks.iter().flatten().copied().collect();
                flip.apply(&mut shadow);
                let mut c = Crc32::new();
                c.update_u64(m.n_brows as u64);
                for &p in &m.row_ptr {
                    c.update_u64(p as u64);
                }
                for &j in &m.cols {
                    c.update_u64(j as u64);
                }
                c.update_f64s(&shadow);
                c.finish() != baseline
            }
        };
        if detect && corrupted_copy_detected {
            reports.push(CorruptionReport {
                step,
                case: None,
                target: CorruptTarget::Operator,
                action: CorruptionAction::RebuiltOperator,
            });
        }
    }
    // steady-state audit: the payload actually driving the solve must
    // still match its construction-time checksum
    if detect && operator_crc(payload) != baseline {
        return Err(CorruptTarget::Operator);
    }
    Ok(())
}

/// Scrub the slot's boundary state for non-finite values; `Some` names the
/// first poisoned vector. A corruption that reaches this point slipped
/// past every checksum and sentinel — the caller surfaces it typed
/// (`RunError::Corruption`) instead of carrying NaNs forward.
pub fn scrub_state(slot: &CaseSlot) -> Option<StateField> {
    if slot.time.u.iter().any(|x| !x.is_finite()) {
        return Some(StateField::U);
    }
    if slot.time.v.iter().any(|x| !x.is_finite()) {
        return Some(StateField::V);
    }
    if slot.time.a.iter().any(|x| !x.is_finite()) {
        return Some(StateField::A);
    }
    None
}

/// Periodic predictor-basis audit: when the MGS orthogonality defect of
/// the basis built from the current history exceeds `tol` (or turns
/// non-finite), the history is reset — the predictor falls back to plain
/// Adams-Bashforth and re-accumulates, which degrades speed, never
/// accuracy. Returns the report when the reset fired.
pub fn basis_sentinel(
    slot: &mut CaseSlot,
    step: usize,
    case: usize,
    tol: f64,
) -> Option<CorruptionReport> {
    let s = slot.dd.available_s();
    let defect = slot.dd.basis_defect(s)?;
    if defect.is_finite() && defect <= tol {
        return None;
    }
    slot.dd.restore_history(Vec::new());
    Some(CorruptionReport {
        step,
        case: Some(case),
        target: CorruptTarget::BasisHistory,
        action: CorruptionAction::ResetPredictor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fault::{FaultPlan, NoopFaults};
    use hetsolve_fem::FemProblem;
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    use crate::methods::{MethodKind, RunConfig};

    fn small() -> (Backend, RunConfig) {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), true, false);
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 4);
        cfg.r = 2;
        cfg.s_max = 4;
        cfg.region_dofs = 64;
        (backend, cfg)
    }

    fn warmed_slot(backend: &Backend, cfg: &RunConfig, steps: usize) -> CaseSlot {
        let mut slot = CaseSlot::with_seed(backend, cfg, 7, cfg.n_steps.max(steps), 0);
        let mut scratch = RhsScratch::new(backend.n_dofs());
        for _ in 0..steps {
            let (ab, _) = slot.prepare_step(backend, &mut scratch, cfg.s_max);
            // cheap fake solve: the guard logic only needs state evolution
            let x: Vec<f64> = slot.guess().to_vec();
            slot.advance(backend, &x, &ab, None);
        }
        slot
    }

    #[test]
    fn labels_and_codes_round_trip() {
        let targets = [
            CorruptTarget::State(StateField::U),
            CorruptTarget::State(StateField::V),
            CorruptTarget::State(StateField::A),
            CorruptTarget::AdamsHistory,
            CorruptTarget::BasisHistory,
            CorruptTarget::Rhs,
            CorruptTarget::Operator,
        ];
        for t in targets {
            assert_eq!(CorruptTarget::from_code(t.code()), Some(t), "{}", t.label());
        }
        assert_eq!(CorruptTarget::from_code(200), None);
        let actions = [
            CorruptionAction::RestoredState,
            CorruptionAction::RecomputedRhs,
            CorruptionAction::RebuiltOperator,
            CorruptionAction::ResetPredictor,
            CorruptionAction::RestartedLane,
            CorruptionAction::Evicted,
        ];
        for a in actions {
            assert_eq!(
                CorruptionAction::from_code(a.code()),
                Some(a),
                "{}",
                a.label()
            );
        }
        assert_eq!(CorruptionAction::from_code(200), None);
        let rep = CorruptionReport {
            step: 5,
            case: Some(2),
            target: CorruptTarget::Rhs,
            action: CorruptionAction::RecomputedRhs,
        };
        let s = rep.to_string();
        assert!(s.contains("step 5") && s.contains("case 2"), "{s}");
        assert!(s.contains("rhs") && s.contains("recomputed_rhs"), "{s}");
    }

    #[test]
    fn crc_cols_sees_column_boundaries() {
        let a = [vec![1.0, 2.0], vec![3.0]];
        let b = [vec![1.0], vec![2.0, 3.0]];
        assert_ne!(
            crc_cols(a.iter().map(|v| v.as_slice())),
            crc_cols(b.iter().map(|v| v.as_slice())),
            "same values, different shape must differ"
        );
    }

    #[test]
    fn state_guard_detects_and_restores_every_target() {
        let (backend, cfg) = small();
        let slot = warmed_slot(&backend, &cfg, 6);
        let reference = slot.state();
        for (i, field) in [StateField::U, StateField::V, StateField::A]
            .into_iter()
            .enumerate()
        {
            let mut s = CaseSlot::from_state(&backend, &cfg, &reference);
            let guard = StateGuard::capture(&s);
            assert_eq!(guard.verify(&s), None, "clean slot must verify");
            inject_state_flip(
                &mut s,
                field,
                BitFlip {
                    seed: 77 + i as u64,
                },
            );
            assert_eq!(guard.verify(&s), Some(CorruptTarget::State(field)));
            guard.restore_into(&mut s);
            assert_eq!(guard.verify(&s), None, "restore must be bitwise");
            assert_eq!(s.state(), reference);
        }
        // basis history flip
        let mut s = CaseSlot::from_state(&backend, &cfg, &reference);
        let guard = StateGuard::capture(&s);
        assert!(inject_basis_flip(&mut s, BitFlip { seed: 991 }));
        assert_eq!(guard.verify(&s), Some(CorruptTarget::BasisHistory));
        guard.restore_into(&mut s);
        assert_eq!(s.state(), reference);
    }

    #[test]
    fn boundary_guard_rolls_back_injected_flips() {
        let (backend, cfg) = small();
        let slot = warmed_slot(&backend, &cfg, 5);
        let reference = slot.state();
        let step = slot.step_index();

        let mut s = CaseSlot::from_state(&backend, &cfg, &reference);
        let mut plan = FaultPlan::new(3).flip_state(step, 0, StateField::V);
        let mut reports = Vec::new();
        boundary_guard(&mut s, &mut plan, step, 0, true, &mut reports);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].target, CorruptTarget::State(StateField::V));
        assert_eq!(reports[0].action, CorruptionAction::RestoredState);
        assert_eq!(s.state(), reference, "rollback must be bitwise");
        assert!(plan.all_fired());

        // detection off: the same flip lands silently
        let mut s = CaseSlot::from_state(&backend, &cfg, &reference);
        let mut plan = FaultPlan::new(3).flip_state(step, 0, StateField::V);
        let mut reports = Vec::new();
        boundary_guard(&mut s, &mut plan, step, 0, false, &mut reports);
        assert!(reports.is_empty());
        assert_ne!(s.state(), reference, "unguarded flip must corrupt");

        // no fault: guard is a read-only no-op
        let mut s = CaseSlot::from_state(&backend, &cfg, &reference);
        let mut reports = Vec::new();
        boundary_guard(&mut s, &mut NoopFaults, step, 0, true, &mut reports);
        assert!(reports.is_empty());
        assert_eq!(s.state(), reference);
    }

    #[test]
    fn rhs_guard_recomputes_bitwise() {
        let (backend, cfg) = small();
        let mut slot = warmed_slot(&backend, &cfg, 4);
        let mut scratch = RhsScratch::new(backend.n_dofs());
        let step = slot.step_index();
        let _ = slot.prepare_step(&backend, &mut scratch, cfg.s_max);
        let clean_rhs = slot.rhs().to_vec();

        let mut plan = FaultPlan::new(5).flip_rhs(step, 0);
        let mut reports = Vec::new();
        rhs_guard(
            &backend,
            &mut slot,
            &mut scratch,
            &mut plan,
            step,
            0,
            true,
            &mut reports,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].target, CorruptTarget::Rhs);
        assert_eq!(reports[0].action, CorruptionAction::RecomputedRhs);
        for (a, b) in slot.rhs().iter().zip(&clean_rhs) {
            assert_eq!(a.to_bits(), b.to_bits(), "recompute must be bitwise");
        }

        // detection off: the flipped RHS survives
        let mut plan = FaultPlan::new(5).flip_rhs(step, 0);
        let mut reports = Vec::new();
        rhs_guard(
            &backend,
            &mut slot,
            &mut scratch,
            &mut plan,
            step,
            0,
            false,
            &mut reports,
        );
        assert!(reports.is_empty());
        assert!(slot
            .rhs()
            .iter()
            .zip(&clean_rhs)
            .any(|(a, b)| a.to_bits() != b.to_bits()));
    }

    #[test]
    fn operator_guard_catches_flipped_copies_for_both_payloads() {
        let (backend, _cfg) = small();
        for payload in [
            OperatorPayload::Ebe(&backend.compact),
            OperatorPayload::Crs(backend.crs_a()),
        ] {
            let baseline = operator_crc(payload);
            let mut plan = FaultPlan::new(9).flip_operator(3);
            let mut reports = Vec::new();
            operator_guard(payload, baseline, &mut plan, 3, true, &mut reports)
                .expect("pristine payload must pass its own audit");
            assert_eq!(reports.len(), 1, "flipped copy must be detected");
            assert_eq!(reports[0].target, CorruptTarget::Operator);
            assert_eq!(reports[0].action, CorruptionAction::RebuiltOperator);
            // clean step: no fault, no report
            let mut reports = Vec::new();
            operator_guard(payload, baseline, &mut NoopFaults, 4, true, &mut reports).unwrap();
            assert!(reports.is_empty());
            // a wrong baseline means the payload itself is corrupt
            assert!(operator_guard(
                payload,
                baseline ^ 1,
                &mut NoopFaults,
                5,
                true,
                &mut Vec::new()
            )
            .is_err());
        }
    }

    #[test]
    fn scrub_flags_first_nonfinite_vector() {
        let (backend, cfg) = small();
        let slot = warmed_slot(&backend, &cfg, 3);
        assert_eq!(scrub_state(&slot), None);
        let mut st = slot.state();
        st.v[1] = f64::NAN;
        let poisoned = CaseSlot::from_state(&backend, &cfg, &st);
        assert_eq!(scrub_state(&poisoned), Some(StateField::V));
        let mut st2 = slot.state();
        st2.a[0] = f64::INFINITY;
        let poisoned = CaseSlot::from_state(&backend, &cfg, &st2);
        assert_eq!(scrub_state(&poisoned), Some(StateField::A));
    }

    #[test]
    fn basis_sentinel_resets_only_a_degenerate_basis() {
        let (backend, cfg) = small();
        let mut slot = warmed_slot(&backend, &cfg, 6);
        assert!(slot.available_s() >= 1, "history must be warm");
        assert!(
            basis_sentinel(&mut slot, 6, 0, DEFAULT_BASIS_DEFECT_TOL).is_none(),
            "healthy basis must not reset"
        );
        // poison the history with a NaN column: the defect turns
        // non-finite and the sentinel resets the predictor
        let newest = slot.dd.available_s();
        slot.dd.column_mut(newest).unwrap()[0] = f64::NAN;
        let rep = basis_sentinel(&mut slot, 7, 0, DEFAULT_BASIS_DEFECT_TOL)
            .expect("poisoned basis must reset");
        assert_eq!(rep.target, CorruptTarget::BasisHistory);
        assert_eq!(rep.action, CorruptionAction::ResetPredictor);
        assert_eq!(slot.available_s(), 0, "history cleared");
    }

    #[test]
    fn integrity_config_defaults() {
        let on = IntegrityConfig::default();
        assert!(on.detect);
        assert_eq!(on.basis_check_every, DEFAULT_BASIS_CHECK_EVERY);
        let off = IntegrityConfig::disabled();
        assert!(!off.detect);
        assert_eq!(off.basis_check_every, 0);
    }
}
