//! # hetsolve-core
//!
//! The paper's primary contribution for the `hetsolve` reproduction of the
//! SC24 paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.): the four solution methods over one
//! shared discretization, the CPU/GPU pipelining, ensemble simulation, and
//! multi-node execution.
//!
//! * [`backend`] — owns the FE problem; builds assembled-CRS and
//!   matrix-free EBE operators plus the exact Newmark right-hand side,
//! * [`methods`] — `CRS-CG@CPU`, `CRS-CG@GPU`, `CRS-CG@CPU-GPU`,
//!   `EBE-MCG@CPU-GPU` drivers (Algorithms 2–4) with per-step records,
//! * [`ensemble`] — many-case simulation + FDD dominant-frequency maps
//!   (Fig. 1 application),
//! * [`multinode`] — partitioned/distributed operators consistent with the
//!   sequential ones (Fig. 2, Fig. 5),
//! * [`checkpoint`] / [`durable`] — crash-consistent snapshots of the
//!   EBE-MCG run state and the checkpoint-every-N / resume-from-latest
//!   driver built on them (bitwise-identical replay after a crash),
//! * [`recovery`] — the typed error ladder: retry failed solves with
//!   progressively safer guesses, recording each [`recovery::RecoveryEvent`],
//! * [`report`] — table/series formatting for the benchmark harnesses,
//! * [`trace`] — the observability layer: per-step Chrome-trace spans and
//!   machine-readable bench snapshots (`hetsolve-obs` export formats).

#![forbid(unsafe_code)]

pub mod backend;
pub mod checkpoint;
pub mod durable;
pub mod ensemble;
pub mod integrity;
pub mod methods;
pub mod multinode;
pub mod nonlinear_run;
pub mod realtime;
pub mod recovery;
pub mod report;
pub mod slot;
pub mod study;
pub mod trace;

pub use backend::{Backend, RhsScratch};
pub use checkpoint::{
    decode_clock_state, decode_corruption_report, decode_recovery_event, encode_clock_state,
    encode_corruption_report, encode_recovery_event, ConfigFingerprint, RunCheckpoint, SlotState,
};
pub use durable::{run_durable, run_durable_clocked, CheckpointPolicy, DurableOutcome};
pub use ensemble::{
    run_ensemble, run_ensemble_durable, run_ensemble_for_model, EnsembleConfig,
    EnsembleConfigError, EnsembleResult,
};
pub use integrity::{
    basis_sentinel, boundary_guard, crc_cols, crc_f64s, inject_basis_flip, inject_state_flip,
    operator_crc, operator_guard, rhs_guard, scrub_state, CorruptTarget, CorruptionAction,
    CorruptionReport, IntegrityConfig, OperatorPayload, StateGuard,
};
pub use methods::{
    driver_cg_config, run, run_faulted, run_traced, MethodKind, RunConfig, RunResult, StepRecord,
    WindowPolicy,
};
pub use multinode::{DistributedOperator, LocalPart, PartitionMetrics, PartitionedProblem};
pub use nonlinear_run::{
    run_nonlinear, run_nonlinear_traced, NonlinearResult, NonlinearStepRecord,
};
pub use realtime::{
    run_realtime, run_realtime_clocked, run_realtime_faulted, run_realtime_traced, RealtimeReport,
};
pub use recovery::{solve_set_resumable, GuessSource, RecoveryEvent, RunError, SetSolveOutcome};
pub use report::{apply_speedups, format_application_table, format_series, MethodSummary};
pub use slot::CaseSlot;
pub use study::{convergence_study, ConvergenceStudy, GuessResult, StudyConfig};
pub use trace::{StepTracer, METRICS_ENV, TID_CPU, TID_GPU, TID_LINK, TRACE_ENV};
