//! Per-case simulation state as a resumable *slot*.
//!
//! [`CaseSlot`] carries everything one simulation case needs between time
//! steps: the Newmark time state, its random load history, the
//! Adams-Bashforth extrapolator and the data-driven correction predictor,
//! plus per-step scratch. The ensemble drivers in [`crate::methods`] own a
//! fixed array of slots for a whole run; the serving layer
//! (`hetsolve-serve`) instead creates and retires slots independently, so a
//! fused lane can backfill a freed slot at a time-step boundary while its
//! companions keep iterating. Both paths call the exact same `prepare_step`
//! / `advance` sequence, which is what makes a served case's trajectory
//! bitwise-identical to its solo ensemble solve.

use hetsolve_fault::VectorFault;
use hetsolve_fem::{RandomLoad, TimeState};
use hetsolve_predictor::{AdamsState, DataDrivenPredictor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::backend::{Backend, RhsScratch};
use crate::checkpoint::SlotState;
use crate::methods::RunConfig;

/// Per-case simulation state (one column of a fused multi-RHS lane).
pub struct CaseSlot {
    pub(crate) time: TimeState,
    pub(crate) load: RandomLoad,
    pub(crate) adams: AdamsState,
    pub(crate) dd: DataDrivenPredictor,
    /// Absolute RNG seed the load was generated from — with `n_steps`, all
    /// a checkpoint needs to regenerate the load bitwise on restore.
    seed: u64,
    /// Steps this case runs for (load generation depends on it).
    n_steps: usize,
    /// Scratch: force, rhs, solution guess.
    pub(crate) f: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) guess: Vec<f64>,
    pub(crate) waveform: Vec<Vec<f64>>,
}

impl CaseSlot {
    /// Slot for case `case` of an ensemble run: seeded `cfg.seed + case`,
    /// running for `cfg.n_steps`.
    pub(crate) fn new(backend: &Backend, cfg: &RunConfig, case: usize, n_obs: usize) -> Self {
        Self::with_seed(backend, cfg, cfg.seed + case as u64, cfg.n_steps, n_obs)
    }

    /// Slot with an absolute RNG seed and its own step count — the serving
    /// layer's constructor. A request served with seed `s` reproduces the
    /// exact load (and therefore trajectory) of a solo ensemble run whose
    /// case seed is `s`, provided `n_steps` and the load spec match.
    pub fn with_seed(
        backend: &Backend,
        cfg: &RunConfig,
        seed: u64,
        n_steps: usize,
        n_obs: usize,
    ) -> Self {
        let n = backend.n_dofs();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let load =
            RandomLoad::generate(&cfg.load, &backend.problem.surface_nodes, n_steps, &mut rng);
        CaseSlot {
            time: TimeState::zeros(n),
            load,
            adams: AdamsState::new(),
            dd: DataDrivenPredictor::new(n, cfg.region_dofs.max(3), cfg.s_max.max(1)),
            seed,
            n_steps,
            f: vec![0.0; n],
            rhs: vec![0.0; n],
            guess: vec![0.0; n],
            waveform: vec![Vec::new(); n_obs],
        }
    }

    /// Build the initial guess: Adams-Bashforth extrapolation plus (when
    /// enabled and warmed up) the data-driven correction with window `s`.
    /// Returns the window actually used.
    pub(crate) fn predict(
        &mut self,
        backend: &Backend,
        dt: f64,
        data_driven: bool,
        s: usize,
    ) -> usize {
        self.adams.predict(&self.time.u, dt, &mut self.guess);
        let mut s_used = 0;
        if data_driven && s >= 1 {
            let mut corr = vec![0.0; self.guess.len()];
            if self.dd.predict(s, &mut corr) {
                for (g, c) in self.guess.iter_mut().zip(&corr) {
                    *g += c;
                }
                s_used = s.min(self.dd.available_s());
            }
        }
        backend.problem.mask.project(&mut self.guess);
        s_used
    }

    /// Prepare this slot's current step: assemble the Newmark RHS from the
    /// step's load into `rhs()`, then build the data-driven initial guess
    /// with window `s` into `guess()`. Returns the plain Adams-Bashforth
    /// guess (the recovery ladder's retry rung and the correction-snapshot
    /// reference) and the window actually used. The step index is the
    /// slot's own [`step_index`](Self::step_index).
    pub fn prepare_step(
        &mut self,
        backend: &Backend,
        scratch: &mut RhsScratch,
        s: usize,
    ) -> (Vec<f64>, usize) {
        let step = self.time.step;
        self.load.force_into(step, &mut self.f);
        backend.problem.mask.project(&mut self.f);
        backend.newmark_rhs(
            &self.f,
            &self.time.u,
            &self.time.v,
            &self.time.a,
            &mut self.rhs,
            scratch,
        );
        let dt = backend.problem.newmark.dt;
        self.predict(backend, dt, false, 0);
        let ab_guess = self.guess.clone();
        let s_used = self.predict(backend, dt, true, s);
        (ab_guess, s_used)
    }

    /// After solving into `u_new`: record predictor data and advance the
    /// Newmark state. `snapshot_fault` (injected) corrupts the correction
    /// snapshot before it enters the predictor history. Returns `false`
    /// when the history was poisoned and rebuilt (the caller should drop
    /// the adaptive window back to its minimum).
    pub fn advance(
        &mut self,
        backend: &Backend,
        u_new: &[f64],
        ab_guess: &[f64],
        snapshot_fault: Option<VectorFault>,
    ) -> bool {
        // correction snapshot: delta = u_true - u_adams
        let mut delta: Vec<f64> = u_new.iter().zip(ab_guess).map(|(u, g)| u - g).collect();
        if let Some(f) = snapshot_fault {
            f.apply(&mut delta);
        }
        let history_ok = self.dd.record(&delta);
        let nm = &backend.problem.newmark;
        let u_old = std::mem::replace(&mut self.time.u, u_new.to_vec());
        nm.advance(&self.time.u, &u_old, &mut self.time.v, &mut self.time.a);
        self.adams.push(&self.time.v);
        self.time.step += 1;
        history_ok
    }

    pub(crate) fn record_waveform(&mut self, obs_dofs: &[usize]) {
        for (w, &d) in self.waveform.iter_mut().zip(obs_dofs) {
            w.push(self.time.u[d]);
        }
    }

    /// Steps completed so far (the next `prepare_step` runs this index).
    pub fn step_index(&self) -> usize {
        self.time.step
    }

    /// Steps this slot runs for in total.
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// All its steps are done.
    pub fn is_done(&self) -> bool {
        self.time.step >= self.n_steps
    }

    /// Current displacement vector.
    pub fn displacement(&self) -> &[f64] {
        &self.time.u
    }

    /// Newmark right-hand side assembled by the last `prepare_step`.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Initial guess built by the last `prepare_step`.
    pub fn guess(&self) -> &[f64] {
        &self.guess
    }

    /// Largest data-driven window this slot's history supports right now.
    pub fn available_s(&self) -> usize {
        self.dd.available_s()
    }

    /// Modeled kernel cost of this slot's predictor at window `s` — what a
    /// driver charges to the CPU lane for the step's prediction.
    pub fn predictor_cost(&self, s: usize) -> hetsolve_sparse::KernelCounts {
        self.dd.cost(s)
    }

    /// Capture everything a checkpoint needs to rebuild this slot bitwise:
    /// seed + step count (the load regenerates from them), Newmark vectors,
    /// both predictor histories, and the recorded waveform. The `f`/`rhs`/
    /// `guess` scratch is deliberately excluded — `prepare_step` fully
    /// recomputes it before any read.
    pub fn state(&self) -> SlotState {
        SlotState {
            seed: self.seed,
            n_steps: self.n_steps,
            step: self.time.step,
            u: self.time.u.clone(),
            v: self.time.v.clone(),
            a: self.time.a.clone(),
            adams_hist: self.adams.history(),
            dd_hist: self.dd.history(),
            waveform: self.waveform.clone(),
        }
    }

    /// Rebuild a slot from a captured [`SlotState`] — the restore-side
    /// inverse of [`CaseSlot::state`]. The load is regenerated from the
    /// stored seed, so the resumed trajectory is bitwise-identical to the
    /// uninterrupted one.
    pub fn from_state(backend: &Backend, cfg: &RunConfig, st: &SlotState) -> Self {
        let mut slot = Self::with_seed(backend, cfg, st.seed, st.n_steps, st.waveform.len());
        slot.time.step = st.step;
        slot.time.u = st.u.clone();
        slot.time.v = st.v.clone();
        slot.time.a = st.a.clone();
        slot.adams.restore_history(st.adams_hist.clone());
        slot.dd.restore_history(st.dd_hist.clone());
        slot.waveform = st.waveform.clone();
        slot
    }
}
