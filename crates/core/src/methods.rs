//! The four solution methods of the paper, over one [`Backend`]:
//!
//! * `CRS-CG@CPU`, `CRS-CG@GPU` — Algorithm 2: Adams-Bashforth initial
//!   guess + assembled-matrix CG, one case, one device;
//! * `CRS-CG@CPU-GPU` — Algorithm 4: data-driven predictor on the CPU
//!   overlapped with the assembled-matrix CG of the *other* case on the
//!   GPU (2 processes × 1 case);
//! * `EBE-MCG@CPU-GPU` — Algorithm 3 (the proposal): matrix-free EBE
//!   multi-RHS CG on the GPU overlapped with the data-driven predictors of
//!   the other set on the CPU (2 processes × r cases), with the snapshot
//!   window `s` adapted online.
//!
//! Numerics are always exact (real solves on the host); the execution
//! timeline and energy come from the `hetsolve-machine` model, mirroring
//! the overlap/synchronization/transfer structure of the paper's
//! algorithms. Per-step records regenerate Tables 3–4 and Fig. 4.

use hetsolve_fault::{FaultInjector, FaultLane, NoopFaults};
use hetsolve_fem::{CompactEbe, RandomLoadSpec};
use hetsolve_machine::{EnergyReport, LaneKind, ModuleClock, NodeSpec};
use hetsolve_obs::Json;
use hetsolve_predictor::AdaptiveWindow;
use hetsolve_sparse::{CgConfig, KernelCounts};

use crate::backend::{Backend, RhsScratch};
use crate::integrity::{
    basis_sentinel, boundary_guard, operator_crc, operator_guard, rhs_guard, scrub_state,
    CorruptTarget, CorruptionReport, IntegrityConfig, OperatorPayload,
};
use crate::recovery::{solve_set_with_ladder, solve_with_ladder, RecoveryEvent, RunError};
use crate::slot::CaseSlot;
use crate::trace::StepTracer;

/// Stagnation window the drivers hand to the CG solvers: long enough that
/// a healthy solve never trips it, short enough that a non-converging
/// residual plateau fails fast instead of burning the full iteration cap.
pub(crate) const DRIVER_STAGNATION_WINDOW: usize = 2_000;

/// Divergent-guess threshold the drivers hand to the CG solvers. Past
/// `tol / eps` the recursive residual can fake a convergence (attainable
/// accuracy is ~`eps ×` initial residual), so such a guess must fail typed
/// and go through the recovery ladder instead. The floor keeps the guard
/// meaningful for extreme (e.g. zero) tolerances.
pub(crate) fn driver_guess_divergence(tol: f64) -> f64 {
    (tol / f64::EPSILON).max(1e6)
}

/// Invariant-sentinel period the drivers arm (ABFT true-residual audit
/// every this many CG iterations, plus an exit audit on every claimed
/// convergence). One extra operator application per 64 keeps the detection
/// overhead under 2% of solver work; the sentinel is read-only, so clean
/// solves stay bitwise-identical to a sentinel-off run.
pub(crate) const DRIVER_SENTINEL_EVERY: usize = 64;

/// Bounded-norm guard factor the drivers arm: an iterate whose norm grows
/// a trillion-fold past its first-audit reference is a runaway, not a
/// solution. Generous enough that no healthy solve can trip it.
pub(crate) const DRIVER_NORM_BOUND: f64 = 1e12;

/// The CG configuration every driver hands to the solvers for tolerance
/// `tol`. Public so the serving layer solves with the exact same settings
/// as the ensemble drivers (part of the bitwise-equivalence contract).
/// SDC sentinels are armed (`sentinel_every`, `norm_bound`): they are
/// read-only and excluded from modeled counts, so this remains
/// bitwise-equivalent to the pre-sentinel configuration on healthy solves
/// while corrupted solves now fail typed instead of lying.
pub fn driver_cg_config(tol: f64) -> CgConfig {
    CgConfig {
        tol,
        max_iter: 100_000,
        stagnation_window: DRIVER_STAGNATION_WINDOW,
        guess_divergence: driver_guess_divergence(tol),
        sentinel_every: DRIVER_SENTINEL_EVERY,
        sentinel_drift: 0.0, // DEFAULT_SENTINEL_DRIFT
        norm_bound: DRIVER_NORM_BOUND,
    }
}

/// Is this step one of the periodic predictor-basis audit boundaries?
fn check_basis_at(integ: &IntegrityConfig, step: usize) -> bool {
    integ.detect
        && integ.basis_check_every > 0
        && step > 0
        && step.is_multiple_of(integ.basis_check_every)
}

/// Map a fault-plan lane onto the machine model's lane kind.
fn lane_kind(lane: FaultLane) -> LaneKind {
    match lane {
        FaultLane::Cpu => LaneKind::Cpu,
        FaultLane::Gpu => LaneKind::Gpu,
    }
}

/// Modeled bytes an exchange moves after an injected exchange fault:
/// `Drop` moves nothing, `Delay` occupies the link `factor`× longer.
fn exchange_bytes<F: FaultInjector>(faults: &mut F, step: usize, set: usize, bytes: f64) -> f64 {
    match faults.exchange_fault(step, set) {
        Some(hetsolve_fault::ExchangeFault::Drop) => 0.0,
        Some(hetsolve_fault::ExchangeFault::Delay { factor }) => bytes * factor,
        None => bytes,
    }
}

/// Which of the paper's methods to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    CrsCgCpu,
    CrsCgGpu,
    CrsCgCpuGpu,
    EbeMcgCpuGpu,
}

impl MethodKind {
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::CrsCgCpu => "CRS-CG@CPU",
            MethodKind::CrsCgGpu => "CRS-CG@GPU",
            MethodKind::CrsCgCpuGpu => "CRS-CG@CPU-GPU",
            MethodKind::EbeMcgCpuGpu => "EBE-MCG@CPU-GPU",
        }
    }

    /// Number of simulation cases a single run advances (Table 3: 1, 1, 2,
    /// and 2r).
    pub fn n_cases(&self, r: usize) -> usize {
        match self {
            MethodKind::CrsCgCpu | MethodKind::CrsCgGpu => 1,
            MethodKind::CrsCgCpuGpu => 2,
            MethodKind::EbeMcgCpuGpu => 2 * r,
        }
    }

    /// Does this method use the data-driven predictor?
    pub fn data_driven(&self) -> bool {
        matches!(self, MethodKind::CrsCgCpuGpu | MethodKind::EbeMcgCpuGpu)
    }
}

/// How the data-driven snapshot window `s` is chosen each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// Online controller: grow/shrink `s` from the measured
    /// predictor/solver balance (the paper's adaptive window). The window
    /// is shared by every case of the run, so one case's choice of `s`
    /// depends on its companions' timing.
    #[default]
    Adaptive,
    /// Always request the full window `s_max`, clamped per case to the
    /// history that case has accumulated. Purely case-local and
    /// deterministic — a case's trajectory is independent of which other
    /// cases share its fused lane. The serving layer requires this policy
    /// (it is what makes served results bitwise-equal to solo runs).
    FullWindow,
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub method: MethodKind,
    pub node: NodeSpec,
    /// Predictor CPU threads per process (Table 4 sweeps 36/24/16).
    pub cpu_threads: usize,
    /// Cases per set for EBE-MCG (paper: 4).
    pub r: usize,
    /// Snapshot-window cap (memory bound; paper: 32 / 11).
    pub s_max: usize,
    /// Predictor region size in DOFs.
    pub region_dofs: usize,
    /// CG relative tolerance (paper: 1e-8).
    pub tol: f64,
    /// Snapshot-window selection policy for the data-driven methods.
    pub window: WindowPolicy,
    pub n_steps: usize,
    /// Base RNG seed; case `c` uses `seed + c`.
    pub seed: u64,
    pub load: RandomLoadSpec,
    /// Steps before this index are excluded from the summary averages
    /// (the paper measures steps 250–500).
    pub measure_from: usize,
    /// Record surface z-waveforms for FDD post-processing.
    pub record_surface: bool,
    /// Silent-data-corruption defense (checksums, sentinels, rollback).
    /// Detection is read-only on clean data, so the default-on setting
    /// leaves clean results bitwise-unchanged.
    pub integrity: IntegrityConfig,
}

impl RunConfig {
    pub fn new(method: MethodKind, node: NodeSpec, n_steps: usize) -> Self {
        RunConfig {
            method,
            node,
            cpu_threads: 36,
            r: 4,
            s_max: 16,
            region_dofs: 384,
            tol: 1e-8,
            window: WindowPolicy::Adaptive,
            n_steps,
            seed: 2024,
            load: RandomLoadSpec::default(),
            measure_from: n_steps / 4,
            record_surface: false,
            integrity: IntegrityConfig::default(),
        }
    }
}

/// Per-step record (regenerates Fig. 4 and the per-step columns of
/// Tables 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    pub step: usize,
    /// Modeled wall time of the step per case (s).
    pub step_time_per_case: f64,
    /// Modeled solver time per case (s).
    pub solver_time_per_case: f64,
    /// Modeled predictor time per case (s).
    pub predictor_time_per_case: f64,
    /// Modeled CPU↔GPU transfer time of the step (s).
    pub transfer_time: f64,
    /// Mean CG iterations per case.
    pub iterations: f64,
    /// Snapshot window used (0 for Adams-Bashforth-only methods).
    pub s_used: usize,
    /// Mean initial relative residual (initial-guess quality).
    pub initial_rel_res: f64,
}

/// Result of a time-history run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub method: MethodKind,
    pub n_cases: usize,
    pub records: Vec<StepRecord>,
    pub energy: EnergyReport,
    /// Surface z-waveforms `[case][point][step]` (when recorded).
    pub waveforms: Vec<Vec<Vec<f64>>>,
    /// Final displacement of each case (accuracy cross-checks).
    pub final_u: Vec<Vec<f64>>,
    /// Recovery-ladder events: steps that survived an abnormal solver
    /// termination on a downgraded guess. Empty on a healthy run.
    pub recoveries: Vec<RecoveryEvent>,
    /// Corruptions the integrity layer detected and repaired (rollback,
    /// recompute, rebuild, reset). Empty on a clean run.
    pub corruptions: Vec<CorruptionReport>,
}

impl RunResult {
    fn measured(&self, from: usize) -> impl Iterator<Item = &StepRecord> {
        self.records.iter().filter(move |r| r.step >= from)
    }

    /// Mean step time per case over the measurement window.
    pub fn mean_step_time(&self, from: usize) -> f64 {
        let (mut s, mut n) = (0.0, 0);
        for r in self.measured(from) {
            s += r.step_time_per_case;
            n += 1;
        }
        s / n.max(1) as f64
    }

    pub fn mean_solver_time(&self, from: usize) -> f64 {
        let (mut s, mut n) = (0.0, 0);
        for r in self.measured(from) {
            s += r.solver_time_per_case;
            n += 1;
        }
        s / n.max(1) as f64
    }

    pub fn mean_predictor_time(&self, from: usize) -> f64 {
        let (mut s, mut n) = (0.0, 0);
        for r in self.measured(from) {
            s += r.predictor_time_per_case;
            n += 1;
        }
        s / n.max(1) as f64
    }

    pub fn mean_iterations(&self, from: usize) -> f64 {
        let (mut s, mut n) = (0.0, 0);
        for r in self.measured(from) {
            s += r.iterations;
            n += 1;
        }
        s / n.max(1) as f64
    }

    /// Energy per step per case over the whole run (J).
    pub fn energy_per_step_per_case(&self) -> f64 {
        self.energy.energy / (self.records.len().max(1) * self.n_cases) as f64
    }
}

/// Run a time-history simulation with the configured method.
///
/// Returns a typed [`RunError`] instead of panicking when a step's solve
/// exhausts the recovery ladder (see [`crate::recovery`]).
pub fn run(backend: &Backend, cfg: &RunConfig) -> Result<RunResult, RunError> {
    run_traced(backend, cfg, &mut StepTracer::disabled())
}

/// [`run`] with an observability tracer threaded through the driver: every
/// kernel/transfer charge is labeled into the tracer's Chrome-trace
/// timeline, adaptive-window decisions and CG-iteration counters are
/// recorded, and the finished run is folded into the tracer's metrics
/// sink. With [`StepTracer::disabled`] this is exactly [`run`].
pub fn run_traced(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
) -> Result<RunResult, RunError> {
    run_faulted(backend, cfg, tracer, &mut NoopFaults)
}

/// [`run_traced`] with a fault injector threaded through the driver. With
/// [`NoopFaults`] (a ZST whose hooks are the empty defaults) this is
/// exactly [`run_traced`] — the fault suite asserts bitwise identity. With
/// a [`FaultPlan`](hetsolve_fault::FaultPlan), the scheduled faults hit
/// guesses, snapshots, exchanges, lanes and solver caps, and the recovery
/// ladder's response is recorded in [`RunResult::recoveries`].
pub fn run_faulted<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
) -> Result<RunResult, RunError> {
    if cfg.method != MethodKind::EbeMcgCpuGpu && !backend.has_crs() {
        return Err(RunError::Config {
            message: format!(
                "method {} needs assembled matrices, but the backend was built \
                 with `with_crs = false`",
                cfg.method.label()
            ),
        });
    }
    let n_sets = match cfg.method {
        MethodKind::CrsCgCpu | MethodKind::CrsCgGpu => 1,
        MethodKind::CrsCgCpuGpu | MethodKind::EbeMcgCpuGpu => 2,
    };
    tracer.begin_run(cfg.method.label(), cfg, n_sets);
    let result = match cfg.method {
        MethodKind::CrsCgCpu | MethodKind::CrsCgGpu => run_crs_single(backend, cfg, tracer, faults),
        MethodKind::CrsCgCpuGpu => run_crs_pipelined(backend, cfg, tracer, faults),
        MethodKind::EbeMcgCpuGpu => run_ebe_mcg(backend, cfg, tracer, faults),
    }?;
    tracer.finish_run(&result, cfg.measure_from);
    Ok(result)
}

/// Algorithm 2: single case, single device, Adams-Bashforth predictor.
fn run_crs_single<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
) -> Result<RunResult, RunError> {
    let on_gpu = cfg.method == MethodKind::CrsCgGpu;
    let n = backend.n_dofs();
    let obs = backend.problem.surface_dofs_z();
    let mut case = CaseSlot::new(
        backend,
        cfg,
        0,
        if cfg.record_surface { obs.len() } else { 0 },
    );
    let mut clock = ModuleClock::new(cfg.node.module, backend.problem_threads(cfg), false);
    tracer.attach_clock(&mut clock);
    let mut scratch = RhsScratch::new(n);
    let cg_cfg = driver_cg_config(cfg.tol);
    let mut records = Vec::with_capacity(cfg.n_steps);
    let mut recoveries = Vec::new();
    let mut corruptions = Vec::new();
    let a = backend.crs_a();
    let rhs_counts = backend.rhs_counts_crs();
    let detect = cfg.integrity.detect;
    let op_crc = operator_crc(OperatorPayload::Crs(a));

    for step in 0..cfg.n_steps {
        boundary_guard(&mut case, faults, step, 0, detect, &mut corruptions);
        if check_basis_at(&cfg.integrity, step) {
            corruptions.extend(basis_sentinel(
                &mut case,
                step,
                0,
                cfg.integrity.basis_defect_tol,
            ));
        }
        operator_guard(
            OperatorPayload::Crs(a),
            op_crc,
            faults,
            step,
            detect,
            &mut corruptions,
        )
        .map_err(|t| RunError::Corruption {
            step,
            case: None,
            target: t.label(),
        })?;
        case.load.force_into(step, &mut case.f);
        backend.problem.mask.project(&mut case.f);
        backend.newmark_rhs(
            &case.f,
            &case.time.u,
            &case.time.v,
            &case.time.a,
            &mut case.rhs,
            &mut scratch,
        );
        rhs_guard(
            backend,
            &mut case,
            &mut scratch,
            faults,
            step,
            0,
            detect,
            &mut corruptions,
        );
        case.predict(backend, backend.problem.newmark.dt, false, 0);
        let ab_guess = case.guess.clone();
        let mut x = ab_guess.clone();
        let mut guess_faulted = false;
        if let Some(vf) = faults.guess_fault(step, 0) {
            vf.apply(&mut x);
            guess_faulted = true;
        }
        let first_cfg = match faults.solver_fault(step, 0) {
            Some(sf) => CgConfig {
                max_iter: sf.max_iter.min(cg_cfg.max_iter),
                ..cg_cfg
            },
            None => cg_cfg,
        };
        let before = recoveries.len();
        // ladder: the first attempt starts from the (possibly corrupted)
        // AB guess; only a corrupted guess makes the AB rung distinct.
        let stats = solve_with_ladder(
            a,
            &backend.precond,
            &case.rhs,
            &mut x,
            &ab_guess,
            &cg_cfg,
            &first_cfg,
            step,
            0,
            guess_faulted,
            &mut recoveries,
        )?;
        // charge the device: RHS + predictor (3 vector passes) + solve
        let total = rhs_counts
            .merged(vector_counts(n, 4.0))
            .merged(stats.counts);
        let span_args = [("iterations", Json::from(stats.iterations))];
        let mut t = if on_gpu {
            tracer.charge_gpu(&mut clock, 0, "rhs + CG solve", &total, &span_args)
        } else {
            tracer.charge_cpu(&mut clock, 0, "rhs + CG solve", &total, &span_args)
        };
        tracer.iterations_counter(clock.elapsed(), stats.iterations as f64);
        for ev in &recoveries[before..] {
            tracer.recovery_event(clock.elapsed(), ev);
        }
        if let Some(lf) = faults.lane_fault(step, 0) {
            t += tracer.charge_stall(&mut clock, 0, lane_kind(lf.lane), lf.seconds);
        }
        case.advance(backend, &x, &ab_guess, faults.snapshot_fault(step, 0));
        if detect {
            if let Some(field) = scrub_state(&case) {
                return Err(RunError::Corruption {
                    step,
                    case: Some(0),
                    target: CorruptTarget::State(field).label(),
                });
            }
        }
        if cfg.record_surface {
            case.record_waveform(&obs);
        }
        records.push(StepRecord {
            step,
            step_time_per_case: t,
            solver_time_per_case: t,
            predictor_time_per_case: 0.0,
            transfer_time: 0.0,
            iterations: stats.iterations as f64,
            s_used: 0,
            initial_rel_res: stats.initial_rel_res,
        });
    }

    Ok(RunResult {
        method: cfg.method,
        n_cases: 1,
        records,
        energy: clock.report(),
        waveforms: if cfg.record_surface {
            vec![case.waveform]
        } else {
            Vec::new()
        },
        final_u: vec![case.time.u],
        recoveries,
        corruptions,
    })
}

/// Algorithm 4: 2 cases; data-driven predictor on CPU overlaps the CRS
/// solve of the other case on GPU.
fn run_crs_pipelined<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
) -> Result<RunResult, RunError> {
    let n = backend.n_dofs();
    let obs = backend.problem.surface_dofs_z();
    let n_obs = if cfg.record_surface { obs.len() } else { 0 };
    let mut cases: Vec<CaseSlot> = (0..2)
        .map(|c| CaseSlot::new(backend, cfg, c, n_obs))
        .collect();
    let mut clock = ModuleClock::new(cfg.node.module, cfg.cpu_threads, true);
    tracer.attach_clock(&mut clock);
    let mut adaptive = AdaptiveWindow::new(1, cfg.s_max.max(1));
    let mut scratch = RhsScratch::new(n);
    let cg_cfg = driver_cg_config(cfg.tol);
    let mut records = Vec::with_capacity(cfg.n_steps);
    let mut recoveries = Vec::new();
    let mut corruptions = Vec::new();
    let a = backend.crs_a();
    let rhs_counts = backend.rhs_counts_crs();
    let detect = cfg.integrity.detect;
    let op_crc = operator_crc(OperatorPayload::Crs(a));

    for step in 0..cfg.n_steps {
        operator_guard(
            OperatorPayload::Crs(a),
            op_crc,
            faults,
            step,
            detect,
            &mut corruptions,
        )
        .map_err(|t| RunError::Corruption {
            step,
            case: None,
            target: t.label(),
        })?;
        // Adaptive shares one window across cases; FullWindow is
        // case-local (clamped to each case's own history below).
        let s_shared = match cfg.window {
            WindowPolicy::Adaptive => Some(adaptive.current().min(cases[0].dd.available_s())),
            WindowPolicy::FullWindow => None,
        };
        let mut iter_sum = 0.0;
        let mut res_sum = 0.0;
        let mut s_used = 0;
        let mut solver_t = 0.0;
        let mut pred_t = 0.0;
        // Injected lane stalls are reported in the step record but kept
        // out of the adaptive-window controller's inputs: a transient
        // stall says nothing about the predictor/solver balance, and
        // letting it thrash the window would perturb the numerics of a
        // timing-only fault.
        let mut stall_solver = 0.0;
        let mut stall_pred = 0.0;
        let mut history_poisoned = false;
        for (set, case) in cases.iter_mut().enumerate() {
            boundary_guard(case, faults, step, set, detect, &mut corruptions);
            if check_basis_at(&cfg.integrity, step) {
                corruptions.extend(basis_sentinel(
                    case,
                    step,
                    set,
                    cfg.integrity.basis_defect_tol,
                ));
            }
            case.load.force_into(step, &mut case.f);
            backend.problem.mask.project(&mut case.f);
            backend.newmark_rhs(
                &case.f,
                &case.time.u,
                &case.time.v,
                &case.time.a,
                &mut case.rhs,
                &mut scratch,
            );
            rhs_guard(
                backend,
                case,
                &mut scratch,
                faults,
                step,
                set,
                detect,
                &mut corruptions,
            );
            // Adams guess first (kept for the correction snapshot)...
            case.predict(backend, backend.problem.newmark.dt, false, 0);
            let ab_guess = case.guess.clone();
            // ...then the full data-driven guess
            let s = s_shared.unwrap_or_else(|| cfg.s_max.max(1).min(case.dd.available_s()));
            s_used = case.predict(backend, backend.problem.newmark.dt, true, s);
            let mut x = case.guess.clone();
            let mut guess_faulted = false;
            if let Some(vf) = faults.guess_fault(step, set) {
                vf.apply(&mut x);
                guess_faulted = true;
            }
            let first_cfg = match faults.solver_fault(step, set) {
                Some(sf) => CgConfig {
                    max_iter: sf.max_iter.min(cg_cfg.max_iter),
                    ..cg_cfg
                },
                None => cg_cfg,
            };
            let before = recoveries.len();
            // the AB rung is distinct whenever the first attempt started
            // from a data-driven guess (s_used > 0) or a corrupted one
            let stats = solve_with_ladder(
                a,
                &backend.precond,
                &case.rhs,
                &mut x,
                &ab_guess,
                &cg_cfg,
                &first_cfg,
                step,
                set,
                s_used > 0 || guess_faulted,
                &mut recoveries,
            )?;
            iter_sum += stats.iterations as f64;
            res_sum += stats.initial_rel_res;
            // GPU lane: RHS + solve; CPU lane: predictor
            let gpu = rhs_counts.merged(stats.counts);
            solver_t += tracer.charge_gpu(
                &mut clock,
                set,
                "rhs + CG solve",
                &gpu,
                &[("iterations", Json::from(stats.iterations))],
            );
            pred_t += tracer.charge_cpu(
                &mut clock,
                set,
                "predictor",
                &case.dd.cost(s_used.max(1)),
                &[("s", Json::from(s_used))],
            );
            for ev in &recoveries[before..] {
                tracer.recovery_event(clock.elapsed(), ev);
            }
            if let Some(lf) = faults.lane_fault(step, set) {
                let stall = tracer.charge_stall(&mut clock, set, lane_kind(lf.lane), lf.seconds);
                match lf.lane {
                    FaultLane::Cpu => stall_pred += stall,
                    FaultLane::Gpu => stall_solver += stall,
                }
            }
            if !case.advance(backend, &x, &ab_guess, faults.snapshot_fault(step, set)) {
                history_poisoned = true;
            }
            if detect {
                if let Some(field) = scrub_state(case) {
                    return Err(RunError::Corruption {
                        step,
                        case: Some(set),
                        target: CorruptTarget::State(field).label(),
                    });
                }
            }
            if cfg.record_surface {
                case.record_waveform(&obs);
            }
        }
        if history_poisoned {
            adaptive.reset_window();
        }
        clock.sync();
        // exchange: one solution down, one guess up, per process pair
        let bytes = exchange_bytes(faults, step, 0, 2.0 * n as f64 * 8.0);
        let xfer = if bytes > 0.0 {
            tracer.charge_transfer(&mut clock, 0, "exchange", bytes)
        } else {
            0.0 // dropped exchange: nothing crosses the link
        };
        if cfg.window == WindowPolicy::Adaptive {
            let decision = adaptive.observe_logged(s_used.max(1), pred_t / 2.0, solver_t / 2.0);
            tracer.window_decision(step, clock.elapsed(), &decision);
        }
        tracer.iterations_counter(clock.elapsed(), iter_sum / 2.0);
        records.push(StepRecord {
            step,
            step_time_per_case: (solver_t + stall_solver).max(pred_t + stall_pred) / 2.0 + xfer,
            solver_time_per_case: (solver_t + stall_solver) / 2.0,
            predictor_time_per_case: (pred_t + stall_pred) / 2.0,
            transfer_time: xfer,
            iterations: iter_sum / 2.0,
            s_used,
            initial_rel_res: res_sum / 2.0,
        });
    }

    Ok(finish(
        backend,
        cfg,
        cases,
        records,
        clock,
        recoveries,
        corruptions,
    ))
}

/// Algorithm 3 (the proposal): 2 sets × r cases, matrix-free multi-RHS CG
/// on the GPU overlapped with the predictors of the other set on the CPU.
fn run_ebe_mcg<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
) -> Result<RunResult, RunError> {
    let ctx = EbeRunCtx::new(backend, cfg);
    let mut st = EbeRunState::new(backend, cfg);
    tracer.attach_clock(&mut st.clock);
    while st.step < cfg.n_steps {
        st.step_once(backend, cfg, tracer, faults, &ctx)?;
    }
    Ok(st.into_result(backend, cfg))
}

/// Immutable per-run context of the EBE-MCG driver: the matrix-free
/// operator and kernel costs borrowed from the backend, the CG settings,
/// and the observation DOFs. Rebuilt identically from `(backend, cfg)` on
/// every (re)start, so none of it belongs in a checkpoint.
pub(crate) struct EbeRunCtx<'a> {
    op: CompactEbe<'a>,
    rhs_counts: KernelCounts,
    cg_cfg: CgConfig,
    obs: Vec<usize>,
    /// Construction-time ABFT checksum of the EBE operator payload,
    /// re-verified at every step boundary.
    op_crc: u32,
}

impl<'a> EbeRunCtx<'a> {
    pub(crate) fn new(backend: &'a Backend, cfg: &RunConfig) -> Self {
        EbeRunCtx {
            op: backend.ebe_a(cfg.r),
            rhs_counts: backend.rhs_counts_ebe(cfg.r),
            cg_cfg: driver_cg_config(cfg.tol),
            obs: backend.problem.surface_dofs_z(),
            op_crc: operator_crc(OperatorPayload::Ebe(&backend.compact)),
        }
    }
}

/// Mutable state of an EBE-MCG run at a step boundary — exactly what a
/// crash-consistent checkpoint must persist. The `scratch`/`f_multi`/
/// `x_multi` buffers are excluded on purpose: every step fully rewrites
/// them before reading, so a resumed run is bitwise-identical without
/// them. Both the uninterrupted driver ([`run_ebe_mcg`]) and the durable
/// driver ([`crate::durable::run_durable`]) advance through the same
/// [`EbeRunState::step_once`], which is what makes the replay-determinism
/// claim structural rather than coincidental.
pub(crate) struct EbeRunState {
    pub(crate) cases: Vec<CaseSlot>,
    pub(crate) clock: ModuleClock,
    pub(crate) adaptive: AdaptiveWindow,
    pub(crate) records: Vec<StepRecord>,
    pub(crate) recoveries: Vec<RecoveryEvent>,
    pub(crate) corruptions: Vec<CorruptionReport>,
    /// Next step boundary to execute (`records.len()` on a healthy run).
    pub(crate) step: usize,
    scratch: RhsScratch,
    f_multi: Vec<f64>,
    x_multi: Vec<f64>,
}

impl EbeRunState {
    pub(crate) fn new(backend: &Backend, cfg: &RunConfig) -> Self {
        let n = backend.n_dofs();
        let r = cfg.r;
        let n_cases = 2 * r;
        let n_obs = if cfg.record_surface {
            backend.problem.surface_dofs_z().len()
        } else {
            0
        };
        EbeRunState {
            cases: (0..n_cases)
                .map(|c| CaseSlot::new(backend, cfg, c, n_obs))
                .collect(),
            clock: ModuleClock::new(cfg.node.module, cfg.cpu_threads, true),
            adaptive: AdaptiveWindow::new(1, cfg.s_max.max(1)),
            records: Vec::with_capacity(cfg.n_steps),
            recoveries: Vec::new(),
            corruptions: Vec::new(),
            step: 0,
            scratch: RhsScratch::new(n),
            f_multi: vec![0.0; n * r],
            x_multi: vec![0.0; n * r],
        }
    }

    /// Execute one step boundary: predictors on the CPU lane, the fused
    /// multi-RHS solve on the GPU lane, advance, sync, exchange, adapt.
    pub(crate) fn step_once<F: FaultInjector>(
        &mut self,
        backend: &Backend,
        cfg: &RunConfig,
        tracer: &mut StepTracer,
        faults: &mut F,
        ctx: &EbeRunCtx<'_>,
    ) -> Result<(), RunError> {
        let n = backend.n_dofs();
        let r = cfg.r;
        let n_cases = 2 * r;
        let step = self.step;
        let s_shared = match cfg.window {
            WindowPolicy::Adaptive => Some(self.adaptive.current()),
            WindowPolicy::FullWindow => None,
        };
        let mut iter_sum = 0.0;
        let mut res_sum = 0.0;
        let mut s_used = 0;
        let mut solver_t = 0.0;
        let mut pred_t = 0.0;
        // stalls stay out of the adaptive controller's inputs (see the
        // pipelined driver): report the jitter, don't steer on it
        let mut stall_solver = 0.0;
        let mut stall_pred = 0.0;
        let mut history_poisoned = false;
        let detect = cfg.integrity.detect;

        operator_guard(
            OperatorPayload::Ebe(&backend.compact),
            ctx.op_crc,
            faults,
            step,
            detect,
            &mut self.corruptions,
        )
        .map_err(|t| RunError::Corruption {
            step,
            case: None,
            target: t.label(),
        })?;

        for set in 0..2 {
            let set_cases = set * r..(set + 1) * r;
            // predictors (CPU lane)
            let mut ab_guesses: Vec<Vec<f64>> = Vec::with_capacity(r);
            for c in set_cases.clone() {
                let case = &mut self.cases[c];
                boundary_guard(case, faults, step, c, detect, &mut self.corruptions);
                if check_basis_at(&cfg.integrity, step) {
                    self.corruptions.extend(basis_sentinel(
                        case,
                        step,
                        c,
                        cfg.integrity.basis_defect_tol,
                    ));
                }
                let s = s_shared.unwrap_or_else(|| cfg.s_max.max(1).min(case.dd.available_s()));
                let (ab_guess, su) = case.prepare_step(backend, &mut self.scratch, s);
                rhs_guard(
                    backend,
                    case,
                    &mut self.scratch,
                    faults,
                    step,
                    c,
                    detect,
                    &mut self.corruptions,
                );
                ab_guesses.push(ab_guess);
                s_used = su;
                if let Some(vf) = faults.guess_fault(step, c) {
                    vf.apply(&mut case.guess);
                }
                pred_t += tracer.charge_cpu(
                    &mut self.clock,
                    set,
                    "predictor",
                    &case.dd.cost(s_used.max(1)),
                    &[("case", Json::from(c)), ("s", Json::from(s_used))],
                );
            }
            // fused solve (GPU lane)
            for (k, c) in set_cases.clone().enumerate() {
                hetsolve_sparse::vecops::insert_case(&mut self.f_multi, r, k, &self.cases[c].rhs);
                hetsolve_sparse::vecops::insert_case(&mut self.x_multi, r, k, &self.cases[c].guess);
            }
            let first_cfg = match faults.solver_fault(step, set) {
                Some(sf) => CgConfig {
                    max_iter: sf.max_iter.min(ctx.cg_cfg.max_iter),
                    ..ctx.cg_cfg
                },
                None => ctx.cg_cfg,
            };
            let before = self.recoveries.len();
            let stats = solve_set_with_ladder(
                &ctx.op,
                &backend.precond,
                &self.f_multi,
                &mut self.x_multi,
                &ab_guesses,
                &ctx.cg_cfg,
                &first_cfg,
                step,
                set,
                set * r,
                true,
                &mut self.recoveries,
            )?;
            solver_t += tracer.charge_gpu(
                &mut self.clock,
                set,
                "rhs + MCG solve",
                &ctx.rhs_counts.merged(stats.counts),
                &[
                    ("r", Json::from(r)),
                    ("fused_iterations", Json::from(stats.fused_iterations)),
                ],
            );
            for ev in &self.recoveries[before..] {
                tracer.recovery_event(self.clock.elapsed(), ev);
            }
            if let Some(lf) = faults.lane_fault(step, set) {
                let stall =
                    tracer.charge_stall(&mut self.clock, set, lane_kind(lf.lane), lf.seconds);
                match lf.lane {
                    FaultLane::Cpu => stall_pred += stall,
                    FaultLane::Gpu => stall_solver += stall,
                }
            }
            for (k, c) in set_cases.clone().enumerate() {
                let mut x = vec![0.0; n];
                hetsolve_sparse::vecops::extract_case(&self.x_multi, r, k, &mut x);
                iter_sum += stats.case_iterations[k] as f64;
                res_sum += stats.initial_rel_res[k];
                if !self.cases[c].advance(
                    backend,
                    &x,
                    &ab_guesses[k],
                    faults.snapshot_fault(step, c),
                ) {
                    history_poisoned = true;
                }
                if detect {
                    if let Some(field) = scrub_state(&self.cases[c]) {
                        return Err(RunError::Corruption {
                            step,
                            case: Some(c),
                            target: CorruptTarget::State(field).label(),
                        });
                    }
                }
                if cfg.record_surface {
                    self.cases[c].record_waveform(&ctx.obs);
                }
            }
            // sync + exchange predictions/solutions between the processes
            self.clock.sync();
            let bytes = exchange_bytes(faults, step, set, 2.0 * (n * r) as f64 * 8.0);
            if bytes > 0.0 {
                let _ = tracer.charge_transfer(&mut self.clock, set, "exchange", bytes);
            }
        }
        if history_poisoned {
            self.adaptive.reset_window();
        }
        self.clock.sync();
        let xfer = 0.0; // transfers already charged inside the set loop
        if cfg.window == WindowPolicy::Adaptive {
            let decision =
                self.adaptive
                    .observe_logged(s_used.max(1), pred_t / 2.0, solver_t / 2.0);
            tracer.window_decision(step, self.clock.elapsed(), &decision);
        }
        tracer.iterations_counter(self.clock.elapsed(), iter_sum / n_cases as f64);
        self.records.push(StepRecord {
            step,
            step_time_per_case: (solver_t + stall_solver).max(pred_t + stall_pred) / n_cases as f64
                + 2.0 * (2.0 * (n * r) as f64 * 8.0 / cfg.node.module.link.bw) / n_cases as f64,
            solver_time_per_case: (solver_t + stall_solver) / n_cases as f64,
            predictor_time_per_case: (pred_t + stall_pred) / n_cases as f64,
            transfer_time: xfer,
            iterations: iter_sum / n_cases as f64,
            s_used,
            initial_rel_res: res_sum / n_cases as f64,
        });
        self.step += 1;
        tracer.step_completed(self.clock.elapsed());
        Ok(())
    }

    pub(crate) fn into_result(self, backend: &Backend, cfg: &RunConfig) -> RunResult {
        finish(
            backend,
            cfg,
            self.cases,
            self.records,
            self.clock,
            self.recoveries,
            self.corruptions,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    backend: &Backend,
    cfg: &RunConfig,
    cases: Vec<CaseSlot>,
    records: Vec<StepRecord>,
    clock: ModuleClock,
    recoveries: Vec<RecoveryEvent>,
    corruptions: Vec<CorruptionReport>,
) -> RunResult {
    let _ = backend;
    let n_cases = cases.len();
    let mut waveforms = Vec::new();
    let mut final_u = Vec::new();
    for case in cases {
        if cfg.record_surface {
            waveforms.push(case.waveform);
        }
        final_u.push(case.time.u);
    }
    RunResult {
        method: cfg.method,
        n_cases,
        records,
        energy: clock.report(),
        waveforms,
        final_u,
        recoveries,
        corruptions,
    }
}

/// Vector-pass costs (n-length streams).
fn vector_counts(n: usize, passes: f64) -> KernelCounts {
    KernelCounts {
        flops: passes * n as f64,
        bytes_stream: passes * 16.0 * n as f64,
        bytes_rand: 0.0,
        rand_transactions: 0.0,
        rhs_fused: 1,
    }
}

impl Backend {
    /// Threads used by non-pipelined methods: all CPU cores for @CPU,
    /// a service thread's worth for @GPU.
    fn problem_threads(&self, cfg: &RunConfig) -> usize {
        match cfg.method {
            MethodKind::CrsCgCpu => cfg.node.module.cpu.n_cores,
            _ => cfg.cpu_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fem::FemProblem;
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    fn small_backend() -> Backend {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        Backend::new(FemProblem::paper_like(&spec), true, false)
    }

    fn cfg(method: MethodKind, steps: usize) -> RunConfig {
        let mut c = RunConfig::new(method, single_gh200(), steps);
        c.r = 2;
        c.s_max = 6;
        c.load = RandomLoadSpec {
            n_sources: 4,
            impulses_per_source: 2.0,
            amplitude: 1e6,
            active_window: 0.2,
        };
        c.region_dofs = 300;
        c
    }

    #[test]
    fn all_methods_advance_and_record() {
        let b = small_backend();
        for method in [
            MethodKind::CrsCgCpu,
            MethodKind::CrsCgGpu,
            MethodKind::CrsCgCpuGpu,
            MethodKind::EbeMcgCpuGpu,
        ] {
            let r = run(&b, &cfg(method, 6)).expect("run");
            assert_eq!(r.records.len(), 6, "{method:?}");
            assert_eq!(r.n_cases, method.n_cases(2), "{method:?}");
            assert!(r.energy.energy > 0.0);
            assert!(r.records.iter().all(|s| s.step_time_per_case > 0.0));
            assert!(
                r.final_u.iter().any(|u| u.iter().any(|&x| x != 0.0)),
                "{method:?} static"
            );
        }
    }

    /// The paper's central accuracy claim: every method produces the same
    /// solution (to solver tolerance) for the same case.
    #[test]
    fn methods_agree_on_case_zero() {
        let b = small_backend();
        let steps = 8;
        let runs: Vec<RunResult> = [
            MethodKind::CrsCgCpu,
            MethodKind::CrsCgGpu,
            MethodKind::CrsCgCpuGpu,
            MethodKind::EbeMcgCpuGpu,
        ]
        .iter()
        .map(|&m| run(&b, &cfg(m, steps)).expect("run"))
        .collect();
        let reference = &runs[0].final_u[0];
        let scale = reference.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(scale > 0.0);
        for r in &runs[1..] {
            for (i, (&x, &y)) in r.final_u[0].iter().zip(reference).enumerate() {
                assert!(
                    (x - y).abs() < 1e-4 * scale,
                    "{:?} dof {i}: {x} vs {y}",
                    r.method
                );
            }
        }
    }

    #[test]
    fn data_driven_reduces_iterations() {
        let b = small_backend();
        let steps = 40;
        let base = run(&b, &cfg(MethodKind::CrsCgGpu, steps)).expect("run");
        let dd = run(&b, &cfg(MethodKind::CrsCgCpuGpu, steps)).expect("run");
        let from = steps / 2;
        let it_base = base.mean_iterations(from);
        let it_dd = dd.mean_iterations(from);
        assert!(
            it_dd < 0.8 * it_base,
            "data-driven {it_dd} vs Adams-Bashforth {it_base} iterations"
        );
    }

    #[test]
    fn ebe_mcg_is_fastest_and_most_efficient() {
        let b = small_backend();
        let steps = 16;
        let from = steps / 2;
        let cpu = run(&b, &cfg(MethodKind::CrsCgCpu, steps)).expect("run");
        let gpu = run(&b, &cfg(MethodKind::CrsCgGpu, steps)).expect("run");
        let ebe = run(&b, &cfg(MethodKind::EbeMcgCpuGpu, steps)).expect("run");
        let (t_cpu, t_gpu, t_ebe) = (
            cpu.mean_step_time(from),
            gpu.mean_step_time(from),
            ebe.mean_step_time(from),
        );
        assert!(t_gpu < t_cpu, "GPU {t_gpu} vs CPU {t_cpu}");
        assert!(t_ebe < t_gpu, "EBE-MCG {t_ebe} vs CRS-CG@GPU {t_gpu}");
        // energy-to-solution ordering (paper: 9944 J > 2163 J > 309 J)
        let (e_cpu, e_gpu, e_ebe) = (
            cpu.energy_per_step_per_case(),
            gpu.energy_per_step_per_case(),
            ebe.energy_per_step_per_case(),
        );
        assert!(e_gpu < e_cpu, "energy: GPU {e_gpu} vs CPU {e_cpu}");
        assert!(e_ebe < e_gpu, "energy: EBE {e_ebe} vs GPU {e_gpu}");
    }

    #[test]
    fn waveforms_recorded_when_requested() {
        let b = small_backend();
        let mut c = cfg(MethodKind::CrsCgGpu, 5);
        c.record_surface = true;
        let r = run(&b, &c).expect("run");
        assert_eq!(r.waveforms.len(), 1);
        assert_eq!(r.waveforms[0].len(), b.problem.surface_nodes.len());
        assert_eq!(r.waveforms[0][0].len(), 5);
    }

    #[test]
    fn summary_statistics() {
        let b = small_backend();
        let r = run(&b, &cfg(MethodKind::EbeMcgCpuGpu, 10)).expect("run");
        assert!(r.mean_step_time(0) > 0.0);
        assert!(r.mean_iterations(0) > 0.0);
        assert!(r.mean_solver_time(0) > 0.0);
        assert!(r.mean_predictor_time(0) >= 0.0);
        assert!(r.energy_per_step_per_case() > 0.0);
    }

    /// A CRS method on a matrix-free backend is a typed configuration
    /// error at driver entry, not a panic deep inside the RHS path.
    #[test]
    fn crs_method_without_crs_backend_is_a_typed_error() {
        let spec = GroundModelSpec::paper_like(2, 2, 2, InterfaceShape::Stratified);
        let no_crs = Backend::new(FemProblem::paper_like(&spec), false, false);
        for method in [
            MethodKind::CrsCgCpu,
            MethodKind::CrsCgGpu,
            MethodKind::CrsCgCpuGpu,
        ] {
            let err = run(&no_crs, &cfg(method, 3)).unwrap_err();
            match err {
                crate::recovery::RunError::Config { message } => {
                    assert!(message.contains("with_crs"), "{message}");
                }
                other => panic!("expected RunError::Config, got {other}"),
            }
        }
        // the matrix-free method still runs on the same backend
        run(&no_crs, &cfg(MethodKind::EbeMcgCpuGpu, 3)).expect("EBE run");
    }
}
