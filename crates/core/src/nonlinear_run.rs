//! Nonlinear time-history driver — the paper's motivated extension of the
//! matrix-free method (§2.2: EBE "enabl[es] the use of the proposed method
//! for solving nonlinear problems", §3: "the proposed method can be applied
//! to nonlinear problems (which is another advantage of the matrix-free
//! EBE-MCG@CPU-GPU over the CRS-based method)").
//!
//! Equivalent-linear (secant) iteration per time step: solve with the
//! current moduli, update the per-element secant shear modulus from the new
//! strain field, repeat until the moduli settle. With the matrix-free
//! operator the "reassembly" is a 2-slot write per element; the assembled
//! CRS baseline would pay a full global reassembly per secant pass — the
//! modeled cost gap is reported alongside the results.

use hetsolve_fem::{
    nonlinear::{refresh_counts_crs, refresh_counts_ebe},
    CompactEbe, CompactElements, HyperbolicModel, NonlinearState, RandomLoad, TimeState,
};
use hetsolve_machine::{ModuleClock, NodeSpec};
use hetsolve_obs::Json;
use hetsolve_predictor::AdamsState;
use hetsolve_sparse::{
    pcg, pcg_observed, BlockJacobi, CgConfig, LinearOperator, ResidualLog, SolveError, Termination,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::backend::{Backend, RhsScratch};
use crate::methods::{driver_cg_config, RunConfig};
use crate::recovery::{GuessSource, RecoveryEvent, RunError, ZERO_GUESS_ITER_FACTOR};
use crate::trace::StepTracer;

/// Per-step record of a nonlinear run.
#[derive(Debug, Clone, Copy)]
pub struct NonlinearStepRecord {
    pub step: usize,
    /// Secant passes needed this step.
    pub secant_iterations: usize,
    /// CG iterations summed over secant passes.
    pub cg_iterations: usize,
    /// Mean secant modulus ratio after the step (1 = linear).
    pub mean_ratio: f64,
    /// Peak displacement magnitude.
    pub peak_u: f64,
}

/// Result of a nonlinear run.
#[derive(Debug, Clone)]
pub struct NonlinearResult {
    pub records: Vec<NonlinearStepRecord>,
    pub final_u: Vec<f64>,
    /// Modeled time spent on operator refreshes with the matrix-free EBE
    /// path (s, on the config's GPU).
    pub refresh_time_ebe: f64,
    /// Modeled time the CRS path would have spent reassembling (s).
    pub refresh_time_crs_equiv: f64,
    /// Solver recoveries over the whole run (secant passes whose first CG
    /// attempt failed and succeeded only after the zero-guess retry).
    pub recoveries: Vec<RecoveryEvent>,
}

/// Run a single-case nonlinear time history with the matrix-free operator.
///
/// `secant_tol` is the modulus-ratio change below which the per-step
/// secant loop stops (at most `max_secant` passes).
pub fn run_nonlinear(
    backend: &Backend,
    cfg: &RunConfig,
    model: &HyperbolicModel,
    secant_tol: f64,
    max_secant: usize,
) -> Result<NonlinearResult, RunError> {
    run_nonlinear_traced(
        backend,
        cfg,
        model,
        secant_tol,
        max_secant,
        &mut StepTracer::disabled(),
    )
}

/// [`run_nonlinear`] with observability: every secant pass's CG solve runs
/// under a [`ResidualLog`] observer (residual decay, termination cause) and
/// the per-pass convergence evidence lands in the tracer's metrics sink
/// under the `nonlinear_convergence` section; operator refreshes become
/// labeled GPU spans.
pub fn run_nonlinear_traced(
    backend: &Backend,
    cfg: &RunConfig,
    model: &HyperbolicModel,
    secant_tol: f64,
    max_secant: usize,
    tracer: &mut StepTracer,
) -> Result<NonlinearResult, RunError> {
    let n = backend.n_dofs();
    let mesh = &backend.problem.model.mesh;
    let a = backend.problem.a_coeffs();
    // local mutable copy of the compact data: the nonlinear state rewrites
    // the moduli slots in place
    let mut compact: CompactElements = backend.compact.clone();
    let mut state = NonlinearState::from_compact(&compact);

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let load = RandomLoad::generate(
        &cfg.load,
        &backend.problem.surface_nodes,
        cfg.n_steps,
        &mut rng,
    );
    let mut time = TimeState::zeros(n);
    let mut adams = AdamsState::new();
    let mut scratch = RhsScratch::new(n);
    let mut f = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut guess = vec![0.0; n];
    let cg_cfg = driver_cg_config(cfg.tol);
    let mut records = Vec::with_capacity(cfg.n_steps);
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut clock = ModuleClock::new(node_of(cfg).module, cfg.cpu_threads, false);
    tracer.begin_run("EBE nonlinear (secant)", cfg, 1);
    tracer.attach_clock(&mut clock);
    let mut convergence_rows: Vec<Json> = Vec::new();
    let mut refresh_time_ebe = 0.0;
    let mut refresh_time_crs = 0.0;
    let nnzb = backend
        .crs_a
        .as_ref()
        .map(|m| m.nnz_blocks())
        .unwrap_or(27 * mesh.n_nodes());

    for step in 0..cfg.n_steps {
        load.force_into(step, &mut f);
        backend.problem.mask.project(&mut f);
        adams.predict(&time.u, backend.problem.newmark.dt, &mut guess);
        backend.problem.mask.project(&mut guess);

        // NOTE: the RHS uses the *current* secant moduli (consistent with
        // the system operator); it is refreshed inside the secant loop.
        let mut secant_iterations = 0;
        let mut cg_total = 0;
        let mut x = guess.clone();
        loop {
            let op = CompactEbe::new(
                backend.problem.n_nodes(),
                &mesh.elems,
                &compact,
                &backend.problem.dashpots.faces,
                &backend.problem.dashpots.cb,
                (a.c_m, a.c_k, a.c_b),
                &backend.fixed,
                &backend.coloring,
                backend.parallel,
                1,
            );
            // matrix-free RHS with current moduli
            {
                let nm = &backend.problem.newmark;
                nm.rhs_aux(
                    &time.u,
                    &time.v,
                    &time.a,
                    &mut scratch.m_aux,
                    &mut scratch.c_aux,
                );
                let c = backend.problem.c_coeffs();
                let op_m = CompactEbe::new(
                    backend.problem.n_nodes(),
                    &mesh.elems,
                    &compact,
                    &backend.problem.dashpots.faces,
                    &backend.problem.dashpots.cb,
                    (1.0, 0.0, 0.0),
                    &[],
                    &backend.coloring,
                    backend.parallel,
                    1,
                );
                let op_c = CompactEbe::new(
                    backend.problem.n_nodes(),
                    &mesh.elems,
                    &compact,
                    &backend.problem.dashpots.faces,
                    &backend.problem.dashpots.cb,
                    (c.c_m, c.c_k, c.c_b),
                    &[],
                    &backend.coloring,
                    backend.parallel,
                    1,
                );
                op_m.apply(&scratch.m_aux, &mut scratch.t1);
                op_c.apply(&scratch.c_aux, &mut scratch.t2);
                for i in 0..n {
                    rhs[i] = f[i] + scratch.t1[i] + scratch.t2[i];
                }
                backend.problem.mask.project(&mut rhs);
            }
            let precond = BlockJacobi::from_blocks(&op.diagonal_blocks(), backend.parallel);
            x.copy_from_slice(&guess);
            let stats = if tracer.is_enabled() {
                let mut rlog = ResidualLog::new();
                let stats = pcg_observed(&op, &precond, &rhs, &mut x, &cg_cfg, &mut rlog);
                convergence_rows.push(Json::obj([
                    ("step", Json::from(step)),
                    ("secant_pass", Json::from(secant_iterations)),
                    ("iterations", Json::from(rlog.iterations)),
                    (
                        "termination",
                        Json::from(rlog.termination.unwrap_or(Termination::Converged).label()),
                    ),
                    (
                        "initial_rel_res",
                        Json::Num(rlog.history.first().map_or(f64::NAN, |h| h[0])),
                    ),
                    (
                        "final_rel_res",
                        Json::Num(rlog.history.last().map_or(f64::NAN, |h| h[0])),
                    ),
                ]));
                stats
            } else {
                pcg(&op, &precond, &rhs, &mut x, &cg_cfg)
            };
            cg_total += stats.iterations;
            if !stats.converged {
                // recovery: restart from zero with a raised iteration cap
                // (a hard modulus update can leave the secant guess far
                // outside the new operator's convergence basin)
                x.fill(0.0);
                let retry_cfg = CgConfig {
                    max_iter: cg_cfg.max_iter.saturating_mul(ZERO_GUESS_ITER_FACTOR),
                    ..cg_cfg
                };
                let retry = pcg(&op, &precond, &rhs, &mut x, &retry_cfg);
                cg_total += retry.iterations;
                if !retry.converged {
                    return Err(SolveError {
                        step,
                        case: None,
                        termination: retry.termination,
                        rel_res: retry.final_rel_res,
                        iterations: stats.iterations + retry.iterations,
                        attempts: 2,
                    }
                    .into());
                }
                recoveries.push(RecoveryEvent {
                    step,
                    case: None,
                    set: 0,
                    failed: stats.termination,
                    recovered_with: GuessSource::Zero,
                    attempts: 2,
                });
            }
            secant_iterations += 1;
            drop(precond);
            drop(op);

            let change = state.update(&mut compact, mesh, &x, model);
            refresh_time_ebe += tracer.charge_gpu(
                &mut clock,
                0,
                "EBE modulus refresh",
                &refresh_counts_ebe(compact.n_elems),
                &[("secant_pass", Json::from(secant_iterations))],
            );
            refresh_time_crs += hetsolve_machine::kernel_time(
                &node_of(cfg).module.gpu,
                &refresh_counts_crs(compact.n_elems, nnzb),
                &hetsolve_machine::ExecCtx::default(),
            );
            if change < secant_tol || secant_iterations >= max_secant {
                break;
            }
        }

        let u_old = std::mem::replace(&mut time.u, x.clone());
        backend
            .problem
            .newmark
            .advance(&time.u, &u_old, &mut time.v, &mut time.a);
        adams.push(&time.v);
        time.step += 1;

        let peak_u = time.u.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        records.push(NonlinearStepRecord {
            step,
            secant_iterations,
            cg_iterations: cg_total,
            mean_ratio: state.mean_ratio(),
            peak_u,
        });
    }

    if tracer.is_enabled() {
        tracer
            .sink
            .set_section("nonlinear_convergence", Json::Arr(convergence_rows));
    }
    Ok(NonlinearResult {
        records,
        final_u: time.u,
        refresh_time_ebe,
        refresh_time_crs_equiv: refresh_time_crs,
        recoveries,
    })
}

fn node_of(cfg: &RunConfig) -> NodeSpec {
    cfg.node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use hetsolve_fem::{FemProblem, RandomLoadSpec};
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    fn setup() -> (Backend, RunConfig) {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), false, false);
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 14);
        cfg.load = RandomLoadSpec {
            n_sources: 6,
            impulses_per_source: 2.0,
            amplitude: 5e8, // strong shaking to trigger nonlinearity
            active_window: 0.3,
        };
        (backend, cfg)
    }

    #[test]
    fn strong_shaking_softens_the_ground() {
        let (backend, cfg) = setup();
        let model = HyperbolicModel::new(1e-4, 0.05);
        let res = run_nonlinear(&backend, &cfg, &model, 1e-3, 3).expect("nonlinear");
        assert_eq!(res.records.len(), cfg.n_steps);
        let min_ratio = res
            .records
            .iter()
            .map(|r| r.mean_ratio)
            .fold(1.0f64, f64::min);
        assert!(
            min_ratio < 0.999,
            "no softening happened (min ratio {min_ratio})"
        );
        // secant loop actually iterated somewhere
        assert!(res.records.iter().any(|r| r.secant_iterations > 1));
    }

    #[test]
    fn weak_shaking_stays_essentially_linear() {
        let (backend, mut cfg) = setup();
        cfg.load.amplitude = 1.0; // negligible forcing
        let model = HyperbolicModel::new(1e-4, 0.05);
        let res = run_nonlinear(&backend, &cfg, &model, 1e-6, 3).expect("nonlinear");
        let min_ratio = res
            .records
            .iter()
            .map(|r| r.mean_ratio)
            .fold(1.0f64, f64::min);
        assert!(min_ratio > 0.999, "spurious softening: {min_ratio}");
    }

    #[test]
    fn nonlinear_response_differs_from_linear() {
        let (backend, cfg) = setup();
        let strong = HyperbolicModel::new(1e-4, 0.05);
        // gamma_ref so large the model never leaves the linear branch
        let linearish = HyperbolicModel::new(1e6, 0.05);
        let r1 = run_nonlinear(&backend, &cfg, &strong, 1e-3, 3).expect("nonlinear");
        let r2 = run_nonlinear(&backend, &cfg, &linearish, 1e-3, 3).expect("nonlinear");
        let d: f64 = r1
            .final_u
            .iter()
            .zip(&r2.final_u)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let scale = r2.final_u.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(
            d > 1e-6 * scale,
            "nonlinearity had no effect (max diff {d}, scale {scale})"
        );
    }

    #[test]
    fn traced_nonlinear_logs_convergence_and_matches_untraced() {
        let (backend, mut cfg) = setup();
        cfg.n_steps = 4;
        let model = HyperbolicModel::new(1e-4, 0.05);
        let plain = run_nonlinear(&backend, &cfg, &model, 1e-3, 3).expect("nonlinear");
        let mut tracer = StepTracer::new();
        let traced =
            run_nonlinear_traced(&backend, &cfg, &model, 1e-3, 3, &mut tracer).expect("nonlinear");
        // the ResidualLog observer must not perturb the numerics
        assert_eq!(plain.final_u, traced.final_u);
        assert_eq!(
            plain.records.iter().map(|r| r.cg_iterations).sum::<usize>(),
            traced
                .records
                .iter()
                .map(|r| r.cg_iterations)
                .sum::<usize>(),
        );
        // one convergence row per secant pass, all converged
        let doc = tracer.sink.to_json();
        let rows = doc
            .get("sections")
            .unwrap()
            .get("nonlinear_convergence")
            .unwrap()
            .items();
        let passes: usize = traced.records.iter().map(|r| r.secant_iterations).sum();
        assert_eq!(rows.len(), passes);
        for row in rows {
            assert_eq!(row.get("termination").unwrap().as_str(), Some("converged"));
            let first = row.get("initial_rel_res").unwrap().as_f64().unwrap();
            let last = row.get("final_rel_res").unwrap().as_f64().unwrap();
            assert!(last <= first);
            assert!(last < cfg.tol);
        }
        // refresh charges became labeled GPU spans
        assert!(tracer
            .trace
            .events()
            .iter()
            .any(|e| e.name == "EBE modulus refresh"));
    }

    #[test]
    fn matrix_free_refresh_is_far_cheaper_than_reassembly() {
        let (backend, cfg) = setup();
        let model = HyperbolicModel::new(1e-4, 0.05);
        let res = run_nonlinear(&backend, &cfg, &model, 1e-3, 2).expect("nonlinear");
        assert!(
            res.refresh_time_crs_equiv > 10.0 * res.refresh_time_ebe,
            "CRS reassembly {} s vs EBE refresh {} s",
            res.refresh_time_crs_equiv,
            res.refresh_time_ebe
        );
    }
}
