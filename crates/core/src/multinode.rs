//! Multi-node (partitioned) execution — the paper's Fig. 2 scheme.
//!
//! The mesh is graph-partitioned; each partition applies its local
//! matrix-free EBE operator and the shared (interface) nodal values are
//! summed across partitions every operator application — in the paper via
//! GPUDirect MPI, here via [`hetsolve_mesh::halo_sum`]. The result is
//! bitwise the work distribution of a distributed run while remaining
//! exactly consistent with the sequential operator (verified by tests),
//! which is what the paper means by "the computation becomes consistent
//! with a single CPU-GPU case".

use hetsolve_fem::{CompactEbe, CompactElements, FemProblem};
use hetsolve_mesh::{build_partition, color_elements, partition_rcb, Coloring, Partition, SubMesh};
use hetsolve_obs::Json;
use hetsolve_sparse::{KernelCounts, LinearOperator};

/// Partition-quality numbers for the bench snapshot: how well the RCB
/// decomposition balanced the work and how much halo it must exchange.
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    pub n_parts: usize,
    /// Owned elements of each part.
    pub elems_per_part: Vec<usize>,
    /// `max(elems) / mean(elems)` — 1.0 is a perfect balance.
    pub element_imbalance: f64,
    /// Worst-partition halo bytes per operator application at `r` = 1.
    pub max_halo_bytes: f64,
    /// Halo nodes summed over parts (shared nodes counted per sharer).
    pub total_halo_nodes: usize,
}

impl PartitionMetrics {
    /// JSON row for a `MetricsSink` section.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n_parts", Json::from(self.n_parts)),
            (
                "elems_per_part",
                Json::Arr(self.elems_per_part.iter().map(|&e| Json::from(e)).collect()),
            ),
            ("element_imbalance", Json::Num(self.element_imbalance)),
            ("max_halo_bytes", Json::Num(self.max_halo_bytes)),
            ("total_halo_nodes", Json::from(self.total_halo_nodes)),
        ])
    }
}

/// Everything one partition needs to apply its local operator.
pub struct LocalPart {
    pub sub: SubMesh,
    pub compact: CompactElements,
    pub coloring: Coloring,
    /// Local dashpot faces (in local node ids) + packed matrices.
    pub faces: Vec<[u32; 6]>,
    pub cb: Vec<f64>,
    /// Local Dirichlet mask.
    pub fixed: Vec<bool>,
}

/// A partitioned problem ready for distributed application.
pub struct PartitionedProblem {
    pub parts: Vec<LocalPart>,
    pub partition: Partition,
    pub n_global_nodes: usize,
    /// Global Dirichlet mask.
    pub fixed_global: Vec<bool>,
    /// Operator coefficients `(c_m, c_k, c_b)`.
    pub coeffs: (f64, f64, f64),
    pub parallel: bool,
}

impl PartitionedProblem {
    /// Partition a built problem into `n_parts` RCB parts and set up local
    /// operators for the Newmark system matrix.
    pub fn new(problem: &FemProblem, n_parts: usize, parallel: bool) -> Self {
        let mesh = &problem.model.mesh;
        let elem_part = partition_rcb(mesh, n_parts);
        let partition = build_partition(mesh, &elem_part, n_parts);
        let a = problem.a_coeffs();
        let fixed_global: Vec<bool> = problem.mask.as_slice().to_vec();

        let parts = partition
            .parts
            .iter()
            .map(|sub| {
                let compact = CompactElements::compute(&sub.mesh, &problem.materials);
                let coloring = color_elements(&sub.mesh);
                // map global dashpot faces owned by this part's elements
                let g2l: std::collections::HashMap<u32, u32> = sub
                    .l2g
                    .iter()
                    .enumerate()
                    .map(|(l, &g)| (g, l as u32))
                    .collect();
                let in_part: std::collections::HashSet<u32> =
                    sub.global_elems.iter().copied().collect();
                let mut faces = Vec::new();
                let mut cb = Vec::new();
                for (f, fb) in problem.boundary.faces.iter().enumerate() {
                    let _ = f;
                    if fb.kind != hetsolve_mesh::BoundaryKind::Side || !in_part.contains(&fb.elem) {
                        continue;
                    }
                    // find this face in the dashpot store by connectivity
                    // (dashpots were built in boundary order over Side faces)
                    let mut local = [0u32; 6];
                    for (k, &g) in fb.nodes.iter().enumerate() {
                        local[k] = g2l[&g];
                    }
                    faces.push(local);
                    // locate matching stored matrix
                    let idx = problem
                        .dashpots
                        .faces
                        .iter()
                        .position(|fc| *fc == fb.nodes)
                        // PANIC-OK: boundary faces are enumerated from the
                        // same mesh the dashpot store was built from, so
                        // every Side face has a stored matrix by construction.
                        .expect("dashpot store mismatch");
                    cb.extend_from_slice(problem.dashpots.cb_of(idx));
                }
                let fg = &fixed_global;
                let fixed: Vec<bool> = sub
                    .l2g
                    .iter()
                    .flat_map(|&g| (0..3).map(move |d| fg[3 * g as usize + d]))
                    .collect();
                let sub = sub.clone();
                LocalPart {
                    sub,
                    compact,
                    coloring,
                    faces,
                    cb,
                    fixed,
                }
            })
            .collect();

        PartitionedProblem {
            parts,
            partition,
            n_global_nodes: mesh.n_nodes(),
            fixed_global,
            coeffs: (a.c_m, a.c_k, a.c_b),
            parallel,
        }
    }

    fn local_op<'a>(&'a self, p: &'a LocalPart) -> CompactEbe<'a> {
        CompactEbe::new(
            p.sub.mesh.n_nodes(),
            &p.sub.mesh.elems,
            &p.compact,
            &p.faces,
            &p.cb,
            self.coeffs,
            &p.fixed,
            &p.coloring,
            self.parallel,
            1,
        )
        .without_fixed_identity()
    }

    /// Distributed apply on a *global* vector: scatter to locals, apply the
    /// local operators, halo-sum the shared nodes, gather back, then apply
    /// the Dirichlet identity once. Numerically identical to the global
    /// operator (tests check to rounding).
    pub fn apply_global(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), 3 * self.n_global_nodes);
        let mut locals: Vec<Vec<f64>> = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            let nl = p.sub.mesh.n_nodes();
            let mut xl = vec![0.0; 3 * nl];
            for (l, &g) in p.sub.l2g.iter().enumerate() {
                for d in 0..3 {
                    xl[3 * l + d] = x[3 * g as usize + d];
                }
            }
            let mut yl = vec![0.0; 3 * nl];
            self.local_op(p).apply(&xl, &mut yl);
            locals.push(yl);
        }
        hetsolve_mesh::halo_sum(&self.partition.parts, &mut locals, 3);
        y.fill(0.0);
        for (p, yl) in self.parts.iter().zip(&locals) {
            for (l, &g) in p.sub.l2g.iter().enumerate() {
                if p.sub.owned[l] {
                    for d in 0..3 {
                        y[3 * g as usize + d] = yl[3 * l + d];
                    }
                }
            }
        }
        for (i, &f) in self.fixed_global.iter().enumerate() {
            if f {
                y[i] = x[i];
            }
        }
    }

    /// Worst-partition halo bytes exchanged per operator application for
    /// `r` fused cases — the input of the weak-scaling model (Fig. 5).
    pub fn max_halo_bytes(&self, r: usize) -> f64 {
        self.parts
            .iter()
            .map(|p| (p.sub.halo_size() * 3 * 8 * r) as f64)
            .fold(0.0, f64::max)
    }

    /// Partition-quality metrics for the bench snapshot.
    pub fn metrics(&self) -> PartitionMetrics {
        let elems_per_part: Vec<usize> = self.parts.iter().map(|p| p.sub.mesh.n_elems()).collect();
        let mean = elems_per_part.iter().sum::<usize>() as f64 / elems_per_part.len().max(1) as f64;
        let max = elems_per_part.iter().copied().max().unwrap_or(0) as f64;
        PartitionMetrics {
            n_parts: self.parts.len(),
            element_imbalance: if mean > 0.0 { max / mean } else { 1.0 },
            max_halo_bytes: self.max_halo_bytes(1),
            total_halo_nodes: self.parts.iter().map(|p| p.sub.halo_size()).sum(),
            elems_per_part,
        }
    }

    /// Per-part neighbour byte lists for the cluster model.
    pub fn halo_pattern(&self, part: usize, r: usize) -> hetsolve_machine::HaloPattern {
        let p = &self.parts[part];
        hetsolve_machine::HaloPattern {
            neighbor_bytes: p
                .sub
                .neighbors
                .iter()
                .map(|(_, pairs)| (pairs.len() * 3 * 8 * r) as f64)
                .collect(),
        }
    }
}

/// Global-vector wrapper implementing [`LinearOperator`] so the existing CG
/// drives the distributed operator unchanged.
pub struct DistributedOperator<'a> {
    pub problem: &'a PartitionedProblem,
}

impl LinearOperator for DistributedOperator<'_> {
    fn n(&self) -> usize {
        3 * self.problem.n_global_nodes
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.problem.apply_global(x, y);
    }

    fn counts(&self) -> KernelCounts {
        // same arithmetic as the sequential operator; communication is
        // charged by the cluster model, not here.
        let ne: usize = self
            .problem
            .parts
            .iter()
            .map(|p| p.sub.mesh.n_elems())
            .sum();
        let nf: usize = self.problem.parts.iter().map(|p| p.faces.len()).sum();
        hetsolve_fem::compact_ebe_counts(ne, nf, self.n(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};
    use hetsolve_sparse::{pcg, CgConfig};

    fn problem() -> FemProblem {
        FemProblem::paper_like(&GroundModelSpec::paper_like(
            4,
            3,
            2,
            InterfaceShape::Inclined,
        ))
    }

    #[test]
    fn distributed_apply_matches_sequential() {
        let prob = problem();
        let backend = Backend::new(prob.clone(), false, false);
        for np in [2usize, 3, 5] {
            let part = PartitionedProblem::new(&backend.problem, np, false);
            let n = backend.n_dofs();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.177).sin()).collect();
            let mut y_seq = vec![0.0; n];
            let mut y_dist = vec![0.0; n];
            backend.ebe_a(1).apply(&x, &mut y_seq);
            part.apply_global(&x, &mut y_dist);
            let scale = y_seq.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
            for i in 0..n {
                assert!(
                    (y_dist[i] - y_seq[i]).abs() < 1e-9 * scale,
                    "np={np} dof {i}: {} vs {}",
                    y_dist[i],
                    y_seq[i]
                );
            }
        }
    }

    #[test]
    fn distributed_cg_matches_sequential_cg() {
        let prob = problem();
        let backend = Backend::new(prob.clone(), false, false);
        let part = PartitionedProblem::new(&backend.problem, 4, false);
        let dist = DistributedOperator { problem: &part };
        let n = backend.n_dofs();
        let mut f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).cos()).collect();
        backend.problem.mask.project(&mut f);
        let cfg = CgConfig {
            tol: 1e-10,
            max_iter: 3000,
            ..CgConfig::default()
        };
        let mut x1 = vec![0.0; n];
        let s1 = pcg(&backend.ebe_a(1), &backend.precond, &f, &mut x1, &cfg);
        let mut x2 = vec![0.0; n];
        let s2 = pcg(&dist, &backend.precond, &f, &mut x2, &cfg);
        assert!(s1.converged && s2.converged);
        // identical operator => near-identical iterations & solutions
        assert!((s1.iterations as i64 - s2.iterations as i64).abs() <= 1);
        let scale = x1.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-6 * scale, "dof {i}");
        }
    }

    #[test]
    fn halo_sizes_reported() {
        let prob = problem();
        let part = PartitionedProblem::new(&prob, 3, false);
        assert!(part.max_halo_bytes(4) > 0.0);
        for p in 0..3 {
            let pat = part.halo_pattern(p, 1);
            assert!(!pat.neighbor_bytes.is_empty());
        }
        // r scales bytes linearly
        assert!((part.max_halo_bytes(4) / part.max_halo_bytes(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn partition_metrics_are_consistent() {
        let prob = problem();
        let part = PartitionedProblem::new(&prob, 3, false);
        let m = part.metrics();
        assert_eq!(m.n_parts, 3);
        assert_eq!(m.elems_per_part.len(), 3);
        assert_eq!(
            m.elems_per_part.iter().sum::<usize>(),
            prob.model.mesh.n_elems()
        );
        assert!(m.element_imbalance >= 1.0);
        assert_eq!(m.max_halo_bytes, part.max_halo_bytes(1));
        assert!(m.total_halo_nodes > 0);
        // the JSON row round-trips through the hand-rolled parser
        let text = m.to_json().to_string_pretty();
        let v = hetsolve_obs::parse_json(&text).unwrap();
        assert_eq!(v.get("n_parts").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("elems_per_part").unwrap().items().len(), 3);
    }

    #[test]
    fn dashpot_faces_are_distributed_completely() {
        let prob = problem();
        let part = PartitionedProblem::new(&prob, 4, false);
        let total: usize = part.parts.iter().map(|p| p.faces.len()).sum();
        assert_eq!(total, prob.dashpots.n_faces());
    }
}
