//! Summaries and table formatting shared by the benchmark harnesses.

use hetsolve_machine::MemUsage;

use crate::methods::{MethodKind, RunResult};

/// One row of a Table-3/4-style application comparison.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    pub method: MethodKind,
    pub mem: MemUsage,
    /// Mean per-step wall time per case (s).
    pub step_time: f64,
    pub solver_time: f64,
    pub predictor_time: f64,
    pub iterations: f64,
    /// Relative speedup vs. a baseline (filled by the caller).
    pub speedup: f64,
    /// Time-averaged module power (W) and GPU share.
    pub module_power: f64,
    /// Energy per time step per case (J).
    pub energy_per_step: f64,
}

impl MethodSummary {
    /// Build from a run over the measurement window `[from, ..)`.
    pub fn from_run(result: &RunResult, mem: MemUsage, from: usize) -> Self {
        MethodSummary {
            method: result.method,
            mem,
            step_time: result.mean_step_time(from),
            solver_time: result.mean_solver_time(from),
            predictor_time: result.mean_predictor_time(from),
            iterations: result.mean_iterations(from),
            speedup: 1.0,
            module_power: result.energy.avg_power,
            energy_per_step: result.energy_per_step_per_case(),
        }
    }
}

/// Fill the `speedup` column relative to the first row.
pub fn apply_speedups(rows: &mut [MethodSummary]) {
    if let Some(base) = rows.first().map(|r| r.step_time) {
        for r in rows.iter_mut() {
            r.speedup = base / r.step_time;
        }
    }
}

/// Render rows in the layout of the paper's Tables 3/4.
pub fn format_application_table(rows: &[MethodSummary]) -> String {
    let mut s = String::new();
    s.push_str(
        "method            | CPU mem   | GPU mem   | step/case    | solver       | predictor    | iters  | speedup | power   | energy/step/case\n",
    );
    s.push_str(
        "------------------+-----------+-----------+--------------+--------------+--------------+--------+---------+---------+-----------------\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<17} | {:>6.1} GB | {:>6.1} GB | {:>9.3} ms | {:>9.3} ms | {:>9.3} ms | {:>6.1} | {:>6.1}x | {:>5.0} W | {:>11.2} mJ\n",
            r.method.label(),
            r.mem.cpu as f64 / 1e9,
            r.mem.gpu as f64 / 1e9,
            r.step_time * 1e3,
            r.solver_time * 1e3,
            r.predictor_time * 1e3,
            r.iterations,
            r.speedup,
            r.module_power,
            r.energy_per_step * 1e3,
        ));
    }
    s
}

/// Simple aligned CSV writer for figure series.
pub fn format_series(headers: &[&str], rows: &[Vec<f64>]) -> String {
    let mut s = headers.join(",");
    s.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        s.push_str(&line.join(","));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(method: MethodKind, t: f64) -> MethodSummary {
        MethodSummary {
            method,
            mem: MemUsage {
                cpu: 56_900_000_000,
                gpu: 0,
            },
            step_time: t,
            solver_time: t * 0.98,
            predictor_time: 0.0,
            iterations: 152.0,
            speedup: 1.0,
            module_power: 327.0,
            energy_per_step: t * 327.0,
        }
    }

    #[test]
    fn speedups_relative_to_first() {
        let mut rows = vec![
            dummy(MethodKind::CrsCgCpu, 30.4),
            dummy(MethodKind::CrsCgGpu, 3.05),
        ];
        apply_speedups(&mut rows);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!((rows[1].speedup - 30.4 / 3.05).abs() < 1e-9);
    }

    #[test]
    fn table_contains_labels() {
        let mut rows = vec![
            dummy(MethodKind::CrsCgCpu, 30.4),
            dummy(MethodKind::CrsCgGpu, 3.05),
        ];
        apply_speedups(&mut rows);
        let t = format_application_table(&rows);
        assert!(t.contains("CRS-CG@CPU"));
        assert!(t.contains("CRS-CG@GPU"));
        assert!(t.contains("56.9 GB"));
    }

    #[test]
    fn series_csv() {
        let s = format_series(&["step", "time"], &[vec![1.0, 0.5], vec![2.0, 0.25]]);
        assert!(s.starts_with("step,time\n"));
        assert_eq!(s.lines().count(), 3);
    }
}
