//! Real-thread heterogeneous pipelining.
//!
//! The rest of the crate charges the paper's CPU/GPU overlap to a *modeled*
//! timeline. This module executes the same Algorithm-3 ping-pong with two
//! actual OS threads — a "solver device" thread (the GPU stand-in) and a
//! "predictor device" thread — so the overlap is real wall-clock on a
//! multi-core host:
//!
//! ```text
//! step it:   phase 1: [solver: set B]  ||  [predictor: set A]
//!            barrier + exchange
//!            phase 2: [solver: set A]  ||  [predictor: set B (step it+1)]
//! ```
//!
//! Numerics are identical to [`crate::methods::run`] with
//! `EBE-MCG@CPU-GPU` (verified by tests); only the execution medium
//! differs.

use hetsolve_fault::{FaultInjector, NoopFaults, VectorFault};
use hetsolve_fem::{RandomLoad, TimeState};
use hetsolve_machine::{SystemClock, WallClock};
use hetsolve_predictor::{AdamsState, DataDrivenPredictor};
use hetsolve_sparse::vecops::{extract_case, insert_case};
use hetsolve_sparse::{CgConfig, SolveError};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::backend::{Backend, RhsScratch};
use crate::methods::{driver_cg_config, RunConfig};
use crate::recovery::{solve_set_with_ladder, RecoveryEvent, RunError};
use crate::trace::{StepTracer, TID_CPU, TID_GPU};

/// Wall-clock accounting of the real pipelined run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealtimeReport {
    /// Total wall time (s).
    pub wall: f64,
    /// Wall time spent inside solver phases (sum over phases).
    pub solver_busy: f64,
    /// Wall time spent inside predictor phases.
    pub predictor_busy: f64,
    /// `(solver_busy + predictor_busy) / wall` — >1 means the two device
    /// threads genuinely overlapped.
    pub overlap_factor: f64,
    pub steps: usize,
    /// Recovery-ladder successes over the whole run (0 unless faults were
    /// injected or a solve genuinely struggled).
    pub recoveries: usize,
}

/// Per-phase fault descriptors, resolved on the main thread so the solver
/// thread never touches the (non-`Sync`) injector.
struct PhaseFaults {
    guess: Vec<Option<VectorFault>>,
    snapshot: Vec<Option<VectorFault>>,
    first_cfg: CgConfig,
}

impl PhaseFaults {
    fn resolve<F: FaultInjector>(
        faults: &mut F,
        step: usize,
        set: usize,
        case_base: usize,
        r: usize,
        cg_cfg: &CgConfig,
    ) -> Self {
        let first_cfg = match faults.solver_fault(step, set) {
            Some(sf) => CgConfig {
                max_iter: sf.max_iter.min(cg_cfg.max_iter),
                ..*cg_cfg
            },
            None => *cg_cfg,
        };
        PhaseFaults {
            guess: (0..r)
                .map(|c| faults.guess_fault(step, case_base + c))
                .collect(),
            snapshot: (0..r)
                .map(|c| faults.snapshot_fault(step, case_base + c))
                .collect(),
            first_cfg,
        }
    }
}

/// One pipelined set: its cases' state.
struct SetState {
    time: Vec<TimeState>,
    loads: Vec<RandomLoad>,
    adams: Vec<AdamsState>,
    dd: Vec<DataDrivenPredictor>,
    /// Prepared initial guesses for the *next* solve of this set.
    guesses: Vec<Vec<f64>>,
    ab_guesses: Vec<Vec<f64>>,
    rhs: Vec<Vec<f64>>,
}

impl SetState {
    fn new(backend: &Backend, cfg: &RunConfig, case_base: usize) -> Self {
        let n = backend.n_dofs();
        let r = cfg.r;
        let mut loads = Vec::with_capacity(r);
        for c in 0..r {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + (case_base + c) as u64);
            loads.push(RandomLoad::generate(
                &cfg.load,
                &backend.problem.surface_nodes,
                cfg.n_steps,
                &mut rng,
            ));
        }
        SetState {
            time: (0..r).map(|_| TimeState::zeros(n)).collect(),
            loads,
            adams: (0..r).map(|_| AdamsState::new()).collect(),
            dd: (0..r)
                .map(|_| DataDrivenPredictor::new(n, cfg.region_dofs.max(3), cfg.s_max.max(1)))
                .collect(),
            guesses: vec![vec![0.0; n]; r],
            ab_guesses: vec![vec![0.0; n]; r],
            rhs: vec![vec![0.0; n]; r],
        }
    }

    /// Predictor phase for step `it`: build RHS + initial guesses.
    fn predict(&mut self, backend: &Backend, it: usize, s: usize) {
        let n = backend.n_dofs();
        let dt = backend.problem.newmark.dt;
        let mut scratch = RhsScratch::new(n);
        let mut f = vec![0.0; n];
        for c in 0..self.time.len() {
            self.loads[c].force_into(it, &mut f);
            backend.problem.mask.project(&mut f);
            let t = &self.time[c];
            backend.newmark_rhs(&f, &t.u, &t.v, &t.a, &mut self.rhs[c], &mut scratch);
            self.adams[c].predict(&t.u, dt, &mut self.ab_guesses[c]);
            backend.problem.mask.project(&mut self.ab_guesses[c]);
            self.guesses[c].copy_from_slice(&self.ab_guesses[c]);
            let mut corr = vec![0.0; n];
            if s >= 1 && self.dd[c].predict(s, &mut corr) {
                for (g, co) in self.guesses[c].iter_mut().zip(&corr) {
                    *g += co;
                }
                backend.problem.mask.project(&mut self.guesses[c]);
            }
        }
    }

    /// Solver phase for step `it`: fused MCG solve (with recovery ladder) +
    /// state advance. Returns total CG iterations over the set plus any
    /// recovery events.
    fn solve(
        &mut self,
        backend: &Backend,
        cfg: &RunConfig,
        step: usize,
        set: usize,
        ph: &PhaseFaults,
    ) -> Result<(usize, Vec<RecoveryEvent>), SolveError> {
        let n = backend.n_dofs();
        let r = cfg.r;
        let op = backend.ebe_a(r);
        let mut f_multi = vec![0.0; n * r];
        let mut x_multi = vec![0.0; n * r];
        for c in 0..r {
            if let Some(vf) = ph.guess[c] {
                vf.apply(&mut self.guesses[c]);
            }
            insert_case(&mut f_multi, r, c, &self.rhs[c]);
            insert_case(&mut x_multi, r, c, &self.guesses[c]);
        }
        let cg_cfg = driver_cg_config(cfg.tol);
        let mut recoveries = Vec::new();
        let stats = solve_set_with_ladder(
            &op,
            &backend.precond,
            &f_multi,
            &mut x_multi,
            &self.ab_guesses,
            &cg_cfg,
            &ph.first_cfg,
            step,
            set,
            set * r,
            true,
            &mut recoveries,
        )?;
        let mut x = vec![0.0; n];
        for c in 0..r {
            extract_case(&x_multi, r, c, &mut x);
            let mut delta: Vec<f64> = x
                .iter()
                .zip(&self.ab_guesses[c])
                .map(|(u, g)| u - g)
                .collect();
            if let Some(vf) = ph.snapshot[c] {
                vf.apply(&mut delta);
            }
            let _ = self.dd[c].record(&delta);
            let t = &mut self.time[c];
            let u_old = std::mem::replace(&mut t.u, x.clone());
            backend
                .problem
                .newmark
                .advance(&t.u, &u_old, &mut t.v, &mut t.a);
            self.adams[c].push(&t.v);
            t.step += 1;
        }
        Ok((stats.case_iterations.iter().sum(), recoveries))
    }
}

/// Run EBE-MCG with two real device threads. Returns the per-case final
/// displacements and the wall-clock report, or a typed [`RunError`] if a
/// solve fails beyond recovery or a device thread panics.
pub fn run_realtime(
    backend: &Backend,
    cfg: &RunConfig,
) -> Result<(Vec<Vec<f64>>, RealtimeReport), RunError> {
    run_realtime_traced(backend, cfg, &mut StepTracer::disabled())
}

/// Span collected by a device thread: (pid, tid, label, start_s, dur_s),
/// both times relative to the run start.
type WallSpan = (usize, usize, &'static str, f64, f64);

/// [`run_realtime`] with wall-clock tracing: each solver/predictor phase of
/// each device thread becomes a `cat:"wall"` span in the tracer's timeline
/// (pid = process set, tid = device lane), so the *real* thread overlap can
/// be inspected in Perfetto next to the modeled one.
pub fn run_realtime_traced(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
) -> Result<(Vec<Vec<f64>>, RealtimeReport), RunError> {
    run_realtime_faulted(backend, cfg, tracer, &mut NoopFaults)
}

/// [`run_realtime_traced`] with a fault injector. Fault descriptors are
/// resolved on the main thread each phase; only `Copy` descriptor values
/// cross into the solver thread.
pub fn run_realtime_faulted<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
) -> Result<(Vec<Vec<f64>>, RealtimeReport), RunError> {
    run_realtime_clocked(backend, cfg, tracer, faults, &SystemClock::new())
}

/// [`run_realtime_faulted`] with an injected wall clock. Both device
/// threads read the clock concurrently, so it must be `Sync`
/// ([`SystemClock`] in production, [`hetsolve_machine::SharedManualClock`]
/// in deterministic tests). The clock feeds only the [`RealtimeReport`]
/// and the wall-span trace — numerics are clock-independent — which is
/// what lets the determinism lint ban ambient `Instant` reads here.
pub fn run_realtime_clocked<F: FaultInjector, C: WallClock + Sync>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
    wall: &C,
) -> Result<(Vec<Vec<f64>>, RealtimeReport), RunError> {
    assert!(cfg.r >= 1);
    tracer.begin_run("EBE-MCG@CPU-GPU (realtime)", cfg, 2);
    let mut set_a = SetState::new(backend, cfg, 0);
    let mut set_b = SetState::new(backend, cfg, cfg.r);
    let busy = Mutex::new((0.0f64, 0.0f64)); // (solver, predictor)
    let trace_on = tracer.is_enabled();
    let spans: Mutex<Vec<WallSpan>> = Mutex::new(Vec::new());
    let cg_cfg = driver_cg_config(cfg.tol);
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let t_start = wall.now();
    // run-relative timestamp of "now" on the injected clock
    let since_start = || wall.now() - t_start;

    // window grows with available history, as in the modeled driver
    let s_for = |dd: &DataDrivenPredictor, cap: usize| dd.available_s().min(cap);

    // pre-step: prepare both sets' step-0 inputs (no history yet)
    set_a.predict(backend, 0, 0);
    set_b.predict(backend, 0, 0);

    for it in 0..cfg.n_steps {
        // phase 1: solve B || predict A for this step (A's rhs already
        // prepared; recompute with latest state to stay causally correct:
        // A's state was advanced in the previous phase 2)
        let s_a = s_for(&set_a.dd[0], cfg.s_max);
        let ph_b = PhaseFaults::resolve(faults, it, 1, cfg.r, cfg.r, &cg_cfg);
        let solved = crossbeam::thread::scope(|scope| {
            let (busy, spans) = (&busy, &spans);
            let b = scope.spawn(|_| {
                let start = since_start();
                let out = set_b.solve(backend, cfg, it, 1, &ph_b);
                let dur = since_start() - start;
                busy.lock().0 += dur;
                if trace_on {
                    spans.lock().push((1, TID_GPU, "solve (wall)", start, dur));
                }
                out
            });
            let start = since_start();
            set_a.predict(backend, it, s_a);
            let dur = since_start() - start;
            busy.lock().1 += dur;
            if trace_on {
                spans
                    .lock()
                    .push((0, TID_CPU, "predict (wall)", start, dur));
            }
            match b.join() {
                Ok(r) => r.map_err(RunError::from),
                Err(_) => Err(RunError::WorkerPanic {
                    phase: "realtime solve (set B)",
                }),
            }
        })
        // PANIC-OK: the scope closure joins both children, so crossbeam's
        // scope-level error (an unjoined child panic) is unreachable.
        .expect("thread scope failed");
        let (_, evs) = solved?;
        recoveries.extend(evs);

        // phase 2: solve A || predict B for the next step
        let s_b = s_for(&set_b.dd[0], cfg.s_max);
        let ph_a = PhaseFaults::resolve(faults, it, 0, 0, cfg.r, &cg_cfg);
        let solved = crossbeam::thread::scope(|scope| {
            let (busy, spans) = (&busy, &spans);
            let a = scope.spawn(|_| {
                let start = since_start();
                let out = set_a.solve(backend, cfg, it, 0, &ph_a);
                let dur = since_start() - start;
                busy.lock().0 += dur;
                if trace_on {
                    spans.lock().push((0, TID_GPU, "solve (wall)", start, dur));
                }
                out
            });
            if it + 1 < cfg.n_steps {
                let start = since_start();
                set_b.predict(backend, it + 1, s_b);
                let dur = since_start() - start;
                busy.lock().1 += dur;
                if trace_on {
                    spans
                        .lock()
                        .push((1, TID_CPU, "predict (wall)", start, dur));
                }
            }
            match a.join() {
                Ok(r) => r.map_err(RunError::from),
                Err(_) => Err(RunError::WorkerPanic {
                    phase: "realtime solve (set A)",
                }),
            }
        })
        // PANIC-OK: the scope closure joins both children, so crossbeam's
        // scope-level error (an unjoined child panic) is unreachable.
        .expect("thread scope failed");
        let (_, evs) = solved?;
        recoveries.extend(evs);
    }

    for (pid, tid, name, start_s, dur_s) in spans.into_inner() {
        tracer
            .trace
            .span(pid, tid, "wall", name, start_s * 1e6, dur_s * 1e6, vec![]);
    }
    let t_now = since_start();
    for ev in &recoveries {
        tracer.recovery_event(t_now, ev);
    }

    let wall = since_start();
    let (solver_busy, predictor_busy) = *busy.lock();
    let report = RealtimeReport {
        wall,
        solver_busy,
        predictor_busy,
        overlap_factor: (solver_busy + predictor_busy) / wall.max(1e-12),
        steps: cfg.n_steps,
        recoveries: recoveries.len(),
    };
    let mut final_u: Vec<Vec<f64>> = Vec::with_capacity(2 * cfg.r);
    for t in set_a.time.into_iter().chain(set_b.time) {
        final_u.push(t.u);
    }
    Ok((final_u, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{run, MethodKind};
    use hetsolve_fem::{FemProblem, RandomLoadSpec};
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    fn setup() -> (Backend, RunConfig) {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), false, false);
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 10);
        cfg.r = 2;
        cfg.s_max = 4;
        cfg.load = RandomLoadSpec {
            n_sources: 4,
            impulses_per_source: 2.0,
            amplitude: 1e6,
            active_window: 0.3,
        };
        (backend, cfg)
    }

    #[test]
    fn realtime_runs_and_reports() {
        let (backend, cfg) = setup();
        let (final_u, rep) = run_realtime(&backend, &cfg).expect("realtime");
        assert_eq!(final_u.len(), 2 * cfg.r);
        assert_eq!(rep.steps, cfg.n_steps);
        assert!(rep.wall > 0.0);
        assert!(rep.solver_busy > 0.0);
        assert!(rep.predictor_busy > 0.0);
        assert!(rep.overlap_factor > 0.0);
        assert!(final_u.iter().any(|u| u.iter().any(|&x| x != 0.0)));
    }

    #[test]
    fn realtime_tracing_collects_wall_spans_from_both_lanes() {
        let (backend, mut cfg) = setup();
        cfg.n_steps = 3;
        let mut tracer = StepTracer::new();
        let (_, rep) = run_realtime_traced(&backend, &cfg, &mut tracer).expect("realtime");
        assert_eq!(rep.steps, 3);
        let events = tracer.trace.events();
        assert!(events.iter().all(|e| e.cat == "wall"));
        // both device lanes of both sets appear
        for pid in [0, 1] {
            assert!(events.iter().any(|e| e.pid == pid && e.tid == TID_GPU));
            assert!(events.iter().any(|e| e.pid == pid && e.tid == TID_CPU));
        }
        // solver runs every phase: 2 phases per step
        let solves = events.iter().filter(|e| e.tid == TID_GPU).count();
        assert_eq!(solves, 2 * cfg.n_steps);
    }

    /// The real-thread pipeline computes the same solutions as the modeled
    /// driver (same seeds, same algorithm).
    #[test]
    fn realtime_matches_modeled_numerics() {
        let (backend, cfg) = setup();
        let (final_rt, _) = run_realtime(&backend, &cfg).expect("realtime");
        let modeled = run(&backend, &cfg).expect("run");
        // The modeled driver grows s by the adaptive controller while the
        // realtime driver grows by available history; both refine to the
        // same CG tolerance, so solutions agree to solver accuracy.
        let scale = modeled.final_u[0]
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        for (c, u_model) in modeled.final_u.iter().enumerate() {
            for (i, (&a, &b)) in final_rt[c].iter().zip(u_model).enumerate() {
                assert!((a - b).abs() < 1e-5 * scale, "case {c} dof {i}: {a} vs {b}");
            }
        }
    }

    /// With an injected shared manual clock the wall-clock report is
    /// fully deterministic: the driver reads no ambient time, so a frozen
    /// clock yields a zero report while the numerics are untouched.
    #[test]
    fn manual_clock_makes_the_report_deterministic() {
        let (backend, mut cfg) = setup();
        cfg.n_steps = 3;
        let clock = hetsolve_machine::SharedManualClock::new();
        clock.set(42.0);
        let (final_u, rep) = run_realtime_clocked(
            &backend,
            &cfg,
            &mut StepTracer::disabled(),
            &mut NoopFaults,
            &clock,
        )
        .expect("realtime");
        assert_eq!(rep.wall, 0.0, "frozen clock: no wall time elapsed");
        assert_eq!(rep.solver_busy, 0.0);
        assert_eq!(rep.predictor_busy, 0.0);
        assert!(final_u.iter().any(|u| u.iter().any(|&x| x != 0.0)));
        // the same run on the real clock computes identical numerics
        let (real_u, _) = run_realtime(&backend, &cfg).expect("realtime");
        assert_eq!(final_u, real_u, "clock choice must not affect results");
    }
}
