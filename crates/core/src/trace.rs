//! Per-step pipeline tracing — the observability layer over the method
//! drivers.
//!
//! [`StepTracer`] sits between the drivers in [`crate::methods`] and the
//! [`ModuleClock`]: every kernel charge goes through it, so it can label
//! the clock's [`LaneSpan`]s with *what* ran (solver, predictor, RHS,
//! transfer) and in which process set, and export the result as
//! Chrome-trace-event JSON — a faithful, inspectable reproduction of the
//! paper's Fig. 4 CPU/GPU overlap diagram. It also aggregates
//! [`AdaptiveWindow`](hetsolve_predictor::AdaptiveWindow) decisions, kernel
//! work counters and per-method summaries into a [`MetricsSink`] snapshot.
//!
//! A disabled tracer (the default for [`crate::methods::run`]) never
//! enables the clock's span log and skips every branch, so untraced runs
//! pay nothing.
//!
//! Trace layout: one Chrome *process* per process set (`pid`), one
//! *thread* per device lane (`tid` 0 = CPU, 1 = GPU, 2 = C2C link).
//! Timestamps are modeled seconds scaled to microseconds.

use std::path::{Path, PathBuf};

use hetsolve_machine::{LaneKind, ModuleClock};
use hetsolve_obs::{
    FlightRecorder, Json, MethodMetrics, MetricsRegistry, MetricsSink, TraceBuilder,
};
use hetsolve_predictor::WindowDecision;
use hetsolve_sparse::KernelCounts;

use crate::methods::{RunConfig, RunResult};
use crate::recovery::RecoveryEvent;

/// Environment variable naming the Chrome-trace output file.
pub const TRACE_ENV: &str = "HETSOLVE_TRACE";
/// Environment variable naming the metrics (bench-snapshot JSON) output.
pub const METRICS_ENV: &str = "HETSOLVE_METRICS";

/// Thread ids of the device lanes in the exported trace.
pub const TID_CPU: usize = 0;
pub const TID_GPU: usize = 1;
pub const TID_LINK: usize = 2;

/// Labeling tracer threaded through the method drivers.
#[derive(Debug, Clone, Default)]
pub struct StepTracer {
    enabled: bool,
    pub trace: TraceBuilder,
    pub sink: MetricsSink,
    /// Telemetry-v2 registry, independent of `enabled`: an attached
    /// registry aggregates phase histograms and counters even on a
    /// `disabled()` tracer (no span labeling, no per-event allocation),
    /// which is what the bench snapshot's observer-overhead ratio
    /// measures. `None` (the default) costs one branch per charge.
    registry: Option<MetricsRegistry>,
    /// Crash-time flight recorder: always on (a ring push per event —
    /// the drivers only feed it step/checkpoint/recovery boundaries, not
    /// per-kernel), dumped by the durable driver on typed errors and
    /// injected crashes.
    pub flight: FlightRecorder,
    /// Total kernel work charged through this tracer.
    total_counts: KernelCounts,
    /// Adaptive-window decision log rows for the metrics export.
    window_log: Vec<Json>,
    /// Recovery-ladder event rows for the metrics export.
    recovery_log: Vec<Json>,
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    flight_path: Option<PathBuf>,
}

impl StepTracer {
    /// An enabled tracer collecting spans and metrics in memory.
    pub fn new() -> Self {
        StepTracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// The zero-cost default: collects nothing, labels nothing.
    pub fn disabled() -> Self {
        StepTracer::default()
    }

    /// Build from the environment: enabled iff `HETSOLVE_TRACE` and/or
    /// `HETSOLVE_METRICS` name output files; [`StepTracer::write_outputs`]
    /// writes them.
    pub fn from_env() -> Self {
        let trace_path = std::env::var_os(TRACE_ENV).map(PathBuf::from);
        let metrics_path = std::env::var_os(METRICS_ENV).map(PathBuf::from);
        StepTracer {
            enabled: trace_path.is_some() || metrics_path.is_some(),
            trace_path,
            metrics_path,
            ..Default::default()
        }
    }

    /// Enabled tracer that writes the trace to `path` on
    /// [`StepTracer::write_outputs`] — the builder-API twin of
    /// `HETSOLVE_TRACE=path`.
    pub fn with_trace_path(path: impl AsRef<Path>) -> Self {
        StepTracer {
            enabled: true,
            trace_path: Some(path.as_ref().to_path_buf()),
            ..Default::default()
        }
    }

    /// Also write the metrics snapshot to `path` (builder-API twin of
    /// `HETSOLVE_METRICS=path`).
    pub fn metrics_path(mut self, path: impl AsRef<Path>) -> Self {
        self.metrics_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Dump the flight-recorder ring to `path` when the durable driver
    /// hits a typed error or an injected crash (convention: somewhere
    /// under `target/artifacts/`).
    pub fn flight_dump_path(mut self, path: impl AsRef<Path>) -> Self {
        self.flight_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Attach a metrics registry. Works on disabled tracers too — the
    /// registry seam is separate from span tracing, so its overhead can
    /// be measured (and its bitwise neutrality proven) in isolation.
    pub fn attach_registry(&mut self, registry: MetricsRegistry) {
        self.registry = Some(registry);
    }

    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_ref()
    }

    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.registry.as_mut()
    }

    /// Detach and return the registry (e.g. to merge into a server-level
    /// aggregate after a run).
    pub fn take_registry(&mut self) -> Option<MetricsRegistry> {
        self.registry.take()
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a structured event into the always-on flight ring. `ts_s`
    /// is modeled seconds; `step` the driver's step counter.
    pub fn flight_event(
        &mut self,
        ts_s: f64,
        kind: &str,
        step: Option<u64>,
        detail: impl Into<String>,
    ) {
        self.flight.record(ts_s, kind, None, None, step, detail);
    }

    /// Dump the flight ring to the configured path (no-op without one).
    /// Returns the path written. Callers treat failures as best-effort:
    /// a dump that cannot be written must not mask the original error.
    pub fn dump_flight(&self, trigger: &str) -> std::io::Result<Option<PathBuf>> {
        match &self.flight_path {
            Some(p) => {
                self.flight.dump_to(p, trigger)?;
                Ok(Some(p.clone()))
            }
            None => Ok(None),
        }
    }

    /// Registry-side accounting for a charged phase: the phase histogram
    /// plus work counters. One branch when no registry is attached.
    fn observe_phase(&mut self, lane: LaneKind, seconds: f64, counts: &KernelCounts) {
        let Some(reg) = self.registry.as_mut() else {
            return;
        };
        let name = match lane {
            LaneKind::Cpu => "core_phase_cpu_s",
            LaneKind::Gpu => "core_phase_gpu_s",
            LaneKind::Link => "core_phase_link_s",
        };
        reg.observe(name, seconds);
        if counts.flops > 0.0 {
            reg.inc("core_flops_total", counts.flops);
        }
        let bytes = counts.bytes();
        if bytes > 0.0 {
            reg.inc("core_bytes_total", bytes);
        }
    }

    /// Total kernel work charged through this tracer so far.
    pub fn total_counts(&self) -> KernelCounts {
        self.total_counts
    }

    /// Announce a run: names the process-set rows and lane threads and
    /// stores run metadata. Call once per traced run.
    pub fn begin_run(&mut self, label: &str, cfg: &RunConfig, n_sets: usize) {
        if !self.enabled {
            return;
        }
        self.trace.set_meta("method", Json::from(label));
        self.trace.set_meta("n_steps", Json::from(cfg.n_steps));
        self.trace.set_meta("r", Json::from(cfg.r));
        self.trace.set_meta("s_max", Json::from(cfg.s_max));
        self.trace.set_meta("tol", Json::Num(cfg.tol));
        for set in 0..n_sets {
            let name = if n_sets == 1 {
                "process".to_string()
            } else {
                format!("process set {}", (b'A' + (set % 26) as u8) as char)
            };
            self.trace.name_process(set, &name);
            self.trace.name_thread(set, TID_CPU, "CPU (predictor)");
            self.trace.name_thread(set, TID_GPU, "GPU (solver)");
            self.trace.name_thread(set, TID_LINK, "C2C link");
        }
    }

    /// Enable the clock's span log when tracing (no-op otherwise).
    pub fn attach_clock(&self, clock: &mut ModuleClock) {
        if self.enabled {
            clock.enable_span_log();
        }
    }

    /// Charge a CPU kernel and label its span.
    pub fn charge_cpu(
        &mut self,
        clock: &mut ModuleClock,
        set: usize,
        name: &str,
        counts: &KernelCounts,
        args: &[(&str, Json)],
    ) -> f64 {
        let t = clock.run_cpu(counts);
        self.observe_phase(LaneKind::Cpu, t, counts);
        self.label(clock, set, name, counts, args);
        t
    }

    /// Charge a GPU kernel and label its span.
    pub fn charge_gpu(
        &mut self,
        clock: &mut ModuleClock,
        set: usize,
        name: &str,
        counts: &KernelCounts,
        args: &[(&str, Json)],
    ) -> f64 {
        let t = clock.run_gpu(counts);
        self.observe_phase(LaneKind::Gpu, t, counts);
        self.label(clock, set, name, counts, args);
        t
    }

    /// Charge a CPU↔GPU transfer and label its span.
    pub fn charge_transfer(
        &mut self,
        clock: &mut ModuleClock,
        set: usize,
        name: &str,
        bytes: f64,
    ) -> f64 {
        let t = clock.transfer(bytes);
        if let Some(reg) = self.registry.as_mut() {
            reg.observe("core_phase_link_s", t);
            reg.inc("core_bytes_total", bytes);
        }
        if self.enabled {
            let args = [("bytes", Json::Num(bytes))];
            self.label(clock, set, name, &KernelCounts::default(), &args);
        }
        t
    }

    fn label(
        &mut self,
        clock: &mut ModuleClock,
        set: usize,
        name: &str,
        counts: &KernelCounts,
        args: &[(&str, Json)],
    ) {
        if !self.enabled {
            return;
        }
        self.total_counts = self.total_counts.merged(*counts);
        for span in clock.drain_spans() {
            let (tid, cat) = match span.lane {
                LaneKind::Cpu => (TID_CPU, "cpu"),
                LaneKind::Gpu => (TID_GPU, "gpu"),
                LaneKind::Link => (TID_LINK, "link"),
            };
            self.trace.span(
                set,
                tid,
                cat,
                name,
                span.start * 1e6,
                (span.end - span.start) * 1e6,
                args.iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            );
        }
    }

    /// Record an [`AdaptiveWindow`](hetsolve_predictor::AdaptiveWindow)
    /// decision: a counter track in the trace plus a row in the metrics
    /// `window_log` section. `ts_s` is the modeled time of the decision.
    pub fn window_decision(&mut self, step: usize, ts_s: f64, d: &WindowDecision) {
        if let Some(reg) = self.registry.as_mut() {
            reg.gauge_set("core_window_s", d.s_next as f64);
        }
        if !self.enabled {
            return;
        }
        self.trace.counter(
            0,
            "adaptive window s",
            ts_s * 1e6,
            &[("s_used", d.s_used as f64), ("s_next", d.s_next as f64)],
        );
        self.window_log.push(Json::obj([
            ("step", Json::from(step)),
            ("t_s", Json::Num(ts_s)),
            ("s_used", Json::from(d.s_used)),
            ("s_next", Json::from(d.s_next)),
            ("predictor_time_s", Json::Num(d.predictor_time)),
            ("solver_time_s", Json::Num(d.solver_time)),
            ("unit_cost_s", Json::Num(d.unit_cost)),
            ("budget_s", Json::Num(d.budget)),
        ]));
    }

    /// Record a recovery-ladder event: an instant marker in the trace plus
    /// a row in the metrics `recovery_log` section. `ts_s` is the modeled
    /// time the recovery completed.
    pub fn recovery_event(&mut self, ts_s: f64, ev: &RecoveryEvent) {
        if let Some(reg) = self.registry.as_mut() {
            reg.inc("core_recoveries_total", 1.0);
        }
        self.flight.record(
            ts_s,
            "recovery",
            ev.case.map(|c| c as u64),
            None,
            Some(ev.step as u64),
            format!("{} -> {}", ev.failed.label(), ev.recovered_with.label()),
        );
        if !self.enabled {
            return;
        }
        self.trace.span(
            ev.set,
            TID_GPU,
            "recovery",
            "solver recovery",
            ts_s * 1e6,
            0.0,
            vec![
                ("step".to_string(), Json::from(ev.step)),
                ("failed".to_string(), Json::from(ev.failed.label())),
                (
                    "recovered_with".to_string(),
                    Json::from(ev.recovered_with.label()),
                ),
                ("attempts".to_string(), Json::from(ev.attempts)),
            ],
        );
        self.recovery_log.push(Json::obj([
            ("step", Json::from(ev.step)),
            ("t_s", Json::Num(ts_s)),
            (
                "case",
                match ev.case {
                    Some(c) => Json::from(c),
                    None => Json::Null,
                },
            ),
            ("set", Json::from(ev.set)),
            ("failed", Json::from(ev.failed.label())),
            ("recovered_with", Json::from(ev.recovered_with.label())),
            ("attempts", Json::from(ev.attempts)),
        ]));
    }

    /// Charge a modeled fault stall on one lane (injected via
    /// `hetsolve-fault`) and label its span. Returns the stall seconds.
    pub fn charge_stall(
        &mut self,
        clock: &mut ModuleClock,
        set: usize,
        lane: LaneKind,
        seconds: f64,
    ) -> f64 {
        let t = clock.stall(lane, seconds);
        self.observe_phase(lane, t, &KernelCounts::default());
        if self.enabled {
            let args = [("seconds", Json::Num(seconds))];
            self.label(
                clock,
                set,
                "fault: lane stall",
                &KernelCounts::default(),
                &args,
            );
        }
        t
    }

    /// A driver finished one time step at modeled time `ts_s`: bump the
    /// step counter on an attached registry. Called by `step_once` at the
    /// step boundary — one branch when nothing is attached.
    pub fn step_completed(&mut self, _ts_s: f64) {
        if let Some(reg) = self.registry.as_mut() {
            reg.inc("core_steps_total", 1.0);
        }
    }

    /// Record a mean-iterations counter sample (one per step).
    pub fn iterations_counter(&mut self, ts_s: f64, iterations: f64) {
        if !self.enabled {
            return;
        }
        self.trace
            .counter(0, "CG iterations", ts_s * 1e6, &[("iters", iterations)]);
    }

    /// Fold a finished run into the metrics sink as a method row (and
    /// flush the window log into a section).
    pub fn finish_run(&mut self, result: &RunResult, from: usize) {
        if let Some(reg) = &self.registry {
            self.sink.set_section("registry", reg.to_json());
        }
        if !self.enabled {
            return;
        }
        let records = &result.records[from.min(result.records.len())..];
        let mean_window = if records.is_empty() {
            0.0
        } else {
            records.iter().map(|r| r.s_used as f64).sum::<f64>() / records.len() as f64
        };
        let counts = self.total_counts;
        self.sink.push_method(MethodMetrics {
            method: result.method.label().to_string(),
            n_cases: result.n_cases,
            steps: result.records.len(),
            step_time_s: result.mean_step_time(from),
            solver_time_s: result.mean_solver_time(from),
            predictor_time_s: result.mean_predictor_time(from),
            iterations: result.mean_iterations(from),
            speedup: 1.0,
            module_power_w: result.energy.avg_power,
            energy_per_step_j: result.energy_per_step_per_case(),
            flops: counts.flops,
            bytes: counts.bytes(),
            rand_transactions: counts.rand_transactions,
            mean_window_s: mean_window,
            recoveries: result.recoveries.len(),
        });
        if !self.window_log.is_empty() {
            self.sink
                .set_section("window_log", Json::Arr(self.window_log.clone()));
        }
        if !self.recovery_log.is_empty() {
            self.sink
                .set_section("recovery_log", Json::Arr(self.recovery_log.clone()));
        }
    }

    /// Write the configured outputs (trace and/or metrics files). Returns
    /// the paths written.
    pub fn write_outputs(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some(p) = &self.trace_path {
            self.trace.write_to(p)?;
            written.push(p.clone());
        }
        if let Some(p) = &self.metrics_path {
            self.sink.write_to(p)?;
            written.push(p.clone());
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_machine::single_gh200;

    fn counts(flops: f64) -> KernelCounts {
        KernelCounts {
            flops,
            ..Default::default()
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_keeps_clock_untouched() {
        let mut tracer = StepTracer::disabled();
        let mut clock = ModuleClock::new(single_gh200().module, 72, true);
        tracer.attach_clock(&mut clock);
        assert!(!clock.span_log_enabled());
        tracer.charge_gpu(&mut clock, 0, "solver", &counts(1e12), &[]);
        assert!(tracer.trace.is_empty());
        assert_eq!(tracer.total_counts().flops, 0.0);
    }

    #[test]
    fn enabled_tracer_labels_lane_spans() {
        let mut tracer = StepTracer::new();
        let mut clock = ModuleClock::new(single_gh200().module, 72, true);
        tracer.attach_clock(&mut clock);
        let t = tracer.charge_gpu(&mut clock, 1, "solver", &counts(1e12), &[]);
        tracer.charge_cpu(&mut clock, 1, "predictor", &counts(1e10), &[]);
        clock.sync();
        tracer.charge_transfer(&mut clock, 1, "exchange", 1e6);
        let events = tracer.trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "solver");
        assert_eq!(events[0].tid, TID_GPU);
        assert_eq!(events[0].pid, 1);
        assert!((events[0].dur_us.unwrap() - t * 1e6).abs() < 1e-9);
        assert_eq!(events[1].tid, TID_CPU);
        assert_eq!(events[2].tid, TID_LINK);
        assert!(tracer.total_counts().flops > 0.0);
    }

    #[test]
    fn charge_returns_same_time_as_raw_clock() {
        let c = counts(3e12);
        let mut raw = ModuleClock::new(single_gh200().module, 72, true);
        let mut traced = raw.clone();
        let mut tracer = StepTracer::new();
        tracer.attach_clock(&mut traced);
        let t_raw = raw.run_gpu(&c);
        let t_traced = tracer.charge_gpu(&mut traced, 0, "x", &c, &[]);
        assert_eq!(t_raw, t_traced);
        assert_eq!(raw.elapsed(), traced.elapsed());
    }
}
