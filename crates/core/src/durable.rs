//! Crash-consistent EBE-MCG driver: periodic checkpoints + resume.
//!
//! [`run_durable`] is the uninterrupted [`crate::methods::run`] driver with
//! durability wrapped around the same `EbeRunState::step_once` loop: on
//! entry it restores the newest *valid* checkpoint from a
//! [`CheckpointStore`] (falling back past torn or corrupt files with a
//! typed [`RestoreReport`]), then advances step by step, snapshotting
//! every [`CheckpointPolicy::every`] steps with atomic temp-file + rename
//! writes. Because the resumed state is bitwise-identical to the state the
//! uninterrupted run had at that boundary, and both paths execute the same
//! `step_once`, a killed-and-resumed run produces a bitwise-identical
//! [`RunResult`] — the chaos suite's kill-at-any-step-boundary property.
//!
//! Chaos hooks: [`FaultInjector::crash_fault`] aborts the run *before* a
//! step boundary with [`RunError::Crashed`] (the injected stand-in for
//! `kill -9`), and [`FaultInjector::torn_write_fault`] truncates the
//! checkpoint that was just written, exercising the restore fallback.

use hetsolve_ckpt::{tear, CheckpointStore, RestoreReport};
use hetsolve_fault::FaultInjector;
use hetsolve_machine::{SystemClock, WallClock};

use crate::backend::Backend;
use crate::checkpoint::{ConfigFingerprint, RunCheckpoint};
use crate::methods::{EbeRunCtx, EbeRunState, MethodKind, RunConfig, RunResult};
use crate::recovery::RunError;
use crate::trace::StepTracer;

/// When to snapshot and how much history to retain.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Snapshot every `every` completed steps (0 disables writing —
    /// restore-only mode). The final step is not snapshotted; the run
    /// result itself is the durable artifact at that point.
    pub every: usize,
    /// Checkpoints retained on disk (clamped to ≥ 2 by the store so the
    /// torn-latest fallback always has an older file).
    pub keep: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every: 4, keep: 3 }
    }
}

/// A durable run's result plus its durability bookkeeping.
#[derive(Debug)]
pub struct DurableOutcome {
    pub result: RunResult,
    /// Step boundary the run resumed from (`None` for a fresh start).
    pub resumed_from: Option<usize>,
    /// What the restore scan saw (skips = torn-write fallback at work).
    pub restore: RestoreReport,
    /// Checkpoints written by this invocation.
    pub checkpoints_written: usize,
    /// Size of the last checkpoint written (bytes).
    pub checkpoint_bytes: usize,
    /// Real time spent writing checkpoints (s).
    pub write_s: f64,
    /// Real time spent reading + validating checkpoints on restore (s).
    pub restore_s: f64,
}

/// Run the EBE-MCG method crash-consistently: restore from `store` if a
/// valid checkpoint exists, then advance, snapshotting per `policy`.
///
/// The method is forced to [`MethodKind::EbeMcgCpuGpu`] (the only driver
/// with a resumable state machine); everything else in `cfg` is honored
/// and folded into the stored [`ConfigFingerprint`], so a checkpoint
/// written under a different configuration is rejected typed rather than
/// resumed silently.
pub fn run_durable<F: FaultInjector>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
    store: &CheckpointStore,
    policy: CheckpointPolicy,
) -> Result<DurableOutcome, RunError> {
    run_durable_clocked(
        backend,
        cfg,
        tracer,
        faults,
        store,
        policy,
        &SystemClock::new(),
    )
}

/// [`run_durable`] with an injected wall clock. The clock only feeds the
/// [`DurableOutcome`] I/O timing fields (`write_s`, `restore_s`) — it
/// never influences the solve — so a [`hetsolve_machine::ManualClock`]
/// makes those fields deterministic in tests, and the determinism lint
/// (`cargo xtask analyze`) can ban ambient `Instant` reads outright.
pub fn run_durable_clocked<F: FaultInjector, C: WallClock + ?Sized>(
    backend: &Backend,
    cfg: &RunConfig,
    tracer: &mut StepTracer,
    faults: &mut F,
    store: &CheckpointStore,
    policy: CheckpointPolicy,
    wall: &C,
) -> Result<DurableOutcome, RunError> {
    let mut run_cfg = cfg.clone();
    run_cfg.method = MethodKind::EbeMcgCpuGpu;
    let fp = ConfigFingerprint::of(backend, &run_cfg);

    let t0 = wall.now();
    let (found, restore) =
        store.load_latest_valid(|_seq, bytes| RunCheckpoint::from_bytes(bytes, fp));
    let restore_s = wall.now() - t0;
    let (mut st, resumed_from) = match found {
        Some((_seq, snap)) => {
            let step = snap.step;
            (snap.into_state(backend, &run_cfg), Some(step))
        }
        None => (EbeRunState::new(backend, &run_cfg), None),
    };
    if let Some(step) = resumed_from {
        let skipped = restore.skipped.len();
        tracer.flight_event(
            st.clock.elapsed(),
            "ckpt_restore",
            Some(step as u64),
            format!("resumed from step {step}, {skipped} invalid checkpoint(s) skipped"),
        );
        if let Some(reg) = tracer.registry_mut() {
            reg.inc("core_ckpt_restores_total", 1.0);
        }
    }

    tracer.begin_run(run_cfg.method.label(), &run_cfg, 2);
    tracer.attach_clock(&mut st.clock);
    let ctx = EbeRunCtx::new(backend, &run_cfg);
    let mut checkpoints_written = 0;
    let mut checkpoint_bytes = 0;
    let mut write_s = 0.0;

    loop {
        if faults.crash_fault(st.step) {
            // black-box behavior: the last thing the recorder sees is the
            // crash itself, then the ring hits disk (best-effort — a dump
            // failure must not mask the crash error)
            tracer.flight_event(
                st.clock.elapsed(),
                "crash",
                Some(st.step as u64),
                "injected crash_fault at step boundary",
            );
            let _ = tracer.dump_flight("crash");
            return Err(RunError::Crashed { step: st.step });
        }
        if st.step >= run_cfg.n_steps {
            break;
        }
        let corruptions_before = st.corruptions.len();
        if let Err(e) = st.step_once(backend, &run_cfg, tracer, faults, &ctx) {
            tracer.flight_event(
                st.clock.elapsed(),
                "run_error",
                Some(st.step as u64),
                format!("{e}"),
            );
            let _ = tracer.dump_flight("run_error");
            return Err(e);
        }
        // every report appended by step_once is a detection that was also
        // recovered in place (unrecoverable corruption returns Err above)
        for rep in &st.corruptions[corruptions_before..] {
            tracer.flight_event(
                st.clock.elapsed(),
                "sdc_recovered",
                Some(rep.step as u64),
                format!("{rep}"),
            );
            if let Some(reg) = tracer.registry_mut() {
                reg.inc("core_sdc_detected_total", 1.0);
                reg.inc("core_sdc_recovered_total", 1.0);
            }
        }
        if policy.every > 0 && st.step % policy.every == 0 && st.step < run_cfg.n_steps {
            let bytes = RunCheckpoint::capture(&st, fp).to_bytes();
            let seq = st.step as u64;
            let tw = wall.now();
            let path = store.save(seq, &bytes).map_err(|e| RunError::Checkpoint {
                message: e.to_string(),
            })?;
            write_s += wall.now() - tw;
            checkpoints_written += 1;
            checkpoint_bytes = bytes.len();
            tracer.flight_event(
                st.clock.elapsed(),
                "ckpt_write",
                Some(seq),
                format!("{} bytes", bytes.len()),
            );
            if let Some(reg) = tracer.registry_mut() {
                reg.inc("core_ckpt_writes_total", 1.0);
            }
            if let Some(t) = faults.torn_write_fault(seq) {
                tear(&path, t.keep_frac).map_err(|e| RunError::Checkpoint {
                    message: format!("injected tear failed: {e}"),
                })?;
            }
        }
    }

    let result = st.into_result(backend, &run_cfg);
    tracer.finish_run(&result, run_cfg.measure_from);
    Ok(DurableOutcome {
        result,
        resumed_from,
        restore,
        checkpoints_written,
        checkpoint_bytes,
        write_s,
        restore_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fem::FemProblem;
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    fn small() -> (Backend, RunConfig) {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), true, false);
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 6);
        cfg.r = 2;
        cfg.s_max = 4;
        cfg.region_dofs = 64;
        (backend, cfg)
    }

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("hs-durable-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, 3).unwrap()
    }

    #[test]
    fn fresh_durable_run_matches_plain_run() {
        let (backend, cfg) = small();
        let store = tmp_store("fresh");
        let out = run_durable(
            &backend,
            &cfg,
            &mut StepTracer::disabled(),
            &mut hetsolve_fault::NoopFaults,
            &store,
            CheckpointPolicy { every: 2, keep: 3 },
        )
        .unwrap();
        assert!(out.resumed_from.is_none());
        assert!(out.restore.clean());
        assert_eq!(out.checkpoints_written, 2, "steps 2 and 4 of 6");
        let plain = crate::methods::run(&backend, &cfg).unwrap();
        assert_eq!(out.result.final_u, plain.final_u, "bitwise-equal to run()");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn crash_then_resume_is_bitwise_identical() {
        let (backend, cfg) = small();
        let store = tmp_store("resume");
        let mut plan = hetsolve_fault::FaultPlan::new(7).crash_at(5);
        let policy = CheckpointPolicy { every: 2, keep: 3 };
        let err = run_durable(
            &backend,
            &cfg,
            &mut StepTracer::disabled(),
            &mut plan,
            &store,
            policy,
        )
        .unwrap_err();
        assert_eq!(err, RunError::Crashed { step: 5 });
        // same plan instance: the crash is spent, the resume sails through
        let out = run_durable(
            &backend,
            &cfg,
            &mut StepTracer::disabled(),
            &mut plan,
            &store,
            policy,
        )
        .unwrap();
        assert_eq!(out.resumed_from, Some(4));
        let plain = crate::methods::run(&backend, &cfg).unwrap();
        assert_eq!(out.result.final_u, plain.final_u);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    /// With an injected manual clock the I/O timing fields are exactly
    /// what the clock says — durable runs read no ambient time at all.
    #[test]
    fn manual_clock_makes_io_timings_deterministic() {
        let (backend, cfg) = small();
        let store = tmp_store("manual-clock");
        let clock = hetsolve_machine::ManualClock::new();
        clock.set(100.0);
        let out = run_durable_clocked(
            &backend,
            &cfg,
            &mut StepTracer::disabled(),
            &mut hetsolve_fault::NoopFaults,
            &store,
            CheckpointPolicy { every: 2, keep: 3 },
            &clock,
        )
        .unwrap();
        assert_eq!(out.restore_s, 0.0, "clock never advanced");
        assert_eq!(out.write_s, 0.0);
        assert_eq!(out.checkpoints_written, 2);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
