//! Ensemble simulation + dominant-frequency mapping (the paper's target
//! application, Fig. 1): many random-input cases of a ground model are
//! simulated, surface waveforms recorded, and the dominant frequency at
//! each surface point obtained by frequency-domain decomposition.

use hetsolve_fem::FemProblem;
use hetsolve_machine::NodeSpec;
use hetsolve_mesh::GroundModelSpec;
use hetsolve_signal::{dominant_frequency_psd, fdd, welch_psd, FddResult, WelchConfig};

use std::path::Path;

use hetsolve_ckpt::CheckpointStore;
use hetsolve_fault::NoopFaults;

use crate::backend::Backend;
use crate::durable::{run_durable, CheckpointPolicy, DurableOutcome};
use crate::methods::{run, MethodKind, RunConfig, RunResult};
use crate::recovery::RunError;
use crate::trace::StepTracer;

/// Why an [`EnsembleConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleConfigError {
    /// `n_cases == 0`: an ensemble must simulate at least one case.
    ZeroCases,
    /// `n_steps == 0`: a time-history run must advance at least one step.
    ZeroSteps,
}

impl std::fmt::Display for EnsembleConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleConfigError::ZeroCases => {
                write!(f, "ensemble config: n_cases must be >= 1")
            }
            EnsembleConfigError::ZeroSteps => {
                write!(f, "ensemble config: n_steps must be >= 1")
            }
        }
    }
}

impl std::error::Error for EnsembleConfigError {}

/// Ensemble configuration.
///
/// # Fused-width rounding rule
///
/// Each underlying run advances `run.method.n_cases(run.r)` cases at once
/// (`2r` for EBE-MCG). A case count that is not a multiple of that fused
/// width is rounded **up** to whole runs: `ceil(n_cases / width)` runs are
/// executed, the excess cases are solved with their own seeds and then
/// discarded, and exactly `n_cases` waveforms are returned. Requesting 5
/// cases at `r = 2` therefore costs the same as requesting 8 — keep
/// `n_cases` a multiple of the fused width when throughput matters (the
/// serving layer in `hetsolve-serve` exists to backfill those otherwise
/// wasted lane slots).
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Cases to simulate (paper: 32 per ground model).
    pub n_cases: usize,
    pub n_steps: usize,
    pub seed: u64,
    pub run: RunConfig,
}

impl EnsembleConfig {
    /// Build a config, rejecting degenerate inputs with a typed error
    /// (previously `n_cases == 0` slipped through and produced an empty,
    /// confusing ensemble downstream).
    pub fn new(
        node: NodeSpec,
        n_cases: usize,
        n_steps: usize,
    ) -> Result<Self, EnsembleConfigError> {
        if n_cases == 0 {
            return Err(EnsembleConfigError::ZeroCases);
        }
        if n_steps == 0 {
            return Err(EnsembleConfigError::ZeroSteps);
        }
        let mut run = RunConfig::new(MethodKind::EbeMcgCpuGpu, node, n_steps);
        run.record_surface = true;
        Ok(EnsembleConfig {
            n_cases,
            n_steps,
            seed: 7_777,
            run,
        })
    }
}

/// Result: surface observation layout + per-case waveforms.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Observed surface nodes (global ids).
    pub surface_nodes: Vec<u32>,
    /// Their coordinates.
    pub coords: Vec<[f64; 3]>,
    /// Waveforms `[case][point][step]` (surface z-displacement).
    pub waveforms: Vec<Vec<Vec<f64>>>,
    pub dt: f64,
}

impl EnsembleResult {
    pub fn n_cases(&self) -> usize {
        self.waveforms.len()
    }

    pub fn n_points(&self) -> usize {
        self.surface_nodes.len()
    }

    /// Ensemble-averaged PSD of one surface point.
    pub fn mean_psd(&self, point: usize, cfg: &WelchConfig) -> Vec<f64> {
        let mut acc = vec![0.0; cfg.n_bins()];
        for case in &self.waveforms {
            let psd = welch_psd(&case[point], cfg);
            for (a, p) in acc.iter_mut().zip(&psd) {
                *a += p;
            }
        }
        let norm = 1.0 / self.n_cases().max(1) as f64;
        for a in acc.iter_mut() {
            *a *= norm;
        }
        acc
    }

    /// Dominant frequency (Hz) at every surface point: peak of the
    /// ensemble-averaged spectrum below `f_max` (the per-point map of
    /// Fig. 1).
    pub fn dominant_frequency_map(&self, cfg: &WelchConfig, f_max: f64) -> Vec<f64> {
        (0..self.n_points())
            .map(|p| {
                let psd = self.mean_psd(p, cfg);
                let max_bin =
                    ((f_max * cfg.segment as f64 * cfg.dt).floor() as usize).min(cfg.n_bins() - 1);
                cfg.frequency(hetsolve_signal::peak_bin(&psd, max_bin))
            })
            .collect()
    }

    /// Dominant frequency of a single point in a single case (cheap check).
    pub fn dominant_frequency_point(
        &self,
        case: usize,
        point: usize,
        cfg: &WelchConfig,
        f_max: f64,
    ) -> f64 {
        dominant_frequency_psd(&self.waveforms[case][point], cfg, f_max)
    }

    /// Multi-channel FDD over a subset of points in one case (mode shapes).
    pub fn fdd_case(&self, case: usize, points: &[usize], cfg: &WelchConfig) -> FddResult {
        let chans: Vec<&[f64]> = points
            .iter()
            .map(|&p| self.waveforms[case][p].as_slice())
            .collect();
        fdd(&chans, cfg)
    }
}

/// Run the ensemble on an existing backend (already-built problem).
pub fn run_ensemble(
    backend: &Backend,
    cfg: &EnsembleConfig,
) -> Result<(EnsembleResult, Vec<RunResult>), RunError> {
    let cases_per_run = cfg.run.method.n_cases(cfg.run.r).max(1);
    let n_runs = cfg.n_cases.div_ceil(cases_per_run);
    let mut waveforms = Vec::with_capacity(cfg.n_cases);
    let mut runs = Vec::with_capacity(n_runs);
    for batch in 0..n_runs {
        let mut rc = cfg.run.clone();
        rc.n_steps = cfg.n_steps;
        rc.record_surface = true;
        rc.seed = cfg.seed + (batch * cases_per_run) as u64;
        let result = run(backend, &rc)?;
        for w in &result.waveforms {
            if waveforms.len() < cfg.n_cases {
                waveforms.push(w.clone());
            }
        }
        runs.push(result);
    }
    let coords = backend
        .problem
        .surface_nodes
        .iter()
        .map(|&n| backend.problem.model.mesh.coords[n as usize])
        .collect();
    Ok((
        EnsembleResult {
            surface_nodes: backend.problem.surface_nodes.clone(),
            coords,
            waveforms,
            dt: backend.problem.newmark.dt,
        },
        runs,
    ))
}

/// Like [`run_ensemble`], but every fused batch runs under the durable
/// driver ([`run_durable`]), checkpointing into `<dir>/batch<k>/`. A
/// killed ensemble re-invoked with the same `dir` skips nothing it has
/// not computed: each batch resumes bitwise-identically from its own
/// newest valid checkpoint, so only the interrupted batch's tail and the
/// batches never started are re-executed.
pub fn run_ensemble_durable(
    backend: &Backend,
    cfg: &EnsembleConfig,
    dir: &Path,
    policy: CheckpointPolicy,
) -> Result<(EnsembleResult, Vec<DurableOutcome>), RunError> {
    let cases_per_run = cfg.run.method.n_cases(cfg.run.r).max(1);
    let n_runs = cfg.n_cases.div_ceil(cases_per_run);
    let mut waveforms = Vec::with_capacity(cfg.n_cases);
    let mut outcomes = Vec::with_capacity(n_runs);
    for batch in 0..n_runs {
        let mut rc = cfg.run.clone();
        rc.n_steps = cfg.n_steps;
        rc.record_surface = true;
        rc.seed = cfg.seed + (batch * cases_per_run) as u64;
        let store =
            CheckpointStore::new(dir.join(format!("batch{batch}")), policy.keep).map_err(|e| {
                RunError::Checkpoint {
                    message: format!("open store for batch {batch}: {e}"),
                }
            })?;
        let out = run_durable(
            backend,
            &rc,
            &mut StepTracer::new(),
            &mut NoopFaults,
            &store,
            policy,
        )?;
        for w in &out.result.waveforms {
            if waveforms.len() < cfg.n_cases {
                waveforms.push(w.clone());
            }
        }
        outcomes.push(out);
    }
    let coords = backend
        .problem
        .surface_nodes
        .iter()
        .map(|&n| backend.problem.model.mesh.coords[n as usize])
        .collect();
    Ok((
        EnsembleResult {
            surface_nodes: backend.problem.surface_nodes.clone(),
            coords,
            waveforms,
            dt: backend.problem.newmark.dt,
        },
        outcomes,
    ))
}

/// Convenience: build a problem from a spec and run the ensemble.
pub fn run_ensemble_for_model(
    spec: &GroundModelSpec,
    cfg: &EnsembleConfig,
    parallel: bool,
) -> Result<(EnsembleResult, Vec<RunResult>), RunError> {
    let needs_crs = matches!(
        cfg.run.method,
        MethodKind::CrsCgCpu | MethodKind::CrsCgGpu | MethodKind::CrsCgCpuGpu
    );
    let backend = Backend::new(FemProblem::paper_like(spec), needs_crs, parallel);
    run_ensemble(&backend, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fem::RandomLoadSpec;
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::InterfaceShape;

    fn quick_cfg(n_cases: usize, n_steps: usize) -> EnsembleConfig {
        let mut cfg = EnsembleConfig::new(single_gh200(), n_cases, n_steps).expect("valid config");
        cfg.run.r = 2;
        cfg.run.s_max = 4;
        cfg.run.load = RandomLoadSpec {
            n_sources: 4,
            impulses_per_source: 2.0,
            amplitude: 1e6,
            active_window: 0.15,
        };
        cfg
    }

    #[test]
    fn ensemble_collects_requested_cases() {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), false, false);
        let cfg = quick_cfg(5, 6);
        let (res, runs) = run_ensemble(&backend, &cfg).expect("ensemble");
        assert_eq!(res.n_cases(), 5);
        assert_eq!(runs.len(), 2); // 4 cases per EBE run -> 2 batches
        assert_eq!(res.n_points(), backend.problem.surface_nodes.len());
        assert_eq!(res.waveforms[0][0].len(), 6);
        assert_eq!(res.coords.len(), res.n_points());
    }

    #[test]
    fn degenerate_configs_are_rejected_typed() {
        assert_eq!(
            EnsembleConfig::new(single_gh200(), 0, 8).unwrap_err(),
            EnsembleConfigError::ZeroCases
        );
        assert_eq!(
            EnsembleConfig::new(single_gh200(), 4, 0).unwrap_err(),
            EnsembleConfigError::ZeroSteps
        );
        assert!(EnsembleConfig::new(single_gh200(), 1, 1).is_ok());
    }

    #[test]
    fn cases_differ_across_batches() {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), false, false);
        let cfg = quick_cfg(8, 8);
        let (res, _) = run_ensemble(&backend, &cfg).expect("ensemble");
        // at least two cases must differ (different seeds)
        let a = &res.waveforms[0];
        let b = &res.waveforms[5];
        let differ = a
            .iter()
            .zip(b)
            .any(|(wa, wb)| wa.iter().zip(wb).any(|(x, y)| (x - y).abs() > 1e-12));
        assert!(differ);
    }
}
