//! Crash-consistent snapshots of an EBE-MCG run.
//!
//! [`RunCheckpoint`] captures the full mutable state of
//! [`crate::methods::EbeRunState`] at a step boundary — per-case Newmark
//! vectors, both predictor histories, the adaptive-window controller, the
//! modeled clock, and every record/recovery accumulated so far — in the
//! sectioned, checksummed `hetsolve-ckpt` format. Restoring rebuilds an
//! `EbeRunState` that continues *bitwise-identically* to the uninterrupted
//! run: the random load regenerates from the stored per-case seed, and the
//! step scratch is recomputed by the first `prepare_step` after resume.
//!
//! A [`ConfigFingerprint`] of `(backend, cfg)` is stored in the header
//! section; a checkpoint restored against a different problem or run
//! configuration fails typed (and the store falls back to older files)
//! instead of silently resuming the wrong simulation.

use hetsolve_ckpt::{fnv1a, mix64, CkptError, Dec, Enc, SectionReader, SectionWriter};
use hetsolve_machine::ClockState;
use hetsolve_obs::Termination;

use crate::backend::Backend;
use crate::integrity::{CorruptTarget, CorruptionAction, CorruptionReport};
use crate::methods::{EbeRunState, RunConfig, StepRecord, WindowPolicy};
use crate::recovery::{GuessSource, RecoveryEvent};
use crate::slot::CaseSlot;

/// Section tags of the run-checkpoint format.
const TAG_META: [u8; 4] = *b"META";
const TAG_SLOTS: [u8; 4] = *b"SLOT";
const TAG_ADAPTIVE: [u8; 4] = *b"ADPT";
const TAG_CLOCK: [u8; 4] = *b"CLK\0";
const TAG_RECORDS: [u8; 4] = *b"RECS";
const TAG_RECOVERIES: [u8; 4] = *b"RCVR";
/// Integrity section (corruption reports) — optional for backward
/// compatibility: checkpoints written before the SDC defense simply have
/// no reports.
const TAG_INTEGRITY: [u8; 4] = *b"INTG";

/// Hash of everything that determines a run's trajectory but is *not*
/// stored in the checkpoint (it is rebuilt from `(backend, cfg)` on
/// restore). Restoring under a different fingerprint is typed corruption:
/// the snapshot describes a different simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigFingerprint(pub u64);

impl ConfigFingerprint {
    pub fn of(backend: &Backend, cfg: &RunConfig) -> Self {
        let mut h = fnv1a(cfg.method.label().as_bytes());
        h = mix64(h, backend.n_dofs() as u64);
        h = mix64(h, cfg.r as u64);
        h = mix64(h, cfg.s_max as u64);
        h = mix64(h, cfg.region_dofs as u64);
        h = mix64(h, cfg.tol.to_bits());
        h = mix64(
            h,
            match cfg.window {
                WindowPolicy::Adaptive => 0,
                WindowPolicy::FullWindow => 1,
            },
        );
        h = mix64(h, cfg.n_steps as u64);
        h = mix64(h, cfg.seed);
        h = mix64(h, cfg.cpu_threads as u64);
        h = mix64(h, cfg.load.n_sources as u64);
        h = mix64(h, cfg.load.impulses_per_source.to_bits());
        h = mix64(h, cfg.load.amplitude.to_bits());
        h = mix64(h, cfg.load.active_window.to_bits());
        h = mix64(h, cfg.record_surface as u64);
        ConfigFingerprint(h)
    }
}

/// Everything needed to rebuild one [`CaseSlot`] bitwise (the load
/// regenerates from `seed`; step scratch is recomputed on resume).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotState {
    pub seed: u64,
    pub n_steps: usize,
    pub step: usize,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub a: Vec<f64>,
    pub adams_hist: Vec<Vec<f64>>,
    pub dd_hist: Vec<Vec<f64>>,
    pub waveform: Vec<Vec<f64>>,
}

impl SlotState {
    /// Encode into `enc` (shared with the serve-layer checkpoint).
    pub fn encode_into(&self, enc: &mut Enc) {
        enc.put_u64(self.seed);
        enc.put_usize(self.n_steps);
        enc.put_usize(self.step);
        enc.put_f64s(&self.u);
        enc.put_f64s(&self.v);
        enc.put_f64s(&self.a);
        enc.put_f64_vecs(&self.adams_hist);
        enc.put_f64_vecs(&self.dd_hist);
        enc.put_f64_vecs(&self.waveform);
    }

    /// Inverse of [`SlotState::encode_into`].
    pub fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(SlotState {
            seed: dec.u64()?,
            n_steps: dec.usize_()?,
            step: dec.usize_()?,
            u: dec.f64s()?,
            v: dec.f64s()?,
            a: dec.f64s()?,
            adams_hist: dec.f64_vecs()?,
            dd_hist: dec.f64_vecs()?,
            waveform: dec.f64_vecs()?,
        })
    }
}

fn encode_record(enc: &mut Enc, r: &StepRecord) {
    enc.put_usize(r.step);
    enc.put_f64(r.step_time_per_case);
    enc.put_f64(r.solver_time_per_case);
    enc.put_f64(r.predictor_time_per_case);
    enc.put_f64(r.transfer_time);
    enc.put_f64(r.iterations);
    enc.put_usize(r.s_used);
    enc.put_f64(r.initial_rel_res);
}

fn decode_record(dec: &mut Dec<'_>) -> Result<StepRecord, CkptError> {
    Ok(StepRecord {
        step: dec.usize_()?,
        step_time_per_case: dec.f64()?,
        solver_time_per_case: dec.f64()?,
        predictor_time_per_case: dec.f64()?,
        transfer_time: dec.f64()?,
        iterations: dec.f64()?,
        s_used: dec.usize_()?,
        initial_rel_res: dec.f64()?,
    })
}

/// Encode one [`RecoveryEvent`] (shared with the serve-layer checkpoint).
pub fn encode_recovery_event(enc: &mut Enc, ev: &RecoveryEvent) {
    enc.put_usize(ev.step);
    enc.put_opt_u64(ev.case.map(|c| c as u64));
    enc.put_usize(ev.set);
    enc.put_u8(ev.failed.code());
    enc.put_u8(ev.recovered_with.code());
    enc.put_usize(ev.attempts);
}

/// Decode one [`RecoveryEvent`]; unknown wire codes are typed corruption.
pub fn decode_recovery_event(dec: &mut Dec<'_>) -> Result<RecoveryEvent, CkptError> {
    let step = dec.usize_()?;
    let case = dec.opt_u64()?.map(|c| c as usize);
    let set = dec.usize_()?;
    let failed = Termination::from_code(dec.u8()?)
        .ok_or_else(|| CkptError::Corrupt("unknown termination code".into()))?;
    let recovered_with = GuessSource::from_code(dec.u8()?)
        .ok_or_else(|| CkptError::Corrupt("unknown guess-source code".into()))?;
    let attempts = dec.usize_()?;
    Ok(RecoveryEvent {
        step,
        case,
        set,
        failed,
        recovered_with,
        attempts,
    })
}

/// Encode one [`CorruptionReport`] (shared with the serve-layer
/// checkpoint).
pub fn encode_corruption_report(enc: &mut Enc, rep: &CorruptionReport) {
    enc.put_usize(rep.step);
    enc.put_opt_u64(rep.case.map(|c| c as u64));
    enc.put_u8(rep.target.code());
    enc.put_u8(rep.action.code());
}

/// Decode one [`CorruptionReport`]; unknown wire codes are typed
/// corruption.
pub fn decode_corruption_report(dec: &mut Dec<'_>) -> Result<CorruptionReport, CkptError> {
    let step = dec.usize_()?;
    let case = dec.opt_u64()?.map(|c| c as usize);
    let target = CorruptTarget::from_code(dec.u8()?)
        .ok_or_else(|| CkptError::Corrupt("unknown corruption-target code".into()))?;
    let action = CorruptionAction::from_code(dec.u8()?)
        .ok_or_else(|| CkptError::Corrupt("unknown corruption-action code".into()))?;
    Ok(CorruptionReport {
        step,
        case,
        target,
        action,
    })
}

/// Encode one [`ClockState`] (shared with the serve-layer checkpoint).
pub fn encode_clock_state(enc: &mut Enc, cs: &ClockState) {
    enc.put_f64(cs.cpu_time);
    enc.put_f64(cs.cpu_busy);
    enc.put_f64(cs.cpu_busy_energy);
    enc.put_f64(cs.gpu_time);
    enc.put_f64(cs.gpu_busy);
    enc.put_f64(cs.gpu_busy_energy);
}

/// Decode one [`ClockState`].
pub fn decode_clock_state(dec: &mut Dec<'_>) -> Result<ClockState, CkptError> {
    Ok(ClockState {
        cpu_time: dec.f64()?,
        cpu_busy: dec.f64()?,
        cpu_busy_energy: dec.f64()?,
        gpu_time: dec.f64()?,
        gpu_busy: dec.f64()?,
        gpu_busy_energy: dec.f64()?,
    })
}

/// One crash-consistent snapshot of an EBE-MCG run at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    pub fingerprint: ConfigFingerprint,
    /// Next step boundary the resumed run executes.
    pub step: usize,
    pub slots: Vec<SlotState>,
    pub adaptive_s: usize,
    pub adaptive_unit_cost: Option<f64>,
    pub clock: ClockState,
    pub records: Vec<StepRecord>,
    pub recoveries: Vec<RecoveryEvent>,
    pub corruptions: Vec<CorruptionReport>,
}

impl RunCheckpoint {
    /// Snapshot `st` as it stands at a step boundary.
    pub(crate) fn capture(st: &EbeRunState, fingerprint: ConfigFingerprint) -> Self {
        let (adaptive_s, adaptive_unit_cost) = st.adaptive.state();
        RunCheckpoint {
            fingerprint,
            step: st.step,
            slots: st.cases.iter().map(CaseSlot::state).collect(),
            adaptive_s,
            adaptive_unit_cost,
            clock: st.clock.state(),
            records: st.records.clone(),
            recoveries: st.recoveries.clone(),
            corruptions: st.corruptions.clone(),
        }
    }

    /// Serialize into the sectioned `hetsolve-ckpt` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        let mut meta = Enc::new();
        meta.put_u64(self.fingerprint.0);
        meta.put_usize(self.step);
        w.section(TAG_META, &meta.into_bytes());

        let mut slots = Enc::new();
        slots.put_usize(self.slots.len());
        for s in &self.slots {
            s.encode_into(&mut slots);
        }
        w.section(TAG_SLOTS, &slots.into_bytes());

        let mut adpt = Enc::new();
        adpt.put_usize(self.adaptive_s);
        adpt.put_opt_f64(self.adaptive_unit_cost);
        w.section(TAG_ADAPTIVE, &adpt.into_bytes());

        let mut clk = Enc::new();
        encode_clock_state(&mut clk, &self.clock);
        w.section(TAG_CLOCK, &clk.into_bytes());

        let mut recs = Enc::new();
        recs.put_usize(self.records.len());
        for r in &self.records {
            encode_record(&mut recs, r);
        }
        w.section(TAG_RECORDS, &recs.into_bytes());

        let mut rcvr = Enc::new();
        rcvr.put_usize(self.recoveries.len());
        for ev in &self.recoveries {
            encode_recovery_event(&mut rcvr, ev);
        }
        w.section(TAG_RECOVERIES, &rcvr.into_bytes());

        let mut intg = Enc::new();
        intg.put_usize(self.corruptions.len());
        for rep in &self.corruptions {
            encode_corruption_report(&mut intg, rep);
        }
        w.section(TAG_INTEGRITY, &intg.into_bytes());
        w.finish()
    }

    /// Parse and validate a snapshot. A fingerprint mismatch is typed
    /// corruption (the snapshot belongs to a different run), so
    /// `CheckpointStore::load_latest_valid` treats it as a skip and keeps
    /// scanning older files.
    pub fn from_bytes(bytes: &[u8], expect: ConfigFingerprint) -> Result<Self, CkptError> {
        let r = SectionReader::parse(bytes)?;
        let mut meta = Dec::new(r.section(TAG_META)?);
        let fingerprint = ConfigFingerprint(meta.u64()?);
        let step = meta.usize_()?;
        meta.finish()?;
        if fingerprint != expect {
            return Err(CkptError::Corrupt(format!(
                "config fingerprint mismatch: checkpoint {:#018x}, run {:#018x}",
                fingerprint.0, expect.0
            )));
        }

        let mut sd = Dec::new(r.section(TAG_SLOTS)?);
        let n_slots = sd.usize_()?;
        let mut slots = Vec::with_capacity(n_slots.min(1 << 16));
        for _ in 0..n_slots {
            slots.push(SlotState::decode_from(&mut sd)?);
        }
        sd.finish()?;

        let mut ad = Dec::new(r.section(TAG_ADAPTIVE)?);
        let adaptive_s = ad.usize_()?;
        let adaptive_unit_cost = ad.opt_f64()?;
        ad.finish()?;

        let mut cd = Dec::new(r.section(TAG_CLOCK)?);
        let clock = decode_clock_state(&mut cd)?;
        cd.finish()?;

        let mut rd = Dec::new(r.section(TAG_RECORDS)?);
        let n_recs = rd.usize_()?;
        let mut records = Vec::with_capacity(n_recs.min(1 << 20));
        for _ in 0..n_recs {
            records.push(decode_record(&mut rd)?);
        }
        rd.finish()?;

        let mut vd = Dec::new(r.section(TAG_RECOVERIES)?);
        let n_rcv = vd.usize_()?;
        let mut recoveries = Vec::with_capacity(n_rcv.min(1 << 20));
        for _ in 0..n_rcv {
            recoveries.push(decode_recovery_event(&mut vd)?);
        }
        vd.finish()?;

        // INTG is optional: pre-SDC checkpoints restore with no reports
        let mut corruptions = Vec::new();
        if r.has(TAG_INTEGRITY) {
            let mut id = Dec::new(r.section(TAG_INTEGRITY)?);
            let n_intg = id.usize_()?;
            corruptions.reserve(n_intg.min(1 << 20));
            for _ in 0..n_intg {
                corruptions.push(decode_corruption_report(&mut id)?);
            }
            id.finish()?;
        }

        Ok(RunCheckpoint {
            fingerprint,
            step,
            slots,
            adaptive_s,
            adaptive_unit_cost,
            clock,
            records,
            recoveries,
            corruptions,
        })
    }

    /// Rebuild the run state this snapshot was captured from. The returned
    /// state continues bitwise-identically to the uninterrupted run.
    pub(crate) fn into_state(self, backend: &Backend, cfg: &RunConfig) -> EbeRunState {
        let mut st = EbeRunState::new(backend, cfg);
        st.cases = self
            .slots
            .iter()
            .map(|s| CaseSlot::from_state(backend, cfg, s))
            .collect();
        st.clock.restore_state(&self.clock);
        st.adaptive
            .restore_state(self.adaptive_s, self.adaptive_unit_cost);
        st.records = self.records;
        st.recoveries = self.recoveries;
        st.corruptions = self.corruptions;
        st.step = self.step;
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fem::FemProblem;
    use hetsolve_machine::single_gh200;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    use crate::methods::MethodKind;

    fn small() -> (Backend, RunConfig) {
        let spec = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), true, false);
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 4);
        cfg.r = 2;
        cfg.s_max = 4;
        cfg.region_dofs = 64;
        (backend, cfg)
    }

    #[test]
    fn fingerprint_tracks_config() {
        let (backend, cfg) = small();
        let fp = ConfigFingerprint::of(&backend, &cfg);
        assert_eq!(fp, ConfigFingerprint::of(&backend, &cfg), "deterministic");
        let mut other = cfg.clone();
        other.seed += 1;
        assert_ne!(fp, ConfigFingerprint::of(&backend, &other));
        let mut other = cfg;
        other.tol *= 10.0;
        assert_ne!(fp, ConfigFingerprint::of(&backend, &other));
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let (backend, cfg) = small();
        let fp = ConfigFingerprint::of(&backend, &cfg);
        let mut st = EbeRunState::new(&backend, &cfg);
        let ctx = crate::methods::EbeRunCtx::new(&backend, &cfg);
        let mut tracer = crate::trace::StepTracer::disabled();
        let mut faults = hetsolve_fault::NoopFaults;
        st.step_once(&backend, &cfg, &mut tracer, &mut faults, &ctx)
            .unwrap();
        st.step_once(&backend, &cfg, &mut tracer, &mut faults, &ctx)
            .unwrap();

        let snap = RunCheckpoint::capture(&st, fp);
        let bytes = snap.to_bytes();
        let back = RunCheckpoint::from_bytes(&bytes, fp).unwrap();
        assert_eq!(snap, back);
        let restored = back.into_state(&backend, &cfg);
        assert_eq!(restored.step, st.step);
        for (a, b) in restored.cases.iter().zip(&st.cases) {
            assert_eq!(a.displacement(), b.displacement());
        }
    }

    #[test]
    fn wrong_fingerprint_is_typed_corruption() {
        let (backend, cfg) = small();
        let fp = ConfigFingerprint::of(&backend, &cfg);
        let st = EbeRunState::new(&backend, &cfg);
        let bytes = RunCheckpoint::capture(&st, fp).to_bytes();
        let err = RunCheckpoint::from_bytes(&bytes, ConfigFingerprint(fp.0 ^ 1)).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
    }
}
