//! Convergence study (the paper's Fig. 3): warm up a single-case
//! time-history simulation, then at one representative step solve the same
//! system repeatedly from different initial guesses — zero, Adams-Bashforth,
//! and the data-driven predictor at several window sizes — recording the
//! full CG residual history of each.

use hetsolve_fem::{RandomLoad, RandomLoadSpec};
use hetsolve_predictor::{AdamsState, DataDrivenPredictor};
use hetsolve_sparse::{pcg, CgConfig, CgStats};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::backend::{Backend, RhsScratch};

/// One initial-guess strategy probed by the study.
#[derive(Debug, Clone)]
pub struct GuessResult {
    pub label: String,
    /// `‖r₀‖/‖f‖` of the guess.
    pub initial_rel_res: f64,
    pub iterations: usize,
    /// Residual history, index 0 = initial.
    pub history: Vec<f64>,
}

/// Full study output.
#[derive(Debug, Clone)]
pub struct ConvergenceStudy {
    /// Step at which the probe was taken.
    pub probe_step: usize,
    pub results: Vec<GuessResult>,
}

/// Configuration of the study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Time steps to simulate before probing (history build-up).
    pub warmup_steps: usize,
    /// Data-driven windows to probe (paper: 8, 16, 32).
    pub windows: Vec<usize>,
    pub region_dofs: usize,
    pub tol: f64,
    pub seed: u64,
    pub load: RandomLoadSpec,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            warmup_steps: 48,
            windows: vec![8, 16, 32],
            region_dofs: 384,
            tol: 1e-8,
            seed: 4242,
            load: RandomLoadSpec {
                n_sources: 12,
                impulses_per_source: 3.0,
                amplitude: 1e6,
                active_window: 0.3,
            },
        }
    }
}

/// Run the study on a backend (uses the matrix-free operator).
pub fn convergence_study(backend: &Backend, cfg: &StudyConfig) -> ConvergenceStudy {
    let n = backend.n_dofs();
    let s_max = cfg.windows.iter().copied().max().unwrap_or(8).max(1);
    assert!(
        cfg.warmup_steps > s_max + 4,
        "warmup ({}) must exceed the largest window ({s_max}) plus AB history",
        cfg.warmup_steps
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let load = RandomLoad::generate(
        &cfg.load,
        &backend.problem.surface_nodes,
        cfg.warmup_steps + 1,
        &mut rng,
    );

    let mut time = hetsolve_fem::TimeState::zeros(n);
    let mut adams = AdamsState::new();
    let mut dd = DataDrivenPredictor::new(n, cfg.region_dofs.max(3), s_max);
    let mut scratch = RhsScratch::new(n);
    let mut f = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut guess = vec![0.0; n];
    let op = backend.ebe_a(1);
    let dt = backend.problem.newmark.dt;
    let solve_cfg = CgConfig {
        tol: cfg.tol,
        max_iter: 100_000,
        ..CgConfig::default()
    };

    // warm up with the standard data-driven-accelerated loop so the
    // snapshot history reflects a realistic mid-simulation state
    for step in 0..cfg.warmup_steps {
        load.force_into(step, &mut f);
        backend.problem.mask.project(&mut f);
        backend.newmark_rhs(&f, &time.u, &time.v, &time.a, &mut rhs, &mut scratch);
        adams.predict(&time.u, dt, &mut guess);
        backend.problem.mask.project(&mut guess);
        let ab_guess = guess.clone();
        let mut corr = vec![0.0; n];
        if dd.predict(dd.available_s().min(s_max), &mut corr) {
            for (g, c) in guess.iter_mut().zip(&corr) {
                *g += c;
            }
            backend.problem.mask.project(&mut guess);
        }
        let mut x = guess.clone();
        let stats = pcg(&op, &backend.precond, &rhs, &mut x, &solve_cfg);
        assert!(stats.converged, "warmup CG failed at step {step}");
        let delta: Vec<f64> = x.iter().zip(&ab_guess).map(|(u, g)| u - g).collect();
        dd.record(&delta);
        let u_old = std::mem::replace(&mut time.u, x);
        backend
            .problem
            .newmark
            .advance(&time.u, &u_old, &mut time.v, &mut time.a);
        adams.push(&time.v);
        time.step += 1;
    }

    // probe step: assemble its RHS once, then solve from each guess
    let probe = cfg.warmup_steps;
    load.force_into(probe, &mut f);
    backend.problem.mask.project(&mut f);
    backend.newmark_rhs(&f, &time.u, &time.v, &time.a, &mut rhs, &mut scratch);

    let run_one = |label: String, x0: &[f64]| -> GuessResult {
        let mut x = x0.to_vec();
        backend.problem.mask.project(&mut x);
        let stats: CgStats = pcg(&op, &backend.precond, &rhs, &mut x, &solve_cfg);
        GuessResult {
            label,
            initial_rel_res: stats.initial_rel_res,
            iterations: stats.iterations,
            history: stats.history,
        }
    };

    let mut results = Vec::new();
    results.push(run_one("zero".into(), &vec![0.0; n]));
    adams.predict(&time.u, dt, &mut guess);
    results.push(run_one("Adams-Bashforth".into(), &guess.clone()));
    for &s in &cfg.windows {
        let mut g = guess.clone();
        let mut corr = vec![0.0; n];
        if dd.predict(s, &mut corr) {
            for (gi, c) in g.iter_mut().zip(&corr) {
                *gi += c;
            }
        }
        results.push(run_one(format!("data-driven s={s}"), &g));
    }

    ConvergenceStudy {
        probe_step: probe,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_fem::FemProblem;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    #[test]
    fn study_reproduces_fig3_ordering() {
        let spec = GroundModelSpec::paper_like(4, 4, 3, InterfaceShape::Stratified);
        let backend = Backend::new(FemProblem::paper_like(&spec), false, true);
        let cfg = StudyConfig {
            warmup_steps: 24,
            windows: vec![4, 8, 16],
            ..Default::default()
        };
        let study = convergence_study(&backend, &cfg);
        assert_eq!(study.results.len(), 5);
        let by_label: Vec<(&str, usize, f64)> = study
            .results
            .iter()
            .map(|r| (r.label.as_str(), r.iterations, r.initial_rel_res))
            .collect();
        // zero is worst; AB better; data-driven better still (paper Fig. 3)
        let zero = by_label[0];
        let ab = by_label[1];
        let dd16 = by_label[4];
        assert!(ab.1 <= zero.1, "AB {} vs zero {}", ab.1, zero.1);
        assert!(dd16.1 < ab.1, "dd s=16 {} vs AB {}", dd16.1, ab.1);
        assert!(dd16.2 < ab.2, "dd initial res {} vs AB {}", dd16.2, ab.2);
        // larger window at least as good as the smallest
        let dd4 = by_label[2];
        assert!(dd16.1 <= dd4.1 + 2);
        // histories recorded
        for r in &study.results {
            assert_eq!(r.history.len(), r.iterations + 1);
        }
    }
}
