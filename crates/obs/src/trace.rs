//! Chrome-trace-event timeline export.
//!
//! [`TraceBuilder`] collects complete ("ph":"X") spans, counter ("ph":"C")
//! samples and process/thread metadata, and serializes them in the Chrome
//! trace-event JSON format understood by Perfetto (`ui.perfetto.dev`) and
//! `chrome://tracing`. A traced `EBE-MCG@CPU-GPU` run reproduces the
//! paper's Fig. 4 overlap diagram: one *process* per process set, one
//! *thread* per device lane (CPU / GPU / C2C link), the predictor spans
//! visibly hidden behind the solver spans, and the adaptive window `s` as a
//! counter track.
//!
//! Timestamps are microseconds (the format's native unit). Modeled
//! timelines pass modeled seconds scaled by 1e6; wall-clock timelines pass
//! real elapsed microseconds — the schema is identical.

use std::io;
use std::path::Path;

use crate::json::Json;

/// Schema identifier embedded in every exported trace (`otherData.schema`).
pub const TRACE_SCHEMA: &str = "hetsolve/trace-event/v1";

/// One trace event. `dur_us` is `None` for counter samples.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    /// Category: "cpu", "gpu", "link", "wall", ...
    pub cat: String,
    /// "X" (complete span), "C" (counter), "i" (instant), or the flow
    /// phases "s"/"t"/"f" (start/step/end).
    pub ph: char,
    /// Process id — one per process set in the pipelined methods.
    pub pid: usize,
    /// Thread id — one per device lane.
    pub tid: usize,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Span duration in microseconds (spans only).
    pub dur_us: Option<f64>,
    /// Flow-event binding id (flow phases only). Stable per request, so a
    /// case's life is followable across lanes and restarts.
    pub id: Option<u64>,
    /// Extra payload rendered into `args`.
    pub args: Vec<(String, Json)>,
}

/// Builder for one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
    /// (pid, name) and (pid, tid, name) metadata.
    process_names: Vec<(usize, String)>,
    thread_names: Vec<(usize, usize, String)>,
    meta: Vec<(String, Json)>,
}

impl TraceBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Label a process row (e.g. "process set A").
    pub fn name_process(&mut self, pid: usize, name: &str) {
        self.process_names.push((pid, name.to_string()));
    }

    /// Label a thread row (e.g. "GPU (solver)").
    pub fn name_thread(&mut self, pid: usize, tid: usize, name: &str) {
        self.thread_names.push((pid, tid, name.to_string()));
    }

    /// Attach run-level metadata (method label, tolerance, ...) exported
    /// under `otherData`.
    pub fn set_meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Record a complete span. Times are in microseconds.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        pid: usize,
        tid: usize,
        cat: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            pid,
            tid,
            ts_us,
            dur_us: Some(dur_us),
            id: None,
            args,
        });
    }

    /// Record an instant event (a labeled tick mark on a thread row).
    pub fn instant(
        &mut self,
        pid: usize,
        tid: usize,
        cat: &str,
        name: &str,
        ts_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            pid,
            tid,
            ts_us,
            dur_us: None,
            id: None,
            args,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn flow(
        &mut self,
        ph: char,
        pid: usize,
        tid: usize,
        cat: &str,
        name: &str,
        ts_us: f64,
        id: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph,
            pid,
            tid,
            ts_us,
            dur_us: None,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Begin a flow (ph "s"). Perfetto draws an arrow from here to the
    /// next flow step/end with the same `id`.
    pub fn flow_start(
        &mut self,
        pid: usize,
        tid: usize,
        cat: &str,
        name: &str,
        ts_us: f64,
        id: u64,
    ) {
        self.flow('s', pid, tid, cat, name, ts_us, id);
    }

    /// Continue a flow (ph "t") — an intermediate hop, possibly on a
    /// different pid/tid than the start.
    pub fn flow_step(
        &mut self,
        pid: usize,
        tid: usize,
        cat: &str,
        name: &str,
        ts_us: f64,
        id: u64,
    ) {
        self.flow('t', pid, tid, cat, name, ts_us, id);
    }

    /// End a flow (ph "f", binding-point "e").
    pub fn flow_end(&mut self, pid: usize, tid: usize, cat: &str, name: &str, ts_us: f64, id: u64) {
        self.flow('f', pid, tid, cat, name, ts_us, id);
    }

    /// Record a counter sample (rendered as a step chart in Perfetto).
    pub fn counter(&mut self, pid: usize, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: 'C',
            pid,
            tid: 0,
            ts_us,
            dur_us: None,
            id: None,
            args: series
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                .collect(),
        });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize to the Chrome trace-event JSON object format.
    pub fn to_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(
            self.events.len() + self.process_names.len() + self.thread_names.len(),
        );
        for (pid, name) in &self.process_names {
            events.push(meta_event("process_name", *pid, 0, name));
        }
        for (pid, tid, name) in &self.thread_names {
            events.push(meta_event("thread_name", *pid, *tid, name));
        }
        for e in &self.events {
            let mut obj = vec![
                ("name", Json::Str(e.name.clone())),
                ("cat", Json::Str(e.cat.clone())),
                ("ph", Json::Str(e.ph.to_string())),
                ("pid", Json::from(e.pid)),
                ("tid", Json::from(e.tid)),
                ("ts", Json::Num(e.ts_us)),
            ];
            if let Some(dur) = e.dur_us {
                obj.push(("dur", Json::Num(dur)));
            }
            if let Some(id) = e.id {
                // flow ids are rendered as strings: u64 survives JSON
                obj.push(("id", Json::Str(format!("{id:#x}"))));
            }
            if e.ph == 'i' {
                obj.push(("s", Json::from("t"))); // thread-scoped instant
            }
            if e.ph == 'f' {
                obj.push(("bp", Json::from("e"))); // bind to enclosing slice
            }
            if !e.args.is_empty() {
                obj.push(("args", Json::Obj(e.args.iter().cloned().collect())));
            }
            events.push(Json::obj(obj));
        }
        let mut other: Vec<(&'static str, Json)> = vec![("schema", Json::from(TRACE_SCHEMA))];
        let extra: Json = Json::Obj(self.meta.iter().cloned().collect());
        other.push(("run", extra));
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            ("otherData", Json::obj(other)),
        ])
    }

    /// Write the trace to `path` (pretty-printed; Perfetto accepts both).
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Stable flow id for a request. Derived purely from the request id (no
/// lane, tick or restart state), so the same case carries the same flow id
/// on whichever lane it lands after a restart — Perfetto then draws one
/// continuous arrow chain across lanes. Offset by 1 so id 0 stays valid
/// (flow id 0 is reserved-looking in some viewers).
pub fn flow_id_for_request(request_id: u64) -> u64 {
    request_id.wrapping_add(1)
}

fn meta_event(kind: &str, pid: usize, tid: usize, name: &str) -> Json {
    Json::obj([
        ("name", Json::from(kind)),
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", Json::obj([("name", Json::from(name))])),
    ])
}

/// Check that spans on each (pid, tid) lane are non-overlapping — a lane is
/// a serial device timeline, so overlap means the exporter mislabeled
/// concurrency. Returns the offending pair on failure. `tol_us` absorbs
/// floating-point rounding at span boundaries.
pub fn validate_lane_serialization(
    events: &[TraceEvent],
    tol_us: f64,
) -> Result<(), Box<(TraceEvent, TraceEvent)>> {
    let mut lanes: std::collections::BTreeMap<(usize, usize), Vec<&TraceEvent>> =
        std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.ph == 'X') {
        lanes.entry((e.pid, e.tid)).or_default().push(e);
    }
    for spans in lanes.values_mut() {
        spans.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        for pair in spans.windows(2) {
            let end = pair[0].ts_us + pair[0].dur_us.unwrap_or(0.0);
            if pair[1].ts_us < end - tol_us {
                return Err(Box::new((pair[0].clone(), pair[1].clone())));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn sample() -> TraceBuilder {
        let mut t = TraceBuilder::new();
        t.name_process(0, "process set A");
        t.name_thread(0, 1, "GPU (solver)");
        t.set_meta("method", Json::from("EBE-MCG@CPU-GPU"));
        t.span(
            0,
            1,
            "gpu",
            "solver",
            0.0,
            100.0,
            vec![("iterations".to_string(), Json::from(42usize))],
        );
        t.span(0, 0, "cpu", "predictor", 10.0, 50.0, vec![]);
        t.counter(0, "window", 0.0, &[("s", 4.0)]);
        t
    }

    #[test]
    fn export_parses_and_has_schema() {
        let text = sample().to_json().to_string_pretty();
        let v = parse_json(&text).unwrap();
        assert_eq!(
            v.get("otherData").unwrap().get("schema").unwrap().as_str(),
            Some(TRACE_SCHEMA)
        );
        let events = v.get("traceEvents").unwrap().items();
        // 2 metadata + 2 spans + 1 counter
        assert_eq!(events.len(), 5);
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("dur").and_then(Json::as_f64) == Some(100.0)
        }));
    }

    #[test]
    fn lanes_serial_passes_for_disjoint_spans() {
        let mut t = TraceBuilder::new();
        t.span(0, 0, "cpu", "a", 0.0, 10.0, vec![]);
        t.span(0, 0, "cpu", "b", 10.0, 10.0, vec![]);
        t.span(0, 1, "gpu", "c", 5.0, 10.0, vec![]); // other lane may overlap
        assert!(validate_lane_serialization(t.events(), 1e-6).is_ok());
    }

    #[test]
    fn lanes_serial_catches_overlap() {
        let mut t = TraceBuilder::new();
        t.span(0, 0, "cpu", "a", 0.0, 10.0, vec![]);
        t.span(0, 0, "cpu", "b", 5.0, 10.0, vec![]);
        let err = validate_lane_serialization(t.events(), 1e-6).unwrap_err();
        assert_eq!(err.0.name, "a");
        assert_eq!(err.1.name, "b");
    }

    /// A span name with every JSON-hostile character class must survive
    /// export and re-parse byte-for-byte.
    #[test]
    fn span_names_are_json_escaped() {
        let hostile = "fused \"MCG\" \\ solve\n\tπ/2 \u{1} end";
        let mut t = TraceBuilder::new();
        t.span(0, 0, "cpu", hostile, 0.0, 1.0, vec![]);
        let text = t.to_json().to_string_pretty();
        let v = parse_json(&text).expect("escaped export must stay valid JSON");
        let name = v.get("traceEvents").unwrap().items()[0]
            .get("name")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(name, hostile);
    }

    /// An empty builder still exports a complete, parseable document with
    /// the schema tag and an empty (not absent) traceEvents array.
    #[test]
    fn empty_trace_exports_valid_document() {
        let t = TraceBuilder::new();
        assert!(t.is_empty());
        let text = t.to_json().to_string_pretty();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().items().len(), 0);
        assert_eq!(
            v.get("otherData").unwrap().get("schema").unwrap().as_str(),
            Some(TRACE_SCHEMA)
        );
    }

    /// Flow events serialize with the binding id and the "f" phase gets
    /// the enclosing-slice binding point.
    #[test]
    fn flow_events_carry_stable_ids() {
        let id = flow_id_for_request(41);
        assert_eq!(id, 42);
        // purely a function of the request id: stable across "restarts"
        assert_eq!(flow_id_for_request(41), id);
        let mut t = TraceBuilder::new();
        t.flow_start(0, 0, "request", "admitted", 0.0, id);
        t.flow_step(1, 1, "request", "step", 5.0, id); // another lane
        t.flow_end(2, 1, "request", "done", 9.0, id); // a third lane
        t.instant(0, 0, "request", "evicted", 9.5, vec![]);
        let text = t.to_json().to_string_pretty();
        let v = parse_json(&text).unwrap();
        let events = v.get("traceEvents").unwrap().items();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, ["s", "t", "f", "i"]);
        // all three flow hops share one id even though pids differ
        let ids: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, ["0x2a", "0x2a", "0x2a"]);
        let end = &events[2];
        assert_eq!(end.get("bp").and_then(Json::as_str), Some("e"));
        let inst = &events[3];
        assert_eq!(inst.get("s").and_then(Json::as_str), Some("t"));
    }
}
