//! The committed metric-name registry.
//!
//! Every metric name used anywhere in the workspace is declared exactly
//! once in [`METRICS`], together with its kind. The `cargo xtask analyze`
//! metric-names pass parses this table textually and fails CI on a
//! duplicate declaration or on a registry call site
//! (`.inc("...")` / `.gauge_set("...")` / `.observe("...")` /
//! `.merge_histogram("...")`) whose literal name is not declared here —
//! the textual twin of the checkpoint schema-drift pass. Keeping the table
//! in one file makes renames reviewable and the Prometheus page's
//! vocabulary diffable across PRs.
//!
//! Naming convention: `<layer>_<quantity>[_<unit>][_total]`, with `_total`
//! reserved for monotonic counters and `_s` for seconds, following the
//! Prometheus naming guide.

/// `(name, kind)` for every declared metric. Kinds are `"counter"`,
/// `"gauge"` or `"histogram"`.
pub const METRICS: &[(&str, &str)] = &[
    // core driver phase timers (modeled seconds per step, per lane kind)
    ("core_phase_cpu_s", "histogram"),
    ("core_phase_gpu_s", "histogram"),
    ("core_phase_link_s", "histogram"),
    // core driver totals
    ("core_steps_total", "counter"),
    ("core_flops_total", "counter"),
    ("core_bytes_total", "counter"),
    ("core_recoveries_total", "counter"),
    ("core_ckpt_writes_total", "counter"),
    ("core_ckpt_restores_total", "counter"),
    // silent-data-corruption defense: detections and completed recoveries
    ("core_sdc_detected_total", "counter"),
    ("core_sdc_recovered_total", "counter"),
    // adaptive snapshot window currently in force
    ("core_window_s", "gauge"),
    // serving layer counters (mirror the ServeStats JSON fields)
    ("serve_requests_admitted_total", "counter"),
    ("serve_requests_completed_total", "counter"),
    ("serve_requests_failed_total", "counter"),
    ("serve_requests_evicted_total", "counter"),
    ("serve_requests_rejected_total", "counter"),
    ("serve_requests_shed_total", "counter"),
    ("serve_watchdog_breaches_total", "counter"),
    ("serve_watchdog_restarts_total", "counter"),
    // multi-tenant QoS: early (provably-unmeetable) sheds, requests that
    // missed their deadline or their tenant's SLO target, lane-scaling
    // events taken by the autoscaler
    ("serve_shed_early_total", "counter"),
    ("serve_deadline_miss_total", "counter"),
    ("serve_slo_miss_total", "counter"),
    ("serve_autoscale_events_total", "counter"),
    // cluster serving layer: node loss, restart-on-peer failover,
    // cross-node work stealing and replica mirroring
    ("serve_node_crashes_total", "counter"),
    ("serve_failovers_total", "counter"),
    ("serve_requests_stolen_total", "counter"),
    ("serve_replica_writes_total", "counter"),
    ("serve_replica_skipped_total", "counter"),
    // serving-layer SDC ladder: detections, lane restarts and evictions
    // forced by persistent corruption
    ("serve_sdc_detected_total", "counter"),
    ("serve_sdc_restarts_total", "counter"),
    ("serve_sdc_evictions_total", "counter"),
    // serving layer gauges
    ("serve_queue_depth", "gauge"),
    ("serve_lane_occupancy", "gauge"),
    ("serve_lanes", "gauge"),
    ("serve_tenants", "gauge"),
    ("serve_elapsed_s", "gauge"),
    ("serve_shards", "gauge"),
    ("serve_link_time_s", "gauge"),
    // end-to-end queue-to-done latency (modeled seconds)
    ("serve_request_latency_s", "histogram"),
    // modeled seconds from node loss to the shard serving again on a peer
    ("serve_failover_recovery_s", "histogram"),
    // modeled seconds from corruption detection to the lane serving again
    ("serve_sdc_recovery_s", "histogram"),
    // flight-recorder ring overflow
    ("flight_events_dropped_total", "counter"),
];

/// Kind of a declared metric, or `None` if the name is not registered.
pub fn kind_of(name: &str) -> Option<&'static str> {
    METRICS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, kind)| *kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_no_duplicates_and_only_known_kinds() {
        let mut seen = std::collections::BTreeSet::new();
        for (name, kind) in METRICS {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(
                matches!(*kind, "counter" | "gauge" | "histogram"),
                "unknown kind {kind} for {name}"
            );
        }
    }

    #[test]
    fn naming_convention_holds() {
        for (name, kind) in METRICS {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "{name} must be snake_case ascii"
            );
            if *kind == "counter" {
                assert!(
                    name.ends_with("_total"),
                    "counter {name} must end in _total"
                );
            } else {
                assert!(!name.ends_with("_total"), "{name} is not a counter");
            }
        }
    }

    #[test]
    fn kind_of_resolves_declared_names_only() {
        assert_eq!(kind_of("core_steps_total"), Some("counter"));
        assert_eq!(kind_of("serve_request_latency_s"), Some("histogram"));
        assert_eq!(kind_of("not_a_metric"), None);
    }
}
