//! Dependency-free metrics registry: named counters, gauges and
//! fixed-size log-bucketed histograms with mergeable snapshots.
//!
//! This is telemetry v2's answer to the unbounded `ServeStats` latency
//! vector: a [`LogHistogram`] stores any number of observations in a
//! fixed 170-slot array, so a 10^6-request soak costs the same memory as
//! a 10-request smoke test, and quantiles are an O(buckets) cumulative
//! walk instead of an O(n log n) sort per call.
//!
//! ## Bucket layout and quantile error bound
//!
//! Buckets subdivide each power-of-two octave into [`SUB`] = 4
//! geometrically-even slots, covering `[LO, LO << OCTAVES)` =
//! `[2^-30, 2^12)` ≈ `[9.3e-10, 4096)` — sub-nanosecond modeled phase
//! times up to hour-scale latencies. Within a bucket the true value and
//! the reported bound differ by at most the bucket width factor
//! `2^(1/4) ≈ 1.189`, so **any quantile is exact to within +19% relative
//! error** (quantiles report the bucket's upper bound, clamped to the
//! exact observed `[min, max]`; `p=0` and `p=1` are exact). Values below
//! the range land in the underflow bucket, above it in the overflow
//! bucket; both are still counted exactly in `count`/`sum`/`min`/`max`.
//!
//! Snapshots merge bucket-wise ([`LogHistogram::merge`]), so per-lane or
//! per-process histograms aggregate without resampling — the property
//! Prometheus clients rely on, reproduced here without the dependency.

use std::fmt::Write as _;

use crate::json::Json;
use crate::names::kind_of;

/// Sub-buckets per power-of-two octave.
const SUB: usize = 4;
/// Number of octaves covered: `[2^-30, 2^12)`.
const OCTAVES: usize = 42;
/// Lower edge of the first regular bucket.
const LO: f64 = 9.313_225_746_154_785e-10; // 2^-30
/// Bucket count: underflow + OCTAVES*SUB + overflow.
pub const HIST_BUCKETS: usize = 2 + OCTAVES * SUB;

/// Fixed-size log-bucketed histogram. See the module docs for the layout
/// and the ≤ 19% bucket-quantile error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a value. Non-finite and sub-range values go to the
    /// underflow bucket 0; values past the top octave to the last bucket.
    fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v < LO {
            return 0;
        }
        // log2(v / LO) scaled to quarter-octaves, truncated.
        let idx = ((v / LO).log2() * SUB as f64).floor();
        if idx < 0.0 {
            0
        } else if idx >= (OCTAVES * SUB) as f64 {
            HIST_BUCKETS - 1
        } else {
            1 + idx as usize
        }
    }

    /// Upper edge of a bucket (the value a quantile in it reports).
    fn bucket_upper(i: usize) -> f64 {
        if i == 0 {
            LO
        } else if i >= HIST_BUCKETS - 1 {
            f64::INFINITY
        } else {
            LO * 2f64.powf(i as f64 / SUB as f64)
        }
    }

    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Bucket-wise aggregation of another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest finite observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 || !self.min.is_finite() {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest finite observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 || !self.max.is_finite() {
            0.0
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Raw bucket counts (underflow, quarter-octave ladder, overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Nearest-rank quantile over the bucket cumulative: exact at `p ≤ 0`
    /// (min) and `p ≥ 1` (max), otherwise the upper bound of the bucket
    /// holding the rank, clamped to the exact observed `[min, max]` — so
    /// the error is bounded by the 2^(1/4) bucket width (≤ 19%).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if p <= 0.0 {
            return self.min();
        }
        if p >= 1.0 {
            return self.max();
        }
        // nearest-rank: the smallest rank k with k >= ceil(p * total)
        let rank = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Rebuild from checkpointed parts. A counts vector from a different
    /// build is resized (zero-padded or truncated) to the current layout;
    /// the exact `total`/`sum`/`min`/`max` stay authoritative either way.
    pub fn from_parts(counts: Vec<u64>, total: u64, sum: f64, min: f64, max: f64) -> Self {
        let mut counts = counts;
        counts.resize(HIST_BUCKETS, 0);
        LogHistogram {
            counts,
            total,
            sum,
            min,
            max,
        }
    }

    /// Checkpoint view of the exact `min` field (may be `+inf` when
    /// empty — the in-memory sentinel, unlike the clamped [`Self::min`]).
    pub fn raw_min(&self) -> f64 {
        self.min
    }

    /// Checkpoint view of the exact `max` field (see [`Self::raw_min`]).
    pub fn raw_max(&self) -> f64 {
        self.max
    }

    /// Compact JSON summary (bucket array elided; quantiles cover it).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.total as f64)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max())),
            ("mean", Json::from(self.mean())),
            ("p50", Json::from(self.quantile(0.50))),
            ("p95", Json::from(self.quantile(0.95))),
            ("p99", Json::from(self.quantile(0.99))),
        ])
    }
}

/// Named counters, gauges and histograms. Names must be declared in the
/// committed [`crate::names::METRICS`] table — enforced by a
/// `debug_assert` at first registration here and by the `cargo xtask
/// analyze` metric-names pass over call-site literals.
///
/// Backing storage is insertion-ordered `Vec`s, not hash maps: the
/// registry lives on observer seams where iteration order must be
/// deterministic (the workspace determinism lint bans hash-order
/// iteration in library paths), and the name population is the committed
/// table, small enough that linear probes beat hashing anyway.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, f64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
}

fn slot<'a, T: Default>(v: &'a mut Vec<(String, T)>, name: &str, kind: &str) -> &'a mut T {
    if let Some(i) = v.iter().position(|(n, _)| n == name) {
        return &mut v[i].1;
    }
    debug_assert_eq!(
        kind_of(name),
        Some(kind),
        "metric `{name}` must be declared as a {kind} in crates/obs/src/names.rs"
    );
    v.push((name.to_string(), T::default()));
    &mut v.last_mut().unwrap().1
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (monotonic by convention).
    pub fn inc(&mut self, name: &str, delta: f64) {
        *slot(&mut self.counters, name, "counter") += delta;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        *slot(&mut self.gauges, name, "gauge") = v;
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        slot(&mut self.histograms, name, "histogram").observe(v);
    }

    /// Merge an externally-built histogram into a named one.
    pub fn merge_histogram(&mut self, name: &str, h: &LogHistogram) {
        slot(&mut self.histograms, name, "histogram").merge(h);
    }

    /// Merge another registry: counters and histograms aggregate;
    /// gauges take the other registry's value (last write wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauge_set(name, *v);
        }
        for (name, h) in &other.histograms {
            self.merge_histogram(name, h);
        }
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// JSON snapshot: `{counters: {...}, gauges: {...}, histograms: {...}}`
    /// with sorted keys (the `Json::Obj` map sorts).
    pub fn to_json(&self) -> Json {
        let obj = |pairs: Vec<(String, Json)>| Json::Obj(pairs.into_iter().collect());
        Json::obj([
            (
                "counters",
                obj(self
                    .counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::from(*v)))
                    .collect()),
            ),
            (
                "gauges",
                obj(self
                    .gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::from(*v)))
                    .collect()),
            ),
            (
                "histograms",
                obj(self
                    .histograms
                    .iter()
                    .map(|(n, h)| (n.clone(), h.to_json()))
                    .collect()),
            ),
        ])
    }

    /// Prometheus text exposition (version 0.0.4): `# TYPE` lines, plain
    /// samples for counters/gauges, and cumulative `_bucket{le="..."}` /
    /// `_sum` / `_count` series for histograms (empty buckets elided;
    /// `le="+Inf"` always present). Names are emitted sorted so the page
    /// is diffable.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut hists: Vec<_> = self.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in hists {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let upper = LogHistogram::bucket_upper(i);
                if upper.is_finite() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{upper:e}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.total());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.total());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_respect_the_bucket_error_bound() {
        let mut h = LogHistogram::new();
        let vals = [4.0, 1.0, 3.0, 2.0];
        for v in vals {
            h.observe(v);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        // p0/p1 exact; interior quantiles within the 2^(1/4) bucket bound
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 4.0);
        let bound = 2f64.powf(0.25);
        let p50 = h.quantile(0.5);
        assert!(
            (2.0..=2.0 * bound + 1e-12).contains(&p50),
            "p50 {p50} outside [2, 2*2^(1/4)]"
        );
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let q = h.quantile(p);
            assert!((1.0..=4.0).contains(&q), "quantile clamped to [min, max]");
            // some exact nearest-rank value v has q in [v, v * 2^(1/4)]
            assert!(
                vals.iter().any(|&v| (v..=v * bound + 1e-12).contains(&q)),
                "q({p}) = {q} not within bound of any sample"
            );
        }
    }

    #[test]
    fn histogram_is_fixed_size_and_o_buckets_to_query() {
        let mut h = LogHistogram::new();
        for i in 0..100_000u64 {
            h.observe(1e-6 * (1.0 + (i % 1000) as f64));
        }
        assert_eq!(h.counts().len(), HIST_BUCKETS);
        assert_eq!(h.total(), 100_000);
        let p95 = h.quantile(0.95);
        assert!(p95 > 0.0 && (h.min()..=h.max()).contains(&p95));
    }

    #[test]
    fn out_of_range_and_nonfinite_values_are_counted() {
        let mut h = LogHistogram::new();
        h.observe(0.0); // below LO -> underflow bucket
        h.observe(1e-30);
        h.observe(1e9); // above range -> overflow bucket
        h.observe(f64::NAN); // counted, excluded from sum/min/max
        assert_eq!(h.total(), 4);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e9);
        assert!(h.sum().is_finite());
        assert_eq!(h.quantile(1.0), 1e9);
    }

    #[test]
    fn merge_is_bucketwise_aggregation() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [1.0, 2.0] {
            a.observe(v);
        }
        for v in [0.5, 8.0] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.sum(), 11.5);
        assert_eq!(a.min(), 0.5);
        assert_eq!(a.max(), 8.0);
    }

    #[test]
    fn from_parts_round_trips_and_pads_foreign_layouts() {
        let mut h = LogHistogram::new();
        for v in [0.001, 0.002, 0.4] {
            h.observe(v);
        }
        let back = LogHistogram::from_parts(
            h.counts().to_vec(),
            h.total(),
            h.sum(),
            h.raw_min(),
            h.raw_max(),
        );
        assert_eq!(back, h);
        // a shorter counts vector (older build) is zero-padded
        let short = LogHistogram::from_parts(vec![1, 2], 3, 6.0, 1.0, 3.0);
        assert_eq!(short.counts().len(), HIST_BUCKETS);
        assert_eq!(short.total(), 3);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc("core_steps_total", 1.0);
        r.inc("core_steps_total", 2.0);
        r.gauge_set("serve_queue_depth", 5.0);
        r.gauge_set("serve_queue_depth", 3.0);
        r.observe("serve_request_latency_s", 0.25);
        assert_eq!(r.counter("core_steps_total"), 3.0);
        assert_eq!(r.gauge("serve_queue_depth"), Some(3.0));
        assert_eq!(r.histogram("serve_request_latency_s").unwrap().total(), 1);
        assert_eq!(r.counter("core_flops_total"), 0.0, "absent counter reads 0");
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms_gauges_last_write() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("core_steps_total", 2.0);
        b.inc("core_steps_total", 3.0);
        a.gauge_set("serve_elapsed_s", 1.0);
        b.gauge_set("serve_elapsed_s", 9.0);
        a.observe("core_phase_cpu_s", 0.1);
        b.observe("core_phase_cpu_s", 0.2);
        a.merge(&b);
        assert_eq!(a.counter("core_steps_total"), 5.0);
        assert_eq!(a.gauge("serve_elapsed_s"), Some(9.0));
        assert_eq!(a.histogram("core_phase_cpu_s").unwrap().total(), 2);
    }

    #[test]
    fn prometheus_text_page_has_types_buckets_and_sorted_names() {
        let mut r = MetricsRegistry::new();
        r.inc("serve_requests_completed_total", 7.0);
        r.gauge_set("serve_queue_depth", 2.0);
        for v in [0.01, 0.02, 0.04] {
            r.observe("serve_request_latency_s", v);
        }
        let page = r.to_prometheus_text();
        assert!(page.contains("# TYPE serve_requests_completed_total counter"));
        assert!(page.contains("serve_requests_completed_total 7"));
        assert!(page.contains("# TYPE serve_queue_depth gauge"));
        assert!(page.contains("# TYPE serve_request_latency_s histogram"));
        assert!(page.contains("serve_request_latency_s_bucket{le=\"+Inf\"} 3"));
        assert!(page.contains("serve_request_latency_s_count 3"));
        assert!(page.contains("serve_request_latency_s_sum"));
        // cumulative buckets are nondecreasing
        let mut last = 0u64;
        for line in page.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket cumulative must be nondecreasing");
            last = v;
        }
    }

    #[test]
    fn registry_json_snapshot_is_structured() {
        let mut r = MetricsRegistry::new();
        r.inc("core_steps_total", 4.0);
        r.observe("core_phase_gpu_s", 0.5);
        let j = r.to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("core_steps_total"))
                .and_then(|v| v.as_f64()),
            Some(4.0)
        );
        assert_eq!(
            j.get("histograms")
                .and_then(|h| h.get("core_phase_gpu_s"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }
}
