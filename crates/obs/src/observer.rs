//! Per-iteration solver observation.
//!
//! [`SolveObserver`] is threaded through `pcg` and `mcg` in
//! `hetsolve-sparse`. The contract is strictly read-only: observers receive
//! residual data but can never influence the iteration, so an observed run
//! and an unobserved run are bitwise identical (asserted by
//! `tests/observability.rs`). The default method bodies are empty and
//! [`NoopObserver`] overrides nothing, so the no-op path monomorphizes to
//! nothing — no virtual dispatch, no allocation, no branch on the hot path.

/// Why an iterative solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// All cases reached the relative-residual tolerance.
    Converged,
    /// The iteration cap was hit first.
    MaxIter,
    /// Loss of positive definiteness (`pᵀq <= 0`) froze the last active
    /// case(s).
    Breakdown,
    /// A residual (or `pᵀq`) turned NaN/Inf — poisoned input or overflow.
    NanResidual,
    /// The residual stopped improving for a full stagnation window.
    Stagnation,
    /// The preconditioned inner product `zᵀr` lost positivity — the
    /// preconditioner is not SPD for this residual.
    RhoBreakdown,
    /// The initial guess was rejected before the first iteration: its
    /// relative residual was so large that the recursive residual could
    /// "converge" while the true solution stays wrong (attainable accuracy
    /// in f64 is roughly `eps × initial residual`). Retry from a sane guess.
    DivergentGuess,
    /// The invariant sentinel's periodically recomputed *true* residual
    /// `‖f − A x‖` drifted past its bound relative to the recursive
    /// residual the iteration carries — the CG invariant `r = f − A x`
    /// no longer holds, the signature of silent data corruption in `x`,
    /// `r`, or the operator between checks.
    ResidualDrift,
    /// The invariant sentinel's bounded-norm guard tripped: the iterate's
    /// norm grew past its bound (or turned non-finite) — a runaway that
    /// the recursive residual alone can fail to expose.
    NormExploded,
}

impl Termination {
    pub fn label(&self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::MaxIter => "max_iter",
            Termination::Breakdown => "breakdown",
            Termination::NanResidual => "nan_residual",
            Termination::Stagnation => "stagnation",
            Termination::RhoBreakdown => "rho_breakdown",
            Termination::DivergentGuess => "divergent_guess",
            Termination::ResidualDrift => "residual_drift",
            Termination::NormExploded => "norm_exploded",
        }
    }

    /// Abnormal terminations are everything but [`Termination::Converged`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, Termination::Converged)
    }

    /// Stable wire code for checkpoint encoding. Codes are append-only:
    /// existing values never change meaning across format versions.
    pub fn code(&self) -> u8 {
        match self {
            Termination::Converged => 0,
            Termination::MaxIter => 1,
            Termination::Breakdown => 2,
            Termination::NanResidual => 3,
            Termination::Stagnation => 4,
            Termination::RhoBreakdown => 5,
            Termination::DivergentGuess => 6,
            Termination::ResidualDrift => 7,
            Termination::NormExploded => 8,
        }
    }

    /// Inverse of [`Termination::code`]; `None` for unknown codes (a
    /// corrupt or future-version checkpoint).
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Termination::Converged,
            1 => Termination::MaxIter,
            2 => Termination::Breakdown,
            3 => Termination::NanResidual,
            4 => Termination::Stagnation,
            5 => Termination::RhoBreakdown,
            6 => Termination::DivergentGuess,
            7 => Termination::ResidualDrift,
            8 => Termination::NormExploded,
            _ => return None,
        })
    }
}

/// Observer hooks called by the CG solvers. `rel_res` carries one relative
/// residual per fused case (length 1 for single-RHS `pcg`); the slice is
/// borrowed from solver-owned storage, so implementations must copy what
/// they keep.
pub trait SolveObserver {
    /// Before the first iteration: problem size, fused case count, and the
    /// initial relative residuals (initial-guess quality).
    fn solve_begin(&mut self, _n: usize, _cases: usize, _rel_res: &[f64]) {}

    /// After iteration `iter` (1-based), with the updated residuals.
    fn iteration(&mut self, _iter: usize, _rel_res: &[f64]) {}

    /// After the loop: total iterations and why the solver stopped.
    fn solve_end(&mut self, _iterations: usize, _termination: Termination) {}
}

/// The zero-cost default: every hook is the empty default body. A
/// zero-sized type, so `pcg(a, prec, f, x, cfg)` and
/// `pcg_observed(a, prec, f, x, cfg, &mut NoopObserver)` compile to the
/// same machine code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SolveObserver for NoopObserver {}

/// Records the full residual-decay trace — the data behind the paper's
/// Fig. 3 (convergence vs. initial-guess quality) and the
/// iteration-count/residual-decay evidence in Loeb & Earls-style
/// data-driven CG acceleration studies.
#[derive(Debug, Clone, Default)]
pub struct ResidualLog {
    /// Problem size reported at `solve_begin`.
    pub n: usize,
    /// `history[iter][case]`: relative residual after each iteration
    /// (index 0 = initial).
    pub history: Vec<Vec<f64>>,
    /// Total iterations reported at `solve_end`.
    pub iterations: usize,
    pub termination: Option<Termination>,
}

impl ResidualLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Residual trace of one case across all iterations.
    pub fn case_history(&self, case: usize) -> Vec<f64> {
        self.history.iter().map(|row| row[case]).collect()
    }
}

impl SolveObserver for ResidualLog {
    fn solve_begin(&mut self, n: usize, _cases: usize, rel_res: &[f64]) {
        self.n = n;
        self.history.clear();
        self.history.push(rel_res.to_vec());
    }

    fn iteration(&mut self, _iter: usize, rel_res: &[f64]) {
        self.history.push(rel_res.to_vec());
    }

    fn solve_end(&mut self, iterations: usize, termination: Termination) {
        self.iterations = iterations;
        self.termination = Some(termination);
    }
}

/// Fan-out to two observers (e.g. a `ResidualLog` plus a live counter).
impl<A: SolveObserver, B: SolveObserver> SolveObserver for (A, B) {
    fn solve_begin(&mut self, n: usize, cases: usize, rel_res: &[f64]) {
        self.0.solve_begin(n, cases, rel_res);
        self.1.solve_begin(n, cases, rel_res);
    }

    fn iteration(&mut self, iter: usize, rel_res: &[f64]) {
        self.0.iteration(iter, rel_res);
        self.1.iteration(iter, rel_res);
    }

    fn solve_end(&mut self, iterations: usize, termination: Termination) {
        self.0.solve_end(iterations, termination);
        self.1.solve_end(iterations, termination);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized() {
        // The acceptance criterion "no allocation in NoopObserver
        // callbacks" is structural: a ZST with empty default methods has
        // nothing to allocate and nothing to call.
        assert_eq!(std::mem::size_of::<NoopObserver>(), 0);
    }

    #[test]
    fn residual_log_records_everything() {
        let mut log = ResidualLog::new();
        log.solve_begin(100, 2, &[1.0, 0.5]);
        log.iteration(1, &[0.1, 0.05]);
        log.iteration(2, &[0.01, 0.004]);
        log.solve_end(2, Termination::Converged);
        assert_eq!(log.n, 100);
        assert_eq!(log.history.len(), 3);
        assert_eq!(log.case_history(1), vec![0.5, 0.05, 0.004]);
        assert_eq!(log.iterations, 2);
        assert_eq!(log.termination, Some(Termination::Converged));
    }

    #[test]
    fn pair_fans_out() {
        let mut pair = (ResidualLog::new(), ResidualLog::new());
        pair.solve_begin(10, 1, &[1.0]);
        pair.iteration(1, &[0.1]);
        pair.solve_end(1, Termination::MaxIter);
        assert_eq!(pair.0.history, pair.1.history);
        assert_eq!(pair.1.termination, Some(Termination::MaxIter));
    }

    #[test]
    fn termination_labels() {
        assert_eq!(Termination::Converged.label(), "converged");
        assert_eq!(Termination::MaxIter.label(), "max_iter");
        assert_eq!(Termination::Breakdown.label(), "breakdown");
        assert_eq!(Termination::NanResidual.label(), "nan_residual");
        assert_eq!(Termination::Stagnation.label(), "stagnation");
        assert_eq!(Termination::RhoBreakdown.label(), "rho_breakdown");
        assert_eq!(Termination::ResidualDrift.label(), "residual_drift");
        assert_eq!(Termination::NormExploded.label(), "norm_exploded");
        for t in [Termination::ResidualDrift, Termination::NormExploded] {
            assert_eq!(Termination::from_code(t.code()), Some(t));
        }
    }

    #[test]
    fn only_converged_is_success() {
        assert!(!Termination::Converged.is_failure());
        for t in [
            Termination::MaxIter,
            Termination::Breakdown,
            Termination::NanResidual,
            Termination::Stagnation,
            Termination::RhoBreakdown,
        ] {
            assert!(t.is_failure(), "{}", t.label());
        }
    }
}
