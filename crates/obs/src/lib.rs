//! # hetsolve-obs
//!
//! Structured observability for the `hetsolve` reproduction of the SC24
//! paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.). The paper's central evidence is
//! temporal — Fig. 4 shows the predictor@CPU hidden behind the solver@GPU
//! with the snapshot window `s` adapted online, and Tables 3–4 compare
//! per-step solver/predictor/iteration costs — so this crate makes every
//! one of those quantities first-class and exportable:
//!
//! * [`json`] — hand-rolled JSON value, writer and parser (the workspace is
//!   offline/vendored; no serde),
//! * [`observer`] — [`SolveObserver`] hooks threaded through `pcg`/`mcg` in
//!   `hetsolve-sparse`, with a [`NoopObserver`] that compiles to nothing on
//!   the hot path and a [`ResidualLog`] that records per-iteration relative
//!   residuals and the termination cause,
//! * [`trace`] — [`TraceBuilder`] emitting Chrome-trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`): a faithful, inspectable
//!   reproduction of the paper's Fig. 4 CPU/GPU/transfer overlap diagram,
//! * [`metrics`] — [`MetricsSink`] aggregating kernel counts, iteration
//!   counts and method summaries into a schema-versioned `BENCH_<n>.json`
//!   snapshot (written by `cargo xtask bench-snapshot`) or JSONL stream,
//! * [`registry`] — telemetry v2's [`MetricsRegistry`]: named counters,
//!   gauges and fixed-size log-bucketed [`LogHistogram`]s with mergeable
//!   snapshots, exported as JSON or a Prometheus-style text page,
//! * [`names`] — the committed metric-name table the `cargo xtask
//!   analyze` metric-names pass enforces,
//! * [`flight`] — the crash-time [`FlightRecorder`]: a bounded ring of
//!   structured events dumped as JSON on watchdog breach, eviction, typed
//!   run errors, or injected crashes.
//!
//! The crate is dependency-free and `#![forbid(unsafe_code)]`; everything
//! here is plumbing that must never perturb the numerics it observes.

#![forbid(unsafe_code)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod names;
pub mod observer;
pub mod registry;
pub mod serve;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHT_SCHEMA};
pub use json::{parse_json, Json};
pub use metrics::{MethodMetrics, MetricsSink, BENCH_SCHEMA};
pub use observer::{NoopObserver, ResidualLog, SolveObserver, Termination};
pub use registry::{LogHistogram, MetricsRegistry, HIST_BUCKETS};
pub use serve::{ServeStats, TenantStats};
pub use trace::{
    flow_id_for_request, validate_lane_serialization, TraceBuilder, TraceEvent, TRACE_SCHEMA,
};
