//! Machine-readable bench snapshots.
//!
//! [`MetricsSink`] aggregates method summaries (the paper's Table-3/4
//! rows), kernel work counters, adaptive-window decisions and free-form
//! sections into one schema-versioned JSON document. `cargo xtask
//! bench-snapshot` writes it as `BENCH_<n>.json` at the workspace root so
//! the perf trajectory mandated by ROADMAP.md is tracked across PRs; the
//! same sink can append one-object-per-line JSONL for streaming consumers.
//!
//! Schema (`hetsolve/bench-snapshot/v1`) — units are embedded in field
//! names: `_s` seconds, `_j` joules, `_w` watts, `_bytes` bytes.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;

/// Schema identifier embedded in every snapshot (`"schema"` field).
pub const BENCH_SCHEMA: &str = "hetsolve/bench-snapshot/v1";

/// One method row — the machine-readable twin of
/// `hetsolve-core::report::MethodSummary`, kept as plain data so this crate
/// stays dependency-free.
#[derive(Debug, Clone, Default)]
pub struct MethodMetrics {
    /// Method label ("EBE-MCG@CPU-GPU", ...).
    pub method: String,
    /// Cases advanced per run (Table 3: 1, 1, 2, 2r).
    pub n_cases: usize,
    /// Time steps simulated.
    pub steps: usize,
    /// Mean wall time per step per case over the measurement window (s).
    pub step_time_s: f64,
    pub solver_time_s: f64,
    pub predictor_time_s: f64,
    /// Mean CG iterations per case per step.
    pub iterations: f64,
    /// Speedup vs. the baseline row.
    pub speedup: f64,
    /// Time-averaged module power (W).
    pub module_power_w: f64,
    /// Energy per step per case (J).
    pub energy_per_step_j: f64,
    /// Total kernel work over the run: flops, bytes, random transactions.
    pub flops: f64,
    pub bytes: f64,
    pub rand_transactions: f64,
    /// Mean snapshot window over the measurement window (0 when the
    /// data-driven predictor is off).
    pub mean_window_s: f64,
    /// Per-step recoveries performed by the solve ladder (guess downgraded
    /// after an abnormal termination); 0 on a healthy run.
    pub recoveries: usize,
}

impl MethodMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::Str(self.method.clone())),
            ("n_cases", Json::from(self.n_cases)),
            ("steps", Json::from(self.steps)),
            ("step_time_s", Json::Num(self.step_time_s)),
            ("solver_time_s", Json::Num(self.solver_time_s)),
            ("predictor_time_s", Json::Num(self.predictor_time_s)),
            ("iterations", Json::Num(self.iterations)),
            ("speedup", Json::Num(self.speedup)),
            ("module_power_w", Json::Num(self.module_power_w)),
            ("energy_per_step_j", Json::Num(self.energy_per_step_j)),
            ("flops", Json::Num(self.flops)),
            ("bytes", Json::Num(self.bytes)),
            ("rand_transactions", Json::Num(self.rand_transactions)),
            ("mean_window_s", Json::Num(self.mean_window_s)),
            ("recoveries", Json::from(self.recoveries)),
        ])
    }
}

/// Aggregator for one snapshot document.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    methods: Vec<MethodMetrics>,
    /// Named free-form sections (partition stats, window log, ...).
    sections: Vec<(String, Json)>,
    /// Document-level metadata (problem size, seed, toolchain, ...).
    meta: Vec<(String, Json)>,
}

impl MetricsSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    pub fn push_method(&mut self, row: MethodMetrics) {
        self.methods.push(row);
    }

    /// Attach a named section (overwrites an earlier section of the same
    /// name, so per-run sections can be refreshed).
    pub fn set_section(&mut self, name: &str, value: Json) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.sections.push((name.to_string(), value));
        }
    }

    pub fn methods(&self) -> &[MethodMetrics] {
        &self.methods
    }

    pub fn is_empty(&self) -> bool {
        self.methods.is_empty() && self.sections.is_empty()
    }

    /// The full snapshot document.
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(&'static str, Json)> = vec![
            ("schema", Json::from(BENCH_SCHEMA)),
            ("meta", Json::Obj(self.meta.iter().cloned().collect())),
            (
                "methods",
                Json::Arr(self.methods.iter().map(MethodMetrics::to_json).collect()),
            ),
        ];
        let sections = Json::Obj(self.sections.iter().cloned().collect());
        obj.push(("sections", sections));
        Json::obj(obj)
    }

    /// Write the snapshot to an explicit path.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Write the next `BENCH_<n>.json` in `dir`: scans existing snapshots
    /// and picks the first free index, so each PR's snapshot lands beside
    /// its predecessors. Returns the path written.
    pub fn write_bench_snapshot(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        let n = next_bench_index(dir);
        let path = dir.join(format!("BENCH_{n}.json"));
        self.write_to(&path)?;
        Ok(path)
    }

    /// Append the snapshot as one compact line of JSONL.
    pub fn append_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        use io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json().to_string_compact())
    }
}

/// First index `n` such that `BENCH_<n>.json` does not exist in `dir`.
pub fn next_bench_index(dir: &Path) -> usize {
    let mut n = 0;
    while dir.join(format!("BENCH_{n}.json")).exists() {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn row(method: &str, t: f64) -> MethodMetrics {
        MethodMetrics {
            method: method.to_string(),
            n_cases: 8,
            steps: 100,
            step_time_s: t,
            solver_time_s: t * 0.9,
            iterations: 40.0,
            speedup: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn snapshot_is_schema_versioned_and_parses() {
        let mut sink = MetricsSink::new();
        sink.set_meta("n_dofs", Json::from(1234usize));
        sink.push_method(row("CRS-CG@CPU", 0.03));
        sink.push_method(row("EBE-MCG@CPU-GPU", 0.001));
        sink.set_section("partition", Json::obj([("n_parts", Json::from(4usize))]));
        let text = sink.to_json().to_string_pretty();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        assert_eq!(v.get("methods").unwrap().items().len(), 2);
        assert_eq!(
            v.get("meta").unwrap().get("n_dofs").unwrap().as_f64(),
            Some(1234.0)
        );
        assert_eq!(
            v.get("sections")
                .unwrap()
                .get("partition")
                .unwrap()
                .get("n_parts")
                .unwrap()
                .as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn sections_overwrite_by_name() {
        let mut sink = MetricsSink::new();
        sink.set_section("x", Json::from(1usize));
        sink.set_section("x", Json::from(2usize));
        let v = sink.to_json();
        assert_eq!(
            v.get("sections").unwrap().get("x").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn bench_index_skips_existing() {
        let dir = std::env::temp_dir().join(format!("hetsolve-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_index(&dir), 0);
        let sink = MetricsSink::new();
        let p0 = sink.write_bench_snapshot(&dir).unwrap();
        assert!(p0.ends_with("BENCH_0.json"));
        let p1 = sink.write_bench_snapshot(&dir).unwrap();
        assert!(p1.ends_with("BENCH_1.json"));
        let text = std::fs::read_to_string(&p1).unwrap();
        assert!(parse_json(&text).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_appends_compact_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hetsolve-obs-jsonl-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut sink = MetricsSink::new();
        sink.push_method(row("CRS-CG@GPU", 0.004));
        sink.append_jsonl(&path).unwrap();
        sink.append_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(parse_json(line).is_ok());
        }
        std::fs::remove_file(&path).unwrap();
    }
}
