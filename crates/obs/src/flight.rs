//! Crash-time flight recorder: a bounded ring of recent structured
//! events, dumped as JSON when something goes wrong.
//!
//! Metrics aggregate and traces need a viewer; when the watchdog evicts a
//! lane or `crash_at` kills a run, what the operator actually wants is
//! *the last N things that happened, in order, with ids* — a black box.
//! [`FlightRecorder`] keeps that ring always on (recording is a
//! `VecDeque` push of a small struct; no I/O, no formatting), and
//! [`FlightRecorder::dump_to`] serializes it only on the failure paths:
//! watchdog breach, eviction, typed `RunError`, or injected crash.
//!
//! Timestamps are **modeled seconds** from the deterministic
//! `ModuleClock`, not wall time — so a dump from a failing CI run is
//! bit-reproducible locally, and two dumps can be diffed. The ring state
//! itself is checkpointed through `hetsolve-ckpt` (see
//! `crates/serve/src/checkpoint.rs`), so a restored server remembers the
//! events that led up to the checkpoint — a crash shortly after restore
//! still dumps a full causal window.

use std::collections::VecDeque;
use std::io;
use std::path::Path;

use crate::json::Json;

/// Schema tag embedded in every dump.
pub const FLIGHT_SCHEMA: &str = "hetsolve/flight-recorder/v1";

/// Default ring capacity (events), sized so a full watchdog ladder plus
/// the per-step events of every in-flight request fit comfortably.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One structured event. `seq` is a monotonically increasing sequence
/// number assigned by the recorder (it survives ring overflow and
/// checkpoint/restore, so gaps reveal dropped events).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    pub seq: u64,
    /// Modeled-clock timestamp (s).
    pub t_s: f64,
    /// Event kind, e.g. `admitted`, `step`, `watchdog_breach`, `crash`.
    pub kind: String,
    /// Request id, when the event concerns one.
    pub request: Option<u64>,
    /// Lane index, when the event concerns one.
    pub lane: Option<u64>,
    /// Step or tick counter, when meaningful.
    pub step: Option<u64>,
    /// Free-form human detail (decision, reason, rung).
    pub detail: String,
}

impl FlightEvent {
    pub fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("seq".into(), Json::from(self.seq as f64));
        m.insert("t_s".into(), Json::from(self.t_s));
        m.insert("kind".into(), Json::from(self.kind.as_str()));
        if let Some(r) = self.request {
            m.insert("request".into(), Json::from(r as f64));
        }
        if let Some(l) = self.lane {
            m.insert("lane".into(), Json::from(l as f64));
        }
        if let Some(s) = self.step {
            m.insert("step".into(), Json::from(s as f64));
        }
        if !self.detail.is_empty() {
            m.insert("detail".into(), Json::from(self.detail.as_str()));
        }
        Json::Obj(m)
    }
}

/// Bounded ring buffer of [`FlightEvent`]s. Always cheap to record into;
/// serialized only on dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record one event; the oldest event is dropped when full.
    pub fn record(
        &mut self,
        t_s: f64,
        kind: &str,
        request: Option<u64>,
        lane: Option<u64>,
        step: Option<u64>,
        detail: impl Into<String>,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(FlightEvent {
            seq: self.next_seq,
            t_s,
            kind: kind.to_string(),
            request,
            lane,
            step,
            detail: detail.into(),
        });
        self.next_seq += 1;
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted from the ring since construction/restore.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Next sequence number to be assigned (== total events recorded).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuild from checkpointed parts (events oldest first). Excess
    /// events beyond `capacity` are dropped from the front, counted.
    pub fn from_parts(
        capacity: usize,
        events: Vec<FlightEvent>,
        next_seq: u64,
        dropped: u64,
    ) -> Self {
        let mut rec = FlightRecorder::new(capacity);
        rec.next_seq = next_seq;
        rec.dropped = dropped;
        for ev in events {
            if rec.events.len() == rec.capacity {
                rec.events.pop_front();
                rec.dropped += 1;
            }
            rec.events.push_back(ev);
        }
        rec
    }

    /// Serialize the ring as a dump document:
    /// `{schema, trigger, dropped, events: [...]}`.
    pub fn to_json(&self, trigger: &str) -> Json {
        Json::obj([
            ("schema", Json::from(FLIGHT_SCHEMA)),
            ("trigger", Json::from(trigger)),
            ("dropped", Json::from(self.dropped as f64)),
            (
                "events",
                Json::Arr(self.events.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }

    /// Write the dump to `path` (parent directories created). `trigger`
    /// names the failure that fired the dump: `watchdog_breach`,
    /// `eviction`, `run_error`, `crash`.
    pub fn dump_to(&self, path: &Path, trigger: &str) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json(trigger).to_string_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rec: &mut FlightRecorder, i: u64) {
        rec.record(i as f64 * 0.1, "step", Some(i), Some(0), Some(i), "");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10 {
            ev(&mut rec, i);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.next_seq(), 10);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest dropped, order kept");
    }

    #[test]
    fn from_parts_round_trips_and_enforces_capacity() {
        let mut rec = FlightRecorder::new(8);
        for i in 0..5 {
            ev(&mut rec, i);
        }
        let back = FlightRecorder::from_parts(
            rec.capacity(),
            rec.events().cloned().collect(),
            rec.next_seq(),
            rec.dropped(),
        );
        assert_eq!(back, rec);
        // restoring into a smaller capacity drops from the front
        let small = FlightRecorder::from_parts(2, rec.events().cloned().collect(), 5, 0);
        assert_eq!(small.len(), 2);
        assert_eq!(small.dropped(), 3);
        assert_eq!(small.events().map(|e| e.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn dump_document_has_schema_trigger_and_ordered_events() {
        let mut rec = FlightRecorder::new(16);
        rec.record(0.0, "admitted", Some(3), None, None, "queued depth=1");
        rec.record(
            0.5,
            "watchdog_breach",
            None,
            Some(1),
            Some(2),
            "overrun 0.4s",
        );
        let j = rec.to_json("watchdog_breach");
        assert_eq!(
            j.get("schema").and_then(|s| s.as_str()),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(
            j.get("trigger").and_then(|s| s.as_str()),
            Some("watchdog_breach")
        );
        let events = j.get("events").unwrap().items();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("kind").and_then(|k| k.as_str()),
            Some("admitted")
        );
        assert_eq!(events[1].get("lane").and_then(|l| l.as_f64()), Some(1.0));
        // round-trips through the parser
        let text = j.to_string_pretty();
        let parsed = crate::json::parse_json(&text).unwrap();
        assert_eq!(parsed.get("events").unwrap().items().len(), 2);
    }

    #[test]
    fn dump_to_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("hs-flight-test").join("nested");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        let path = dir.join("dump.json");
        let mut rec = FlightRecorder::default();
        rec.record(1.0, "crash", None, None, Some(7), "injected");
        rec.dump_to(&path, "crash").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"trigger\": \"crash\""));
        std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
    }
}
