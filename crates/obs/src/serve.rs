//! Serving-layer metrics: queue depth, fused-lane occupancy, request
//! latency.
//!
//! The serving layer's throughput claim — continuous batching beats
//! drain-then-refill because it keeps the fused lanes full — is a claim
//! about *occupancy over time*, so [`ServeStats`] samples the queue and
//! every lane at each scheduling boundary and aggregates modeled
//! end-to-end latencies per request. The summary JSON becomes a
//! `serve` section of the bench snapshot (`BENCH_<n>.json`), giving the
//! ROADMAP's perf trajectory lane-occupancy and queue-latency columns.

use crate::json::Json;
use crate::registry::{LogHistogram, MetricsRegistry};

/// Per-tenant serving outcomes: the QoS layer's accounting unit. One
/// entry exists per tenant id that was ever observed (dense ids expected;
/// the vec grows to cover the largest). Checkpointed with [`ServeStats`]
/// and registered in the xtask schema-drift table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Tenant id this row accounts for.
    pub tenant: u32,
    pub completed: u64,
    pub rejected: u64,
    pub shed: u64,
    pub evicted: u64,
    /// Requests that missed their deadline: expired while queued, shed as
    /// provably unmeetable, or completed past the deadline.
    pub deadline_miss: u64,
    /// Completions slower than the tenant's configured SLO target.
    pub slo_miss: u64,
    /// Case steps served to completion (the DRR fair-share currency —
    /// fairness is measured in served work, not request count).
    pub served_steps: u64,
    /// Admit→done latency histogram for this tenant alone (tail
    /// percentiles per tenant are the QoS report's headline numbers).
    pub latency: LogHistogram,
}

impl TenantStats {
    pub fn new(tenant: u32) -> Self {
        TenantStats {
            tenant,
            ..Default::default()
        }
    }

    /// This tenant's latency percentile (same bucket error bound as the
    /// aggregate histogram).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p)
    }

    fn merge(&mut self, other: &TenantStats) {
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.evicted += other.evicted;
        self.deadline_miss += other.deadline_miss;
        self.slo_miss += other.slo_miss;
        self.served_steps += other.served_steps;
        self.latency.merge(&other.latency);
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::from(self.tenant as usize)),
            ("completed", Json::from(self.completed as usize)),
            ("rejected", Json::from(self.rejected as usize)),
            ("shed", Json::from(self.shed as usize)),
            ("evicted", Json::from(self.evicted as usize)),
            ("deadline_miss", Json::from(self.deadline_miss as usize)),
            ("slo_miss", Json::from(self.slo_miss as usize)),
            ("served_steps", Json::from(self.served_steps as usize)),
            ("latency_p50_s", Json::Num(self.latency_percentile(0.5))),
            ("latency_p99_s", Json::Num(self.latency_percentile(0.99))),
            ("latency_max_s", Json::Num(self.latency_percentile(1.0))),
        ])
    }
}

/// Counters and samples collected by a serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Queue depth sampled at each scheduling boundary.
    queue_depth: Vec<usize>,
    /// Occupied slots sampled per lane per boundary, with the lane width.
    occupancy: Vec<(usize, usize)>,
    /// Modeled admit→done latency (s) per completed request, aggregated
    /// into a fixed-size log-bucketed histogram: memory is constant no
    /// matter how many requests complete, and percentiles are an
    /// O(buckets) walk with the ≤ 19% bucket error bound documented in
    /// [`crate::registry`] (min/max stay exact).
    latency: LogHistogram,
    completed: usize,
    failed: usize,
    evicted: usize,
    rejected: usize,
    shed: usize,
    /// Lane-step deadline breaches seen by the watchdog supervisor.
    watchdog_breaches: usize,
    /// Lane restarts (roll back to the last lane checkpoint) the watchdog
    /// escalated to.
    watchdog_restarts: usize,
    /// Cluster nodes lost (injected or real) while this run served.
    node_crashes: usize,
    /// Node losses the cluster supervisor recovered by restarting the
    /// shard on a peer from its mirrored checkpoint (the ladder rung past
    /// restart-lane and before evict).
    failovers: usize,
    /// Requests migrated between shards by cross-node work stealing.
    stolen: usize,
    /// Modeled wall time (s) the serving run spanned.
    elapsed_s: f64,
    /// Queued requests shed at a step boundary because their deadline
    /// became provably unmeetable (subset of `evicted`).
    shed_early: usize,
    /// Requests that missed their deadline (evicted for it, or done late).
    deadline_miss: usize,
    /// Completions slower than their tenant's SLO target.
    slo_miss: usize,
    /// Lane-scaling events the autoscaler took.
    autoscale_events: usize,
    /// Per-tenant rows, dense by tenant id (grown on first observation).
    tenants: Vec<TenantStats>,
    /// Silent-data-corruption detections (checksum / sentinel trips) the
    /// serving layer caught and recovered in place.
    sdc_detected: usize,
    /// Lane restarts the SDC ladder escalated to (recurring corruption).
    sdc_restarts: usize,
    /// Columns evicted by the SDC ladder's last rung (subset of
    /// `evicted`).
    sdc_evictions: usize,
    /// Modeled seconds from corruption detection to the lane serving
    /// again (the detect→rollback→recover turnaround).
    sdc_recovery: LogHistogram,
}

impl ServeStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample the admission queue's depth at a scheduling boundary.
    pub fn sample_queue_depth(&mut self, depth: usize) {
        self.queue_depth.push(depth);
    }

    /// Sample one fused lane: `occupied` of `width` slots held a live case
    /// while the lane solved a step.
    pub fn sample_occupancy(&mut self, occupied: usize, width: usize) {
        self.occupancy.push((occupied, width));
    }

    /// A request finished successfully after `latency_s` modeled seconds
    /// in the system (queued + solving).
    pub fn record_completion(&mut self, latency_s: f64) {
        self.completed += 1;
        self.latency.observe(latency_s);
    }

    pub fn record_failure(&mut self) {
        self.failed += 1;
    }

    pub fn record_eviction(&mut self) {
        self.evicted += 1;
    }

    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    pub fn record_watchdog_breach(&mut self) {
        self.watchdog_breaches += 1;
    }

    pub fn record_watchdog_restart(&mut self) {
        self.watchdog_restarts += 1;
    }

    pub fn record_node_crash(&mut self) {
        self.node_crashes += 1;
    }

    pub fn record_failover(&mut self) {
        self.failovers += 1;
    }

    pub fn record_steal(&mut self) {
        self.stolen += 1;
    }

    /// Advance the modeled wall clock the summary rates divide by.
    pub fn set_elapsed(&mut self, elapsed_s: f64) {
        self.elapsed_s = elapsed_s;
    }

    pub fn record_shed_early(&mut self) {
        self.shed_early += 1;
    }

    pub fn record_sdc_detection(&mut self) {
        self.sdc_detected += 1;
    }

    pub fn record_sdc_restart(&mut self) {
        self.sdc_restarts += 1;
    }

    pub fn record_sdc_eviction(&mut self) {
        self.sdc_evictions += 1;
    }

    /// One detect→recover turnaround completed after `latency_s` modeled
    /// seconds (detection boundary to the lane's next served step).
    pub fn observe_sdc_recovery(&mut self, latency_s: f64) {
        self.sdc_recovery.observe(latency_s);
    }

    pub fn record_autoscale(&mut self) {
        self.autoscale_events += 1;
    }

    /// The per-tenant row for `tenant`, growing the dense table as needed.
    fn tenant_mut(&mut self, tenant: u32) -> &mut TenantStats {
        let i = tenant as usize;
        while self.tenants.len() <= i {
            let id = self.tenants.len() as u32;
            self.tenants.push(TenantStats::new(id));
        }
        &mut self.tenants[i]
    }

    /// A tenant's request completed after `latency_s`, having served
    /// `steps` case steps (the fair-share currency).
    pub fn tenant_completion(&mut self, tenant: u32, latency_s: f64, steps: u64) {
        let t = self.tenant_mut(tenant);
        t.completed += 1;
        t.served_steps += steps;
        t.latency.observe(latency_s);
    }

    pub fn tenant_rejection(&mut self, tenant: u32) {
        self.tenant_mut(tenant).rejected += 1;
    }

    pub fn tenant_shed(&mut self, tenant: u32) {
        self.tenant_mut(tenant).shed += 1;
    }

    pub fn tenant_eviction(&mut self, tenant: u32) {
        self.tenant_mut(tenant).evicted += 1;
    }

    /// A tenant's request missed its deadline (also bumps the aggregate).
    pub fn tenant_deadline_miss(&mut self, tenant: u32) {
        self.deadline_miss += 1;
        self.tenant_mut(tenant).deadline_miss += 1;
    }

    /// A tenant's completion blew its SLO target (also bumps the
    /// aggregate).
    pub fn tenant_slo_miss(&mut self, tenant: u32) {
        self.slo_miss += 1;
        self.tenant_mut(tenant).slo_miss += 1;
    }

    pub fn completed(&self) -> usize {
        self.completed
    }

    pub fn failed(&self) -> usize {
        self.failed
    }

    pub fn evicted(&self) -> usize {
        self.evicted
    }

    pub fn rejected(&self) -> usize {
        self.rejected
    }

    pub fn shed(&self) -> usize {
        self.shed
    }

    pub fn watchdog_breaches(&self) -> usize {
        self.watchdog_breaches
    }

    pub fn watchdog_restarts(&self) -> usize {
        self.watchdog_restarts
    }

    pub fn node_crashes(&self) -> usize {
        self.node_crashes
    }

    pub fn failovers(&self) -> usize {
        self.failovers
    }

    pub fn stolen(&self) -> usize {
        self.stolen
    }

    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    pub fn shed_early(&self) -> usize {
        self.shed_early
    }

    pub fn deadline_miss(&self) -> usize {
        self.deadline_miss
    }

    pub fn slo_miss(&self) -> usize {
        self.slo_miss
    }

    pub fn autoscale_events(&self) -> usize {
        self.autoscale_events
    }

    pub fn sdc_detected(&self) -> usize {
        self.sdc_detected
    }

    pub fn sdc_restarts(&self) -> usize {
        self.sdc_restarts
    }

    pub fn sdc_evictions(&self) -> usize {
        self.sdc_evictions
    }

    /// The detect→recover turnaround histogram (checkpoint + export
    /// access).
    pub fn sdc_recovery(&self) -> &LogHistogram {
        &self.sdc_recovery
    }

    /// Per-tenant rows, dense by tenant id.
    pub fn tenants(&self) -> &[TenantStats] {
        &self.tenants
    }

    /// This tenant's row, if it was ever observed.
    pub fn tenant(&self, tenant: u32) -> Option<&TenantStats> {
        self.tenants.get(tenant as usize)
    }

    /// Fraction of terminally-decided requests that missed their deadline
    /// (the soak report's deadline-miss rate). Requests without deadlines
    /// dilute the denominator by design: the rate is over all outcomes.
    pub fn deadline_miss_rate(&self) -> f64 {
        let outcomes = self.completed + self.failed + self.evicted;
        if outcomes == 0 {
            return 0.0;
        }
        self.deadline_miss as f64 / outcomes as f64
    }

    /// Raw queue-depth samples, in boundary order (checkpoint access).
    pub fn queue_depth_samples(&self) -> &[usize] {
        &self.queue_depth
    }

    /// Raw `(occupied, width)` lane samples (checkpoint access).
    pub fn occupancy_samples(&self) -> &[(usize, usize)] {
        &self.occupancy
    }

    /// The completion-latency histogram (checkpoint + export access).
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// Rebuild stats from checkpointed parts — the restore-side inverse
    /// of the accessors above. Counters resume exactly where the saved
    /// run left off (they must not reset on resume).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        queue_depth: Vec<usize>,
        occupancy: Vec<(usize, usize)>,
        latency: LogHistogram,
        completed: usize,
        failed: usize,
        evicted: usize,
        rejected: usize,
        shed: usize,
        watchdog_breaches: usize,
        watchdog_restarts: usize,
        node_crashes: usize,
        failovers: usize,
        stolen: usize,
        elapsed_s: f64,
    ) -> Self {
        ServeStats {
            queue_depth,
            occupancy,
            latency,
            completed,
            failed,
            evicted,
            rejected,
            shed,
            watchdog_breaches,
            watchdog_restarts,
            node_crashes,
            failovers,
            stolen,
            elapsed_s,
            shed_early: 0,
            deadline_miss: 0,
            slo_miss: 0,
            autoscale_events: 0,
            tenants: Vec::new(),
            sdc_detected: 0,
            sdc_restarts: 0,
            sdc_evictions: 0,
            sdc_recovery: LogHistogram::default(),
        }
    }

    /// Attach the QoS-era fields to stats rebuilt by
    /// [`ServeStats::from_parts`] — the restore-side inverse of the
    /// `shed_early` / `deadline_miss` / `slo_miss` / `autoscale_events` /
    /// `tenants` accessors. Split from `from_parts` so pre-QoS checkpoints
    /// (no `QOS\0` section) restore with clean zeros.
    pub fn with_qos_parts(
        mut self,
        shed_early: usize,
        deadline_miss: usize,
        slo_miss: usize,
        autoscale_events: usize,
        tenants: Vec<TenantStats>,
    ) -> Self {
        self.shed_early = shed_early;
        self.deadline_miss = deadline_miss;
        self.slo_miss = slo_miss;
        self.autoscale_events = autoscale_events;
        self.tenants = tenants;
        self
    }

    /// Attach the SDC-era fields to stats rebuilt by
    /// [`ServeStats::from_parts`] — the restore-side inverse of the
    /// `sdc_detected` / `sdc_restarts` / `sdc_evictions` / `sdc_recovery`
    /// accessors. Split out so pre-SDC checkpoints (no `INTG` section)
    /// restore with clean zeros.
    pub fn with_sdc_parts(
        mut self,
        sdc_detected: usize,
        sdc_restarts: usize,
        sdc_evictions: usize,
        sdc_recovery: LogHistogram,
    ) -> Self {
        self.sdc_detected = sdc_detected;
        self.sdc_restarts = sdc_restarts;
        self.sdc_evictions = sdc_evictions;
        self.sdc_recovery = sdc_recovery;
        self
    }

    /// Fold another shard's stats into this one without double-counting:
    /// counters add, the latency histograms merge bucket-wise (each
    /// completion was observed by exactly one shard), boundary samples
    /// concatenate in shard order, and `elapsed_s` takes the max — shards
    /// run concurrently on the modeled cluster, so the wall span is the
    /// slowest shard's, not the sum.
    pub fn merge(&mut self, other: &ServeStats) {
        self.queue_depth.extend_from_slice(&other.queue_depth);
        self.occupancy.extend_from_slice(&other.occupancy);
        self.latency.merge(&other.latency);
        self.completed += other.completed;
        self.failed += other.failed;
        self.evicted += other.evicted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.watchdog_breaches += other.watchdog_breaches;
        self.watchdog_restarts += other.watchdog_restarts;
        self.node_crashes += other.node_crashes;
        self.failovers += other.failovers;
        self.stolen += other.stolen;
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
        self.shed_early += other.shed_early;
        self.deadline_miss += other.deadline_miss;
        self.slo_miss += other.slo_miss;
        self.autoscale_events += other.autoscale_events;
        for t in &other.tenants {
            self.tenant_mut(t.tenant).merge(t);
        }
        self.sdc_detected += other.sdc_detected;
        self.sdc_restarts += other.sdc_restarts;
        self.sdc_evictions += other.sdc_evictions;
        self.sdc_recovery.merge(&other.sdc_recovery);
    }

    /// Mean queue depth over all boundary samples.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth.is_empty() {
            return 0.0;
        }
        self.queue_depth.iter().sum::<usize>() as f64 / self.queue_depth.len() as f64
    }

    /// Mean fraction of lane slots occupied while solving (1.0 = every
    /// fused column carried a live case every step).
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy.is_empty() {
            return 0.0;
        }
        let frac: f64 = self
            .occupancy
            .iter()
            .map(|&(o, w)| o as f64 / w.max(1) as f64)
            .sum();
        frac / self.occupancy.len() as f64
    }

    /// Completed cases per modeled second.
    pub fn cases_per_sec(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed_s
    }

    /// Latency percentile (`p` in [0, 1], nearest-rank over histogram
    /// buckets) over completed requests; 0 when nothing completed.
    /// `p = 0` and `p = 1` are exact (min/max); interior percentiles
    /// carry the histogram's ≤ 19% bucket error bound. O(buckets) per
    /// call — no sort, no per-request memory.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p)
    }

    /// Export these stats into a metrics registry under the declared
    /// `serve_*` names (see `crates/obs/src/names.rs`). Counters map to
    /// `_total`s, the samples to gauges, and the latency histogram is
    /// merged bucket-wise.
    pub fn to_registry(&self, registry: &mut MetricsRegistry) {
        registry.inc("serve_requests_completed_total", self.completed as f64);
        registry.inc("serve_requests_failed_total", self.failed as f64);
        registry.inc("serve_requests_evicted_total", self.evicted as f64);
        registry.inc("serve_requests_rejected_total", self.rejected as f64);
        registry.inc("serve_requests_shed_total", self.shed as f64);
        registry.inc(
            "serve_watchdog_breaches_total",
            self.watchdog_breaches as f64,
        );
        registry.inc(
            "serve_watchdog_restarts_total",
            self.watchdog_restarts as f64,
        );
        registry.inc("serve_node_crashes_total", self.node_crashes as f64);
        registry.inc("serve_failovers_total", self.failovers as f64);
        registry.inc("serve_requests_stolen_total", self.stolen as f64);
        registry.inc("serve_shed_early_total", self.shed_early as f64);
        registry.inc("serve_deadline_miss_total", self.deadline_miss as f64);
        registry.inc("serve_slo_miss_total", self.slo_miss as f64);
        registry.inc("serve_autoscale_events_total", self.autoscale_events as f64);
        registry.inc("serve_sdc_detected_total", self.sdc_detected as f64);
        registry.inc("serve_sdc_restarts_total", self.sdc_restarts as f64);
        registry.inc("serve_sdc_evictions_total", self.sdc_evictions as f64);
        registry.merge_histogram("serve_sdc_recovery_s", &self.sdc_recovery);
        registry.gauge_set("serve_queue_depth", self.mean_queue_depth());
        registry.gauge_set("serve_lane_occupancy", self.mean_occupancy());
        registry.gauge_set("serve_elapsed_s", self.elapsed_s);
        registry.merge_histogram("serve_request_latency_s", &self.latency);
    }

    /// Summary document — the bench snapshot's `serve` section.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("completed", Json::from(self.completed)),
            ("failed", Json::from(self.failed)),
            ("evicted", Json::from(self.evicted)),
            ("rejected", Json::from(self.rejected)),
            ("shed", Json::from(self.shed)),
            ("watchdog_breaches", Json::from(self.watchdog_breaches)),
            ("watchdog_restarts", Json::from(self.watchdog_restarts)),
            ("node_crashes", Json::from(self.node_crashes)),
            ("failovers", Json::from(self.failovers)),
            ("stolen", Json::from(self.stolen)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("cases_per_sec", Json::Num(self.cases_per_sec())),
            ("mean_queue_depth", Json::Num(self.mean_queue_depth())),
            ("lane_occupancy", Json::Num(self.mean_occupancy())),
            (
                "queue_latency_p50_s",
                Json::Num(self.latency_percentile(0.5)),
            ),
            (
                "queue_latency_p95_s",
                Json::Num(self.latency_percentile(0.95)),
            ),
            (
                "queue_latency_max_s",
                Json::Num(self.latency_percentile(1.0)),
            ),
            ("shed_early", Json::from(self.shed_early)),
            ("deadline_miss", Json::from(self.deadline_miss)),
            ("slo_miss", Json::from(self.slo_miss)),
            ("autoscale_events", Json::from(self.autoscale_events)),
            ("deadline_miss_rate", Json::Num(self.deadline_miss_rate())),
            ("sdc_detected", Json::from(self.sdc_detected)),
            ("sdc_restarts", Json::from(self.sdc_restarts)),
            ("sdc_evictions", Json::from(self.sdc_evictions)),
            (
                "sdc_recovery_p50_s",
                Json::Num(self.sdc_recovery.quantile(0.5)),
            ),
            (
                "sdc_recovery_max_s",
                Json::Num(self.sdc_recovery.quantile(1.0)),
            ),
            (
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantStats::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_queue_means() {
        let mut s = ServeStats::new();
        s.sample_occupancy(4, 4);
        s.sample_occupancy(2, 4);
        assert!((s.mean_occupancy() - 0.75).abs() < 1e-12);
        s.sample_queue_depth(3);
        s.sample_queue_depth(1);
        assert!((s.mean_queue_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_needs_elapsed_time() {
        let mut s = ServeStats::new();
        s.record_completion(0.5);
        s.record_completion(1.5);
        assert_eq!(s.cases_per_sec(), 0.0, "no elapsed time yet");
        s.set_elapsed(4.0);
        assert!((s.cases_per_sec() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bucketed_with_exact_extremes() {
        let mut s = ServeStats::new();
        for l in [4.0, 1.0, 3.0, 2.0] {
            s.record_completion(l);
        }
        // extremes are exact; interior percentiles report the bucket upper
        // bound, within the 2^(1/4) histogram error bound of the exact
        // nearest-rank value (2.0 here)
        assert_eq!(s.latency_percentile(0.0), 1.0);
        assert_eq!(s.latency_percentile(1.0), 4.0);
        let p50 = s.latency_percentile(0.5);
        assert!(
            (2.0..=2.0 * 2f64.powf(0.25) + 1e-12).contains(&p50),
            "p50 {p50} outside the bucket error bound"
        );
        let empty = ServeStats::new();
        assert_eq!(empty.latency_percentile(0.5), 0.0);
    }

    #[test]
    fn merge_across_shards_sums_without_double_counting() {
        // two per-shard stats objects, disjoint observations
        let mut a = ServeStats::new();
        a.record_completion(0.5);
        a.record_completion(1.0);
        a.record_failure();
        a.record_watchdog_breach();
        a.sample_queue_depth(3);
        a.sample_occupancy(2, 4);
        a.set_elapsed(2.0);
        let mut b = ServeStats::new();
        b.record_completion(2.0);
        b.record_eviction();
        b.record_steal();
        b.record_node_crash();
        b.record_failover();
        b.sample_queue_depth(1);
        b.set_elapsed(3.5);

        let mut merged = ServeStats::new();
        merged.merge(&a);
        merged.merge(&b);

        // merged totals equal the per-shard sums exactly
        assert_eq!(merged.completed(), a.completed() + b.completed());
        assert_eq!(merged.failed(), a.failed() + b.failed());
        assert_eq!(merged.evicted(), a.evicted() + b.evicted());
        assert_eq!(
            merged.watchdog_breaches(),
            a.watchdog_breaches() + b.watchdog_breaches()
        );
        assert_eq!(merged.node_crashes(), 1);
        assert_eq!(merged.failovers(), 1);
        assert_eq!(merged.stolen(), 1);
        assert_eq!(
            merged.latency().total(),
            a.latency().total() + b.latency().total(),
            "histogram merge must not double-count observations"
        );
        assert_eq!(merged.latency_percentile(0.0), 0.5);
        assert_eq!(merged.latency_percentile(1.0), 2.0);
        assert_eq!(
            merged.queue_depth_samples().len(),
            a.queue_depth_samples().len() + b.queue_depth_samples().len()
        );
        // concurrent shards: elapsed is the max span, not the sum
        assert_eq!(merged.elapsed_s(), 3.5);

        // merging the same shard twice WOULD double-count — the cluster
        // layer builds the merged view from scratch each time for exactly
        // this reason; assert the primitive behaves additively so that
        // contract is visible.
        let mut twice = ServeStats::new();
        twice.merge(&a);
        twice.merge(&a);
        assert_eq!(twice.completed(), 2 * a.completed());
    }

    #[test]
    fn registry_export_mirrors_counters_and_latency() {
        let mut s = ServeStats::new();
        s.record_completion(0.5);
        s.record_completion(1.0);
        s.record_eviction();
        s.record_watchdog_breach();
        s.sample_queue_depth(4);
        s.set_elapsed(2.0);
        let mut r = MetricsRegistry::new();
        s.to_registry(&mut r);
        assert_eq!(r.counter("serve_requests_completed_total"), 2.0);
        assert_eq!(r.counter("serve_requests_evicted_total"), 1.0);
        assert_eq!(r.counter("serve_watchdog_breaches_total"), 1.0);
        assert_eq!(r.gauge("serve_queue_depth"), Some(4.0));
        assert_eq!(r.gauge("serve_elapsed_s"), Some(2.0));
        let h = r.histogram("serve_request_latency_s").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn tenant_rows_track_and_merge_independently() {
        let mut s = ServeStats::new();
        s.tenant_completion(0, 0.5, 10);
        s.tenant_completion(2, 1.0, 4);
        s.tenant_rejection(2);
        s.tenant_deadline_miss(2);
        s.tenant_slo_miss(0);
        assert_eq!(s.tenants().len(), 3, "dense table grows to cover id 2");
        assert_eq!(s.tenant(0).unwrap().served_steps, 10);
        assert_eq!(s.tenant(1).unwrap().completed, 0, "gap row stays zero");
        assert_eq!(s.tenant(2).unwrap().rejected, 1);
        assert_eq!(s.deadline_miss(), 1, "tenant miss bumps the aggregate");
        assert_eq!(s.slo_miss(), 1);

        let mut other = ServeStats::new();
        other.tenant_completion(2, 2.0, 6);
        other.record_shed_early();
        other.record_autoscale();
        s.merge(&other);
        assert_eq!(s.tenant(2).unwrap().completed, 2);
        assert_eq!(s.tenant(2).unwrap().served_steps, 10);
        assert_eq!(s.shed_early(), 1);
        assert_eq!(s.autoscale_events(), 1);
        assert_eq!(s.tenant(2).unwrap().latency_percentile(1.0), 2.0);

        let restored = ServeStats::new().with_qos_parts(
            s.shed_early(),
            s.deadline_miss(),
            s.slo_miss(),
            s.autoscale_events(),
            s.tenants().to_vec(),
        );
        assert_eq!(restored.tenants(), s.tenants());
        assert_eq!(restored.deadline_miss(), s.deadline_miss());
    }

    #[test]
    fn deadline_miss_rate_is_over_outcomes() {
        let mut s = ServeStats::new();
        assert_eq!(s.deadline_miss_rate(), 0.0);
        s.record_completion(0.1);
        s.record_completion(0.1);
        s.record_eviction();
        s.tenant_deadline_miss(0);
        assert!((s.deadline_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_json_has_bench_columns() {
        let mut s = ServeStats::new();
        s.sample_occupancy(3, 4);
        s.record_completion(0.25);
        s.record_rejection();
        s.record_shed();
        s.set_elapsed(1.0);
        let v = s.to_json();
        assert_eq!(v.get("completed").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("rejected").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("lane_occupancy").unwrap().as_f64(), Some(0.75));
        assert!(v.get("queue_latency_p95_s").is_some());
        assert_eq!(v.get("cases_per_sec").unwrap().as_f64(), Some(1.0));
    }
}
