//! Minimal JSON value, writer and parser.
//!
//! The offline workspace has no serde, so exports are hand-rolled the same
//! way `hetsolve-core::report` hand-rolls CSV. The writer escapes strings
//! per RFC 8259 and maps non-finite numbers to `null` (JSON has no
//! NaN/Inf); the parser accepts exactly the subset the writer emits plus
//! ordinary whitespace, which is all the round-trip tests need.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order via a sorted map — the
/// exports are diffed across PRs, so deterministic key order matters more
/// than preserving authoring order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member access for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements; empty for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly (single line).
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serialize with 2-space indentation (what ends up in committed
    /// `BENCH_<n>.json` files — reviewable diffs).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest round-trip Display is valid JSON syntax.
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset of the failure.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Exports only escape control chars (< 0x20), so no
                        // surrogate-pair handling is needed here.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy the full UTF-8 char starting here
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::from("solver@GPU")),
            ("ts", Json::Num(12.5)),
            ("count", Json::from(3usize)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.25), Json::Num(1e-8)]),
            ),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse_json(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}μ".to_string());
        let text = v.to_string_compact();
        assert!(text.contains("\\u0001"));
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn non_finite_maps_to_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().items().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().items()[1].as_f64(), Some(2.0));
        assert!(v.get("missing").is_none());
    }
}
