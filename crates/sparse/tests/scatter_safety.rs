//! Safety-net tests for the color-parallel EBE scatter (see
//! `hetsolve_sparse::parcheck` and DESIGN.md "Safety argument"):
//!
//! * property test: on random small meshes with random operator data, the
//!   colored scatter agrees with the sequential element-loop reference,
//!   and repeated colored applies are bit-identical (the scatter order is
//!   fully determined by the coloring, never by thread timing);
//! * an intentionally corrupted coloring is rejected at operator
//!   construction by the mesh-side validator;
//! * a corrupted coloring smuggled *past* the constructor (struct
//!   literal) is caught by the parcheck claim table at the exact racing
//!   write — the dynamic half of the safety story.

use hetsolve_mesh::{box_tet10, color_elements, BoxGrid, Coloring};
use hetsolve_sparse::ebe::{EbeData, EbeMultiOperator, EbeOperator};
use hetsolve_sparse::op::{LinearOperator, MultiOperator};
use proptest::prelude::*;

const TP: usize = 465;
const FP: usize = 171;

struct Fixture {
    n_nodes: usize,
    elems: Vec<[u32; 10]>,
    me: Vec<f64>,
    ke: Vec<f64>,
    faces: Vec<[u32; 6]>,
    cb: Vec<f64>,
    fixed: Vec<bool>,
    coloring: Coloring,
}

/// Deterministic pseudo-random fixture over a real `nx × ny × nz` box mesh;
/// matrix values are arbitrary (the tests compare two applies of the same
/// operator, not physics).
fn fixture(nx: usize, ny: usize, nz: usize, seed: u64, with_fixed: bool) -> Fixture {
    let mesh = box_tet10(&BoxGrid::new(nx, ny, nz, 1.0, 1.0, 1.0));
    let coloring = color_elements(&mesh);
    let ne = mesh.n_elems();
    let n_nodes = mesh.n_nodes();
    let mut s = seed | 1;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) % 1000) as f64 / 500.0 - 1.0
    };
    let me: Vec<f64> = (0..ne * TP).map(|_| next()).collect();
    let ke: Vec<f64> = (0..ne * TP).map(|_| next()).collect();
    // fake dashpot faces over the first few elements' corner/edge nodes
    let n_faces = ne.min(3);
    let faces: Vec<[u32; 6]> = (0..n_faces)
        .map(|e| {
            let el = &mesh.elems[e];
            [el[0], el[1], el[2], el[4], el[5], el[6]]
        })
        .collect();
    let cb: Vec<f64> = (0..n_faces * FP).map(|_| next()).collect();
    let fixed: Vec<bool> = if with_fixed {
        (0..3 * n_nodes).map(|d| d % 11 == 0).collect()
    } else {
        Vec::new()
    };
    Fixture {
        n_nodes,
        elems: mesh.elems,
        me,
        ke,
        faces,
        cb,
        fixed,
        coloring,
    }
}

fn data(fx: &Fixture) -> EbeData<'_> {
    EbeData {
        n_nodes: fx.n_nodes,
        elems: &fx.elems,
        me: &fx.me,
        ke: &fx.ke,
        faces: &fx.faces,
        cb: &fx.cb,
        c_m: 1.5,
        c_k: 0.75,
        c_b: 0.25,
        fixed: &fx.fixed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Colored scatter ≡ sequential element loop on random meshes. The two
    /// sum the same per-element contributions in different orders, so
    /// agreement is to rounding (tight relative tolerance); the colored
    /// apply itself must be bit-for-bit reproducible run to run.
    #[test]
    fn colored_scatter_matches_serial_reference(
        nx in 1usize..=3,
        ny in 1usize..=3,
        nz in 1usize..=2,
        seed in any::<u64>(),
        with_fixed in any::<bool>(),
    ) {
        let fx = fixture(nx, ny, nz, seed, with_fixed);
        let seq = EbeOperator::new(data(&fx), &fx.coloring, false);
        let par = EbeOperator::new(data(&fx), &fx.coloring, true);
        let n = seq.n();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) + (seed % 97) as f64).sin()).collect();
        let mut y_seq = vec![0.0; n];
        let mut y_par = vec![0.0; n];
        let mut y_par2 = vec![0.0; n];
        seq.apply(&x, &mut y_seq);
        par.apply(&x, &mut y_par);
        par.apply(&x, &mut y_par2);
        let scale = y_seq.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            prop_assert!(
                (y_par[i] - y_seq[i]).abs() <= 1e-12 * scale,
                "dof {} differs: colored {} vs serial {}", i, y_par[i], y_seq[i]
            );
            prop_assert_eq!(y_par[i].to_bits(), y_par2[i].to_bits(),
                "colored apply not deterministic at dof {}", i);
        }
    }

    /// Multi-RHS colored scatter ≡ R independent single-RHS applies.
    #[test]
    fn fused_rhs_matches_single(
        seed in any::<u64>(),
        r_pick in 0usize..=2,
    ) {
        let r = [2usize, 4, 8][r_pick];
        let fx = fixture(2, 2, 2, seed, true);
        let single = EbeOperator::new(data(&fx), &fx.coloring, false);
        let multi = EbeMultiOperator::new(data(&fx), &fx.coloring, true, r);
        let n = single.n();
        let mut x = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                x[i * r + c] = ((i * (c + 2)) as f64 * 0.31).cos();
            }
        }
        let mut y = vec![0.0; n * r];
        multi.apply_multi(&x, &mut y);
        for c in 0..r {
            let xc: Vec<f64> = (0..n).map(|i| x[i * r + c]).collect();
            let mut yc = vec![0.0; n];
            single.apply(&xc, &mut yc);
            let scale = yc.iter().fold(1e-300f64, |m, v| m.max(v.abs()));
            for i in 0..n {
                prop_assert!(
                    (y[i * r + c] - yc[i]).abs() <= 1e-10 * scale,
                    "r={} case {} dof {}", r, c, i
                );
            }
        }
    }
}

/// Merge the first two color groups into one, producing a coloring whose
/// group 0 contains node-sharing elements (all Kuhn tets of one cell share
/// the cell diagonal).
fn corrupted_coloring() -> (Fixture, Coloring) {
    let fx = fixture(1, 1, 1, 42, false);
    let mut bad = fx.coloring.clone();
    assert!(bad.groups.len() >= 2, "need at least two colors to corrupt");
    let moved = bad.groups.remove(1);
    for &e in &moved {
        bad.color[e as usize] = 0;
    }
    bad.groups[0].extend(moved);
    bad.groups[0].sort_unstable();
    bad.n_colors = bad.groups.len() as u32;
    (fx, bad)
}

/// The constructor's mesh-side validator rejects a broken coloring before
/// any unsafe scatter can run.
#[test]
#[should_panic(expected = "would race")]
fn constructor_rejects_corrupted_coloring() {
    let (fx, bad) = corrupted_coloring();
    let _ = EbeOperator::new(data(&fx), &bad, true);
}

/// A broken coloring smuggled past the constructor (struct literal) is
/// caught by the parcheck claim table at the racing write, naming the
/// offending element pair. This is the dynamic backstop: it fires even for
/// colorings no static check ever saw. Racecheck is active here because
/// `cargo test` builds with `debug_assertions`.
#[test]
#[should_panic(expected = "parcheck: race on output slot")]
fn racecheck_catches_corrupted_coloring_past_constructor() {
    let (fx, bad) = corrupted_coloring();
    let op = EbeOperator {
        data: data(&fx),
        coloring: &bad,
        face_groups: Vec::new(),
        parallel: true,
    };
    let n = 3 * fx.n_nodes;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut y = vec![0.0; n];
    op.apply(&x, &mut y);
}
