//! Property-based tests of the sparse substrate: BCRS vs. dense reference,
//! CG on random SPD systems, packed-symmetric kernel identities, and
//! multi-RHS consistency.

use hetsolve_sparse::sym::{packed_len, sym2_matvec_add, sym2_matvec_add_multi, sym_matvec_add};
use hetsolve_sparse::{
    pcg, BcrsBuilder, BlockJacobi, CgConfig, KernelCounts, LinearOperator, Preconditioner,
};
use proptest::prelude::*;

/// Random SPD block-sparse matrix: diagonally dominant blocks on a random
/// sparsity pattern symmetrized.
fn spd_bcrs(nb: usize, entries: &[(u8, u8, [i8; 9])]) -> hetsolve_sparse::Bcrs3 {
    let mut b = BcrsBuilder::new(nb);
    let mut diag_boost = vec![0.0f64; nb];
    for &(i, j, vals) in entries {
        let (i, j) = ((i as usize) % nb, (j as usize) % nb);
        if i == j {
            continue;
        }
        let mut blk = [0.0f64; 9];
        let mut blk_t = [0.0f64; 9];
        let mut mag = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let v = vals[3 * r + c] as f64 / 32.0;
                blk[3 * r + c] = v;
                blk_t[3 * c + r] = v;
                mag += v.abs();
            }
        }
        b.add_block(i as u32, j as u32, &blk);
        b.add_block(j as u32, i as u32, &blk_t);
        diag_boost[i] += mag;
        diag_boost[j] += mag;
    }
    for i in 0..nb {
        let d = 1.0 + diag_boost[i];
        b.add_block(i as u32, i as u32, &[d, 0.0, 0.0, 0.0, d, 0.0, 0.0, 0.0, d]);
    }
    b.finish(false)
}

struct Identity(usize);
impl Preconditioner for Identity {
    fn n(&self) -> usize {
        self.0
    }
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CG solves any diagonally-dominant SPD system; the residual of the
    /// returned solution actually satisfies the tolerance.
    #[test]
    fn cg_solves_random_spd(
        nb in 2usize..12,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<[i8; 9]>()), 0..40),
        rhs_seed in any::<u32>(),
    ) {
        let m = spd_bcrs(nb, &entries);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| (((i as u64 + 1) * (rhs_seed as u64 + 1)) % 97) as f64 / 48.5 - 1.0).collect();
        let mut x = vec![0.0; n];
        let stats = pcg(&m, &Identity(n), &f, &mut x, &CgConfig { tol: 1e-10, max_iter: 10_000, ..Default::default() });
        prop_assert!(stats.converged, "CG failed: {}", stats.final_rel_res);
        // verify residual directly
        let mut ax = vec![0.0; n];
        m.apply(&x, &mut ax);
        let rn: f64 = ax.iter().zip(&f).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let fn_: f64 = f.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(rn <= 1e-9 * fn_.max(1e-300) || fn_ == 0.0);
    }

    /// Block-Jacobi preconditioning never increases the iteration count on
    /// these diagonally dominant systems.
    #[test]
    fn block_jacobi_helps(
        nb in 2usize..10,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<[i8; 9]>()), 5..30),
    ) {
        let m = spd_bcrs(nb, &entries);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| ((i * 13 + 7) % 19) as f64 - 9.0).collect();
        let cfg = CgConfig { tol: 1e-9, max_iter: 10_000, ..Default::default() };
        let mut x1 = vec![0.0; n];
        let plain = pcg(&m, &Identity(n), &f, &mut x1, &cfg);
        let mut x2 = vec![0.0; n];
        let bj = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let prec = pcg(&m, &bj, &f, &mut x2, &cfg);
        prop_assert!(plain.converged && prec.converged);
        prop_assert!(prec.iterations <= plain.iterations + 2,
            "BJ {} vs identity {}", prec.iterations, plain.iterations);
    }

    /// Packed symmetric matvec equals the dense reference for any packed
    /// payload and size.
    #[test]
    fn packed_matvec_matches_dense(
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let len = packed_len(n);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let a: Vec<f64> = (0..len).map(|_| next()).collect();
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0; n];
        sym_matvec_add(&a, &x, &mut y, n);
        // dense reference via packed_idx
        let mut yd = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                yd[i] += a[hetsolve_sparse::sym::packed_idx(i, j)] * x[j];
            }
        }
        for i in 0..n {
            prop_assert!((y[i] - yd[i]).abs() < 1e-10);
        }
    }

    /// Fused combine kernel == scale-then-apply, and the multi-RHS kernel
    /// == per-case single-RHS, for arbitrary coefficients.
    #[test]
    fn fused_kernels_consistent(
        ca in -3.0f64..3.0,
        cb in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        const N: usize = 12;
        const R: usize = 4;
        let len = packed_len(N);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let a: Vec<f64> = (0..len).map(|_| next()).collect();
        let b: Vec<f64> = (0..len).map(|_| next()).collect();
        let x: Vec<f64> = (0..N * R).map(|_| next()).collect();
        let mut y = vec![0.0; N * R];
        sym2_matvec_add_multi::<R>(ca, &a, cb, &b, &x, &mut y, N);
        for c in 0..R {
            let xc: Vec<f64> = (0..N).map(|i| x[i * R + c]).collect();
            let mut yc = vec![0.0; N];
            sym2_matvec_add(ca, &a, cb, &b, &xc, &mut yc, N);
            for i in 0..N {
                prop_assert!((y[i * R + c] - yc[i]).abs() < 1e-10);
            }
        }
    }

    /// BCRS builder: block duplicates merge additively and SpMV is linear.
    #[test]
    fn bcrs_linearity(
        nb in 1usize..8,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<[i8; 9]>()), 1..25),
        alpha in -4.0f64..4.0,
    ) {
        let m = spd_bcrs(nb, &entries);
        let n = m.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let xs: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.apply(&x, &mut y1);
        m.apply(&xs, &mut y2);
        for i in 0..n {
            prop_assert!((y2[i] - alpha * y1[i]).abs() < 1e-9 * (1.0 + y1[i].abs() * alpha.abs()));
        }
    }
}
