//! Solver hardening: every abnormal input drives `pcg`/`mcg` to a *typed*
//! [`Termination`] — never a panic, never a silent `converged: false` with
//! a misleading `MaxIter` label.

use hetsolve_sparse::{
    mcg, pcg, CgConfig, KernelCounts, LinearOperator, MultiOperator, Preconditioner, Termination,
};

/// Dense symmetric operator from an explicit diagonal (off-diagonals 0).
struct Diag(Vec<f64>);

impl LinearOperator for Diag {
    fn n(&self) -> usize {
        self.0.len()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.0[i] * x[i];
        }
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

impl MultiOperator for Diag {
    fn n(&self) -> usize {
        self.0.len()
    }
    fn r(&self) -> usize {
        2
    }
    fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
        let r = 2;
        for i in 0..self.0.len() {
            for c in 0..r {
                y[i * r + c] = self.0[i] * x[i * r + c];
            }
        }
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

struct Identity(usize);

impl Preconditioner for Identity {
    fn n(&self) -> usize {
        self.0
    }
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

/// A uniform plane rotation by 1 radian: `p·Ap = cos(1)·‖p‖² > 0` and
/// `z·r = ‖r‖² > 0` for every direction, so neither breakdown guard can
/// fire — but the operator is far from symmetric and CG's residual *grows*
/// by tan(1) ≈ 1.56 per iteration. The canonical "hopeless but not broken"
/// solve: only the stagnation window (or the iteration cap) can stop it.
struct Rot(usize);

impl Rot {
    fn rotate(&self, x: &[f64], y: &mut [f64], stride: usize, lane: usize) {
        let (s, c) = (1.0f64).sin_cos();
        for k in 0..self.0 / 2 {
            let a = x[(2 * k) * stride + lane];
            let b = x[(2 * k + 1) * stride + lane];
            y[(2 * k) * stride + lane] = c * a - s * b;
            y[(2 * k + 1) * stride + lane] = s * a + c * b;
        }
    }
}

impl LinearOperator for Rot {
    fn n(&self) -> usize {
        self.0
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.rotate(x, y, 1, 0);
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

impl MultiOperator for Rot {
    fn n(&self) -> usize {
        self.0
    }
    fn r(&self) -> usize {
        2
    }
    fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
        for lane in 0..2 {
            self.rotate(x, y, 2, lane);
        }
    }
    fn counts(&self) -> KernelCounts {
        KernelCounts::default()
    }
}

fn cfg(tol: f64, max_iter: usize, window: usize) -> CgConfig {
    CgConfig {
        tol,
        max_iter,
        stagnation_window: window,
        ..CgConfig::default()
    }
}

#[test]
fn indefinite_operator_reports_breakdown_not_panic() {
    // one negative eigenvalue makes A indefinite: p'Ap can go <= 0
    let n = 8;
    let mut d = vec![1.0; n];
    d[3] = -1.0;
    let a = Diag(d);
    let f: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.3).collect();
    let mut x = vec![0.0; n];
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 100, 0));
    assert!(!stats.converged);
    assert!(
        matches!(
            stats.termination,
            Termination::Breakdown | Termination::RhoBreakdown
        ),
        "got {:?}",
        stats.termination
    );
    assert!(stats.termination.is_failure());
}

#[test]
fn nan_rhs_reports_nan_residual_single() {
    let n = 6;
    let a = Diag(vec![2.0; n]);
    let mut f = vec![1.0; n];
    f[2] = f64::NAN;
    let mut x = vec![0.0; n];
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-10, 200, 0));
    assert!(!stats.converged);
    assert_eq!(stats.termination, Termination::NanResidual);
}

#[test]
fn nan_guess_reports_nan_residual_single() {
    let n = 6;
    let a = Diag(vec![2.0; n]);
    let f = vec![1.0; n];
    let mut x = vec![0.0; n];
    x[4] = f64::NAN;
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-10, 200, 0));
    assert!(!stats.converged);
    assert_eq!(stats.termination, Termination::NanResidual);
}

#[test]
fn stagnating_solve_reports_stagnation_before_max_iter() {
    let n = 12;
    let a = Rot(n);
    let f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() + 1.5).collect();
    let mut x = vec![0.0; n];
    // the residual never improves; the window fires long before the
    // (huge) iteration cap
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 1_000_000, 5));
    assert!(!stats.converged);
    assert_eq!(stats.termination, Termination::Stagnation);
    assert!(
        stats.iterations < 100,
        "stagnation should fire early, took {}",
        stats.iterations
    );
}

#[test]
fn stagnation_disabled_by_default_runs_to_max_iter() {
    let n = 12;
    let a = Rot(n);
    let f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() + 1.5).collect();
    let mut x = vec![0.0; n];
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 50, 0));
    assert!(!stats.converged);
    assert_eq!(stats.termination, Termination::MaxIter);
    assert_eq!(stats.iterations, 50);
}

#[test]
fn mcg_isolates_nan_lane_and_ranks_severity() {
    let n = 6;
    let r = 2;
    let a = Diag(vec![2.0; n]);
    let mut f = vec![1.0; n * r];
    // poison case 1 only (interleaved storage f[dof*r + case])
    for i in 0..n {
        f[i * r + 1] = f64::NAN;
    }
    let mut x = vec![0.0; n * r];
    let stats = mcg(&a, &Identity(n), &f, &mut x, &cfg(1e-10, 200, 0));
    assert!(!stats.converged);
    assert_eq!(stats.case_termination[0], Termination::Converged);
    assert_eq!(stats.case_termination[1], Termination::NanResidual);
    // fused verdict takes the most severe lane
    assert_eq!(stats.termination, Termination::NanResidual);
    // the healthy lane's solution is intact (x = f / 2)
    for i in 0..n {
        assert!(
            (x[i * r] - 0.5).abs() < 1e-9,
            "lane 0 dof {i}: {}",
            x[i * r]
        );
        assert!(x[i * r + 1].is_nan() || x[i * r + 1] == 0.0);
    }
}

#[test]
fn mcg_indefinite_operator_reports_breakdown_for_all_lanes() {
    let n = 8;
    let r = 2;
    let mut d = vec![1.0; n];
    d[5] = -2.0;
    let a = Diag(d);
    let f: Vec<f64> = (0..n * r).map(|i| (i as f64 + 1.0) * 0.1).collect();
    let mut x = vec![0.0; n * r];
    let stats = mcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 100, 0));
    assert!(!stats.converged);
    for t in &stats.case_termination {
        assert!(t.is_failure(), "lane should fail, got {t:?}");
    }
    assert!(matches!(
        stats.termination,
        Termination::Breakdown | Termination::RhoBreakdown
    ));
}

#[test]
fn mcg_stagnation_window_freezes_hopeless_lanes() {
    let n = 12;
    let r = 2;
    let a = Rot(n);
    let mut f = vec![0.0; n * r];
    for i in 0..n {
        for c in 0..r {
            f[i * r + c] = ((i * (c + 1)) as f64 * 0.7).sin() + 1.5;
        }
    }
    let mut x = vec![0.0; n * r];
    let stats = mcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 1_000_000, 5));
    assert!(!stats.converged);
    for t in &stats.case_termination {
        assert_eq!(*t, Termination::Stagnation);
    }
    assert!(stats.fused_iterations < 100);
}

#[test]
fn divergent_guess_rejected_before_first_iteration() {
    let n = 6;
    let a = Diag(vec![2.0; n]);
    let f = vec![1.0; n];
    let mut x = vec![1e12; n]; // guess ~12 orders of magnitude off
    let mut c = cfg(1e-8, 200, 0);
    c.guess_divergence = 1e8;
    let stats = pcg(&a, &Identity(n), &f, &mut x, &c);
    assert!(!stats.converged);
    assert_eq!(stats.termination, Termination::DivergentGuess);
    assert_eq!(stats.iterations, 0, "must reject before iterating");
    // disabled (default 0.0): the solver is free to try anyway
    let mut x2 = vec![1e12; n];
    let stats2 = pcg(&a, &Identity(n), &f, &mut x2, &cfg(1e-8, 200, 0));
    assert_ne!(stats2.termination, Termination::DivergentGuess);
}

#[test]
fn mcg_divergent_guess_freezes_only_the_bad_lane() {
    let n = 6;
    let r = 2;
    let a = Diag(vec![2.0; n]);
    let f = vec![1.0; n * r];
    let mut x = vec![0.0; n * r];
    for i in 0..n {
        x[i * r + 1] = 1e12; // lane 1's guess is hopeless
    }
    let mut c = cfg(1e-8, 200, 0);
    c.guess_divergence = 1e8;
    let stats = mcg(&a, &Identity(n), &f, &mut x, &c);
    assert!(!stats.converged);
    assert_eq!(stats.case_termination[0], Termination::Converged);
    assert_eq!(stats.case_termination[1], Termination::DivergentGuess);
    assert_eq!(stats.termination, Termination::DivergentGuess);
    // the healthy lane still solved to x = f / 2
    for i in 0..n {
        assert!((x[i * r] - 0.5).abs() < 1e-9);
    }
}

#[test]
fn healthy_solve_still_converges_with_guards_active() {
    let n = 10;
    let a = Diag(vec![3.0; n]);
    let f: Vec<f64> = (0..n).map(|i| (i as f64) + 1.0).collect();
    let mut x = vec![0.0; n];
    let stats = pcg(&a, &Identity(n), &f, &mut x, &cfg(1e-12, 100, 4));
    assert!(stats.converged);
    assert_eq!(stats.termination, Termination::Converged);
    for i in 0..n {
        assert!((x[i] - f[i] / 3.0).abs() < 1e-9);
    }
}
