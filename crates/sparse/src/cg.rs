//! Preconditioned conjugate gradient — the paper's Algorithm 1.
//!
//! Convergence criterion: `‖r‖₂ / ‖f‖₂ < ε` (relative to the right-hand
//! side, as in the paper; `ε = 10⁻⁸` in the experiments). The residual
//! history is recorded so Fig. 3 (convergence vs. initial guess) can be
//! regenerated directly.

use hetsolve_obs::{NoopObserver, SolveObserver, Termination};

use crate::op::{KernelCounts, LinearOperator, Preconditioner};
use crate::vecops::{axpy, dot, norm2, xpby};

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance ε.
    pub tol: f64,
    /// Iteration cap (counts operator applications after the initial one).
    pub max_iter: usize,
    /// Declare [`Termination::Stagnation`] after this many consecutive
    /// iterations without a strict improvement of the best relative
    /// residual. `0` disables the check (the default, preserving the
    /// original solver behavior exactly).
    pub stagnation_window: usize,
    /// Reject the initial guess with [`Termination::DivergentGuess`] when
    /// its relative residual exceeds this, *before* the first iteration.
    /// Past roughly `tol / f64::EPSILON` the recursive residual can reach
    /// `tol` while the true error stays enormous (the recursion drifts from
    /// the true residual by about `eps ×` the largest intermediate), so
    /// "converged" would be a lie; failing typed lets a recovery ladder
    /// retry from a sane guess. `0.0` disables the check (the default).
    pub guess_divergence: f64,
    /// Invariant-sentinel period: every this many iterations the *true*
    /// residual `f − A x` is recomputed into solver-private scratch and
    /// compared against the recursive residual the iteration carries. A
    /// silent bit flip in `x`, `r`, or the operator makes the two diverge —
    /// the classic CG ABFT signature — and the solve stops typed with
    /// [`Termination::ResidualDrift`]. The check is strictly read-only
    /// (`x`, `r`, `p`, `q` untouched; sentinel work excluded from
    /// [`CgStats::counts`] so the modeled timeline is unchanged), so a
    /// clean solve is bitwise-identical with the sentinel on or off.
    /// `0` disables it (the default).
    pub sentinel_every: usize,
    /// Drift bound for the sentinel: trip when
    /// `rel_true > sentinel_drift × max(rel_recursive, tol)`. `<= 0.0`
    /// falls back to [`DEFAULT_SENTINEL_DRIFT`] when the sentinel is armed.
    pub sentinel_drift: f64,
    /// Bounded-norm guard, checked at sentinel ticks: trip with
    /// [`Termination::NormExploded`] when `‖x‖` exceeds this factor times
    /// the reference norm (`max(‖x‖ at the first check, 1)`). Catches
    /// runaway iterates whose recursive residual still looks plausible.
    /// `0.0` disables it (the default).
    pub norm_bound: f64,
}

/// Drift bound used when [`CgConfig::sentinel_every`] is armed but
/// [`CgConfig::sentinel_drift`] is unset. Healthy CG keeps the recursive
/// and true residuals within a small factor of each other until the
/// attainable-accuracy floor; three orders of magnitude of slack keeps the
/// false-positive rate at zero while still catching single bit flips,
/// which perturb the invariant by many orders.
pub const DEFAULT_SENTINEL_DRIFT: f64 = 1e3;

impl Default for CgConfig {
    fn default() -> Self {
        // the paper's error threshold
        CgConfig {
            tol: 1e-8,
            max_iter: 10_000,
            stagnation_window: 0,
            guess_divergence: 0.0,
            sentinel_every: 0,
            sentinel_drift: 0.0,
            norm_bound: 0.0,
        }
    }
}

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// `‖r₀‖/‖f‖` with the supplied initial guess (quality of the guess).
    pub initial_rel_res: f64,
    /// Final relative residual.
    pub final_rel_res: f64,
    pub converged: bool,
    /// Why the solve stopped (`converged == (termination == Converged)`).
    pub termination: Termination,
    /// `‖r‖/‖f‖` after every iteration (index 0 = initial).
    pub history: Vec<f64>,
    /// Work performed (operator + preconditioner + vector ops), summed.
    pub counts: KernelCounts,
}

/// Solve `A x = f` by preconditioned CG starting from the initial guess in
/// `x` (overwritten with the solution).
pub fn pcg<A: LinearOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
) -> CgStats {
    // NoopObserver is a ZST with empty inlined hooks: this monomorphization
    // is the exact pre-observer solver (bitwise-identity is tested).
    pcg_observed(a, prec, f, x, cfg, &mut NoopObserver)
}

/// [`pcg`] with per-iteration observation: `obs` receives the initial
/// relative residual, every iterate's residual, and the termination cause.
/// Observers are read-only, so the computed solution and iteration count
/// are identical to the unobserved call.
pub fn pcg_observed<A: LinearOperator, P: Preconditioner, O: SolveObserver>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    obs: &mut O,
) -> CgStats {
    let n = a.n();
    assert_eq!(f.len(), n);
    assert_eq!(x.len(), n);
    let f_norm = norm2(f);
    // vector-op cost per iteration: 2 dots + 3 axpy-like passes over n
    let vec_counts = KernelCounts {
        flops: 10.0 * n as f64,
        bytes_stream: 5.0 * 16.0 * n as f64,
        bytes_rand: 0.0,
        rand_transactions: 0.0,
        rhs_fused: 1,
    };
    let mut counts = KernelCounts::default();

    // r = f - A x
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    counts = counts.merged(a.counts());
    for i in 0..n {
        r[i] = f[i] - r[i];
    }

    if f_norm == 0.0 {
        // A is SPD => x = 0 is the exact solution of A x = 0.
        x.fill(0.0);
        obs.solve_begin(n, 1, &[0.0]);
        obs.solve_end(0, Termination::Converged);
        return CgStats {
            iterations: 0,
            initial_rel_res: 0.0,
            final_rel_res: 0.0,
            converged: true,
            termination: Termination::Converged,
            history: vec![0.0],
            counts,
        };
    }

    let mut rel = norm2(&r) / f_norm;
    let initial_rel_res = rel;
    let mut history = vec![rel];
    obs.solve_begin(n, 1, &[rel]);

    if cfg.guess_divergence > 0.0 && rel.is_finite() && rel > cfg.guess_divergence {
        // the guess is beyond f64 rescue: fail typed before wasting
        // iterations on a "convergence" that cannot be trusted
        obs.solve_end(0, Termination::DivergentGuess);
        return CgStats {
            iterations: 0,
            initial_rel_res,
            final_rel_res: rel,
            converged: false,
            termination: Termination::DivergentGuess,
            history,
            counts,
        };
    }

    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut rho_prev = 0.0;
    let mut iterations = 0;
    // Abnormal break cause; None while the iteration is healthy. All the
    // guards below only read values the healthy path computes anyway, so a
    // converging solve is bitwise-identical with or without them.
    let mut abnormal: Option<Termination> = None;
    // Stagnation tracking: strict best-so-far with an improvement deadline.
    let mut best_rel = rel;
    let mut since_improve = 0usize;
    // Invariant-sentinel scratch, allocated lazily so the sentinel-off path
    // performs zero extra work. `norm_ref` is set at the first sentinel
    // tick (0.0 = not yet captured).
    let mut true_r: Vec<f64> = Vec::new();
    let mut norm_ref = 0.0f64;

    // NaN initial residual (poisoned guess or RHS) fails the `rel >= tol`
    // comparison, skips the loop, and classifies as NanResidual below.
    while rel >= cfg.tol && iterations < cfg.max_iter {
        prec.apply(&r, &mut z);
        counts = counts.merged(prec.counts());
        let rho = dot(&z, &r);
        if !rho.is_finite() {
            abnormal = Some(Termination::NanResidual);
            break;
        }
        if rho <= 0.0 {
            // zᵀr must stay positive for an SPD preconditioner: the
            // preconditioned inner product has broken down.
            abnormal = Some(Termination::RhoBreakdown);
            break;
        }
        if iterations == 0 {
            p.copy_from_slice(&z);
        } else {
            let beta = rho / rho_prev;
            xpby(&z, beta, &mut p);
        }
        a.apply(&p, &mut q);
        counts = counts.merged(a.counts()).merged(vec_counts);
        let pq = dot(&p, &q);
        if !pq.is_finite() {
            abnormal = Some(Termination::NanResidual);
            break;
        }
        if pq <= 0.0 {
            // loss of positive definiteness (numerical breakdown): stop.
            abnormal = Some(Termination::Breakdown);
            break;
        }
        let alpha = rho / pq;
        axpy(alpha, &p, x);
        axpy(-alpha, &q, &mut r);
        rho_prev = rho;
        iterations += 1;
        rel = norm2(&r) / f_norm;
        history.push(rel);
        obs.iteration(iterations, &[rel]);
        if !rel.is_finite() {
            abnormal = Some(Termination::NanResidual);
            break;
        }
        if cfg.sentinel_every > 0 && iterations % cfg.sentinel_every == 0 && rel >= cfg.tol {
            // ABFT invariant sentinel: recompute the true residual into
            // private scratch and compare with the recursive one. Reads
            // x/f only, writes nothing the iteration uses, and its applies
            // are deliberately NOT merged into `counts` — the modeled
            // timeline must not shift when detection is enabled.
            if true_r.is_empty() {
                true_r = vec![0.0; n];
            }
            a.apply(x, &mut true_r);
            let mut sq = 0.0;
            for i in 0..n {
                let d = f[i] - true_r[i];
                sq += d * d;
            }
            let rel_true = sq.sqrt() / f_norm;
            let drift = if cfg.sentinel_drift > 0.0 {
                cfg.sentinel_drift
            } else {
                DEFAULT_SENTINEL_DRIFT
            };
            if !rel_true.is_finite() || rel_true > drift * rel.max(cfg.tol) {
                abnormal = Some(Termination::ResidualDrift);
                break;
            }
            if cfg.norm_bound > 0.0 {
                let nx = norm2(x);
                if norm_ref == 0.0 {
                    norm_ref = nx.max(1.0);
                }
                if !nx.is_finite() || nx > cfg.norm_bound * norm_ref {
                    abnormal = Some(Termination::NormExploded);
                    break;
                }
            }
        }
        if cfg.stagnation_window > 0 {
            if rel < best_rel {
                best_rel = rel;
                since_improve = 0;
            } else {
                since_improve += 1;
                if since_improve >= cfg.stagnation_window {
                    abnormal = Some(Termination::Stagnation);
                    break;
                }
            }
        }
    }

    if cfg.sentinel_every > 0 && abnormal.is_none() && rel < cfg.tol && iterations > 0 {
        // Exit audit: never report Converged on a corrupted iterate. A flip
        // that shrinks the recursive residual below tol is the one corruption
        // the periodic tick can miss, so convergence itself is verified once
        // against the true residual (read-only, uncounted, like the tick).
        if true_r.is_empty() {
            true_r = vec![0.0; n];
        }
        a.apply(x, &mut true_r);
        let mut sq = 0.0;
        for i in 0..n {
            let d = f[i] - true_r[i];
            sq += d * d;
        }
        let rel_true = sq.sqrt() / f_norm;
        let drift = if cfg.sentinel_drift > 0.0 {
            cfg.sentinel_drift
        } else {
            DEFAULT_SENTINEL_DRIFT
        };
        if !rel_true.is_finite() || rel_true > drift * cfg.tol {
            abnormal = Some(Termination::ResidualDrift);
        }
    }

    // The abnormal cause wins over the residual test: every mid-loop break
    // happens with `rel >= tol` (or non-finite), and the exit audit above
    // sets it precisely because `rel < tol` cannot be trusted.
    let termination = if let Some(t) = abnormal {
        t
    } else if rel < cfg.tol {
        Termination::Converged
    } else if !rel.is_finite() {
        Termination::NanResidual
    } else {
        Termination::MaxIter
    };
    obs.solve_end(iterations, termination);

    CgStats {
        iterations,
        initial_rel_res,
        final_rel_res: rel,
        converged: termination == Termination::Converged,
        termination,
        history,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcrs::BcrsBuilder;
    use crate::blockjacobi::BlockJacobi;
    use crate::dense::solve_spd;

    /// Identity preconditioner for baseline tests.
    struct NoPrec(usize);
    impl Preconditioner for NoPrec {
        fn n(&self) -> usize {
            self.0
        }
        fn apply(&self, r: &[f64], z: &mut [f64]) {
            z.copy_from_slice(r);
        }
        fn counts(&self) -> KernelCounts {
            KernelCounts::default()
        }
    }

    /// Block-tridiagonal SPD test matrix with 3x3 blocks.
    fn spd_matrix(nb: usize) -> crate::bcrs::Bcrs3 {
        let mut b = BcrsBuilder::new(nb);
        for i in 0..nb {
            let diag = [
                8.0, 1.0, 0.0, //
                1.0, 9.0, 2.0, //
                0.0, 2.0, 10.0,
            ];
            b.add_block(i as u32, i as u32, &diag);
            if i + 1 < nb {
                let off = [
                    -1.0, 0.2, 0.0, //
                    0.0, -1.0, 0.1, //
                    0.3, 0.0, -1.0,
                ];
                let mut off_t = [0.0; 9];
                for r in 0..3 {
                    for c in 0..3 {
                        off_t[c * 3 + r] = off[r * 3 + c];
                    }
                }
                b.add_block(i as u32, (i + 1) as u32, &off);
                b.add_block((i + 1) as u32, i as u32, &off_t);
            }
        }
        b.finish(false)
    }

    fn dense_of(m: &crate::bcrs::Bcrs3) -> Vec<f64> {
        let n = m.n();
        let mut d = vec![0.0; n * n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut col = vec![0.0; n];
            m.apply(&e, &mut col);
            for i in 0..n {
                d[i * n + j] = col[i];
            }
        }
        d
    }

    #[test]
    fn cg_matches_direct_solver() {
        let m = spd_matrix(10);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut x = vec![0.0; n];
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let stats = pcg(
            &m,
            &prec,
            &f,
            &mut x,
            &CgConfig {
                tol: 1e-12,
                max_iter: 500,
                ..CgConfig::default()
            },
        );
        assert!(stats.converged, "CG did not converge: {stats:?}");
        let xd = solve_spd(&dense_of(&m), n, &f).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - xd[i]).abs() < 1e-8,
                "dof {i}: {} vs {}",
                x[i],
                xd[i]
            );
        }
    }

    #[test]
    fn preconditioner_reduces_iterations() {
        let m = spd_matrix(40);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.3).cos()).collect();
        let cfg = CgConfig {
            tol: 1e-10,
            max_iter: 1000,
            ..CgConfig::default()
        };
        let mut x1 = vec![0.0; n];
        let s_plain = pcg(&m, &NoPrec(n), &f, &mut x1, &cfg);
        let mut x2 = vec![0.0; n];
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let s_bj = pcg(&m, &prec, &f, &mut x2, &cfg);
        assert!(s_plain.converged && s_bj.converged);
        assert!(
            s_bj.iterations <= s_plain.iterations,
            "BJ {} vs plain {}",
            s_bj.iterations,
            s_plain.iterations
        );
    }

    #[test]
    fn good_initial_guess_reduces_iterations() {
        let m = spd_matrix(30);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let cfg = CgConfig::default();
        let mut x_cold = vec![0.0; n];
        let s_cold = pcg(&m, &prec, &f, &mut x_cold, &cfg);
        // warm start: exact solution perturbed slightly
        let mut x_warm: Vec<f64> = x_cold.iter().map(|v| v * (1.0 + 1e-6)).collect();
        let s_warm = pcg(&m, &prec, &f, &mut x_warm, &cfg);
        assert!(s_warm.initial_rel_res < s_cold.initial_rel_res);
        assert!(s_warm.iterations < s_cold.iterations);
    }

    #[test]
    fn history_is_monotone_enough_and_recorded() {
        let m = spd_matrix(20);
        let n = m.n();
        let f = vec![1.0; n];
        let mut x = vec![0.0; n];
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let stats = pcg(&m, &prec, &f, &mut x, &CgConfig::default());
        assert_eq!(stats.history.len(), stats.iterations + 1);
        assert!(stats.history[0] >= stats.history[stats.iterations]);
        assert!(stats.final_rel_res < 1e-8);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let m = spd_matrix(5);
        let n = m.n();
        let f = vec![0.0; n];
        let mut x = vec![1.0; n];
        let stats = pcg(&m, &NoPrec(n), &f, &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_respected() {
        let m = spd_matrix(50);
        let n = m.n();
        let f = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            &m,
            &NoPrec(n),
            &f,
            &mut x,
            &CgConfig {
                tol: 1e-30,
                max_iter: 3,
                ..CgConfig::default()
            },
        );
        assert_eq!(stats.iterations, 3);
        assert!(!stats.converged);
    }

    /// Operator that computes correctly except for one transient glitch:
    /// application number `glitch_at` (1-based) has its output perturbed —
    /// the classic silent-data-corruption model (a particle strike during
    /// one SpMV). Every other application, including the sentinel's own
    /// true-residual recomputation, is exact.
    struct GlitchOp<'a> {
        inner: &'a crate::bcrs::Bcrs3,
        applies: std::sync::atomic::AtomicUsize,
        glitch_at: usize,
        /// `None`: flip bit 61 of `y[0]`. `Some(s)`: scale all of `y` by `s`.
        scale: Option<f64>,
    }

    impl LinearOperator for GlitchOp<'_> {
        fn n(&self) -> usize {
            self.inner.n()
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            let k = self
                .applies
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                + 1;
            self.inner.apply(x, y);
            if k == self.glitch_at {
                match self.scale {
                    None => y[0] = f64::from_bits(y[0].to_bits() ^ (1u64 << 61)),
                    Some(s) => {
                        for v in y.iter_mut() {
                            *v *= s;
                        }
                    }
                }
            }
        }
        fn counts(&self) -> KernelCounts {
            self.inner.counts()
        }
    }

    #[test]
    fn sentinel_catches_transient_operator_glitch() {
        let m = spd_matrix(30);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let cfg = CgConfig {
            sentinel_every: 2,
            ..CgConfig::default()
        };
        // applies: #1 init residual, iter1 #2, iter2 #3 + sentinel #4,
        // iter3 #5 (glitched), iter4 #6 + sentinel #7 -> drift detected
        let op = GlitchOp {
            inner: &m,
            applies: std::sync::atomic::AtomicUsize::new(0),
            glitch_at: 5,
            scale: None,
        };
        let mut x = vec![0.0; n];
        let stats = pcg(&op, &NoPrec(n), &f, &mut x, &cfg);
        assert_eq!(stats.termination, Termination::ResidualDrift);
        assert!(!stats.converged);
        // without the sentinel the same glitch "converges" silently wrong:
        // the recursive residual knows nothing about the corrupted update
        let op2 = GlitchOp {
            inner: &m,
            applies: std::sync::atomic::AtomicUsize::new(0),
            glitch_at: 5,
            scale: None,
        };
        let mut x2 = vec![0.0; n];
        let blind = pcg(&op2, &NoPrec(n), &f, &mut x2, &CgConfig::default());
        if blind.converged {
            let mut ax = vec![0.0; n];
            m.apply(&x2, &mut ax);
            let true_rel = (0..n).map(|i| (f[i] - ax[i]).powi(2)).sum::<f64>().sqrt() / norm2(&f);
            assert!(
                true_rel > 1e-4,
                "glitch should have produced a wrong answer, got {true_rel}"
            );
        }
    }

    #[test]
    fn norm_guard_catches_runaway_iterate() {
        let m = spd_matrix(30);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| (i as f64 * 1.1).cos()).collect();
        let cfg = CgConfig {
            sentinel_every: 1,
            // drift check neutralized so the norm guard is what trips
            sentinel_drift: f64::INFINITY,
            norm_bound: 1e6,
            ..CgConfig::default()
        };
        // applies: #1 init, iter1 #2, sentinel #3 (captures norm_ref),
        // iter2 #4 glitched to near-zero q => alpha explodes => ‖x‖ huge
        let op = GlitchOp {
            inner: &m,
            applies: std::sync::atomic::AtomicUsize::new(0),
            glitch_at: 4,
            scale: Some(1e-30),
        };
        let mut x = vec![0.0; n];
        let stats = pcg(&op, &NoPrec(n), &f, &mut x, &cfg);
        assert_eq!(stats.termination, Termination::NormExploded);
        assert!(!stats.converged);
    }

    #[test]
    fn sentinel_is_bitwise_neutral_on_clean_solves() {
        let m = spd_matrix(40);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let mut x_off = vec![0.0; n];
        let s_off = pcg(&m, &prec, &f, &mut x_off, &CgConfig::default());
        let mut x_on = vec![0.0; n];
        let s_on = pcg(
            &m,
            &prec,
            &f,
            &mut x_on,
            &CgConfig {
                sentinel_every: 2,
                norm_bound: 1e9,
                ..CgConfig::default()
            },
        );
        assert!(s_off.converged && s_on.converged);
        assert_eq!(s_off.iterations, s_on.iterations);
        assert_eq!(s_off.history, s_on.history);
        // modeled work must not shift when detection is armed
        assert_eq!(s_off.counts.flops.to_bits(), s_on.counts.flops.to_bits());
        for i in 0..n {
            assert_eq!(x_off[i].to_bits(), x_on[i].to_bits(), "dof {i}");
        }
    }

    #[test]
    fn work_counts_accumulate() {
        let m = spd_matrix(10);
        let n = m.n();
        let f = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(&m, &NoPrec(n), &f, &mut x, &CgConfig::default());
        // at least (iterations + 1) operator applications worth of flops
        let per_apply = m.counts().flops;
        assert!(stats.counts.flops >= per_apply * (stats.iterations as f64));
    }
}
