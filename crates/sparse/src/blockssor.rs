//! Block symmetric Gauss-Seidel (SSOR with ω = 1) preconditioner.
//!
//! The paper closes by noting the proposed framework "could be based on
//! more sophisticated methods (e.g., solvers with improved convergence)".
//! This module provides one such drop-in: the 3×3-block symmetric
//! Gauss-Seidel preconditioner
//!
//! `B⁻¹ = (D + U)⁻¹ D (D + L)⁻¹`
//!
//! over an assembled [`crate::Bcrs3`] matrix — SPD whenever `A` is, and
//! typically a substantially better preconditioner than block-Jacobi at the
//! cost of a sequential triangular sweep (which is why the paper's
//! GPU-friendly baseline sticks to block-Jacobi; the ablation bench
//! quantifies the trade).

use crate::bcrs::Bcrs3;
use crate::dense::{inv3, mat3_vec};
use crate::op::{KernelCounts, LinearOperator, Preconditioner};

/// Block-SSOR preconditioner holding a reference to the matrix plus the
/// inverted diagonal blocks.
pub struct BlockSsor<'a> {
    pub a: &'a Bcrs3,
    inv_diag: Vec<[f64; 9]>,
}

impl<'a> BlockSsor<'a> {
    /// Build from an assembled matrix (inverts every diagonal block once).
    pub fn new(a: &'a Bcrs3) -> Self {
        let identity = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let inv_diag = a
            .diagonal_blocks()
            .iter()
            .map(|b| inv3(b).unwrap_or(identity))
            .collect();
        BlockSsor { a, inv_diag }
    }
}

impl Preconditioner for BlockSsor<'_> {
    fn n(&self) -> usize {
        self.a.n()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let a = self.a;
        let nb = a.n_brows;
        debug_assert_eq!(r.len(), 3 * nb);
        // forward sweep: (D + L) y = r
        let mut y = vec![0.0f64; 3 * nb];
        for i in 0..nb {
            let mut acc = [r[3 * i], r[3 * i + 1], r[3 * i + 2]];
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                let j = a.cols[k] as usize;
                if j < i {
                    let b = &a.blocks[k];
                    let yj = [y[3 * j], y[3 * j + 1], y[3 * j + 2]];
                    let c = mat3_vec(b, &yj);
                    acc[0] -= c[0];
                    acc[1] -= c[1];
                    acc[2] -= c[2];
                }
            }
            let out = mat3_vec(&self.inv_diag[i], &acc);
            y[3 * i..3 * i + 3].copy_from_slice(&out);
        }
        // w = D y
        let mut w = vec![0.0f64; 3 * nb];
        for i in 0..nb {
            let mut diag = None;
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                if a.cols[k] as usize == i {
                    diag = Some(&a.blocks[k]);
                }
            }
            let yi = [y[3 * i], y[3 * i + 1], y[3 * i + 2]];
            let out = match diag {
                Some(d) => mat3_vec(d, &yi),
                None => yi,
            };
            w[3 * i..3 * i + 3].copy_from_slice(&out);
        }
        // backward sweep: (D + U) z = w
        for i in (0..nb).rev() {
            let mut acc = [w[3 * i], w[3 * i + 1], w[3 * i + 2]];
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                let j = a.cols[k] as usize;
                if j > i {
                    let b = &a.blocks[k];
                    let zj = [z[3 * j], z[3 * j + 1], z[3 * j + 2]];
                    let c = mat3_vec(b, &zj);
                    acc[0] -= c[0];
                    acc[1] -= c[1];
                    acc[2] -= c[2];
                }
            }
            let out = mat3_vec(&self.inv_diag[i], &acc);
            z[3 * i..3 * i + 3].copy_from_slice(&out);
        }
    }

    fn counts(&self) -> KernelCounts {
        // two triangular sweeps + a diagonal product: ~one SpMV of work
        // plus the diagonal solves, inherently sequential across rows.
        let spmv = self.a.counts();
        KernelCounts {
            flops: spmv.flops + 30.0 * self.a.n_brows as f64,
            bytes_stream: spmv.bytes_stream + 72.0 * self.a.n_brows as f64,
            bytes_rand: spmv.bytes_rand,
            rand_transactions: spmv.rand_transactions,
            rhs_fused: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcrs::BcrsBuilder;
    use crate::blockjacobi::BlockJacobi;
    use crate::cg::{pcg, CgConfig};

    /// Block-tridiagonal SPD matrix with meaningful off-diagonal coupling.
    fn spd_matrix(nb: usize) -> Bcrs3 {
        let mut b = BcrsBuilder::new(nb);
        for i in 0..nb {
            b.add_block(
                i as u32,
                i as u32,
                &[5.0, 1.0, 0.0, 1.0, 6.0, 1.0, 0.0, 1.0, 7.0],
            );
            if i + 1 < nb {
                let off = [-2.0, 0.1, 0.0, 0.0, -2.0, 0.1, 0.2, 0.0, -2.0];
                let mut off_t = [0.0; 9];
                for r in 0..3 {
                    for c in 0..3 {
                        off_t[c * 3 + r] = off[r * 3 + c];
                    }
                }
                b.add_block(i as u32, (i + 1) as u32, &off);
                b.add_block((i + 1) as u32, i as u32, &off_t);
            }
        }
        b.finish(false)
    }

    #[test]
    fn ssor_is_spd_preconditioner() {
        // z^T r > 0 and symmetry <B^-1 r, s> == <r, B^-1 s>
        let m = spd_matrix(12);
        let p = BlockSsor::new(&m);
        let n = m.n();
        let r: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 13) as f64 - 6.0).collect();
        let s: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) % 11) as f64 - 5.0).collect();
        let mut zr = vec![0.0; n];
        let mut zs = vec![0.0; n];
        p.apply(&r, &mut zr);
        p.apply(&s, &mut zs);
        let pr: f64 = zr.iter().zip(&r).map(|(a, b)| a * b).sum();
        assert!(pr > 0.0, "not positive: {pr}");
        let lhs: f64 = zr.iter().zip(&s).map(|(a, b)| a * b).sum();
        let rhs: f64 = r.iter().zip(&zs).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "not symmetric: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn ssor_beats_block_jacobi() {
        let m = spd_matrix(60);
        let n = m.n();
        let f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).sin()).collect();
        let cfg = CgConfig {
            tol: 1e-10,
            max_iter: 5000,
            ..Default::default()
        };
        let bj = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let ssor = BlockSsor::new(&m);
        let mut x1 = vec![0.0; n];
        let s_bj = pcg(&m, &bj, &f, &mut x1, &cfg);
        let mut x2 = vec![0.0; n];
        let s_ssor = pcg(&m, &ssor, &f, &mut x2, &cfg);
        assert!(s_bj.converged && s_ssor.converged);
        assert!(
            s_ssor.iterations < s_bj.iterations,
            "SSOR {} vs BJ {}",
            s_ssor.iterations,
            s_bj.iterations
        );
        // same solution
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-7 * (1.0 + x1[i].abs()));
        }
    }

    #[test]
    fn ssor_solution_is_exact_for_block_diagonal() {
        // with no off-diagonal blocks, SSOR == D^{-1}: CG converges in one
        // effective iteration
        let mut b = BcrsBuilder::new(5);
        for i in 0..5 {
            b.add_block(
                i as u32,
                i as u32,
                &[3.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 5.0],
            );
        }
        let m = b.finish(false);
        let p = BlockSsor::new(&m);
        let n = m.n();
        let f = vec![1.0; n];
        let mut z = vec![0.0; n];
        p.apply(&f, &mut z);
        // z = A^{-1} f exactly for block-diagonal A
        let mut back = vec![0.0; n];
        m.apply(&z, &mut back);
        for i in 0..n {
            assert!((back[i] - f[i]).abs() < 1e-12);
        }
    }
}
