//! Concurrency-correctness layer for the color-parallel EBE scatter.
//!
//! # The one unsafe contract in this workspace
//!
//! Every matrix-free EBE kernel (f64 cached, f32 cached, compact
//! matrix-free) accumulates per-element results into the shared output
//! vector from many threads at once. No atomics are used; instead, the
//! mesh is colored so that **no two elements (or faces) of the same color
//! share a node**, which makes every same-color write set disjoint. That
//! invariant — not the type system — is what makes the scatter sound.
//!
//! Before this module existed, each kernel carried its own copy of a
//! `SendPtr(*mut f64)` wrapper with its own `unsafe impl Send/Sync`, and
//! nothing ever checked the invariant. [`ColorScatter`] centralizes the
//! pattern:
//!
//! * it owns the **single audited `unsafe impl Send`/`Sync` pair in the
//!   workspace** (`cargo xtask lint` fails the build if another appears);
//! * constructors of the EBE operators call
//!   [`hetsolve_mesh::coloring::validate_groups`] once, so a structurally
//!   broken coloring fails loudly at build time of the operator;
//! * under `cfg(debug_assertions)` or the `racecheck` feature, every write
//!   is recorded in an epoch-tagged per-slot claim table and a same-pass
//!   overlap panics with both writer ids — catching colorings that pass
//!   no static check (e.g. hand-constructed groups) at the exact write
//!   that would have raced;
//! * in release without `racecheck`, [`ColorScatter::add`] compiles to the
//!   raw `*ptr.add(slot) += v` the kernels used before: zero overhead.
//!
//! # Safety argument
//!
//! `ColorScatter` wraps the raw output pointer of an exclusively borrowed
//! `&mut [f64]`, so for its whole lifetime no other safe code can observe
//! the buffer. Shared (`&self`) mutation through the pointer is restricted
//! to [`ColorScatter::add`], an `unsafe fn` whose contract is:
//!
//! 1. `slot < len` (debug-asserted), and
//! 2. within one color pass (between two [`ColorScatter::begin_color`]
//!    calls), at most one owner writes any given slot.
//!
//! Callers discharge (2) by iterating elements of a single validated color
//! group per pass. `begin_color` takes `&mut self`, so passes are
//! serialized by the borrow checker; writes *within* a pass are disjoint
//! by (2); therefore no two threads ever write the same location without
//! a synchronization point between them, and the `Send`/`Sync` impls are
//! sound. The claim table turns a violated (2) into a deterministic panic
//! instead of silent UB.

use std::marker::PhantomData;

#[cfg(any(debug_assertions, feature = "racecheck"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared handle for race-free color-parallel accumulation into one output
/// slice. See the module docs for the full safety argument.
pub struct ColorScatter<'a> {
    ptr: *mut f64,
    len: usize,
    /// Current color pass, bumped by [`Self::begin_color`]; 0 = no pass
    /// started yet.
    #[cfg(any(debug_assertions, feature = "racecheck"))]
    epoch: u32,
    /// Per-slot claim: `epoch << 32 | owner + 1` of the last writer.
    #[cfg(any(debug_assertions, feature = "racecheck"))]
    claims: Vec<AtomicU64>,
    _borrow: PhantomData<&'a mut [f64]>,
}

// SAFETY: the raw pointer targets an exclusively borrowed `&mut [f64]`
// (no aliasing with safe code for the scatter's lifetime), and the `add`
// contract guarantees same-pass writes are slot-disjoint while passes are
// serialized through `begin_color(&mut self)`. This is the single blessed
// Send impl in the workspace; `cargo xtask lint` rejects any other.
unsafe impl Send for ColorScatter<'_> {}

// SAFETY: same argument as `Send` — `&ColorScatter` only exposes `add`,
// whose contract forbids overlapping same-pass writes; the claim table
// (debug/racecheck builds) verifies that contract dynamically.
unsafe impl Sync for ColorScatter<'_> {}

impl<'a> ColorScatter<'a> {
    /// Wrap an output slice for colored accumulation. The slice keeps
    /// whatever contents it has (kernels zero-fill before wrapping).
    pub fn new(y: &'a mut [f64]) -> Self {
        ColorScatter {
            ptr: y.as_mut_ptr(),
            len: y.len(),
            #[cfg(any(debug_assertions, feature = "racecheck"))]
            epoch: 0,
            #[cfg(any(debug_assertions, feature = "racecheck"))]
            claims: y.iter().map(|_| AtomicU64::new(0)).collect(),
            _borrow: PhantomData,
        }
    }

    /// Slots in the wrapped output.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether writes are being recorded in the claim table (debug builds
    /// or the `racecheck` feature).
    pub fn racecheck_enabled() -> bool {
        cfg!(any(debug_assertions, feature = "racecheck"))
    }

    /// Start a color pass. Must be called before the first `add` and again
    /// for every color group; `&mut self` serializes passes, establishing
    /// the synchronization point between them.
    pub fn begin_color(&mut self) {
        #[cfg(any(debug_assertions, feature = "racecheck"))]
        {
            self.epoch = self
                .epoch
                .checked_add(1)
                .expect("color-pass epoch overflow");
        }
    }

    /// Accumulate `v` into `slot` on behalf of `owner` (an element or face
    /// id — any id unique within the current color group).
    ///
    /// # Safety
    ///
    /// `slot` must be in bounds, and within the current color pass no
    /// *different* owner may write the same slot — guaranteed when owners
    /// come from one color group of a coloring validated by
    /// `hetsolve_mesh::coloring::validate_groups` over the connectivity
    /// being scattered. Debug/racecheck builds verify both conditions and
    /// panic on violation; release builds compile to the bare accumulate.
    #[inline]
    pub unsafe fn add(&self, owner: u32, slot: usize, v: f64) {
        #[cfg(any(debug_assertions, feature = "racecheck"))]
        self.claim(owner, slot);
        debug_assert!(
            slot < self.len,
            "scatter slot {slot} out of bounds ({})",
            self.len
        );
        // SAFETY: `slot < len` per the contract (checked above in debug);
        // concurrent calls never target the same slot per the color-pass
        // contract, so the read-modify-write cannot race.
        unsafe {
            *self.ptr.add(slot) += v;
        }
    }

    /// Record `owner`'s write to `slot` and panic if another owner already
    /// wrote it within the current color pass — the data race the coloring
    /// invariant is supposed to exclude.
    #[cfg(any(debug_assertions, feature = "racecheck"))]
    fn claim(&self, owner: u32, slot: usize) {
        assert!(
            slot < self.len,
            "scatter slot {slot} out of bounds ({})",
            self.len
        );
        assert!(
            self.epoch > 0,
            "ColorScatter::begin_color() must precede add()"
        );
        let tag = ((self.epoch as u64) << 32) | (owner as u64 + 1);
        let prev = self.claims[slot].swap(tag, Ordering::Relaxed);
        let (prev_epoch, prev_owner) = ((prev >> 32) as u32, (prev & 0xffff_ffff) as u32);
        if prev_owner != 0 && prev_epoch == self.epoch && prev_owner != owner + 1 {
            panic!(
                "parcheck: race on output slot {slot}: owners {} and {owner} both \
                 wrote it in color pass {} — same-color entities share a DOF, \
                 the coloring invariant is violated",
                prev_owner - 1,
                self.epoch,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Disjoint writes across two owners in one pass, and same-slot writes
    /// across *different* passes, are both fine; sums must be exact.
    #[test]
    fn disjoint_and_cross_pass_writes_accumulate() {
        let mut y = vec![0.0f64; 8];
        let mut scatter = ColorScatter::new(&mut y);
        scatter.begin_color();
        // SAFETY: owners 0/1 write disjoint slots within this pass.
        unsafe {
            scatter.add(0, 0, 1.0);
            scatter.add(0, 1, 2.0);
            scatter.add(1, 4, 3.0);
        }
        scatter.begin_color();
        // SAFETY: single owner this pass; slot 0 rewrite is a new pass.
        unsafe {
            scatter.add(7, 0, 10.0);
        }
        assert_eq!(y[0], 11.0);
        assert_eq!(y[1], 2.0);
        assert_eq!(y[4], 3.0);
    }

    /// One owner may hit the same slot repeatedly (e.g. an element whose
    /// local scatter loop touches a DOF once per fused RHS slot).
    #[test]
    fn same_owner_rewrites_are_allowed() {
        let mut y = vec![0.0f64; 4];
        let mut scatter = ColorScatter::new(&mut y);
        scatter.begin_color();
        // SAFETY: a single owner cannot race with itself.
        unsafe {
            scatter.add(3, 2, 1.5);
            scatter.add(3, 2, 1.5);
        }
        assert_eq!(y[2], 3.0);
    }

    #[test]
    #[cfg_attr(not(any(debug_assertions, feature = "racecheck")), ignore)]
    #[should_panic(expected = "parcheck: race on output slot")]
    fn same_pass_overlap_panics() {
        let mut y = vec![0.0f64; 4];
        let mut scatter = ColorScatter::new(&mut y);
        scatter.begin_color();
        // SAFETY: serial execution — the "race" is two owners claiming one
        // slot in a single pass, which the claim table must reject.
        unsafe {
            scatter.add(0, 1, 1.0);
            scatter.add(1, 1, 1.0);
        }
    }

    #[test]
    #[cfg_attr(not(any(debug_assertions, feature = "racecheck")), ignore)]
    #[should_panic(expected = "begin_color")]
    fn add_without_pass_panics() {
        let mut y = vec![0.0f64; 2];
        let scatter = ColorScatter::new(&mut y);
        // SAFETY: serial; checking the missing-begin_color guard.
        unsafe {
            scatter.add(0, 0, 1.0);
        }
    }

    /// The claim table must detect overlap even under genuinely concurrent
    /// same-pass writers (the exact scenario a broken coloring produces on
    /// the real thread pool).
    #[test]
    #[cfg_attr(not(any(debug_assertions, feature = "racecheck")), ignore)]
    fn concurrent_overlap_is_detected() {
        let mut y = vec![0.0f64; 1];
        let mut scatter = ColorScatter::new(&mut y);
        scatter.begin_color();
        let caught = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u32)
                .map(|owner| {
                    let scatter = &scatter;
                    s.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            for _ in 0..1000 {
                                // SAFETY: intentionally violating the
                                // color-pass contract to test detection.
                                unsafe { scatter.add(owner, 0, 1.0) };
                            }
                        }))
                        .is_err()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(true))
                .filter(|&caught| caught)
                .count()
        });
        assert!(caught >= 1, "at least one writer must observe the race");
    }
}
