//! Vector primitives used by the CG solvers, in single- and multi-RHS
//! (interleaved) layouts. Rayon-parallel above a size threshold; the
//! threshold keeps small test problems on one thread where parallel
//! dispatch would dominate.

use rayon::prelude::*;

/// Below this length, run sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product `x·y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    } else {
        x.par_chunks(4096)
            .zip(y.par_chunks(4096))
            .map(|(xc, yc)| xc.iter().zip(yc).map(|(a, b)| a * b).sum::<f64>())
            .sum()
    }
}

/// Squared Euclidean norm.
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_chunks_mut(4096)
            .zip(x.par_chunks(4096))
            .for_each(|(yc, xc)| {
                for (yi, xi) in yc.iter_mut().zip(xc) {
                    *yi += alpha * xi;
                }
            });
    }
}

/// `y = x + beta * y` (the CG direction update `p = z + beta p`).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
    } else {
        y.par_chunks_mut(4096)
            .zip(x.par_chunks(4096))
            .for_each(|(yc, xc)| {
                for (yi, xi) in yc.iter_mut().zip(xc) {
                    *yi = xi + beta * *yi;
                }
            });
    }
}

/// Per-case dot products of interleaved multi-vectors:
/// `out[c] = Σ_i x[i*r+c] * y[i*r+c]`.
pub fn dot_multi(x: &[f64], y: &[f64], r: usize, out: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len() % r, 0);
    debug_assert_eq!(out.len(), r);
    out.fill(0.0);
    if x.len() < PAR_THRESHOLD {
        for (xc, yc) in x.chunks_exact(r).zip(y.chunks_exact(r)) {
            for c in 0..r {
                out[c] += xc[c] * yc[c];
            }
        }
    } else {
        let partials: Vec<Vec<f64>> = x
            .par_chunks(4096 * r)
            .zip(y.par_chunks(4096 * r))
            .map(|(xc, yc)| {
                let mut acc = vec![0.0; r];
                for (xr, yr) in xc.chunks_exact(r).zip(yc.chunks_exact(r)) {
                    for c in 0..r {
                        acc[c] += xr[c] * yr[c];
                    }
                }
                acc
            })
            .collect();
        for p in partials {
            for c in 0..r {
                out[c] += p[c];
            }
        }
    }
}

/// Per-case `y[.,c] += alpha[c] * x[.,c]` on interleaved multi-vectors.
/// Cases with `active[c] == false` are left untouched (used to freeze
/// converged cases in the multi-RHS CG).
pub fn axpy_multi(alpha: &[f64], x: &[f64], y: &mut [f64], r: usize, active: &[bool]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(alpha.len(), r);
    debug_assert_eq!(active.len(), r);
    let body = |yc: &mut [f64], xc: &[f64]| {
        for (yr, xr) in yc.chunks_exact_mut(r).zip(xc.chunks_exact(r)) {
            for c in 0..r {
                if active[c] {
                    yr[c] += alpha[c] * xr[c];
                }
            }
        }
    };
    if x.len() < PAR_THRESHOLD {
        body(y, x);
    } else {
        y.par_chunks_mut(4096 * r)
            .zip(x.par_chunks(4096 * r))
            .for_each(|(yc, xc)| body(yc, xc));
    }
}

/// Per-case `y[.,c] = x[.,c] + beta[c] * y[.,c]` on interleaved
/// multi-vectors, skipping inactive cases.
pub fn xpby_multi(x: &[f64], beta: &[f64], y: &mut [f64], r: usize, active: &[bool]) {
    debug_assert_eq!(x.len(), y.len());
    let body = |yc: &mut [f64], xc: &[f64]| {
        for (yr, xr) in yc.chunks_exact_mut(r).zip(xc.chunks_exact(r)) {
            for c in 0..r {
                if active[c] {
                    yr[c] = xr[c] + beta[c] * yr[c];
                }
            }
        }
    };
    if x.len() < PAR_THRESHOLD {
        body(y, x);
    } else {
        y.par_chunks_mut(4096 * r)
            .zip(x.par_chunks(4096 * r))
            .for_each(|(yc, xc)| body(yc, xc));
    }
}

/// Gather case `c` of an interleaved multi-vector into a contiguous vector.
pub fn extract_case(x: &[f64], r: usize, c: usize, out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len() * r);
    for (i, o) in out.iter_mut().enumerate() {
        *o = x[i * r + c];
    }
}

/// Scatter a contiguous vector into case `c` of an interleaved multi-vector.
pub fn insert_case(x: &mut [f64], r: usize, c: usize, v: &[f64]) {
    debug_assert_eq!(x.len(), v.len() * r);
    for (i, vi) in v.iter().enumerate() {
        x[i * r + c] = *vi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small_and_large() {
        let n = PAR_THRESHOLD + 17;
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let seq: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - seq).abs() < 1e-9 * seq.abs().max(1.0));
        assert!((dot(&x[..10], &y[..10]) - 21.0).abs() < 1e-12); // 0+1+4+0+4+10+0+0+2+0
    }

    #[test]
    fn axpy_and_xpby() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn multi_dot_matches_per_case() {
        let r = 3;
        let n = 50;
        let x: Vec<f64> = (0..n * r).map(|i| (i as f64 * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n * r).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut out = vec![0.0; r];
        dot_multi(&x, &y, r, &mut out);
        for c in 0..r {
            let mut xc = vec![0.0; n];
            let mut yc = vec![0.0; n];
            extract_case(&x, r, c, &mut xc);
            extract_case(&y, r, c, &mut yc);
            assert!((out[c] - dot(&xc, &yc)).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_axpy_respects_active_mask() {
        let r = 2;
        let x = vec![1.0, 100.0, 2.0, 200.0];
        let mut y = vec![0.0, 0.0, 0.0, 0.0];
        axpy_multi(&[2.0, 3.0], &x, &mut y, r, &[true, false]);
        assert_eq!(y, vec![2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn multi_xpby_respects_active_mask() {
        let r = 2;
        let x = vec![1.0, 10.0, 2.0, 20.0];
        let mut y = vec![5.0, 50.0, 6.0, 60.0];
        xpby_multi(&x, &[2.0, 2.0], &mut y, r, &[false, true]);
        assert_eq!(y, vec![5.0, 110.0, 6.0, 140.0]);
    }

    #[test]
    fn case_roundtrip() {
        let r = 4;
        let n = 6;
        let mut x = vec![0.0; n * r];
        let v: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        insert_case(&mut x, r, 2, &v);
        let mut back = vec![0.0; n];
        extract_case(&x, r, 2, &mut back);
        assert_eq!(v, back);
        // other cases untouched
        let mut other = vec![1.0; n];
        extract_case(&x, r, 0, &mut other);
        assert!(other.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn multi_ops_large_path() {
        let r = 2;
        let n = PAR_THRESHOLD; // total length 2*PAR_THRESHOLD > threshold
        let x: Vec<f64> = (0..n * r).map(|i| ((i * 37) % 11) as f64).collect();
        let mut y = vec![1.0; n * r];
        let mut expect = y.clone();
        for (i, e) in expect.iter_mut().enumerate() {
            let c = i % r;
            *e += [0.5, -0.25][c] * x[i];
        }
        axpy_multi(&[0.5, -0.25], &x, &mut y, r, &[true, true]);
        for i in 0..y.len() {
            assert!((y[i] - expect[i]).abs() < 1e-12);
        }
    }
}
