//! 3×3 block-Jacobi preconditioner — the paper's Algorithm 1 `B⁻¹`.
//!
//! The preconditioner inverts each node's 3×3 diagonal block once at setup
//! and applies `z = B⁻¹ r` as a streaming pass; for the EBE path the blocks
//! come from [`crate::ebe::EbeOperator::diagonal_blocks`] without assembling
//! the matrix.

use rayon::prelude::*;

use crate::dense::{inv3, mat3_vec};
use crate::op::{KernelCounts, Preconditioner};

/// Inverted 3×3 diagonal blocks.
#[derive(Debug, Clone)]
pub struct BlockJacobi {
    pub inv: Vec<[f64; 9]>,
    pub parallel: bool,
}

impl BlockJacobi {
    /// Invert the given diagonal blocks. Singular blocks (possible only for
    /// disconnected nodes) fall back to identity, keeping the
    /// preconditioner SPD.
    pub fn from_blocks(blocks: &[[f64; 9]], parallel: bool) -> Self {
        let identity = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let inv = blocks.iter().map(|b| inv3(b).unwrap_or(identity)).collect();
        BlockJacobi { inv, parallel }
    }

    /// Bytes of stored inverse blocks.
    pub fn bytes(&self) -> usize {
        self.inv.len() * 72
    }
}

impl Preconditioner for BlockJacobi {
    fn n(&self) -> usize {
        3 * self.inv.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n());
        debug_assert_eq!(z.len(), self.n());
        if self.parallel && self.inv.len() > 2048 {
            z.par_chunks_exact_mut(3)
                .zip(r.par_chunks_exact(3))
                .zip(&self.inv)
                .for_each(|((zc, rc), inv)| {
                    let out = mat3_vec(inv, &[rc[0], rc[1], rc[2]]);
                    zc.copy_from_slice(&out);
                });
        } else {
            for (i, inv) in self.inv.iter().enumerate() {
                let out = mat3_vec(inv, &[r[3 * i], r[3 * i + 1], r[3 * i + 2]]);
                z[3 * i..3 * i + 3].copy_from_slice(&out);
            }
        }
    }

    fn counts(&self) -> KernelCounts {
        let nb = self.inv.len() as f64;
        KernelCounts {
            flops: 15.0 * nb, // 9 mul + 6 add
            bytes_stream: nb * (72.0 + 24.0 + 24.0),
            bytes_rand: 0.0,
            rand_transactions: 0.0,
            rhs_fused: 1,
        }
    }

    fn apply_multi(&self, r_vec: &[f64], z: &mut [f64], r: usize) {
        debug_assert_eq!(r_vec.len(), self.n() * r);
        debug_assert_eq!(z.len(), self.n() * r);
        // interleaved layout: dof-major, case-minor
        for (i, inv) in self.inv.iter().enumerate() {
            for c in 0..r {
                let rr = [
                    r_vec[(3 * i) * r + c],
                    r_vec[(3 * i + 1) * r + c],
                    r_vec[(3 * i + 2) * r + c],
                ];
                let out = mat3_vec(inv, &rr);
                z[(3 * i) * r + c] = out[0];
                z[(3 * i + 1) * r + c] = out[1];
                z[(3 * i + 2) * r + c] = out[2];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> Vec<[f64; 9]> {
        vec![
            [4.0, 1.0, 0.0, 1.0, 3.0, 0.5, 0.0, 0.5, 5.0],
            [2.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0],
        ]
    }

    #[test]
    fn apply_inverts_blocks() {
        let bj = BlockJacobi::from_blocks(&blocks(), false);
        // z = B^-1 r, then B z must equal r
        let r = vec![1.0, -2.0, 3.0, 0.5, 0.25, -1.0];
        let mut z = vec![0.0; 6];
        bj.apply(&r, &mut z);
        for (i, b) in blocks().iter().enumerate() {
            let back = mat3_vec(b, &[z[3 * i], z[3 * i + 1], z[3 * i + 2]]);
            for a in 0..3 {
                assert!((back[a] - r[3 * i + a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_block_falls_back_to_identity() {
        let bj = BlockJacobi::from_blocks(&[[0.0; 9]], false);
        let r = vec![1.0, 2.0, 3.0];
        let mut z = vec![0.0; 3];
        bj.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn multi_matches_single() {
        let bj = BlockJacobi::from_blocks(&blocks(), false);
        let n = bj.n();
        let r = 4;
        let mut rv = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                rv[i * r + c] = ((i + 7 * c) as f64 * 0.31).sin();
            }
        }
        let mut zv = vec![0.0; n * r];
        bj.apply_multi(&rv, &mut zv, r);
        for c in 0..r {
            let rc: Vec<f64> = (0..n).map(|i| rv[i * r + c]).collect();
            let mut zc = vec![0.0; n];
            bj.apply(&rc, &mut zc);
            for i in 0..n {
                assert!((zv[i * r + c] - zc[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn counts_and_bytes() {
        let bj = BlockJacobi::from_blocks(&blocks(), false);
        assert_eq!(bj.bytes(), 144);
        assert_eq!(bj.counts().flops, 30.0);
    }
}
