//! Multi-RHS preconditioned CG ("MCG"): solves `A x_c = f_c` for `r` cases
//! concurrently through one fused EBE operator — the solver at the heart of
//! the paper's EBE-MCG@CPU-GPU method.
//!
//! All cases iterate in lockstep so each operator application serves every
//! case (the EBE multi-RHS kernel amortizes random accesses `r`-fold).
//! Cases that reach the tolerance are frozen: their `x`, `r`, `p` stop
//! updating, so the already-converged solution is untouched while the
//! remaining cases finish. Per-case iteration counts are reported.

use hetsolve_obs::{NoopObserver, SolveObserver, Termination};

use crate::op::{KernelCounts, MultiOperator, Preconditioner};
use crate::vecops::{axpy_multi, dot_multi, xpby_multi};

use crate::cg::{CgConfig, DEFAULT_SENTINEL_DRIFT};

/// Outcome of a multi-RHS CG solve.
#[derive(Debug, Clone)]
pub struct McgStats {
    /// Fused iterations performed (the solver runs until the last active
    /// case converges).
    pub fused_iterations: usize,
    /// Per-case iterations until that case converged.
    pub case_iterations: Vec<usize>,
    /// Per-case initial relative residuals (quality of the initial guesses).
    pub initial_rel_res: Vec<f64>,
    /// Per-case final relative residuals.
    pub final_rel_res: Vec<f64>,
    pub converged: bool,
    /// Why the fused solve stopped: [`Termination::Converged`] when every
    /// case reached the tolerance, otherwise the most severe per-case cause
    /// (residual-drift > norm-exploded > NaN > rho-breakdown > breakdown >
    /// stagnation > max-iter).
    pub termination: Termination,
    /// Why each case stopped. A faulted lane freezes with its own cause
    /// while healthy lanes iterate on — NaN never crosses cases.
    pub case_termination: Vec<Termination>,
    /// Total work performed.
    pub counts: KernelCounts,
}

/// Solve `r` systems at once. `f` and `x` are interleaved multi-vectors
/// (`f[dof * r + case]`); `x` carries the initial guesses and receives the
/// solutions.
pub fn mcg<A: MultiOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
) -> McgStats {
    // NoopObserver is a ZST with empty inlined hooks: this monomorphization
    // is the exact pre-observer solver (bitwise-identity is tested).
    mcg_observed(a, prec, f, x, cfg, &mut NoopObserver)
}

/// [`mcg`] with per-iteration observation: `obs` receives the per-case
/// initial relative residuals, every fused iterate's residuals (frozen
/// cases keep their last value), and the termination cause. Observers are
/// read-only, so solutions and iteration counts are identical to the
/// unobserved call.
pub fn mcg_observed<A: MultiOperator, P: Preconditioner, O: SolveObserver>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    obs: &mut O,
) -> McgStats {
    mcg_masked_observed(a, prec, f, x, cfg, &vec![true; a.r()], obs)
}

/// [`mcg`] over a partially-occupied fused lane. `occupied[c] == false`
/// marks a vacant column: it never enters the active set, performs zero
/// iterations, reports [`Termination::Converged`], and its column of `x`
/// is left untouched. Occupied columns run the exact same arithmetic as
/// [`mcg`] (an all-`true` mask is bitwise-identical), because every
/// per-case quantity — dot products, alpha/beta, freeze decisions — is
/// already computed per column.
///
/// Callers should keep vacant columns of `f` and `x` finite (the serving
/// layer zeroes a column when its slot is freed); non-finite garbage in a
/// vacant column stays in that column but wastes no logic.
pub fn mcg_masked<A: MultiOperator, P: Preconditioner>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    occupied: &[bool],
) -> McgStats {
    mcg_masked_observed(a, prec, f, x, cfg, occupied, &mut NoopObserver)
}

/// [`mcg_masked`] with per-iteration observation (see [`mcg_observed`]).
pub fn mcg_masked_observed<A: MultiOperator, P: Preconditioner, O: SolveObserver>(
    a: &A,
    prec: &P,
    f: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    occupied: &[bool],
    obs: &mut O,
) -> McgStats {
    let n = a.n();
    let r = a.r();
    assert_eq!(f.len(), n * r);
    assert_eq!(x.len(), n * r);
    assert_eq!(occupied.len(), r);

    let mut counts = KernelCounts::default();
    let vec_counts = KernelCounts {
        flops: 10.0 * (n * r) as f64,
        bytes_stream: 5.0 * 16.0 * (n * r) as f64,
        bytes_rand: 0.0,
        rand_transactions: 0.0,
        rhs_fused: r,
    };

    let mut f_norm = vec![0.0; r];
    dot_multi(f, f, r, &mut f_norm);
    for v in f_norm.iter_mut() {
        *v = v.sqrt();
    }

    // r_vec = f - A x
    let mut r_vec = vec![0.0; n * r];
    a.apply_multi(x, &mut r_vec);
    counts = counts.merged(a.counts());
    for i in 0..n * r {
        r_vec[i] = f[i] - r_vec[i];
    }

    let mut rel = vec![0.0; r];
    let mut rr = vec![0.0; r];
    dot_multi(&r_vec, &r_vec, r, &mut rr);
    let mut active = vec![true; r];
    // Per-case abnormal cause; stays None for cases that converge (or are
    // simply capped). All guards only read values the healthy path computes
    // anyway, so a fully-converging solve is bitwise-identical.
    let mut abnormal: Vec<Option<Termination>> = vec![None; r];
    for c in 0..r {
        if !occupied[c] {
            // vacant lane slot: never iterates, `x` column left untouched
            rel[c] = 0.0;
            active[c] = false;
        } else if f_norm[c] == 0.0 {
            // zero RHS: solution is zero (see single-RHS CG)
            for i in 0..n {
                x[i * r + c] = 0.0;
            }
            rel[c] = 0.0;
            active[c] = false;
        } else {
            rel[c] = rr[c].sqrt() / f_norm[c];
            if !rel[c].is_finite() {
                // poisoned guess or RHS for this lane: freeze it before the
                // first fused iteration so NaN never reaches shared kernels.
                abnormal[c] = Some(Termination::NanResidual);
                active[c] = false;
            } else if cfg.guess_divergence > 0.0 && rel[c] > cfg.guess_divergence {
                // this lane's guess is beyond f64 rescue (see `pcg`):
                // freeze it typed instead of letting the recursive residual
                // fake a convergence
                abnormal[c] = Some(Termination::DivergentGuess);
                active[c] = false;
            } else {
                active[c] = rel[c] >= cfg.tol;
            }
        }
    }
    let initial_rel_res = rel.clone();
    let mut case_iterations = vec![0usize; r];
    obs.solve_begin(n, r, &rel);

    let mut z = vec![0.0; n * r];
    let mut p = vec![0.0; n * r];
    let mut q = vec![0.0; n * r];
    let mut rho_prev = vec![0.0; r];
    let mut rho = vec![0.0; r];
    let mut pq = vec![0.0; r];
    let mut alpha = vec![0.0; r];
    let mut beta = vec![0.0; r];
    let mut fused_iterations = 0usize;
    // Stagnation tracking: per-case strict best-so-far with a deadline.
    let mut best_rel = rel.clone();
    let mut since_improve = vec![0usize; r];
    // Invariant-sentinel scratch, allocated lazily so the sentinel-off path
    // performs zero extra work (see `pcg`). `norm_ref[c] == 0.0` means the
    // reference norm for case `c` has not been captured yet.
    let mut true_r: Vec<f64> = Vec::new();
    let mut rel_true = vec![0.0; if cfg.sentinel_every > 0 { r } else { 0 }];
    let mut norm_ref: Vec<f64> = vec![0.0; if cfg.norm_bound > 0.0 { r } else { 0 }];
    let sentinel_drift = if cfg.sentinel_drift > 0.0 {
        cfg.sentinel_drift
    } else {
        DEFAULT_SENTINEL_DRIFT
    };
    // Recompute per-case true residuals `‖f_c − A x_c‖ / ‖f_c‖` into
    // solver-private scratch for the cases selected by `check`. Read-only
    // on all iteration state; the applies are deliberately NOT merged into
    // `counts` so the modeled timeline is unchanged by detection.
    let audit = |x: &[f64], check: &[bool], true_r: &mut Vec<f64>, rel_true: &mut [f64]| {
        if true_r.is_empty() {
            *true_r = vec![0.0; n * r];
        }
        a.apply_multi(x, true_r);
        let mut sq = vec![0.0; r];
        for i in 0..n {
            for c in 0..r {
                if check[c] {
                    let d = f[i * r + c] - true_r[i * r + c];
                    sq[c] += d * d;
                }
            }
        }
        for c in 0..r {
            if check[c] {
                rel_true[c] = sq[c].sqrt() / f_norm[c];
            }
        }
    };

    while active.iter().any(|&a| a) && fused_iterations < cfg.max_iter {
        prec.apply_multi(&r_vec, &mut z, r);
        counts = counts.merged(prec.counts().scaled(r as f64));
        dot_multi(&z, &r_vec, r, &mut rho);
        for c in 0..r {
            if !active[c] {
                continue;
            }
            if !rho[c].is_finite() {
                // NaN/Inf entered this lane mid-flight: freeze it so the
                // poison cannot reach alpha/beta of the shared iteration.
                abnormal[c] = Some(Termination::NanResidual);
                active[c] = false;
            } else if rho[c] <= 0.0 {
                // zᵀr lost positivity: the preconditioner is not SPD for
                // this lane's residual.
                abnormal[c] = Some(Termination::RhoBreakdown);
                active[c] = false;
            }
        }
        if fused_iterations == 0 {
            p.copy_from_slice(&z);
        } else {
            for c in 0..r {
                beta[c] = if active[c] && rho_prev[c] != 0.0 {
                    rho[c] / rho_prev[c]
                } else {
                    0.0
                };
            }
            xpby_multi(&z, &beta, &mut p, r, &active);
        }
        a.apply_multi(&p, &mut q);
        counts = counts.merged(a.counts()).merged(vec_counts);
        dot_multi(&p, &q, r, &mut pq);
        let mut neg_alpha = vec![0.0; r];
        for c in 0..r {
            if active[c] {
                if !pq[c].is_finite() {
                    // NaN direction: freeze before alpha poisons the lane
                    abnormal[c] = Some(Termination::NanResidual);
                    active[c] = false;
                    alpha[c] = 0.0;
                } else if pq[c] <= 0.0 {
                    // numerical breakdown for this case: freeze it
                    abnormal[c] = Some(Termination::Breakdown);
                    active[c] = false;
                    alpha[c] = 0.0;
                } else {
                    alpha[c] = rho[c] / pq[c];
                }
            } else {
                alpha[c] = 0.0;
            }
            neg_alpha[c] = -alpha[c];
        }
        axpy_multi(&alpha, &p, x, r, &active);
        axpy_multi(&neg_alpha, &q, &mut r_vec, r, &active);
        rho_prev.copy_from_slice(&rho);
        fused_iterations += 1;

        dot_multi(&r_vec, &r_vec, r, &mut rr);
        for c in 0..r {
            if active[c] {
                case_iterations[c] = fused_iterations;
                rel[c] = rr[c].sqrt() / f_norm[c];
                if rel[c] < cfg.tol {
                    active[c] = false;
                } else if !rel[c].is_finite() {
                    abnormal[c] = Some(Termination::NanResidual);
                    active[c] = false;
                } else if cfg.stagnation_window > 0 {
                    if rel[c] < best_rel[c] {
                        best_rel[c] = rel[c];
                        since_improve[c] = 0;
                    } else {
                        since_improve[c] += 1;
                        if since_improve[c] >= cfg.stagnation_window {
                            abnormal[c] = Some(Termination::Stagnation);
                            active[c] = false;
                        }
                    }
                }
            }
        }
        if cfg.sentinel_every > 0
            && fused_iterations.is_multiple_of(cfg.sentinel_every)
            && active.iter().any(|&a| a)
        {
            // ABFT invariant sentinel (see `pcg`): per-case true-residual
            // drift and bounded-norm guards over the still-active lanes.
            audit(x, &active, &mut true_r, &mut rel_true);
            for c in 0..r {
                if !active[c] {
                    continue;
                }
                if !rel_true[c].is_finite() || rel_true[c] > sentinel_drift * rel[c].max(cfg.tol) {
                    abnormal[c] = Some(Termination::ResidualDrift);
                    active[c] = false;
                } else if cfg.norm_bound > 0.0 {
                    let mut sq = 0.0;
                    for i in 0..n {
                        sq += x[i * r + c] * x[i * r + c];
                    }
                    let nx = sq.sqrt();
                    if norm_ref[c] == 0.0 {
                        norm_ref[c] = nx.max(1.0);
                    }
                    if !nx.is_finite() || nx > cfg.norm_bound * norm_ref[c] {
                        abnormal[c] = Some(Termination::NormExploded);
                        active[c] = false;
                    }
                }
            }
        }
        obs.iteration(fused_iterations, &rel);
    }

    if cfg.sentinel_every > 0 && fused_iterations > 0 {
        // Exit audit (see `pcg`): lanes that claim convergence are verified
        // once against the true residual so a flip that fakes a small
        // recursive residual cannot produce a silent wrong answer.
        let check: Vec<bool> = (0..r)
            .map(|c| {
                occupied[c]
                    && f_norm[c] != 0.0
                    && abnormal[c].is_none()
                    && rel[c] < cfg.tol
                    && case_iterations[c] > 0
            })
            .collect();
        if check.iter().any(|&c| c) {
            audit(x, &check, &mut true_r, &mut rel_true);
            for c in 0..r {
                if check[c] && (!rel_true[c].is_finite() || rel_true[c] > sentinel_drift * cfg.tol)
                {
                    abnormal[c] = Some(Termination::ResidualDrift);
                }
            }
        }
    }

    // Per-case classification: the recorded abnormal cause wins (the exit
    // audit can veto a lane whose recursive residual claims convergence),
    // then convergence, then the iteration cap.
    let case_termination: Vec<Termination> = (0..r)
        .map(|c| {
            if !occupied[c] || f_norm[c] == 0.0 {
                Termination::Converged
            } else if let Some(t) = abnormal[c] {
                t
            } else if rel[c] < cfg.tol {
                Termination::Converged
            } else {
                Termination::MaxIter
            }
        })
        .collect();
    let converged = case_termination
        .iter()
        .all(|t| *t == Termination::Converged);
    // Most severe failure across lanes decides the fused cause.
    let severity = |t: &Termination| match t {
        // corruption signals outrank everything: they mean the numbers in
        // hand cannot be trusted, not merely that convergence is slow
        Termination::ResidualDrift => 8,
        Termination::NormExploded => 7,
        Termination::NanResidual => 6,
        Termination::RhoBreakdown => 5,
        Termination::Breakdown => 4,
        Termination::DivergentGuess => 3,
        Termination::Stagnation => 2,
        Termination::MaxIter => 1,
        Termination::Converged => 0,
    };
    let termination = case_termination
        .iter()
        .copied()
        .max_by_key(severity)
        .unwrap_or(Termination::Converged);
    obs.solve_end(fused_iterations, termination);

    McgStats {
        fused_iterations,
        case_iterations,
        initial_rel_res,
        final_rel_res: rel.clone(),
        converged,
        termination,
        case_termination,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockjacobi::BlockJacobi;
    use crate::cg::pcg;
    use crate::op::{LinearOperator, MultiOperator};

    /// Wrap a single-RHS operator as a (slow) multi-RHS operator for tests.
    struct LoopMulti<'a, A: LinearOperator> {
        a: &'a A,
        r: usize,
    }

    impl<A: LinearOperator> MultiOperator for LoopMulti<'_, A> {
        fn n(&self) -> usize {
            self.a.n()
        }
        fn r(&self) -> usize {
            self.r
        }
        fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
            let n = self.a.n();
            let mut xc = vec![0.0; n];
            let mut yc = vec![0.0; n];
            for c in 0..self.r {
                for i in 0..n {
                    xc[i] = x[i * self.r + c];
                }
                self.a.apply(&xc, &mut yc);
                for i in 0..n {
                    y[i * self.r + c] = yc[i];
                }
            }
        }
        fn counts(&self) -> KernelCounts {
            self.a.counts().scaled(self.r as f64)
        }
    }

    fn spd_matrix(nb: usize) -> crate::bcrs::Bcrs3 {
        let mut b = crate::bcrs::BcrsBuilder::new(nb);
        for i in 0..nb {
            b.add_block(
                i as u32,
                i as u32,
                &[6.0, 1.0, 0.0, 1.0, 7.0, 1.0, 0.0, 1.0, 8.0],
            );
            if i + 1 < nb {
                let off = [-1.0, 0.0, 0.2, 0.1, -1.0, 0.0, 0.0, 0.1, -1.0];
                let mut off_t = [0.0; 9];
                for r in 0..3 {
                    for c in 0..3 {
                        off_t[c * 3 + r] = off[r * 3 + c];
                    }
                }
                b.add_block(i as u32, (i + 1) as u32, &off);
                b.add_block((i + 1) as u32, i as u32, &off_t);
            }
        }
        b.finish(false)
    }

    #[test]
    fn mcg_matches_independent_cg() {
        let m = spd_matrix(25);
        let n = m.n();
        let r = 4;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let cfg = CgConfig {
            tol: 1e-10,
            max_iter: 500,
            ..CgConfig::default()
        };

        let mut f = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                f[i * r + c] = ((i * (c + 1)) as f64 * 0.17).sin();
            }
        }
        let mut x = vec![0.0; n * r];
        let stats = mcg(&multi, &prec, &f, &mut x, &cfg);
        assert!(stats.converged);

        for c in 0..r {
            let fc: Vec<f64> = (0..n).map(|i| f[i * r + c]).collect();
            let mut xc = vec![0.0; n];
            let s = pcg(&m, &prec, &fc, &mut xc, &cfg);
            assert!(s.converged);
            for i in 0..n {
                assert!(
                    (x[i * r + c] - xc[i]).abs() < 1e-7,
                    "case {c} dof {i}: {} vs {}",
                    x[i * r + c],
                    xc[i]
                );
            }
        }
    }

    #[test]
    fn per_case_iterations_reported() {
        let m = spd_matrix(20);
        let n = m.n();
        let r = 2;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        // case 0: hard RHS from zero guess. case 1: zero RHS (instant).
        let mut f = vec![0.0; n * r];
        for i in 0..n {
            f[i * r] = (i as f64 * 0.23).cos();
        }
        let mut x = vec![0.0; n * r];
        let stats = mcg(&multi, &prec, &f, &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert!(stats.case_iterations[0] > 0);
        assert_eq!(stats.case_iterations[1], 0);
        // zero-RHS case's solution stays zero
        for i in 0..n {
            assert_eq!(x[i * r + 1], 0.0);
        }
    }

    #[test]
    fn frozen_cases_keep_their_solution() {
        let m = spd_matrix(15);
        let n = m.n();
        let r = 2;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let cfg = CgConfig {
            tol: 1e-9,
            max_iter: 500,
            ..CgConfig::default()
        };
        // case 0 gets a near-exact initial guess; case 1 starts cold.
        let fc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut x_exact = vec![0.0; n];
        pcg(
            &m,
            &prec,
            &fc,
            &mut x_exact,
            &CgConfig {
                tol: 1e-14,
                max_iter: 1000,
                ..CgConfig::default()
            },
        );

        let mut f = vec![0.0; n * r];
        let mut x = vec![0.0; n * r];
        for i in 0..n {
            f[i * r] = fc[i];
            f[i * r + 1] = fc[i] * 2.0;
            x[i * r] = x_exact[i]; // exact guess for case 0
        }
        let stats = mcg(&multi, &prec, &f, &mut x, &cfg);
        assert!(stats.converged);
        assert!(stats.case_iterations[0] < stats.case_iterations[1]);
        // case 0's result stayed at the exact solution
        for i in 0..n {
            assert!((x[i * r] - x_exact[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn masked_all_true_is_bitwise_identical() {
        let m = spd_matrix(18);
        let n = m.n();
        let r = 4;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let mut f = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                f[i * r + c] = ((i * (c + 2)) as f64 * 0.31).sin();
            }
        }
        let cfg = CgConfig::default();
        let mut x_plain = vec![0.0; n * r];
        let s_plain = mcg(&multi, &prec, &f, &mut x_plain, &cfg);
        let mut x_masked = vec![0.0; n * r];
        let s_masked = mcg_masked(&multi, &prec, &f, &mut x_masked, &cfg, &[true; 4]);
        assert_eq!(s_plain.fused_iterations, s_masked.fused_iterations);
        assert_eq!(s_plain.case_iterations, s_masked.case_iterations);
        for i in 0..n * r {
            assert_eq!(x_plain[i].to_bits(), x_masked[i].to_bits());
        }
    }

    #[test]
    fn vacant_lane_is_skipped_and_untouched() {
        let m = spd_matrix(18);
        let n = m.n();
        let r = 4;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let occupied = [true, false, true, false];
        let mut f = vec![0.0; n * r];
        for c in 0..r {
            if !occupied[c] {
                continue;
            }
            for i in 0..n {
                f[i * r + c] = ((i * (c + 1)) as f64 * 0.19).cos();
            }
        }
        let cfg = CgConfig::default();
        let mut x = vec![0.0; n * r];
        // vacant columns carry a sentinel that must survive untouched
        for c in 0..r {
            if !occupied[c] {
                for i in 0..n {
                    x[i * r + c] = 42.5;
                }
            }
        }
        let stats = mcg_masked(&multi, &prec, &f, &mut x, &cfg, &occupied);
        assert!(stats.converged);
        for c in 0..r {
            if occupied[c] {
                assert!(stats.case_iterations[c] > 0);
                assert_eq!(stats.case_termination[c], Termination::Converged);
            } else {
                assert_eq!(stats.case_iterations[c], 0);
                assert_eq!(stats.case_termination[c], Termination::Converged);
                for i in 0..n {
                    assert_eq!(x[i * r + c], 42.5);
                }
            }
        }
        // occupied columns match their solo single-RHS solves
        for c in [0usize, 2] {
            let fc: Vec<f64> = (0..n).map(|i| f[i * r + c]).collect();
            let mut xc = vec![0.0; n];
            let s = pcg(&m, &prec, &fc, &mut xc, &cfg);
            assert!(s.converged);
            for i in 0..n {
                assert!((x[i * r + c] - xc[i]).abs() < 1e-6);
            }
        }
    }

    /// Multi-RHS wrapper with one transient glitch: application number
    /// `glitch_at` (1-based) perturbs case `case`'s output column — the SDC
    /// model for a particle strike during one fused SpMV. All other
    /// applications, including the sentinel's audits, are exact.
    struct GlitchMulti<'a, A: MultiOperator> {
        a: &'a A,
        applies: std::sync::atomic::AtomicUsize,
        glitch_at: usize,
        case: usize,
    }

    impl<A: MultiOperator> MultiOperator for GlitchMulti<'_, A> {
        fn n(&self) -> usize {
            self.a.n()
        }
        fn r(&self) -> usize {
            self.a.r()
        }
        fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
            let k = self
                .applies
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                + 1;
            self.a.apply_multi(x, y);
            if k == self.glitch_at {
                let r = self.a.r();
                for i in 0..self.a.n() {
                    let v = &mut y[i * r + self.case];
                    *v = f64::from_bits(v.to_bits() ^ (1u64 << 61));
                }
            }
        }
        fn counts(&self) -> KernelCounts {
            self.a.counts()
        }
    }

    #[test]
    fn sentinel_freezes_only_the_corrupted_case() {
        let m = spd_matrix(25);
        let n = m.n();
        let r = 3;
        let multi = LoopMulti { a: &m, r };
        let glitched = GlitchMulti {
            a: &multi,
            applies: std::sync::atomic::AtomicUsize::new(0),
            // apply sequence: #1 init, iter1 #2, iter2 #3, sentinel #4,
            // iter3 #5 (glitched), iter4 #6, sentinel #7 detects the drift
            glitch_at: 5,
            case: 1,
        };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let cfg = CgConfig {
            sentinel_every: 2,
            ..CgConfig::default()
        };
        let mut f = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                f[i * r + c] = ((i * (c + 1)) as f64 * 0.29).sin();
            }
        }
        let mut x = vec![0.0; n * r];
        let stats = mcg(&glitched, &prec, &f, &mut x, &cfg);
        assert_eq!(stats.case_termination[1], Termination::ResidualDrift);
        assert_eq!(stats.termination, Termination::ResidualDrift);
        assert!(!stats.converged);
        // the healthy lanes are unaffected by their neighbor's corruption
        for c in [0usize, 2] {
            assert_eq!(
                stats.case_termination[c],
                Termination::Converged,
                "case {c}"
            );
        }
    }

    #[test]
    fn sentinel_is_bitwise_neutral_for_clean_multi_solves() {
        let m = spd_matrix(20);
        let n = m.n();
        let r = 4;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let mut f = vec![0.0; n * r];
        for c in 0..r {
            for i in 0..n {
                f[i * r + c] = ((i * (c + 2)) as f64 * 0.41).cos();
            }
        }
        let mut x_off = vec![0.0; n * r];
        let s_off = mcg(&multi, &prec, &f, &mut x_off, &CgConfig::default());
        let mut x_on = vec![0.0; n * r];
        let s_on = mcg(
            &multi,
            &prec,
            &f,
            &mut x_on,
            &CgConfig {
                sentinel_every: 2,
                norm_bound: 1e9,
                ..CgConfig::default()
            },
        );
        assert!(s_off.converged && s_on.converged);
        assert_eq!(s_off.fused_iterations, s_on.fused_iterations);
        assert_eq!(s_off.case_iterations, s_on.case_iterations);
        assert_eq!(s_off.counts.flops.to_bits(), s_on.counts.flops.to_bits());
        for i in 0..n * r {
            assert_eq!(x_off[i].to_bits(), x_on[i].to_bits());
        }
    }

    #[test]
    fn initial_residual_reflects_guess_quality() {
        let m = spd_matrix(12);
        let n = m.n();
        let r = 2;
        let multi = LoopMulti { a: &m, r };
        let prec = BlockJacobi::from_blocks(&m.diagonal_blocks(), false);
        let mut f = vec![0.0; n * r];
        for i in 0..n {
            let v = (i as f64 * 0.8).sin();
            f[i * r] = v;
            f[i * r + 1] = v;
        }
        // case 1 starts from a good guess
        let fc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.8).sin()).collect();
        let mut xg = vec![0.0; n];
        pcg(
            &m,
            &prec,
            &fc,
            &mut xg,
            &CgConfig {
                tol: 1e-6,
                max_iter: 100,
                ..CgConfig::default()
            },
        );
        let mut x = vec![0.0; n * r];
        for i in 0..n {
            x[i * r + 1] = xg[i];
        }
        let stats = mcg(&multi, &prec, &f, &mut x, &CgConfig::default());
        assert!(stats.initial_rel_res[1] < stats.initial_rel_res[0]);
        assert!(stats.case_iterations[1] <= stats.case_iterations[0]);
    }
}
