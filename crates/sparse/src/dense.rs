//! Small dense linear algebra: Cholesky factorization and 3×3 inverses.
//!
//! Used by the block-Jacobi preconditioner (3×3 inverses) and as a reference
//! direct solver in tests (CG results are validated against Cholesky on
//! small systems).

/// Invert a symmetric positive definite 3×3 matrix given row-major.
/// Returns `None` when the determinant is not strictly positive.
pub fn inv3(a: &[f64; 9]) -> Option<[f64; 9]> {
    let det = a[0] * (a[4] * a[8] - a[5] * a[7]) - a[1] * (a[3] * a[8] - a[5] * a[6])
        + a[2] * (a[3] * a[7] - a[4] * a[6]);
    if !(det.is_finite() && det.abs() > f64::MIN_POSITIVE) {
        return None;
    }
    let inv_det = 1.0 / det;
    Some([
        (a[4] * a[8] - a[5] * a[7]) * inv_det,
        (a[2] * a[7] - a[1] * a[8]) * inv_det,
        (a[1] * a[5] - a[2] * a[4]) * inv_det,
        (a[5] * a[6] - a[3] * a[8]) * inv_det,
        (a[0] * a[8] - a[2] * a[6]) * inv_det,
        (a[2] * a[3] - a[0] * a[5]) * inv_det,
        (a[3] * a[7] - a[4] * a[6]) * inv_det,
        (a[1] * a[6] - a[0] * a[7]) * inv_det,
        (a[0] * a[4] - a[1] * a[3]) * inv_det,
    ])
}

/// `y = A x` for a row-major 3×3 block.
#[inline]
pub fn mat3_vec(a: &[f64; 9], x: &[f64; 3]) -> [f64; 3] {
    [
        a[0] * x[0] + a[1] * x[1] + a[2] * x[2],
        a[3] * x[0] + a[4] * x[1] + a[5] * x[2],
        a[6] * x[0] + a[7] * x[1] + a[8] * x[2],
    ]
}

/// In-place Cholesky factorization `A = L Lᵀ` of a dense row-major SPD
/// matrix. Returns `Err` with the failing pivot index if not positive
/// definite.
pub fn cholesky_factor(a: &mut [f64], n: usize) -> Result<(), usize> {
    debug_assert_eq!(a.len(), n * n);
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(j);
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
    }
    Ok(())
}

/// Solve `A x = b` given the Cholesky factor produced by
/// [`cholesky_factor`] (forward then backward substitution); `b` is
/// overwritten with the solution.
pub fn cholesky_solve(l: &[f64], n: usize, b: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // forward: L y = b
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
    // backward: L^T x = y
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
}

/// Convenience: solve a dense SPD system, consuming copies.
pub fn solve_spd(a: &[f64], n: usize, b: &[f64]) -> Result<Vec<f64>, usize> {
    let mut l = a.to_vec();
    cholesky_factor(&mut l, n)?;
    let mut x = b.to_vec();
    cholesky_solve(&l, n, &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv3_roundtrip() {
        let a = [4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 5.0];
        let inv = inv3(&a).unwrap();
        // A * A^-1 = I
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[i * 3 + k] * inv[k * 3 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inv3_rejects_singular() {
        let a = [1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 0.0, 0.0, 1.0];
        assert!(inv3(&a).is_none());
    }

    #[test]
    fn mat3_vec_basic() {
        let a = [1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0];
        assert_eq!(mat3_vec(&a, &[1.0, 1.0, 1.0]), [1.0, 2.0, 3.0]);
    }

    fn spd(n: usize, seed: u64) -> Vec<f64> {
        // A = B^T B + n I with deterministic B
        let mut b = vec![0.0; n * n];
        let mut s = seed;
        for v in b.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 33) % 1000) as f64 / 500.0 - 1.0;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    acc += b[k * n + i] * b[k * n + j];
                }
                a[i * n + j] = acc;
            }
        }
        a
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let n = 12;
        let a = spd(n, 7);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
            .collect();
        let x = solve_spd(&a, n, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "{} vs {}", x[i], x_true[i]);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let mut l = a.clone();
        assert!(cholesky_factor(&mut l, 2).is_err());
    }
}
