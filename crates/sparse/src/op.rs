//! Operator abstractions and hardware-independent work accounting.
//!
//! Every kernel in this crate can report a [`KernelCounts`] record — flops,
//! streamed bytes, and randomly-accessed bytes per invocation, plus the
//! number of fused right-hand sides. The `hetsolve-machine` roofline model
//! converts these counts into modeled time/energy on a device profile
//! (H100, Grace, …); the counts themselves are exact properties of the
//! algorithm and data structure, not of any machine.

/// Hardware-independent cost of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCounts {
    /// Floating point operations (adds + muls).
    pub flops: f64,
    /// Bytes moved with streaming (unit-stride, prefetchable) access.
    pub bytes_stream: f64,
    /// DRAM-visible bytes moved by data-dependent (gather/scatter)
    /// accesses. Because FE gathers have high node reuse (~14 elements per
    /// node), caches filter most of them: operators report the *footprint*
    /// traffic (vector size × miss factor), not raw access bytes.
    pub bytes_rand: f64,
    /// Number of gather/scatter transactions issued (address generation /
    /// issue-slot overhead, modeled separately from bandwidth). With `r`
    /// fused right-hand sides one transaction serves `r` values — the EBE
    /// multi-RHS amortization of the paper's Eq. (9).
    pub rand_transactions: f64,
    /// Number of fused right-hand sides.
    pub rhs_fused: usize,
}

impl KernelCounts {
    /// Sum of two counts (e.g. operator + preconditioner).
    pub fn merged(self, o: KernelCounts) -> KernelCounts {
        KernelCounts {
            flops: self.flops + o.flops,
            bytes_stream: self.bytes_stream + o.bytes_stream,
            bytes_rand: self.bytes_rand + o.bytes_rand,
            rand_transactions: self.rand_transactions + o.rand_transactions,
            rhs_fused: self.rhs_fused.max(o.rhs_fused),
        }
    }

    /// Scale all counts (e.g. by an iteration count).
    pub fn scaled(self, k: f64) -> KernelCounts {
        KernelCounts {
            flops: self.flops * k,
            bytes_stream: self.bytes_stream * k,
            bytes_rand: self.bytes_rand * k,
            rand_transactions: self.rand_transactions * k,
            rhs_fused: self.rhs_fused,
        }
    }

    /// Total bytes.
    pub fn bytes(&self) -> f64 {
        self.bytes_stream + self.bytes_rand
    }

    /// Arithmetic intensity (flops per byte).
    pub fn intensity(&self) -> f64 {
        self.flops / self.bytes().max(1.0)
    }
}

/// A symmetric positive (semi-)definite linear operator `y = A x`.
pub trait LinearOperator: Sync {
    /// Dimension (number of DOFs).
    fn n(&self) -> usize;

    /// Compute `y = A x`. `x.len() == y.len() == self.n()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Cost of one `apply`.
    fn counts(&self) -> KernelCounts;
}

/// A linear operator applied to `r` fused right-hand sides stored
/// interleaved: `x[dof * r + case]`.
pub trait MultiOperator: Sync {
    fn n(&self) -> usize;
    fn r(&self) -> usize;

    /// `Y = A X` for all `r` cases at once.
    fn apply_multi(&self, x: &[f64], y: &mut [f64]);

    /// Cost of one fused `apply_multi` (covering all `r` cases).
    fn counts(&self) -> KernelCounts;
}

/// A preconditioner `z = B⁻¹ r`.
pub trait Preconditioner: Sync {
    fn n(&self) -> usize;
    fn apply(&self, r: &[f64], z: &mut [f64]);
    fn counts(&self) -> KernelCounts;

    /// Interleaved multi-RHS application; default loops case-by-case via
    /// scratch vectors (implementations override with fused kernels).
    fn apply_multi(&self, r_vec: &[f64], z: &mut [f64], r: usize) {
        let n = self.n();
        let mut rs = vec![0.0; n];
        let mut zs = vec![0.0; n];
        for c in 0..r {
            for i in 0..n {
                rs[i] = r_vec[i * r + c];
            }
            self.apply(&rs, &mut zs);
            for i in 0..n {
                z[i * r + c] = zs[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_scale() {
        let a = KernelCounts {
            flops: 10.0,
            bytes_stream: 100.0,
            bytes_rand: 20.0,
            rand_transactions: 7.0,
            rhs_fused: 1,
        };
        let b = KernelCounts {
            flops: 5.0,
            bytes_stream: 50.0,
            bytes_rand: 0.0,
            rand_transactions: 3.0,
            rhs_fused: 4,
        };
        let m = a.merged(b);
        assert_eq!(m.flops, 15.0);
        assert_eq!(m.bytes(), 170.0);
        assert_eq!(m.rhs_fused, 4);
        assert_eq!(m.rand_transactions, 10.0);
        let s = a.scaled(2.0);
        assert_eq!(s.flops, 20.0);
        assert_eq!(s.bytes_rand, 40.0);
        assert_eq!(s.rand_transactions, 14.0);
    }

    #[test]
    fn intensity() {
        let a = KernelCounts {
            flops: 300.0,
            bytes_stream: 100.0,
            bytes_rand: 50.0,
            rand_transactions: 0.0,
            rhs_fused: 1,
        };
        assert!((a.intensity() - 2.0).abs() < 1e-12);
    }
}
