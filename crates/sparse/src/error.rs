//! Typed solver failure.
//!
//! [`SolveError`] is what a driver returns when the recovery ladder is
//! exhausted: every attempt (data-driven guess, Adams-Bashforth downgrade,
//! zero guess with a raised iteration cap) ended in an abnormal
//! [`Termination`]. It carries enough context — step, case, cause, final
//! residual, attempts — for an ensemble scheduler to log the failure and
//! move on instead of aborting thousands of healthy steps.

use std::fmt;

use hetsolve_obs::Termination;

/// An iterative solve that could not be recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveError {
    /// Time step at which the solve failed (0 for standalone solves).
    pub step: usize,
    /// Failing case for multi-RHS solves; `None` for single-RHS.
    pub case: Option<usize>,
    /// Abnormal cause of the final attempt.
    pub termination: Termination,
    /// Relative residual when the final attempt stopped.
    pub rel_res: f64,
    /// Iterations spent by the final attempt.
    pub iterations: usize,
    /// Solve attempts made before giving up (ladder rungs tried).
    pub attempts: usize,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solve failed at step {} ({}): {} after {} iterations, rel_res {:.3e}, {} attempt(s)",
            self.step,
            match self.case {
                Some(c) => format!("case {c}"),
                None => "single case".to_string(),
            },
            self.termination.label(),
            self.iterations,
            self.rel_res,
            self.attempts,
        )
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_context() {
        let e = SolveError {
            step: 42,
            case: Some(3),
            termination: Termination::NanResidual,
            rel_res: f64::NAN,
            iterations: 7,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("step 42"), "{s}");
        assert!(s.contains("case 3"), "{s}");
        assert!(s.contains("nan_residual"), "{s}");
        assert!(s.contains("3 attempt(s)"), "{s}");

        let single = SolveError { case: None, ..e };
        assert!(single.to_string().contains("single case"));
    }
}
