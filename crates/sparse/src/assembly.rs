//! Assembly of packed symmetric element matrices into [`Bcrs3`] global
//! matrices — the "store the matrix in memory" path of the baseline
//! CRS-CG methods.

use crate::bcrs::{Bcrs3, BcrsBuilder};
use crate::sym::packed_idx as pidx;

/// Accumulate `coeff * E` into the builder, where `E` is the packed
/// symmetric matrix of an element with node list `nodes` (node-major DOFs:
/// element DOF `3k + d` belongs to node `nodes[k]`).
pub fn add_packed_element(builder: &mut BcrsBuilder, nodes: &[u32], packed: &[f64], coeff: f64) {
    let ln = nodes.len();
    debug_assert_eq!(packed.len(), (3 * ln) * (3 * ln + 1) / 2);
    if coeff == 0.0 {
        return;
    }
    for (a, &na) in nodes.iter().enumerate() {
        for (b, &nb) in nodes.iter().enumerate() {
            let mut blk = [0.0f64; 9];
            for da in 0..3 {
                for db in 0..3 {
                    blk[3 * da + db] = coeff * packed[pidx(3 * a + da, 3 * b + db)];
                }
            }
            builder.add_block(na, nb, &blk);
        }
    }
}

/// Assemble a global matrix `Σ_e c_M M_e + c_K K_e + Σ_f c_B C_f` with
/// Dirichlet elimination: rows/columns of fixed DOFs are zeroed and unit
/// diagonal entries inserted, preserving symmetry and positive
/// definiteness (the standard "zero row/col + 1 on diagonal" treatment).
///
/// * `n_nodes` — global node count,
/// * `elems`/`me`/`ke` — Tet10 connectivity and flat packed matrices
///   (stride 465),
/// * `faces`/`cb` — Tri6 dashpot connectivity and flat packed matrices
///   (stride 171),
/// * `fixed` — per-DOF Dirichlet mask (length `3 * n_nodes`), or empty for
///   no constraints.
#[allow(clippy::too_many_arguments)]
pub fn assemble_global(
    n_nodes: usize,
    elems: &[[u32; 10]],
    me: &[f64],
    ke: &[f64],
    c_m: f64,
    c_k: f64,
    faces: &[[u32; 6]],
    cb: &[f64],
    c_b: f64,
    fixed: &[bool],
    parallel: bool,
) -> Bcrs3 {
    const TP: usize = 465;
    const FP: usize = 171;
    debug_assert!(fixed.is_empty() || fixed.len() == 3 * n_nodes);
    let mut b = BcrsBuilder::new(n_nodes);
    for (e, el) in elems.iter().enumerate() {
        add_packed_element(&mut b, el, &me[e * TP..(e + 1) * TP], c_m);
        add_packed_element(&mut b, el, &ke[e * TP..(e + 1) * TP], c_k);
    }
    for (f, fc) in faces.iter().enumerate() {
        add_packed_element(&mut b, fc, &cb[f * FP..(f + 1) * FP], c_b);
    }
    let mut m = b.finish(parallel);
    if !fixed.is_empty() {
        apply_dirichlet(&mut m, fixed);
    }
    m
}

/// Zero the rows and columns of fixed DOFs and set their diagonal to 1.
pub fn apply_dirichlet(m: &mut Bcrs3, fixed: &[bool]) {
    debug_assert_eq!(fixed.len(), m.n());
    for br in 0..m.n_brows {
        for k in m.row_ptr[br]..m.row_ptr[br + 1] {
            let bc = m.cols[k] as usize;
            let blk = &mut m.blocks[k];
            for da in 0..3 {
                for db in 0..3 {
                    let (gi, gj) = (3 * br + da, 3 * bc + db);
                    if fixed[gi] || fixed[gj] {
                        blk[3 * da + db] = if gi == gj { 1.0 } else { 0.0 };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LinearOperator;

    /// A fake 2-node "element" with 6 DOFs for structural tests: packed
    /// symmetric 6x6 with value = i*10 + j on the lower triangle.
    fn packed6() -> Vec<f64> {
        let mut p = vec![0.0; 21];
        for i in 0..6 {
            for j in 0..=i {
                p[pidx(i, j)] = (i * 10 + j) as f64;
            }
        }
        p
    }

    #[test]
    fn packed_element_assembly_is_symmetric() {
        let nodes = [0u32, 2u32];
        let p = packed6();
        let mut b = BcrsBuilder::new(3);
        add_packed_element(&mut b, &nodes, &p, 1.0);
        let m = b.finish(false);
        // check global symmetry by applying to basis-like vectors
        let n = m.n();
        let mut cols_dense = vec![vec![0.0; n]; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            m.apply(&e, &mut cols_dense[j]);
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (cols_dense[j][i] - cols_dense[i][j]).abs() < 1e-12,
                    "asym at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn zero_coeff_adds_nothing() {
        let mut b = BcrsBuilder::new(2);
        add_packed_element(&mut b, &[0u32, 1u32], &packed6(), 0.0);
        let m = b.finish(false);
        assert_eq!(m.nnz_blocks(), 0);
    }

    #[test]
    fn dirichlet_sets_identity_rows() {
        let mut b = BcrsBuilder::new(2);
        add_packed_element(&mut b, &[0u32, 1u32], &packed6(), 1.0);
        let mut m = b.finish(false);
        // fix node 0 entirely
        let mut fixed = vec![false; 6];
        for f in fixed.iter_mut().take(3) {
            *f = true;
        }
        apply_dirichlet(&mut m, &fixed);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y = vec![0.0; 6];
        m.apply(&x, &mut y);
        // fixed rows: y = x
        assert_eq!(&y[..3], &x[..3]);
        // free rows must not see fixed-column contributions: recompute with
        // fixed entries zeroed and compare.
        let x0 = vec![0.0, 0.0, 0.0, 4.0, 5.0, 6.0];
        let mut y0 = vec![0.0; 6];
        m.apply(&x0, &mut y0);
        assert_eq!(&y[3..], &y0[3..]);
    }
}
