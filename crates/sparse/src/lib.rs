//! # hetsolve-sparse
//!
//! Sparse linear algebra substrate for the `hetsolve` reproduction of the
//! SC24 paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.):
//!
//! * [`bcrs`] — 3×3 block CRS (the paper's baseline storage format),
//! * [`ebe`] — the matrix-free Element-by-Element operator with 1–8 fused
//!   right-hand sides (the paper's Eq. (2)/(8)/(9)), color-parallel scatter,
//! * [`cg`] / [`mcg`] — single- and multi-RHS preconditioned conjugate
//!   gradient (Algorithm 1 and the MCG of EBE-MCG@CPU-GPU),
//! * [`blockjacobi`] — the 3×3 block-Jacobi preconditioner,
//! * [`assembly`] — packed element matrices → global BCRS with Dirichlet
//!   elimination,
//! * [`sym`] — packed symmetric element-matrix kernels (shared with
//!   `hetsolve-fem`),
//! * [`vecops`] / [`dense`] — vector primitives and small dense solvers,
//! * [`op`] — operator traits and hardware-independent [`op::KernelCounts`]
//!   that the machine model converts into modeled time/energy.

pub mod assembly;
pub mod bcrs;
pub mod blockjacobi;
pub mod blockssor;
pub mod cg;
pub mod dense;
pub mod dirichlet;
pub mod ebe;
pub mod ebe32;
pub mod error;
pub mod mcg;
pub mod op;
pub mod parcheck;
pub mod sym;
pub mod vecops;

pub use assembly::{apply_dirichlet, assemble_global};
pub use bcrs::{Bcrs3, BcrsBuilder};
pub use blockjacobi::BlockJacobi;
pub use blockssor::BlockSsor;
pub use cg::{pcg, pcg_observed, CgConfig, CgStats};
pub use dirichlet::FixedMask;
pub use ebe::{color_faces, ebe_counts, EbeData, EbeMultiOperator, EbeOperator};
pub use ebe32::{EbeOperator32, EbeStore32};
pub use error::SolveError;
pub use hetsolve_obs::{NoopObserver, ResidualLog, SolveObserver, Termination};
pub use mcg::{mcg, mcg_masked, mcg_masked_observed, mcg_observed, McgStats};
pub use op::{KernelCounts, LinearOperator, MultiOperator, Preconditioner};
pub use parcheck::ColorScatter;
