//! Shared Dirichlet-mask semantics for the matrix-free operators.
//!
//! Every EBE variant realizes the projected operator `P A P + (I − P)`
//! (with `P` zeroing fixed DOFs) the same way: inputs read through
//! [`FixedMask::masked`] so element contributions see zeros on fixed DOFs,
//! and after the scatter the output rows of fixed DOFs are overwritten with
//! the input value (identity on the fixed subspace), matching the assembled
//! Dirichlet treatment. This module is the single home of that logic; the
//! f64, f32, and compact kernels all delegate here instead of carrying
//! their own `fix_output`/`fix_output_multi` copies.

/// A borrowed per-DOF Dirichlet mask. An empty mask means unconstrained
/// (every helper is a no-op / passthrough).
#[derive(Debug, Clone, Copy)]
pub struct FixedMask<'a> {
    mask: &'a [bool],
}

impl<'a> FixedMask<'a> {
    pub fn new(mask: &'a [bool]) -> Self {
        FixedMask { mask }
    }

    /// True when no DOF is constrained.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Input gating: fixed DOFs read as zero so element contributions apply
    /// `P A P`.
    #[inline]
    pub fn masked(&self, dof: usize, v: f64) -> f64 {
        if !self.mask.is_empty() && self.mask[dof] {
            0.0
        } else {
            v
        }
    }

    /// Identity on fixed rows: `y[fixed] = x[fixed]`.
    pub fn fix_output(&self, x: &[f64], y: &mut [f64]) {
        self.fix_output_multi(x, y, 1);
    }

    /// Identity on fixed rows for `r` interleaved RHS
    /// (`y[dof*r + c] = x[dof*r + c]`).
    pub fn fix_output_multi(&self, x: &[f64], y: &mut [f64], r: usize) {
        if self.mask.is_empty() {
            return;
        }
        for (i, &f) in self.mask.iter().enumerate() {
            if f {
                for c in 0..r {
                    y[i * r + c] = x[i * r + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_is_passthrough() {
        let m = FixedMask::new(&[]);
        assert!(m.is_empty());
        assert_eq!(m.masked(3, 2.5), 2.5);
        let x = [1.0, 2.0];
        let mut y = [9.0, 9.0];
        m.fix_output(&x, &mut y);
        assert_eq!(y, [9.0, 9.0]);
    }

    #[test]
    fn masked_zeroes_fixed_dofs_only() {
        let mask = [true, false, true];
        let m = FixedMask::new(&mask);
        assert_eq!(m.masked(0, 5.0), 0.0);
        assert_eq!(m.masked(1, 5.0), 5.0);
        assert_eq!(m.masked(2, -1.0), 0.0);
    }

    #[test]
    fn fix_output_multi_copies_interleaved_rows() {
        let mask = [false, true];
        let m = FixedMask::new(&mask);
        let x = [10.0, 11.0, 20.0, 21.0]; // dof-major, r = 2
        let mut y = [0.0; 4];
        m.fix_output_multi(&x, &mut y, 2);
        assert_eq!(y, [0.0, 0.0, 20.0, 21.0]);
    }
}
