//! Mixed-precision cached-matrix EBE: element matrices stored in `f32`
//! (halving both the memory footprint and the streamed bytes of the cached
//! variant), gathers/accumulation in `f64`.
//!
//! This is the standard mixed-precision lever for memory-capacity-limited
//! GPU solvers; the solution still converges to the `f64` CG tolerance
//! because the *operator* merely changes by an O(1e-7) relative
//! perturbation, which CG absorbs (it solves the perturbed SPD system
//! exactly; tests verify agreement with the f64 operator to single
//! precision and solve agreement to the CG tolerance).

use hetsolve_mesh::{validate_groups, Coloring};
use rayon::prelude::*;

use crate::dirichlet::FixedMask;
use crate::ebe::color_faces;
use crate::op::{KernelCounts, MultiOperator};
use crate::parcheck::ColorScatter;
use crate::sym::sym2_matvec_add_multi_f32;

const TP: usize = 465;
const FP: usize = 171;

/// f32 copies of packed element/face matrices.
#[derive(Debug, Clone)]
pub struct EbeStore32 {
    pub me: Vec<f32>,
    pub ke: Vec<f32>,
    pub cb: Vec<f32>,
}

impl EbeStore32 {
    /// Demote f64 packed stores to f32.
    pub fn from_f64(me: &[f64], ke: &[f64], cb: &[f64]) -> Self {
        EbeStore32 {
            me: me.iter().map(|&v| v as f32).collect(),
            ke: ke.iter().map(|&v| v as f32).collect(),
            cb: cb.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Bytes stored — half the f64 cached variant.
    pub fn bytes(&self) -> usize {
        (self.me.len() + self.ke.len() + self.cb.len()) * 4
    }
}

/// Mixed-precision multi-RHS EBE operator over cached f32 matrices.
pub struct EbeOperator32<'a> {
    pub n_nodes: usize,
    pub elems: &'a [[u32; 10]],
    pub store: &'a EbeStore32,
    pub faces: &'a [[u32; 6]],
    pub c_m: f64,
    pub c_k: f64,
    pub c_b: f64,
    pub fixed: &'a [bool],
    pub coloring: &'a Coloring,
    pub face_groups: Vec<Vec<u32>>,
    pub parallel: bool,
    pub r: usize,
}

impl<'a> EbeOperator32<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n_nodes: usize,
        elems: &'a [[u32; 10]],
        store: &'a EbeStore32,
        faces: &'a [[u32; 6]],
        coeffs: (f64, f64, f64),
        fixed: &'a [bool],
        coloring: &'a Coloring,
        parallel: bool,
        r: usize,
    ) -> Self {
        assert!(
            matches!(r, 1 | 2 | 4 | 8),
            "fused RHS count must be 1, 2, 4 or 8"
        );
        assert_eq!(store.me.len(), elems.len() * TP);
        assert_eq!(store.cb.len(), faces.len() * FP);
        // Race-freedom precondition of the colored scatter (see `parcheck`).
        if let Err(c) = validate_groups(n_nodes, elems, &coloring.groups) {
            panic!("EbeOperator32::new: element {c}");
        }
        let face_groups = color_faces(n_nodes, faces);
        if let Err(c) = validate_groups(n_nodes, faces, &face_groups) {
            panic!("EbeOperator32::new: face {c}");
        }
        EbeOperator32 {
            n_nodes,
            elems,
            store,
            faces,
            c_m: coeffs.0,
            c_k: coeffs.1,
            c_b: coeffs.2,
            fixed,
            coloring,
            face_groups,
            parallel,
            r,
        }
    }

    #[inline]
    fn masked(&self, dof: usize, v: f64) -> f64 {
        FixedMask::new(self.fixed).masked(dof, v)
    }

    fn apply_r<const R: usize>(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        let mut scatter = ColorScatter::new(y);
        for group in &self.coloring.groups {
            scatter.begin_color();
            let scatter = &scatter;
            let run = move |&e: &u32| {
                let eid = e;
                let e = e as usize;
                let el = &self.elems[e];
                let mut xl = [0.0f64; 240];
                let mut yl = [0.0f64; 240];
                let xl = &mut xl[..30 * R];
                let yl = &mut yl[..30 * R];
                for (k, &n) in el.iter().enumerate() {
                    for a in 0..3 {
                        let dof = 3 * n as usize + a;
                        for c in 0..R {
                            xl[(3 * k + a) * R + c] = self.masked(dof, x[dof * R + c]);
                        }
                    }
                }
                sym2_matvec_add_multi_f32::<R>(
                    self.c_m,
                    &self.store.me[e * TP..(e + 1) * TP],
                    self.c_k,
                    &self.store.ke[e * TP..(e + 1) * TP],
                    xl,
                    yl,
                    30,
                );
                // SAFETY: same-color elements share no nodes (validated at
                // construction), so per-pass writes are disjoint.
                unsafe {
                    for (k, &n) in el.iter().enumerate() {
                        for a in 0..3 {
                            let dof = 3 * n as usize + a;
                            for c in 0..R {
                                scatter.add(eid, dof * R + c, yl[(3 * k + a) * R + c]);
                            }
                        }
                    }
                }
            };
            if self.parallel {
                group.par_iter().for_each(run);
            } else {
                group.iter().for_each(run);
            }
        }
        if self.c_b != 0.0 {
            for group in &self.face_groups {
                scatter.begin_color();
                let scatter = &scatter;
                let run = move |&f: &u32| {
                    let fid = f;
                    let f = f as usize;
                    let fc = &self.faces[f];
                    let mut xl = [0.0f64; 144];
                    let mut yl = [0.0f64; 144];
                    let xl = &mut xl[..18 * R];
                    let yl = &mut yl[..18 * R];
                    for (k, &n) in fc.iter().enumerate() {
                        for a in 0..3 {
                            let dof = 3 * n as usize + a;
                            for c in 0..R {
                                xl[(3 * k + a) * R + c] = self.masked(dof, x[dof * R + c]);
                            }
                        }
                    }
                    let cb = &self.store.cb[f * FP..(f + 1) * FP];
                    sym2_matvec_add_multi_f32::<R>(self.c_b, cb, 0.0, cb, xl, yl, 18);
                    // SAFETY: same-color faces share no nodes (validated at
                    // construction), so per-pass writes are disjoint.
                    unsafe {
                        for (k, &n) in fc.iter().enumerate() {
                            for a in 0..3 {
                                let dof = 3 * n as usize + a;
                                for c in 0..R {
                                    scatter.add(fid, dof * R + c, yl[(3 * k + a) * R + c]);
                                }
                            }
                        }
                    }
                };
                if self.parallel {
                    group.par_iter().for_each(run);
                } else {
                    group.iter().for_each(run);
                }
            }
        }
        drop(scatter);
        FixedMask::new(self.fixed).fix_output_multi(x, y, R);
    }
}

impl MultiOperator for EbeOperator32<'_> {
    fn n(&self) -> usize {
        3 * self.n_nodes
    }

    fn r(&self) -> usize {
        self.r
    }

    fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
        match self.r {
            1 => self.apply_r::<1>(x, y),
            2 => self.apply_r::<2>(x, y),
            4 => self.apply_r::<4>(x, y),
            8 => self.apply_r::<8>(x, y),
            _ => unreachable!(),
        }
    }

    fn counts(&self) -> KernelCounts {
        let mut c = crate::ebe::ebe_counts(self.elems.len(), self.faces.len(), self.n(), self.r);
        // matrices stream half the bytes in f32
        c.bytes_stream = self.elems.len() as f64 * (2.0 * 465.0 * 4.0 + 40.0)
            + self.faces.len() as f64 * (171.0 * 4.0 + 24.0);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebe::{EbeData, EbeMultiOperator};
    use hetsolve_mesh::{color_elements, GroundModelSpec, InterfaceShape};

    struct Fx {
        n_nodes: usize,
        elems: Vec<[u32; 10]>,
        me: Vec<f64>,
        ke: Vec<f64>,
        faces: Vec<[u32; 6]>,
        cb: Vec<f64>,
        fixed: Vec<bool>,
        coloring: hetsolve_mesh::Coloring,
    }

    fn fixture() -> Fx {
        let gm = GroundModelSpec::paper_like(2, 2, 2, InterfaceShape::Stratified).build();
        let mesh = gm.mesh;
        let coloring = color_elements(&mesh);
        let ne = mesh.n_elems();
        let n_nodes = mesh.n_nodes();
        let mut s: u64 = 777;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let me: Vec<f64> = (0..ne * TP).map(|_| next()).collect();
        let ke: Vec<f64> = (0..ne * TP).map(|_| next()).collect();
        let el0 = mesh.elems[0];
        let faces = vec![[el0[0], el0[1], el0[2], el0[4], el0[5], el0[6]]];
        let cb: Vec<f64> = (0..FP).map(|_| next()).collect();
        let fixed: Vec<bool> = (0..3 * n_nodes).map(|d| d % 13 == 0).collect();
        Fx {
            n_nodes,
            elems: mesh.elems,
            me,
            ke,
            faces,
            cb,
            fixed,
            coloring,
        }
    }

    #[test]
    fn f32_operator_matches_f64_to_single_precision() {
        let fx = fixture();
        let store = EbeStore32::from_f64(&fx.me, &fx.ke, &fx.cb);
        let coeffs = (2.0, 0.7, 0.3);
        for r in [1usize, 4] {
            let op32 = EbeOperator32::new(
                fx.n_nodes,
                &fx.elems,
                &store,
                &fx.faces,
                coeffs,
                &fx.fixed,
                &fx.coloring,
                false,
                r,
            );
            let data = EbeData {
                n_nodes: fx.n_nodes,
                elems: &fx.elems,
                me: &fx.me,
                ke: &fx.ke,
                faces: &fx.faces,
                cb: &fx.cb,
                c_m: coeffs.0,
                c_k: coeffs.1,
                c_b: coeffs.2,
                fixed: &fx.fixed,
            };
            let op64 = EbeMultiOperator::new(data, &fx.coloring, false, r);
            let n = op64.n();
            let x: Vec<f64> = (0..n * r).map(|i| ((i as f64) * 0.19).sin()).collect();
            let mut y32 = vec![0.0; n * r];
            let mut y64 = vec![0.0; n * r];
            op32.apply_multi(&x, &mut y32);
            op64.apply_multi(&x, &mut y64);
            let scale = y64.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
            for k in 0..n * r {
                assert!(
                    (y32[k] - y64[k]).abs() < 1e-5 * scale,
                    "r={r} slot {k}: {} vs {}",
                    y32[k],
                    y64[k]
                );
            }
        }
    }

    #[test]
    fn memory_is_half() {
        let fx = fixture();
        let store = EbeStore32::from_f64(&fx.me, &fx.ke, &fx.cb);
        let f64_bytes = (fx.me.len() + fx.ke.len() + fx.cb.len()) * 8;
        assert_eq!(store.bytes() * 2, f64_bytes);
    }

    #[test]
    fn counts_stream_half_the_matrix_bytes() {
        let fx = fixture();
        let store = EbeStore32::from_f64(&fx.me, &fx.ke, &fx.cb);
        let op32 = EbeOperator32::new(
            fx.n_nodes,
            &fx.elems,
            &store,
            &fx.faces,
            (1.0, 1.0, 1.0),
            &[],
            &fx.coloring,
            false,
            1,
        );
        let c32 = op32.counts();
        let c64 = crate::ebe::ebe_counts(fx.elems.len(), fx.faces.len(), 3 * fx.n_nodes, 1);
        assert!(c32.bytes_stream < 0.6 * c64.bytes_stream);
        assert_eq!(c32.flops, c64.flops);
    }
}
