//! Packed symmetric matrix storage.
//!
//! Element matrices (30×30 for Tet10, 18×18 for Tri6 faces) are symmetric;
//! storing only the lower triangle (row-major: entry (i, j), j ≤ i, at
//! `i(i+1)/2 + j`) halves the memory footprint and the memory traffic of
//! the EBE kernel — the same storage trick the paper's EBE implementation
//! relies on to fit 2×4 simulation cases in GPU memory.

/// Number of stored entries of an `n×n` packed symmetric matrix.
#[inline]
pub const fn packed_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Index of entry `(i, j)` (any order) in packed lower-triangular storage.
#[inline]
pub fn packed_idx(i: usize, j: usize) -> usize {
    if i >= j {
        i * (i + 1) / 2 + j
    } else {
        j * (j + 1) / 2 + i
    }
}

/// `y += A x` for a packed symmetric `n×n` matrix `a` (length
/// `packed_len(n)`).
pub fn sym_matvec_add(a: &[f64], x: &[f64], y: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), packed_len(n));
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), n);
    let mut idx = 0;
    for i in 0..n {
        let xi = x[i];
        let mut acc = 0.0;
        for j in 0..i {
            let aij = a[idx];
            acc += aij * x[j];
            y[j] += aij * xi;
            idx += 1;
        }
        // diagonal
        acc += a[idx] * xi;
        idx += 1;
        y[i] += acc;
    }
}

/// `y += (ca*A + cb*B) x` for two packed symmetric matrices sharing the same
/// layout — the fused kernel used by EBE: `A_e = c_M M_e + c_K K_e`.
pub fn sym2_matvec_add(ca: f64, a: &[f64], cb: f64, b: &[f64], x: &[f64], y: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), packed_len(n));
    debug_assert_eq!(b.len(), packed_len(n));
    let mut idx = 0;
    for i in 0..n {
        let xi = x[i];
        let mut acc = 0.0;
        for j in 0..i {
            let m = ca * a[idx] + cb * b[idx];
            acc += m * x[j];
            y[j] += m * xi;
            idx += 1;
        }
        acc += (ca * a[idx] + cb * b[idx]) * xi;
        idx += 1;
        y[i] += acc;
    }
}

/// Multi-RHS variant: `Y[r] += (ca*A + cb*B) X[r]` for `R` fused
/// right-hand sides stored interleaved (`x[i*R + r]`). Each matrix entry is
/// loaded once and applied to all `R` vectors — this is the "EBE with
/// multiple right-hand sides" kernel of the paper's Eq. (9).
pub fn sym2_matvec_add_multi<const R: usize>(
    ca: f64,
    a: &[f64],
    cb: f64,
    b: &[f64],
    x: &[f64],
    y: &mut [f64],
    n: usize,
) {
    debug_assert_eq!(a.len(), packed_len(n));
    debug_assert_eq!(x.len(), n * R);
    debug_assert_eq!(y.len(), n * R);
    let mut idx = 0;
    for i in 0..n {
        let mut acc = [0.0f64; R];
        for j in 0..i {
            let m = ca * a[idx] + cb * b[idx];
            for r in 0..R {
                acc[r] += m * x[j * R + r];
                y[j * R + r] += m * x[i * R + r];
            }
            idx += 1;
        }
        let d = ca * a[idx] + cb * b[idx];
        idx += 1;
        for r in 0..R {
            y[i * R + r] += acc[r] + d * x[i * R + r];
        }
    }
}

/// Mixed-precision multi-RHS variant: matrices stored in `f32` (halving
/// their memory traffic — the lever that lets the paper fit 2×4 cases in
/// GPU memory), vectors and accumulation in `f64`.
pub fn sym2_matvec_add_multi_f32<const R: usize>(
    ca: f64,
    a: &[f32],
    cb: f64,
    b: &[f32],
    x: &[f64],
    y: &mut [f64],
    n: usize,
) {
    debug_assert_eq!(a.len(), packed_len(n));
    debug_assert_eq!(b.len(), packed_len(n));
    debug_assert_eq!(x.len(), n * R);
    debug_assert_eq!(y.len(), n * R);
    let mut idx = 0;
    for i in 0..n {
        let mut acc = [0.0f64; R];
        for j in 0..i {
            let m = ca * a[idx] as f64 + cb * b[idx] as f64;
            for r in 0..R {
                acc[r] += m * x[j * R + r];
                y[j * R + r] += m * x[i * R + r];
            }
            idx += 1;
        }
        let d = ca * a[idx] as f64 + cb * b[idx] as f64;
        idx += 1;
        for r in 0..R {
            y[i * R + r] += acc[r] + d * x[i * R + r];
        }
    }
}

/// Unpack into a dense row-major `n×n` matrix (testing / dense fallbacks).
pub fn unpack_dense(a: &[f64], n: usize) -> Vec<f64> {
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = a[packed_idx(i, j)];
        }
    }
    d
}

/// Pack the lower triangle of a dense row-major `n×n` matrix, asserting the
/// input is symmetric to tolerance `tol` (relative to its largest entry).
pub fn pack_symmetric(dense: &[f64], n: usize, tol: f64) -> Vec<f64> {
    let amax = dense
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    let mut a = vec![0.0; packed_len(n)];
    for i in 0..n {
        for j in 0..=i {
            let lo = dense[i * n + j];
            let hi = dense[j * n + i];
            assert!(
                (lo - hi).abs() <= tol * amax,
                "matrix not symmetric at ({i},{j}): {lo} vs {hi}"
            );
            a[packed_idx(i, j)] = 0.5 * (lo + hi);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        // deterministic symmetric test matrix in packed form
        (0..packed_len(n))
            .map(|k| ((k * 7919 + 13) % 101) as f64 / 10.0 - 5.0)
            .collect()
    }

    #[test]
    fn packed_index_roundtrip() {
        let n = 30;
        let mut seen = vec![false; packed_len(n)];
        for i in 0..n {
            for j in 0..=i {
                let k = packed_idx(i, j);
                assert_eq!(k, packed_idx(j, i));
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matvec_matches_dense() {
        let n = 18;
        let a = sample(n);
        let d = unpack_dense(&a, n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![1.0; n]; // nonzero initial: matvec must ADD
        sym_matvec_add(&a, &x, &mut y1, n);
        let mut y2 = vec![1.0; n];
        for i in 0..n {
            for j in 0..n {
                y2[i] += d[i * n + j] * x[j];
            }
        }
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-10, "{} vs {}", y1[i], y2[i]);
        }
    }

    #[test]
    fn fused_two_matrix_matvec() {
        let n = 10;
        let a = sample(n);
        let b: Vec<f64> = sample(n).iter().map(|v| v * 0.5 + 1.0).collect();
        let x: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let (ca, cb) = (2.5, -0.75);
        let mut y1 = vec![0.0; n];
        sym2_matvec_add(ca, &a, cb, &b, &x, &mut y1, n);
        // reference: scale-add then single matvec
        let m: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(&ai, &bi)| ca * ai + cb * bi)
            .collect();
        let mut y2 = vec![0.0; n];
        sym_matvec_add(&m, &x, &mut y2, n);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_rhs_matches_single() {
        const R: usize = 4;
        let n = 30;
        let a = sample(n);
        let b: Vec<f64> = sample(n).iter().map(|v| v * -0.3 + 0.1).collect();
        let (ca, cb) = (1.3, 0.9);
        // interleaved input
        let x: Vec<f64> = (0..n * R)
            .map(|k| ((k * 31 + 7) % 17) as f64 * 0.1)
            .collect();
        let mut y = vec![0.0; n * R];
        sym2_matvec_add_multi::<R>(ca, &a, cb, &b, &x, &mut y, n);
        for r in 0..R {
            let xr: Vec<f64> = (0..n).map(|i| x[i * R + r]).collect();
            let mut yr = vec![0.0; n];
            sym2_matvec_add(ca, &a, cb, &b, &xr, &mut yr, n);
            for i in 0..n {
                assert!((y[i * R + r] - yr[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn f32_storage_matches_f64_to_single_precision() {
        const R: usize = 2;
        let n = 30;
        let a = sample(n);
        let b: Vec<f64> = sample(n).iter().map(|v| v * 0.7 - 0.2).collect();
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let (ca, cb) = (1.7, -0.4);
        let x: Vec<f64> = (0..n * R)
            .map(|k| ((k * 13 + 5) % 23) as f64 * 0.05 - 0.5)
            .collect();
        let mut y64 = vec![0.0; n * R];
        let mut y32 = vec![0.0; n * R];
        sym2_matvec_add_multi::<R>(ca, &a, cb, &b, &x, &mut y64, n);
        sym2_matvec_add_multi_f32::<R>(ca, &a32, cb, &b32, &x, &mut y32, n);
        let scale = y64.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for k in 0..n * R {
            assert!(
                (y64[k] - y32[k]).abs() < 1e-5 * scale,
                "slot {k}: {} vs {}",
                y64[k],
                y32[k]
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let n = 7;
        let a = sample(n);
        let d = unpack_dense(&a, n);
        let a2 = pack_symmetric(&d, n, 1e-14);
        assert_eq!(a, a2);
    }

    #[test]
    #[should_panic]
    fn pack_rejects_asymmetric() {
        let n = 3;
        let mut d = unpack_dense(&sample(n), n);
        d[1] += 1.0; // break symmetry
        pack_symmetric(&d, n, 1e-12);
    }
}
