//! 3×3 Block Compressed Row Storage — the paper's baseline matrix format.
//!
//! The target problem has 3 DOFs per node, so the natural block size is 3×3
//! (the paper uses "3×3 block CRS, which is a standard method for storing
//! matrices in memory"). Blocks are stored row-major (`[f64; 9]`), block
//! columns sorted ascending within each block row.

use rayon::prelude::*;

use crate::op::{KernelCounts, LinearOperator};

/// 3×3 block CRS sparse matrix.
#[derive(Debug, Clone)]
pub struct Bcrs3 {
    /// Number of block rows (= nodes).
    pub n_brows: usize,
    /// Block-row pointers into `cols`/`blocks` (`n_brows + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Block-column indices, sorted within each row.
    pub cols: Vec<u32>,
    /// 3×3 blocks, row-major.
    pub blocks: Vec<[f64; 9]>,
    /// Run SpMV with rayon across block rows.
    pub parallel: bool,
}

impl Bcrs3 {
    /// Number of stored blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of scalar rows/cols.
    pub fn n(&self) -> usize {
        3 * self.n_brows
    }

    /// Bytes of the stored matrix (blocks + indices), the quantity the
    /// paper's Table 3 reports as CRS memory usage.
    pub fn bytes(&self) -> usize {
        self.blocks.len() * 72 + self.cols.len() * 4 + self.row_ptr.len() * 8
    }

    /// Diagonal 3×3 blocks (for the block-Jacobi preconditioner). Rows
    /// without a stored diagonal block yield zeros.
    pub fn diagonal_blocks(&self) -> Vec<[f64; 9]> {
        let mut out = vec![[0.0; 9]; self.n_brows];
        for br in 0..self.n_brows {
            for k in self.row_ptr[br]..self.row_ptr[br + 1] {
                if self.cols[k] as usize == br {
                    out[br] = self.blocks[k];
                }
            }
        }
        out
    }

    fn spmv_row(&self, br: usize, x: &[f64], y: &mut [f64; 3]) {
        let mut acc = [0.0f64; 3];
        for k in self.row_ptr[br]..self.row_ptr[br + 1] {
            let b = &self.blocks[k];
            let xc = 3 * self.cols[k] as usize;
            let (x0, x1, x2) = (x[xc], x[xc + 1], x[xc + 2]);
            acc[0] += b[0] * x0 + b[1] * x1 + b[2] * x2;
            acc[1] += b[3] * x0 + b[4] * x1 + b[5] * x2;
            acc[2] += b[6] * x0 + b[7] * x1 + b[8] * x2;
        }
        *y = acc;
    }
}

impl LinearOperator for Bcrs3 {
    fn n(&self) -> usize {
        3 * self.n_brows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n());
        debug_assert_eq!(y.len(), self.n());
        if self.parallel {
            y.par_chunks_exact_mut(3).enumerate().for_each(|(br, yc)| {
                let mut acc = [0.0; 3];
                self.spmv_row(br, x, &mut acc);
                yc.copy_from_slice(&acc);
            });
        } else {
            for br in 0..self.n_brows {
                let mut acc = [0.0; 3];
                self.spmv_row(br, x, &mut acc);
                y[3 * br..3 * br + 3].copy_from_slice(&acc);
            }
        }
    }

    fn counts(&self) -> KernelCounts {
        let nnzb = self.nnz_blocks() as f64;
        let rows = self.n_brows as f64;
        KernelCounts {
            // 9 multiplies + 9 adds per block
            flops: 18.0 * nnzb,
            // blocks (72 B) + column indices (4 B) streamed; y written
            // (24 B/row); row pointers streamed
            bytes_stream: nnzb * 76.0 + rows * 24.0 + self.row_ptr.len() as f64 * 8.0,
            // x gathered by block column; node reuse keeps most gathers in
            // cache, so DRAM traffic ~ 2x the x footprint
            bytes_rand: 2.0 * rows * 24.0,
            rand_transactions: nnzb,
            rhs_fused: 1,
        }
    }
}

/// Incremental builder accumulating (block-row, block-col) → 3×3 sums.
#[derive(Debug)]
pub struct BcrsBuilder {
    n_brows: usize,
    rows: Vec<Vec<(u32, [f64; 9])>>,
}

impl BcrsBuilder {
    pub fn new(n_brows: usize) -> Self {
        BcrsBuilder {
            n_brows,
            rows: vec![Vec::new(); n_brows],
        }
    }

    /// Add (accumulate) a 3×3 block at block position `(i, j)`.
    pub fn add_block(&mut self, i: u32, j: u32, blk: &[f64; 9]) {
        debug_assert!((i as usize) < self.n_brows && (j as usize) < self.n_brows);
        self.rows[i as usize].push((j, *blk));
    }

    /// Finalize: sort and merge duplicate block coordinates.
    pub fn finish(self, parallel: bool) -> Bcrs3 {
        let mut row_ptr = Vec::with_capacity(self.n_brows + 1);
        let mut cols = Vec::new();
        let mut blocks: Vec<[f64; 9]> = Vec::new();
        row_ptr.push(0);
        for mut row in self.rows {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut it = row.into_iter();
            if let Some((c0, b0)) = it.next() {
                cols.push(c0);
                blocks.push(b0);
                for (c, b) in it {
                    if *cols.last().unwrap() == c {
                        let last = blocks.last_mut().unwrap();
                        for k in 0..9 {
                            last[k] += b[k];
                        }
                    } else {
                        cols.push(c);
                        blocks.push(b);
                    }
                }
            }
            row_ptr.push(cols.len());
        }
        Bcrs3 {
            n_brows: self.n_brows,
            row_ptr,
            cols,
            blocks,
            parallel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix(parallel: bool) -> Bcrs3 {
        // 2x2 block grid: [[A, B], [B^T, C]] with simple blocks
        let a = [2.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0];
        let b = [0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let bt = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0];
        let c = [3.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 3.0];
        let mut bl = BcrsBuilder::new(2);
        bl.add_block(0, 0, &a);
        bl.add_block(0, 1, &b);
        bl.add_block(1, 0, &bt);
        bl.add_block(1, 1, &c);
        bl.finish(parallel)
    }

    #[test]
    fn spmv_matches_dense() {
        let m = small_matrix(false);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut y = vec![0.0; 6];
        m.apply(&x, &mut y);
        // row block 0: A*x0 + B*x1 = [2,4,6] + [5,6,4] = [7,10,10]
        assert_eq!(&y[..3], &[7.0, 10.0, 10.0]);
        // row block 1: B^T*x0 + C*x1 = [3,1,2] + [12,15,18] = [15,16,20]
        assert_eq!(&y[3..], &[15.0, 16.0, 20.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mseq = small_matrix(false);
        let mpar = small_matrix(true);
        let x: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.0; 6];
        let mut y2 = vec![0.0; 6];
        mseq.apply(&x, &mut y1);
        mpar.apply(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn builder_merges_duplicates() {
        let mut b = BcrsBuilder::new(1);
        let one = [1.0; 9];
        b.add_block(0, 0, &one);
        b.add_block(0, 0, &one);
        let m = b.finish(false);
        assert_eq!(m.nnz_blocks(), 1);
        assert!(m.blocks[0].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn empty_rows_are_allowed() {
        let mut b = BcrsBuilder::new(3);
        b.add_block(2, 2, &[1.0; 9]);
        let m = b.finish(false);
        assert_eq!(m.row_ptr, vec![0, 0, 0, 1]);
        let mut y = vec![0.0; 9];
        m.apply(&[1.0; 9], &mut y);
        assert!(y[..6].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn diagonal_block_extraction() {
        let m = small_matrix(false);
        let d = m.diagonal_blocks();
        assert_eq!(d[0][0], 2.0);
        assert_eq!(d[1][0], 3.0);
    }

    #[test]
    fn counts_are_consistent() {
        let m = small_matrix(false);
        let c = m.counts();
        assert_eq!(c.flops, 18.0 * 4.0);
        assert!(c.bytes_stream > 0.0 && c.bytes_rand > 0.0);
        assert_eq!(c.rand_transactions, 4.0);
        assert_eq!(c.rhs_fused, 1);
        assert!(m.bytes() > 0);
    }
}
