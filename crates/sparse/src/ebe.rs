//! Element-by-Element (EBE) matrix-free operator — the paper's Eq. (2)/(8):
//!
//! `q = Σ_e Pᵉᵀ ( (c_M M_e + c_K K_e) (Pᵉ p) ) + Σ_f Pᶠᵀ ( c_B C_f (Pᶠ p) )`
//!
//! The global matrix is never assembled; each apply gathers the element's 30
//! (or face's 18) entries of `p` (a random access), applies the fused packed
//! symmetric kernel, and scatters back. With `R` fused right-hand sides
//! (Eq. (9), `EBE4` for R=4), each random access transaction serves `R`
//! values, cutting the random traffic per case by `1/R` — the effect the
//! paper measures as a further 1.91× kernel speedup.
//!
//! Parallel scatter uses element coloring: all elements of one color touch
//! disjoint node sets, so a color's scatters are race-free by construction
//! (validated by `mesh::coloring::verify_coloring`) and can run without
//! atomics — the standard strategy of GPU EBE kernels (paper ref. [4]).

use hetsolve_mesh::{validate_groups, Coloring};
use rayon::prelude::*;

use crate::dirichlet::FixedMask;
use crate::op::{KernelCounts, LinearOperator, MultiOperator};
use crate::parcheck::ColorScatter;
use crate::sym::{sym2_matvec_add, sym2_matvec_add_multi, sym_matvec_add};

/// Packed sizes.
const TP: usize = 465; // Tet10: 30x30
const FP: usize = 171; // Tri6: 18x18

/// Borrowed EBE data: connectivity + packed element/face matrices with the
/// linear-combination coefficients of the represented operator.
#[derive(Clone)]
pub struct EbeData<'a> {
    pub n_nodes: usize,
    pub elems: &'a [[u32; 10]],
    /// Flat packed M_e (stride 465).
    pub me: &'a [f64],
    /// Flat packed K_e (stride 465).
    pub ke: &'a [f64],
    /// Boundary dashpot faces (may be empty).
    pub faces: &'a [[u32; 6]],
    /// Flat packed C_f (stride 171).
    pub cb: &'a [f64],
    /// Operator = `c_m * M + c_k * K + c_b * C_b`.
    pub c_m: f64,
    pub c_k: f64,
    pub c_b: f64,
    /// Per-DOF Dirichlet mask (empty = unconstrained). Output rows of fixed
    /// DOFs are overwritten with the input value (identity on the fixed
    /// subspace), matching the assembled Dirichlet treatment.
    pub fixed: &'a [bool],
}

impl<'a> EbeData<'a> {
    fn n(&self) -> usize {
        3 * self.n_nodes
    }

    /// The shared Dirichlet semantics (`P A P + (I−P)`): inputs read as
    /// zero on fixed DOFs, outputs get the identity rows back. See
    /// [`crate::dirichlet`].
    fn mask(&self) -> FixedMask<'a> {
        FixedMask::new(self.fixed)
    }

    fn fix_output(&self, x: &[f64], y: &mut [f64]) {
        self.mask().fix_output(x, y);
    }

    fn fix_output_multi(&self, x: &[f64], y: &mut [f64], r: usize) {
        self.mask().fix_output_multi(x, y, r);
    }

    #[inline]
    fn masked(&self, dof: usize, v: f64) -> f64 {
        self.mask().masked(dof, v)
    }
}

/// The single-RHS EBE operator.
pub struct EbeOperator<'a> {
    pub data: EbeData<'a>,
    /// Element coloring (same mesh as `data.elems`).
    pub coloring: &'a Coloring,
    /// Face coloring groups (computed for the dashpot faces).
    pub face_groups: Vec<Vec<u32>>,
    /// Use rayon within each color.
    pub parallel: bool,
}

/// Greedy coloring of faces by shared nodes (same invariant as element
/// coloring, for the dashpot scatter).
pub fn color_faces(n_nodes: usize, faces: &[[u32; 6]]) -> Vec<Vec<u32>> {
    let mut node_last: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for (f, fc) in faces.iter().enumerate() {
        for &n in fc {
            node_last[n as usize].push(f as u32);
        }
    }
    let mut color = vec![u32::MAX; faces.len()];
    let mut n_colors = 0u32;
    let mut forbidden: Vec<u32> = Vec::new();
    for f in 0..faces.len() {
        for &n in &faces[f] {
            for &o in &node_last[n as usize] {
                let c = color[o as usize];
                if c != u32::MAX {
                    if c as usize >= forbidden.len() {
                        forbidden.resize(c as usize + 1, u32::MAX);
                    }
                    forbidden[c as usize] = f as u32;
                }
            }
        }
        let c = (0..n_colors)
            .find(|&c| forbidden.get(c as usize).copied() != Some(f as u32))
            .unwrap_or_else(|| {
                n_colors += 1;
                n_colors - 1
            });
        color[f] = c;
    }
    let mut groups = vec![Vec::new(); n_colors as usize];
    for (f, &c) in color.iter().enumerate() {
        groups[c as usize].push(f as u32);
    }
    groups
}

impl<'a> EbeOperator<'a> {
    pub fn new(data: EbeData<'a>, coloring: &'a Coloring, parallel: bool) -> Self {
        assert_eq!(
            coloring.color.len(),
            data.elems.len(),
            "coloring does not match mesh"
        );
        // Race-freedom precondition of the colored scatter (see
        // `parcheck`): checked once per operator, O(node incidences).
        if let Err(c) = validate_groups(data.n_nodes, data.elems, &coloring.groups) {
            panic!("EbeOperator::new: element {c}");
        }
        let face_groups = color_faces(data.n_nodes, data.faces);
        if let Err(c) = validate_groups(data.n_nodes, data.faces, &face_groups) {
            panic!("EbeOperator::new: face {c}");
        }
        EbeOperator {
            data,
            coloring,
            face_groups,
            parallel,
        }
    }

    /// Diagonal 3×3 blocks of the represented operator (for block-Jacobi),
    /// with identity blocks on fully-fixed nodes.
    pub fn diagonal_blocks(&self) -> Vec<[f64; 9]> {
        let d = &self.data;
        let mut out = vec![[0.0f64; 9]; d.n_nodes];
        let pidx = crate::sym::packed_idx;
        for (e, el) in d.elems.iter().enumerate() {
            let me = &d.me[e * TP..(e + 1) * TP];
            let ke = &d.ke[e * TP..(e + 1) * TP];
            for (k, &n) in el.iter().enumerate() {
                let blk = &mut out[n as usize];
                for a in 0..3 {
                    for b in 0..3 {
                        let p = pidx(3 * k + a, 3 * k + b);
                        blk[3 * a + b] += d.c_m * me[p] + d.c_k * ke[p];
                    }
                }
            }
        }
        for (f, fc) in d.faces.iter().enumerate() {
            let cb = &d.cb[f * FP..(f + 1) * FP];
            for (k, &n) in fc.iter().enumerate() {
                let blk = &mut out[n as usize];
                for a in 0..3 {
                    for b in 0..3 {
                        blk[3 * a + b] += d.c_b * cb[pidx(3 * k + a, 3 * k + b)];
                    }
                }
            }
        }
        // Dirichlet: identity block on fixed DOFs (off-diagonal couplings
        // within a partially fixed node are zeroed).
        if !d.fixed.is_empty() {
            for n in 0..d.n_nodes {
                for a in 0..3 {
                    if d.fixed[3 * n + a] {
                        let blk = &mut out[n];
                        for b in 0..3 {
                            blk[3 * a + b] = if a == b { 1.0 } else { 0.0 };
                            blk[3 * b + a] = if a == b { 1.0 } else { 0.0 };
                        }
                    }
                }
            }
        }
        out
    }

    /// Sequential reference apply (used by tests to validate the parallel
    /// colored scatter).
    pub fn apply_seq(&self, x: &[f64], y: &mut [f64]) {
        let d = &self.data;
        y.fill(0.0);
        let mut xg = [0.0f64; 30];
        let mut yl = [0.0f64; 30];
        for (e, el) in d.elems.iter().enumerate() {
            for (k, &n) in el.iter().enumerate() {
                for a in 0..3 {
                    xg[3 * k + a] = d.masked(3 * n as usize + a, x[3 * n as usize + a]);
                }
            }
            yl.fill(0.0);
            sym2_matvec_add(
                d.c_m,
                &d.me[e * TP..(e + 1) * TP],
                d.c_k,
                &d.ke[e * TP..(e + 1) * TP],
                &xg,
                &mut yl,
                30,
            );
            for (k, &n) in el.iter().enumerate() {
                for a in 0..3 {
                    y[3 * n as usize + a] += yl[3 * k + a];
                }
            }
        }
        let mut xf = [0.0f64; 18];
        let mut yf = [0.0f64; 18];
        for (f, fc) in d.faces.iter().enumerate() {
            if d.c_b == 0.0 {
                break;
            }
            for (k, &n) in fc.iter().enumerate() {
                for a in 0..3 {
                    xf[3 * k + a] = d.masked(3 * n as usize + a, x[3 * n as usize + a]);
                }
            }
            yf.fill(0.0);
            sym_matvec_add(&d.cb[f * FP..(f + 1) * FP], &xf, &mut yf, 18);
            for (k, &n) in fc.iter().enumerate() {
                for a in 0..3 {
                    y[3 * n as usize + a] += d.c_b * yf[3 * k + a];
                }
            }
        }
        d.fix_output(x, y);
    }

    fn apply_colored(&self, x: &[f64], y: &mut [f64]) {
        let d = &self.data;
        y.fill(0.0);
        let mut scatter = ColorScatter::new(y);
        for group in &self.coloring.groups {
            scatter.begin_color();
            let scatter = &scatter;
            group.par_iter().for_each(|&e| {
                let eid = e;
                let e = e as usize;
                let el = &d.elems[e];
                let mut xg = [0.0f64; 30];
                let mut yl = [0.0f64; 30];
                for (k, &n) in el.iter().enumerate() {
                    for a in 0..3 {
                        xg[3 * k + a] = d.masked(3 * n as usize + a, x[3 * n as usize + a]);
                    }
                }
                sym2_matvec_add(
                    d.c_m,
                    &d.me[e * TP..(e + 1) * TP],
                    d.c_k,
                    &d.ke[e * TP..(e + 1) * TP],
                    &xg,
                    &mut yl,
                    30,
                );
                // SAFETY: elements in `group` share no nodes (coloring
                // invariant, validated in `new`), so these writes are
                // disjoint within the color pass.
                unsafe {
                    for (k, &n) in el.iter().enumerate() {
                        for a in 0..3 {
                            scatter.add(eid, 3 * n as usize + a, yl[3 * k + a]);
                        }
                    }
                }
            });
        }
        if d.c_b != 0.0 {
            for group in &self.face_groups {
                scatter.begin_color();
                let scatter = &scatter;
                group.par_iter().for_each(|&f| {
                    let fid = f;
                    let f = f as usize;
                    let fc = &d.faces[f];
                    let mut xf = [0.0f64; 18];
                    let mut yf = [0.0f64; 18];
                    for (k, &n) in fc.iter().enumerate() {
                        for a in 0..3 {
                            xf[3 * k + a] = d.masked(3 * n as usize + a, x[3 * n as usize + a]);
                        }
                    }
                    sym_matvec_add(&d.cb[f * FP..(f + 1) * FP], &xf, &mut yf, 18);
                    // SAFETY: same disjointness argument via the face
                    // coloring (validated in `new`).
                    unsafe {
                        for (k, &n) in fc.iter().enumerate() {
                            for a in 0..3 {
                                scatter.add(fid, 3 * n as usize + a, d.c_b * yf[3 * k + a]);
                            }
                        }
                    }
                });
            }
        }
        drop(scatter);
        d.fix_output(x, y);
    }
}

impl LinearOperator for EbeOperator<'_> {
    fn n(&self) -> usize {
        self.data.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n());
        debug_assert_eq!(y.len(), self.n());
        if self.parallel {
            self.apply_colored(x, y);
        } else {
            self.apply_seq(x, y);
        }
    }

    fn counts(&self) -> KernelCounts {
        ebe_counts(
            self.data.elems.len(),
            self.data.faces.len(),
            self.data.n(),
            1,
        )
    }
}

/// Analytic cost of one cached-matrix EBE apply with `r` fused RHS.
///
/// `n_dofs` sizes the cache-filtered random traffic (gathers/scatters hit
/// the x/q footprint ~twice at DRAM level thanks to node reuse in cache).
pub fn ebe_counts(n_elems: usize, n_faces: usize, n_dofs: usize, r: usize) -> KernelCounts {
    let rf = r as f64;
    let (ne, nf) = (n_elems as f64, n_faces as f64);
    KernelCounts {
        // per element: 465 fused combines (2 mul + 1 add) + packed symmetric
        // matvec: off-diagonals used twice (4 flops each per RHS), diagonals
        // once (2 flops per RHS) => 1395 + (4*435 + 2*30) r = 1395 + 1800 r.
        // per face: 171 loads (no combine) -> 4*153 + 2*18 = 648 r flops.
        flops: ne * (1395.0 + 1800.0 * rf) + nf * 648.0 * rf,
        // element matrices streamed once per apply regardless of r.
        bytes_stream: ne * (2.0 * 465.0 * 8.0 + 40.0) + nf * (171.0 * 8.0 + 24.0),
        // x read + q written once per sweep at DRAM level (cache-filtered),
        // x2 miss factor.
        bytes_rand: 2.0 * 2.0 * n_dofs as f64 * 8.0 * rf,
        // one gather + one scatter transaction per nodal slot.
        rand_transactions: 2.0 * (ne * 30.0 + nf * 18.0),
        rhs_fused: r,
    }
}

/// The multi-RHS EBE operator (`EBE-R`): applies the same operator to `R`
/// interleaved right-hand sides, amortizing every random access.
pub struct EbeMultiOperator<'a> {
    pub inner: EbeOperator<'a>,
    pub r: usize,
}

impl<'a> EbeMultiOperator<'a> {
    pub fn new(data: EbeData<'a>, coloring: &'a Coloring, parallel: bool, r: usize) -> Self {
        assert!(
            matches!(r, 1 | 2 | 4 | 8),
            "fused RHS count must be 1, 2, 4 or 8 (got {r})"
        );
        EbeMultiOperator {
            inner: EbeOperator::new(data, coloring, parallel),
            r,
        }
    }

    fn apply_group<const R: usize>(&self, elems: &[u32], x: &[f64], scatter: &ColorScatter) {
        let d = &self.inner.data;
        let body = move |&e: &u32| {
            let eid = e;
            let e = e as usize;
            let el = &d.elems[e];
            let mut xg = [0.0f64; 240]; // 30 * R_max
            let mut yl = [0.0f64; 240];
            let xg = &mut xg[..30 * R];
            let yl = &mut yl[..30 * R];
            for (k, &n) in el.iter().enumerate() {
                for a in 0..3 {
                    let dof = 3 * n as usize + a;
                    for c in 0..R {
                        xg[(3 * k + a) * R + c] = d.masked(dof, x[dof * R + c]);
                    }
                }
            }
            yl.fill(0.0);
            sym2_matvec_add_multi::<R>(
                d.c_m,
                &d.me[e * TP..(e + 1) * TP],
                d.c_k,
                &d.ke[e * TP..(e + 1) * TP],
                xg,
                yl,
                30,
            );
            // SAFETY: same-color elements share no nodes (validated at
            // construction), so per-pass writes are disjoint.
            unsafe {
                for (k, &n) in el.iter().enumerate() {
                    for a in 0..3 {
                        let dof = 3 * n as usize + a;
                        for c in 0..R {
                            scatter.add(eid, dof * R + c, yl[(3 * k + a) * R + c]);
                        }
                    }
                }
            }
        };
        if self.inner.parallel {
            elems.par_iter().for_each(body);
        } else {
            elems.iter().for_each(body);
        }
    }

    fn apply_face_group<const R: usize>(&self, faces: &[u32], x: &[f64], scatter: &ColorScatter) {
        let d = &self.inner.data;
        let body = move |&f: &u32| {
            let fid = f;
            let f = f as usize;
            let fc = &d.faces[f];
            let mut xg = [0.0f64; 144]; // 18 * R_max
            let mut yl = [0.0f64; 144];
            let xg = &mut xg[..18 * R];
            let yl = &mut yl[..18 * R];
            for (k, &n) in fc.iter().enumerate() {
                for a in 0..3 {
                    let dof = 3 * n as usize + a;
                    for c in 0..R {
                        xg[(3 * k + a) * R + c] = d.masked(dof, x[dof * R + c]);
                    }
                }
            }
            yl.fill(0.0);
            // single-matrix fused kernel: use sym2 with zero second matrix
            sym2_matvec_add_multi::<R>(
                d.c_b,
                &d.cb[f * FP..(f + 1) * FP],
                0.0,
                &d.cb[f * FP..(f + 1) * FP],
                xg,
                yl,
                18,
            );
            // SAFETY: same-color faces share no nodes (validated at
            // construction), so per-pass writes are disjoint.
            unsafe {
                for (k, &n) in fc.iter().enumerate() {
                    for a in 0..3 {
                        let dof = 3 * n as usize + a;
                        for c in 0..R {
                            scatter.add(fid, dof * R + c, yl[(3 * k + a) * R + c]);
                        }
                    }
                }
            }
        };
        if self.inner.parallel {
            faces.par_iter().for_each(body);
        } else {
            faces.iter().for_each(body);
        }
    }

    fn apply_r<const R: usize>(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        let mut scatter = ColorScatter::new(y);
        for group in &self.inner.coloring.groups {
            scatter.begin_color();
            self.apply_group::<R>(group, x, &scatter);
        }
        if self.inner.data.c_b != 0.0 {
            for group in &self.inner.face_groups {
                scatter.begin_color();
                self.apply_face_group::<R>(group, x, &scatter);
            }
        }
        drop(scatter);
        self.inner.data.fix_output_multi(x, y, R);
    }
}

impl MultiOperator for EbeMultiOperator<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn r(&self) -> usize {
        self.r
    }

    fn apply_multi(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n() * self.r);
        debug_assert_eq!(y.len(), self.n() * self.r);
        match self.r {
            1 => self.apply_r::<1>(x, y),
            2 => self.apply_r::<2>(x, y),
            4 => self.apply_r::<4>(x, y),
            8 => self.apply_r::<8>(x, y),
            _ => unreachable!("validated in constructor"),
        }
    }

    fn counts(&self) -> KernelCounts {
        ebe_counts(
            self.inner.data.elems.len(),
            self.inner.data.faces.len(),
            self.inner.n(),
            self.r,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_global;
    use hetsolve_mesh::{color_elements, GroundModelSpec, InterfaceShape};

    struct Fixture {
        n_nodes: usize,
        elems: Vec<[u32; 10]>,
        me: Vec<f64>,
        ke: Vec<f64>,
        faces: Vec<[u32; 6]>,
        cb: Vec<f64>,
        fixed: Vec<bool>,
        coloring: hetsolve_mesh::Coloring,
    }

    /// Deterministic synthetic element data on a real small ground mesh:
    /// we need valid connectivity + coloring, but the matrix values can be
    /// arbitrary symmetric data (tests compare EBE vs assembled CRS).
    fn fixture(with_fixed: bool) -> Fixture {
        let gm = GroundModelSpec::paper_like(3, 3, 2, InterfaceShape::Stratified).build();
        let mesh = gm.mesh;
        let coloring = color_elements(&mesh);
        let ne = mesh.n_elems();
        let n_nodes = mesh.n_nodes();
        let mut me = vec![0.0; ne * TP];
        let mut ke = vec![0.0; ne * TP];
        let mut s: u64 = 12345;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        for v in me.iter_mut() {
            *v = next();
        }
        for v in ke.iter_mut() {
            *v = next();
        }
        // a few fake faces over the first elements' first 6 nodes
        let mut faces = Vec::new();
        let mut cb = Vec::new();
        for e in 0..4usize {
            let el = &mesh.elems[e];
            faces.push([el[0], el[1], el[2], el[4], el[5], el[6]]);
            for _ in 0..FP {
                cb.push(next());
            }
        }
        let mut fixed = vec![false; 3 * n_nodes];
        if with_fixed {
            for (d, f) in fixed.iter_mut().enumerate() {
                *f = d % 17 == 0;
            }
        }
        Fixture {
            n_nodes,
            elems: mesh.elems,
            me,
            ke,
            faces,
            cb,
            fixed,
            coloring,
        }
    }

    fn data<'a>(fx: &'a Fixture, constrained: bool) -> EbeData<'a> {
        EbeData {
            n_nodes: fx.n_nodes,
            elems: &fx.elems,
            me: &fx.me,
            ke: &fx.ke,
            faces: &fx.faces,
            cb: &fx.cb,
            c_m: 2.5,
            c_k: 1.25,
            c_b: 0.5,
            fixed: if constrained { &fx.fixed } else { &[] },
        }
    }

    fn test_vec(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.618).sin()).collect()
    }

    #[test]
    fn seq_matches_assembled_crs() {
        let fx = fixture(false);
        let d = data(&fx, false);
        let op = EbeOperator::new(d.clone(), &fx.coloring, false);
        let crs = assemble_global(
            fx.n_nodes,
            &fx.elems,
            &fx.me,
            &fx.ke,
            d.c_m,
            d.c_k,
            &fx.faces,
            &fx.cb,
            d.c_b,
            &[],
            false,
        );
        let x = test_vec(op.n());
        let mut y1 = vec![0.0; op.n()];
        let mut y2 = vec![0.0; op.n()];
        op.apply(&x, &mut y1);
        crs.apply(&x, &mut y2);
        let scale = y2.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for i in 0..y1.len() {
            assert!(
                (y1[i] - y2[i]).abs() < 1e-10 * scale,
                "dof {i}: {} vs {}",
                y1[i],
                y2[i]
            );
        }
    }

    #[test]
    fn colored_parallel_matches_seq() {
        let fx = fixture(false);
        let d = data(&fx, false);
        let op_seq = EbeOperator::new(d.clone(), &fx.coloring, false);
        let op_par = EbeOperator::new(d, &fx.coloring, true);
        let x = test_vec(op_seq.n());
        let mut y1 = vec![0.0; op_seq.n()];
        let mut y2 = vec![0.0; op_seq.n()];
        op_seq.apply(&x, &mut y1);
        op_par.apply(&x, &mut y2);
        for i in 0..y1.len() {
            assert!((y1[i] - y2[i]).abs() < 1e-12, "dof {i}");
        }
    }

    #[test]
    fn constrained_matches_assembled_dirichlet() {
        let fx = fixture(true);
        let d = data(&fx, true);
        let op = EbeOperator::new(d.clone(), &fx.coloring, true);
        let crs = assemble_global(
            fx.n_nodes, &fx.elems, &fx.me, &fx.ke, d.c_m, d.c_k, &fx.faces, &fx.cb, d.c_b,
            &fx.fixed, false,
        );
        let x = test_vec(op.n());
        let mut y1 = vec![0.0; op.n()];
        let mut y2 = vec![0.0; op.n()];
        op.apply(&x, &mut y1);
        crs.apply(&x, &mut y2);
        let scale = y2.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for i in 0..y1.len() {
            assert!(
                (y1[i] - y2[i]).abs() < 1e-10 * scale,
                "dof {i}: {} vs {}",
                y1[i],
                y2[i]
            );
        }
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let fx = fixture(true);
        let d = data(&fx, true);
        let single = EbeOperator::new(d.clone(), &fx.coloring, false);
        let n = single.n();
        for r in [1usize, 2, 4, 8] {
            let multi = EbeMultiOperator::new(d.clone(), &fx.coloring, true, r);
            let mut x = vec![0.0; n * r];
            for c in 0..r {
                for i in 0..n {
                    x[i * r + c] = ((i * (c + 2)) as f64 * 0.37).cos();
                }
            }
            let mut y = vec![0.0; n * r];
            multi.apply_multi(&x, &mut y);
            for c in 0..r {
                let xc: Vec<f64> = (0..n).map(|i| x[i * r + c]).collect();
                let mut yc = vec![0.0; n];
                single.apply(&xc, &mut yc);
                for i in 0..n {
                    assert!(
                        (y[i * r + c] - yc[i]).abs() < 1e-10,
                        "r={r} case {c} dof {i}: {} vs {}",
                        y[i * r + c],
                        yc[i]
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_blocks_match_assembled() {
        let fx = fixture(true);
        let d = data(&fx, true);
        let op = EbeOperator::new(d.clone(), &fx.coloring, false);
        let crs = assemble_global(
            fx.n_nodes, &fx.elems, &fx.me, &fx.ke, d.c_m, d.c_k, &fx.faces, &fx.cb, d.c_b,
            &fx.fixed, false,
        );
        let db_ebe = op.diagonal_blocks();
        let db_crs = crs.diagonal_blocks();
        let scale = db_crs
            .iter()
            .flat_map(|b| b.iter())
            .fold(0.0f64, |m, v| m.max(v.abs()));
        for n in 0..fx.n_nodes {
            for k in 0..9 {
                assert!(
                    (db_ebe[n][k] - db_crs[n][k]).abs() < 1e-10 * scale,
                    "node {n} entry {k}: {} vs {}",
                    db_ebe[n][k],
                    db_crs[n][k]
                );
            }
        }
    }

    #[test]
    fn face_coloring_valid() {
        let fx = fixture(false);
        let groups = color_faces(fx.n_nodes, &fx.faces);
        // all faces covered exactly once
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, fx.faces.len());
        // no two same-group faces share a node
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    let fa = &fx.faces[a as usize];
                    let fb = &fx.faces[b as usize];
                    assert!(fa.iter().all(|n| !fb.contains(n)));
                }
            }
        }
    }

    #[test]
    fn counts_scale_with_r() {
        let c1 = ebe_counts(100, 10, 3000, 1);
        let c4 = ebe_counts(100, 10, 3000, 4);
        // stream bytes identical (matrices read once), random bytes 4x
        assert_eq!(c1.bytes_stream, c4.bytes_stream);
        assert!((c4.bytes_rand / c1.bytes_rand - 4.0).abs() < 1e-12);
        // transactions are independent of r: the amortization effect
        assert_eq!(c1.rand_transactions, c4.rand_transactions);
        // per-case flops drop (the combine is shared across RHS)
        assert!(c4.flops < 4.0 * c1.flops);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_r() {
        let fx = fixture(false);
        let d = data(&fx, false);
        EbeMultiOperator::new(d, &fx.coloring, false, 3);
    }
}
