//! # hetsolve-fault
//!
//! Deterministic fault injection for the `hetsolve` predictor–solver
//! pipeline. The paper's safety argument is that the data-driven initial
//! guess may be arbitrarily wrong because the CG solver refines it to the
//! same tolerance either way; this crate supplies the adversary that puts
//! the claim under test. A seeded [`FaultPlan`] schedules
//!
//! * guess corruption (NaN a fraction of entries, or scale them),
//! * snapshot poisoning (the predictor's correction history),
//! * dropped or delayed modeled halo exchanges,
//! * stalled device lanes on the modeled [`ModuleClock`] timeline,
//! * forced CG iteration-cap exhaustion,
//! * crash points at durable-run step boundaries and torn checkpoint
//!   writes (both one-shot: they fire once, so a resumed run proceeds),
//!
//! and the core drivers consume it through the [`FaultInjector`] trait.
//! [`NoopFaults`] mirrors `NoopObserver`/`StepTracer::disabled()`: a
//! zero-sized type whose hooks are the empty default bodies, so the
//! unfaulted drivers monomorphize to exactly the pre-fault code
//! (bitwise-identity is asserted by `tests/fault_suite.rs`).
//!
//! Determinism: every random choice comes from an internal splitmix64
//! stream keyed by `(plan seed, step, case)`, so one plan replays the same
//! faults bit-for-bit across runs, methods and machines — a failing fault
//! run is always reproducible from its seed.
//!
//! [`ModuleClock`]: https://docs.rs/hetsolve-machine

#![forbid(unsafe_code)]

/// Which modeled device lane a [`LaneFault`] stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLane {
    Cpu,
    Gpu,
}

impl FaultLane {
    pub fn label(&self) -> &'static str {
        match self {
            FaultLane::Cpu => "cpu",
            FaultLane::Gpu => "gpu",
        }
    }
}

/// Corruption applied to a vector (an initial guess or a predictor
/// snapshot). `Copy`, so drivers can query a fault on one thread and apply
/// it on another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorFault {
    /// Overwrite a deterministic ~`frac` fraction of entries with NaN
    /// (at least one entry is always hit). `seed` fixes the pattern.
    Nan { frac: f64, seed: u64 },
    /// Multiply every entry by `factor` — a finite, undetectable
    /// perturbation that degrades the guess without tripping NaN guards.
    Scale { factor: f64 },
}

impl VectorFault {
    /// Apply the corruption in place.
    pub fn apply(&self, v: &mut [f64]) {
        if v.is_empty() {
            return;
        }
        match *self {
            VectorFault::Nan { frac, seed } => {
                let mut state = seed;
                let mut hit = false;
                for x in v.iter_mut() {
                    if unit_f64(splitmix64(&mut state)) < frac {
                        *x = f64::NAN;
                        hit = true;
                    }
                }
                if !hit {
                    let idx = (seed % v.len() as u64) as usize;
                    v[idx] = f64::NAN;
                }
            }
            VectorFault::Scale { factor } => {
                for x in v.iter_mut() {
                    *x *= factor;
                }
            }
        }
    }
}

/// Which state vector of a case a [`FaultKind::StateFlip`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateField {
    /// Displacement `u`.
    U,
    /// Velocity `v`.
    V,
    /// Acceleration `a`.
    A,
}

impl StateField {
    pub fn label(&self) -> &'static str {
        match self {
            StateField::U => "u",
            StateField::V => "v",
            StateField::A => "a",
        }
    }
}

/// A single-bit corruption of one `f64` word — the atom of silent data
/// corruption. The word index and bit position are derived from `seed`,
/// so the same plan flips the same bit across runs; the flip is its own
/// inverse, which the detection tests exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    pub seed: u64,
}

impl BitFlip {
    /// `(word index, bit position)` this flip hits in a buffer of `words`
    /// `f64`s; `None` for an empty buffer. Bits 0–51 land in the
    /// mantissa, 52–62 in the exponent, 63 in the sign — the modulus
    /// walks all of them as seeds vary.
    pub fn target(&self, words: usize) -> Option<(usize, u32)> {
        if words == 0 {
            return None;
        }
        let idx = ((self.seed >> 6) % words as u64) as usize;
        let bit = (self.seed & 63) as u32;
        Some((idx, bit))
    }

    /// Flip the targeted bit in place; returns the `(word, bit)` hit.
    pub fn apply(&self, v: &mut [f64]) -> Option<(usize, u32)> {
        let (idx, bit) = self.target(v.len())?;
        v[idx] = f64::from_bits(v[idx].to_bits() ^ (1u64 << bit));
        Some((idx, bit))
    }
}

/// Failure mode of one modeled halo exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExchangeFault {
    /// The exchange never happens (zero bytes move, zero time charged).
    Drop,
    /// The exchange takes `factor`× the modeled time (link congestion).
    Delay { factor: f64 },
}

/// Stall one device lane of the modeled timeline for `seconds` without
/// doing work (a hung kernel / OS jitter on the modeled machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneFault {
    pub lane: FaultLane,
    pub seconds: f64,
}

/// Cap the CG solver's iteration budget for one step (forces max-iter
/// exhaustion and exercises the recovery ladder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverFault {
    pub max_iter: usize,
}

/// Fault injected into the serving layer's admission decision: the
/// request is turned away even though the real queue had room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionFault {
    /// Reject as if the request were malformed/incompatible.
    Reject,
    /// Shed as if the queue were at capacity (backpressure).
    Shed,
}

/// Forcibly evict an in-flight request from its lane slot at the next
/// time-step boundary (an operator cancel, a watchdog kill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionFault;

/// Tear the checkpoint file that was just written: keep only the leading
/// `keep_frac` of its bytes, simulating a crash mid-write on a filesystem
/// without the atomic-rename guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TornWriteFault {
    pub keep_frac: f64,
}

/// One scheduled (or injected) fault with its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    Guess {
        case: usize,
        fault: VectorFault,
    },
    Snapshot {
        case: usize,
        fault: VectorFault,
    },
    Exchange {
        set: usize,
        fault: ExchangeFault,
    },
    Lane {
        set: usize,
        fault: LaneFault,
    },
    Solver {
        set: usize,
        fault: SolverFault,
    },
    /// Serving-layer admission fault; `index` is the admission sequence
    /// number (the n-th `admit` call), recorded as the step.
    Admission {
        index: usize,
        fault: AdmissionFault,
    },
    /// Serving-layer eviction of request `case` at a step boundary.
    Eviction {
        case: usize,
    },
    /// Process death at the start of durable-run step `step` (one-shot).
    Crash,
    /// Tear the checkpoint written with sequence number `step` (one-shot).
    TornWrite {
        keep_frac: f64,
    },
    /// Whole-node loss in the sharded serving cluster at tick `step`
    /// (one-shot): the node's shard, lanes and in-flight state vanish and
    /// the cluster supervisor must fail over from the peer replica.
    NodeCrash {
        node: usize,
    },
    /// Corrupt the replica of `node`'s checkpoint mirrored with sequence
    /// number `step` — keep only the leading `keep_frac` of its bytes
    /// (one-shot). The failover path must fall back past it.
    ReplicaCorrupt {
        node: usize,
        keep_frac: f64,
    },
    /// Sever the modeled interconnect between nodes `a` and `b` for the
    /// single cluster tick `step` (one-shot, symmetric): replica mirroring
    /// and work stealing across that link are suppressed for the tick.
    LinkPartition {
        a: usize,
        b: usize,
    },
    /// One tenant floods the serving layer with `count` self-admitted
    /// requests at tick `step` (one-shot): the QoS layer's typed sheds and
    /// fair-share scheduling must keep other tenants unharmed.
    TenantBurst {
        tenant: u32,
        count: u32,
    },
    /// Force the autoscaler to drain its highest lane at tick `step` even
    /// under load (one-shot): exercises the scale-down path while columns
    /// are still in flight, as decommissioning a stuck lane would.
    StuckLaneScaledown,
    /// Flip one bit of one word of `case`'s `field` state vector at the
    /// `step` boundary — a memory soft error in solver state. The
    /// integrity layer's state-guard checksum must catch it.
    StateFlip {
        case: usize,
        field: StateField,
        flip: BitFlip,
    },
    /// Flip one bit of `case`'s assembled RHS column at `step`, after
    /// assembly but before it is packed for the solve.
    RhsFlip {
        case: usize,
        flip: BitFlip,
    },
    /// Flip one bit of the immutable operator payload (EBE element data
    /// or CRS block values) as seen from step `step` onward. The ABFT
    /// operator checksum must catch it before the corrupted operator is
    /// applied.
    OperatorFlip {
        flip: BitFlip,
    },
    /// Flip one bit of `case`'s data-driven predictor history (the MGS
    /// basis source) at the `step` boundary.
    BasisFlip {
        case: usize,
        flip: BitFlip,
    },
    /// Flip one bit of the in-memory replica of `node`'s checkpoint
    /// mirrored with sequence number `step` (one-shot) — silent replica
    /// corruption, as opposed to [`FaultKind::ReplicaCorrupt`]'s torn
    /// mirror. The per-section CRC must fail the image on failover.
    ReplicaFlip {
        node: usize,
        flip: BitFlip,
    },
}

/// A fault that actually fired: the step it hit plus what it did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    pub step: usize,
    pub kind: FaultKind,
}

/// Driver-side hooks. Every hook defaults to `None` (no fault), so an
/// injector that overrides nothing — [`NoopFaults`] — compiles out of the
/// hot path entirely. Hooks take `&mut self` so plans can log what fired;
/// drivers must query each hook at most once per (step, target).
pub trait FaultInjector {
    /// Corrupt the initial guess of `case` at `step` (after prediction,
    /// before the solve).
    fn guess_fault(&mut self, _step: usize, _case: usize) -> Option<VectorFault> {
        None
    }

    /// Poison the correction snapshot of `case` recorded at `step` (before
    /// it enters the predictor history).
    fn snapshot_fault(&mut self, _step: usize, _case: usize) -> Option<VectorFault> {
        None
    }

    /// Break the modeled exchange of process set `set` at `step`.
    fn exchange_fault(&mut self, _step: usize, _set: usize) -> Option<ExchangeFault> {
        None
    }

    /// Stall a modeled device lane of process set `set` at `step`.
    fn lane_fault(&mut self, _step: usize, _set: usize) -> Option<LaneFault> {
        None
    }

    /// Cap the solver's iteration budget for process set `set` at `step`
    /// (applies to the first solve attempt only; recovery retries run with
    /// the real configuration).
    fn solver_fault(&mut self, _step: usize, _set: usize) -> Option<SolverFault> {
        None
    }

    /// Fault the serving layer's `index`-th admission decision (0-based
    /// over the server's lifetime).
    fn admission_fault(&mut self, _index: usize) -> Option<AdmissionFault> {
        None
    }

    /// Evict in-flight request `case` at the `step` boundary of the
    /// serving layer's global clock.
    fn eviction_fault(&mut self, _step: usize, _case: usize) -> Option<EvictionFault> {
        None
    }

    /// Kill the process at the `step` boundary of a durable run, *before*
    /// the step executes. One-shot in [`FaultPlan`]: querying the same
    /// boundary again (the resumed run replaying it) returns `false`, so
    /// a resume with the same plan instance proceeds past the crash.
    fn crash_fault(&mut self, _step: usize) -> bool {
        false
    }

    /// Tear the checkpoint file just written with sequence number `seq`.
    /// One-shot in [`FaultPlan`], like [`FaultInjector::crash_fault`].
    fn torn_write_fault(&mut self, _seq: u64) -> Option<TornWriteFault> {
        None
    }

    /// Kill cluster node `node` at cluster tick `tick`, *before* the tick
    /// executes. One-shot like [`FaultInjector::crash_fault`]: a failed-over
    /// shard replaying the same boundary proceeds.
    fn node_crash_fault(&mut self, _tick: usize, _node: usize) -> bool {
        false
    }

    /// Corrupt the peer replica of `node`'s shard checkpoint just mirrored
    /// with sequence number `seq`. One-shot, keyed by `(node, seq)`.
    fn replica_corruption_fault(&mut self, _node: usize, _seq: u64) -> Option<TornWriteFault> {
        None
    }

    /// Partition the modeled link between nodes `a` and `b` for cluster
    /// tick `tick`. Symmetric in `(a, b)` and one-shot: the link heals at
    /// the next tick.
    fn link_partition_fault(&mut self, _tick: usize, _a: usize, _b: usize) -> bool {
        false
    }

    /// Flood the serving layer at tick `tick`: returns `(tenant, count)`
    /// for a burst of self-admitted requests from one tenant (one-shot in
    /// [`FaultPlan`]). The server admits them through the normal QoS path,
    /// so typed sheds are expected — and the point.
    fn tenant_burst_fault(&mut self, _tick: usize) -> Option<(u32, u32)> {
        None
    }

    /// Force the autoscaler to start draining its highest lane at tick
    /// `tick` regardless of load (one-shot in [`FaultPlan`]): the chaos
    /// probe for the scale-down path with columns still in flight.
    fn stuck_scaledown_fault(&mut self, _tick: usize) -> bool {
        false
    }

    /// Flip one bit of one state vector (u/v/a) of `case` at the `step`
    /// boundary, before the step's integrity verification runs.
    fn state_flip_fault(&mut self, _step: usize, _case: usize) -> Option<(StateField, BitFlip)> {
        None
    }

    /// Flip one bit of `case`'s assembled RHS at `step` (after assembly,
    /// before the checksum-verified consume).
    fn rhs_flip_fault(&mut self, _step: usize, _case: usize) -> Option<BitFlip> {
        None
    }

    /// Flip one bit of the run's operator payload as of `step`. The
    /// driver materializes a corrupted shadow of the operator data; the
    /// pristine source stays untouched, mirroring a fault in device
    /// memory with a clean host copy to recover from.
    fn operator_flip_fault(&mut self, _step: usize) -> Option<BitFlip> {
        None
    }

    /// Flip one bit of `case`'s predictor history (MGS basis source) at
    /// the `step` boundary.
    fn basis_flip_fault(&mut self, _step: usize, _case: usize) -> Option<BitFlip> {
        None
    }

    /// Flip one bit of the in-memory replica of `node`'s checkpoint just
    /// mirrored with sequence number `seq`. One-shot, keyed by
    /// `(node, seq)` like [`FaultInjector::replica_corruption_fault`].
    fn replica_flip_fault(&mut self, _node: usize, _seq: u64) -> Option<BitFlip> {
        None
    }
}

/// The zero-cost default: a ZST whose hooks are the empty default bodies.
/// `run(b, cfg)` and a fault-threaded run with `NoopFaults` compile to the
/// same machine code, and the fault suite asserts bitwise-identical
/// results.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopFaults;

impl FaultInjector for NoopFaults {}

/// A seeded, deterministic schedule of faults. Build it with the
/// `at_step`-style methods, hand it to a `run_faulted` driver, then read
/// back [`FaultPlan::injected`] to assert every scheduled fault actually
/// fired.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    planned: Vec<FaultRecord>,
    injected: Vec<FaultRecord>,
    /// Planned entries already consumed by a one-shot hook (crash, torn
    /// write); indexed parallel to `planned`, grown lazily.
    spent: Vec<bool>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            planned: Vec::new(),
            injected: Vec::new(),
            spent: Vec::new(),
        }
    }

    /// Derive the NaN-pattern seed for `(step, case)` — stable across runs.
    fn derive_seed(&self, step: usize, case: usize) -> u64 {
        let mut s = self
            .seed
            .wrapping_add((step as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add((case as u64).wrapping_mul(0xD1B54A32D192ED03));
        splitmix64(&mut s)
    }

    /// NaN ~`frac` of the entries of `case`'s initial guess at `step`.
    pub fn nan_guess(mut self, step: usize, case: usize, frac: f64) -> Self {
        let seed = self.derive_seed(step, case);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Guess {
                case,
                fault: VectorFault::Nan { frac, seed },
            },
        });
        self
    }

    /// Scale `case`'s initial guess by `factor` at `step`.
    pub fn scale_guess(mut self, step: usize, case: usize, factor: f64) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Guess {
                case,
                fault: VectorFault::Scale { factor },
            },
        });
        self
    }

    /// NaN ~`frac` of `case`'s correction snapshot recorded at `step`.
    pub fn nan_snapshot(mut self, step: usize, case: usize, frac: f64) -> Self {
        let seed = self.derive_seed(step, case).rotate_left(17);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Snapshot {
                case,
                fault: VectorFault::Nan { frac, seed },
            },
        });
        self
    }

    /// Scale `case`'s correction snapshot by `factor` at `step`.
    pub fn scale_snapshot(mut self, step: usize, case: usize, factor: f64) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Snapshot {
                case,
                fault: VectorFault::Scale { factor },
            },
        });
        self
    }

    /// Drop set `set`'s modeled exchange at `step`.
    pub fn drop_exchange(mut self, step: usize, set: usize) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Exchange {
                set,
                fault: ExchangeFault::Drop,
            },
        });
        self
    }

    /// Delay set `set`'s modeled exchange by `factor`× at `step`.
    pub fn delay_exchange(mut self, step: usize, set: usize, factor: f64) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Exchange {
                set,
                fault: ExchangeFault::Delay { factor },
            },
        });
        self
    }

    /// Stall a device lane of set `set` for `seconds` at `step`.
    pub fn stall_lane(mut self, step: usize, set: usize, lane: FaultLane, seconds: f64) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Lane {
                set,
                fault: LaneFault { lane, seconds },
            },
        });
        self
    }

    /// Cap the solver at `max_iter` iterations for set `set` at `step`.
    pub fn cap_solver(mut self, step: usize, set: usize, max_iter: usize) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Solver {
                set,
                fault: SolverFault { max_iter },
            },
        });
        self
    }

    /// Reject the serving layer's `index`-th admission.
    pub fn reject_admission(mut self, index: usize) -> Self {
        self.planned.push(FaultRecord {
            step: index,
            kind: FaultKind::Admission {
                index,
                fault: AdmissionFault::Reject,
            },
        });
        self
    }

    /// Shed the serving layer's `index`-th admission (simulated
    /// backpressure).
    pub fn shed_admission(mut self, index: usize) -> Self {
        self.planned.push(FaultRecord {
            step: index,
            kind: FaultKind::Admission {
                index,
                fault: AdmissionFault::Shed,
            },
        });
        self
    }

    /// Evict in-flight request `case` at serving step `step`.
    pub fn evict(mut self, step: usize, case: usize) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Eviction { case },
        });
        self
    }

    /// Kill the process at durable-run step boundary `step` (one-shot:
    /// fires once, so the resumed run proceeds past it).
    pub fn crash_at(mut self, step: usize) -> Self {
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Tear the checkpoint written with sequence number `seq` down to the
    /// leading `keep_frac` of its bytes (one-shot).
    pub fn tear_checkpoint(mut self, seq: u64, keep_frac: f64) -> Self {
        self.planned.push(FaultRecord {
            step: seq as usize,
            kind: FaultKind::TornWrite { keep_frac },
        });
        self
    }

    /// Kill cluster node `node` at cluster tick boundary `tick`
    /// (one-shot: the failed-over shard replays past it).
    pub fn crash_node(mut self, tick: usize, node: usize) -> Self {
        self.planned.push(FaultRecord {
            step: tick,
            kind: FaultKind::NodeCrash { node },
        });
        self
    }

    /// Corrupt the peer replica of `node`'s checkpoint mirrored with
    /// sequence number `seq` down to the leading `keep_frac` of its bytes
    /// (one-shot).
    pub fn corrupt_replica(mut self, node: usize, seq: u64, keep_frac: f64) -> Self {
        self.planned.push(FaultRecord {
            step: seq as usize,
            kind: FaultKind::ReplicaCorrupt { node, keep_frac },
        });
        self
    }

    /// Sever the modeled link between nodes `a` and `b` for cluster tick
    /// `tick` (one-shot, symmetric).
    pub fn partition_link(mut self, tick: usize, a: usize, b: usize) -> Self {
        self.planned.push(FaultRecord {
            step: tick,
            kind: FaultKind::LinkPartition { a, b },
        });
        self
    }

    /// Flood the server with `count` requests from `tenant` at tick `tick`
    /// (one-shot).
    pub fn tenant_burst(mut self, tick: usize, tenant: u32, count: u32) -> Self {
        self.planned.push(FaultRecord {
            step: tick,
            kind: FaultKind::TenantBurst { tenant, count },
        });
        self
    }

    /// Force the autoscaler to drain its highest lane at tick `tick` even
    /// under load (one-shot).
    pub fn stuck_lane_scaledown(mut self, tick: usize) -> Self {
        self.planned.push(FaultRecord {
            step: tick,
            kind: FaultKind::StuckLaneScaledown,
        });
        self
    }

    /// Flip one seeded bit of `case`'s `field` state vector at `step`.
    pub fn flip_state(mut self, step: usize, case: usize, field: StateField) -> Self {
        let seed = self.derive_seed(step, case).rotate_left(29);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::StateFlip {
                case,
                field,
                flip: BitFlip { seed },
            },
        });
        self
    }

    /// Flip one seeded bit of `case`'s assembled RHS at `step`.
    pub fn flip_rhs(mut self, step: usize, case: usize) -> Self {
        let seed = self.derive_seed(step, case).rotate_left(41);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::RhsFlip {
                case,
                flip: BitFlip { seed },
            },
        });
        self
    }

    /// Flip one seeded bit of the operator payload as of `step`.
    pub fn flip_operator(mut self, step: usize) -> Self {
        let seed = self.derive_seed(step, 0).rotate_left(53);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::OperatorFlip {
                flip: BitFlip { seed },
            },
        });
        self
    }

    /// Flip one seeded bit of `case`'s predictor history at `step`.
    pub fn flip_basis(mut self, step: usize, case: usize) -> Self {
        let seed = self.derive_seed(step, case).rotate_left(7);
        self.planned.push(FaultRecord {
            step,
            kind: FaultKind::BasisFlip {
                case,
                flip: BitFlip { seed },
            },
        });
        self
    }

    /// Flip one seeded bit of the replica of `node`'s checkpoint mirrored
    /// with sequence number `seq` (one-shot).
    pub fn flip_replica(mut self, node: usize, seq: u64) -> Self {
        let seed = self.derive_seed(seq as usize, node).rotate_left(13);
        self.planned.push(FaultRecord {
            step: seq as usize,
            kind: FaultKind::ReplicaFlip {
                node,
                flip: BitFlip { seed },
            },
        });
        self
    }

    /// Faults scheduled in this plan.
    pub fn planned(&self) -> &[FaultRecord] {
        &self.planned
    }

    /// Faults that actually fired (one record per hook hit), in firing
    /// order. Fault-suite tests assert this covers the whole plan.
    pub fn injected(&self) -> &[FaultRecord] {
        &self.injected
    }

    /// True when every planned fault fired at least once.
    pub fn all_fired(&self) -> bool {
        self.planned
            .iter()
            .all(|p| self.injected.iter().any(|i| i == p))
    }

    fn log(&mut self, step: usize, kind: FaultKind) {
        self.injected.push(FaultRecord { step, kind });
    }

    /// Find a not-yet-consumed planned entry matching `pred`, mark it
    /// consumed, and return its kind — the one-shot firing discipline.
    fn take_one_shot(&mut self, pred: impl Fn(&FaultRecord) -> bool) -> Option<FaultKind> {
        if self.spent.len() < self.planned.len() {
            self.spent.resize(self.planned.len(), false);
        }
        let i = self
            .planned
            .iter()
            .enumerate()
            .position(|(i, p)| !self.spent[i] && pred(p))?;
        self.spent[i] = true;
        Some(self.planned[i].kind)
    }
}

impl FaultInjector for FaultPlan {
    fn guess_fault(&mut self, step: usize, case: usize) -> Option<VectorFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Guess { case: c, fault } if p.step == step && c == case => Some(fault),
            _ => None,
        })?;
        self.log(step, FaultKind::Guess { case, fault: hit });
        Some(hit)
    }

    fn snapshot_fault(&mut self, step: usize, case: usize) -> Option<VectorFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Snapshot { case: c, fault } if p.step == step && c == case => Some(fault),
            _ => None,
        })?;
        self.log(step, FaultKind::Snapshot { case, fault: hit });
        Some(hit)
    }

    fn exchange_fault(&mut self, step: usize, set: usize) -> Option<ExchangeFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Exchange { set: s, fault } if p.step == step && s == set => Some(fault),
            _ => None,
        })?;
        self.log(step, FaultKind::Exchange { set, fault: hit });
        Some(hit)
    }

    fn lane_fault(&mut self, step: usize, set: usize) -> Option<LaneFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Lane { set: s, fault } if p.step == step && s == set => Some(fault),
            _ => None,
        })?;
        self.log(step, FaultKind::Lane { set, fault: hit });
        Some(hit)
    }

    fn solver_fault(&mut self, step: usize, set: usize) -> Option<SolverFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Solver { set: s, fault } if p.step == step && s == set => Some(fault),
            _ => None,
        })?;
        self.log(step, FaultKind::Solver { set, fault: hit });
        Some(hit)
    }

    fn admission_fault(&mut self, index: usize) -> Option<AdmissionFault> {
        let hit = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Admission { index: i, fault } if i == index => Some(fault),
            _ => None,
        })?;
        self.log(index, FaultKind::Admission { index, fault: hit });
        Some(hit)
    }

    fn eviction_fault(&mut self, step: usize, case: usize) -> Option<EvictionFault> {
        self.planned.iter().find_map(|p| match p.kind {
            FaultKind::Eviction { case: c } if p.step == step && c == case => Some(()),
            _ => None,
        })?;
        self.log(step, FaultKind::Eviction { case });
        Some(EvictionFault)
    }

    fn crash_fault(&mut self, step: usize) -> bool {
        let hit = self.take_one_shot(|p| matches!(p.kind, FaultKind::Crash) && p.step == step);
        if hit.is_some() {
            self.log(step, FaultKind::Crash);
        }
        hit.is_some()
    }

    fn torn_write_fault(&mut self, seq: u64) -> Option<TornWriteFault> {
        let kind = self.take_one_shot(|p| {
            matches!(p.kind, FaultKind::TornWrite { .. }) && p.step == seq as usize
        })?;
        let FaultKind::TornWrite { keep_frac } = kind else {
            unreachable!("one-shot matcher filtered on TornWrite");
        };
        self.log(seq as usize, kind);
        Some(TornWriteFault { keep_frac })
    }

    fn node_crash_fault(&mut self, tick: usize, node: usize) -> bool {
        let hit = self.take_one_shot(|p| {
            matches!(p.kind, FaultKind::NodeCrash { node: n } if n == node) && p.step == tick
        });
        if hit.is_some() {
            self.log(tick, FaultKind::NodeCrash { node });
        }
        hit.is_some()
    }

    fn replica_corruption_fault(&mut self, node: usize, seq: u64) -> Option<TornWriteFault> {
        let kind = self.take_one_shot(|p| {
            matches!(p.kind, FaultKind::ReplicaCorrupt { node: n, .. } if n == node)
                && p.step == seq as usize
        })?;
        let FaultKind::ReplicaCorrupt { keep_frac, .. } = kind else {
            unreachable!("one-shot matcher filtered on ReplicaCorrupt");
        };
        self.log(seq as usize, kind);
        Some(TornWriteFault { keep_frac })
    }

    fn link_partition_fault(&mut self, tick: usize, a: usize, b: usize) -> bool {
        let hit = self.take_one_shot(|p| {
            matches!(p.kind, FaultKind::LinkPartition { a: x, b: y }
                if (x == a && y == b) || (x == b && y == a))
                && p.step == tick
        });
        // log the planned orientation: the match is symmetric in (a, b),
        // but `all_fired` compares records literally
        if let Some(kind) = hit {
            self.log(tick, kind);
        }
        hit.is_some()
    }

    fn tenant_burst_fault(&mut self, tick: usize) -> Option<(u32, u32)> {
        let kind = self
            .take_one_shot(|p| matches!(p.kind, FaultKind::TenantBurst { .. }) && p.step == tick)?;
        let FaultKind::TenantBurst { tenant, count } = kind else {
            unreachable!("one-shot matcher filtered on TenantBurst");
        };
        self.log(tick, kind);
        Some((tenant, count))
    }

    fn stuck_scaledown_fault(&mut self, tick: usize) -> bool {
        let hit = self
            .take_one_shot(|p| matches!(p.kind, FaultKind::StuckLaneScaledown) && p.step == tick);
        if hit.is_some() {
            self.log(tick, FaultKind::StuckLaneScaledown);
        }
        hit.is_some()
    }

    fn state_flip_fault(&mut self, step: usize, case: usize) -> Option<(StateField, BitFlip)> {
        let (field, flip) = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::StateFlip {
                case: c,
                field,
                flip,
            } if p.step == step && c == case => Some((field, flip)),
            _ => None,
        })?;
        self.log(step, FaultKind::StateFlip { case, field, flip });
        Some((field, flip))
    }

    fn rhs_flip_fault(&mut self, step: usize, case: usize) -> Option<BitFlip> {
        let flip = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::RhsFlip { case: c, flip } if p.step == step && c == case => Some(flip),
            _ => None,
        })?;
        self.log(step, FaultKind::RhsFlip { case, flip });
        Some(flip)
    }

    fn operator_flip_fault(&mut self, step: usize) -> Option<BitFlip> {
        let flip = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::OperatorFlip { flip } if p.step == step => Some(flip),
            _ => None,
        })?;
        self.log(step, FaultKind::OperatorFlip { flip });
        Some(flip)
    }

    fn basis_flip_fault(&mut self, step: usize, case: usize) -> Option<BitFlip> {
        let flip = self.planned.iter().find_map(|p| match p.kind {
            FaultKind::BasisFlip { case: c, flip } if p.step == step && c == case => Some(flip),
            _ => None,
        })?;
        self.log(step, FaultKind::BasisFlip { case, flip });
        Some(flip)
    }

    fn replica_flip_fault(&mut self, node: usize, seq: u64) -> Option<BitFlip> {
        let kind = self.take_one_shot(|p| {
            matches!(p.kind, FaultKind::ReplicaFlip { node: n, .. } if n == node)
                && p.step == seq as usize
        })?;
        let FaultKind::ReplicaFlip { flip, .. } = kind else {
            unreachable!("one-shot matcher filtered on ReplicaFlip");
        };
        self.log(seq as usize, kind);
        Some(flip)
    }
}

/// splitmix64 step — the minimal deterministic stream (same generator the
/// predictor tests hand-roll); good enough for fault placement, no
/// dependency needed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Map a u64 to [0, 1).
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopFaults>(), 0);
        let mut noop = NoopFaults;
        assert!(noop.guess_fault(0, 0).is_none());
        assert!(noop.snapshot_fault(3, 1).is_none());
        assert!(noop.exchange_fault(5, 0).is_none());
        assert!(noop.lane_fault(7, 1).is_none());
        assert!(noop.solver_fault(9, 0).is_none());
    }

    #[test]
    fn nan_fault_is_deterministic_and_always_hits() {
        let f = VectorFault::Nan {
            frac: 0.05,
            seed: 42,
        };
        let mut a = vec![1.0; 200];
        let mut b = vec![1.0; 200];
        f.apply(&mut a);
        f.apply(&mut b);
        let nan_idx_a: Vec<usize> = (0..a.len()).filter(|&i| a[i].is_nan()).collect();
        let nan_idx_b: Vec<usize> = (0..b.len()).filter(|&i| b[i].is_nan()).collect();
        assert!(!nan_idx_a.is_empty());
        assert_eq!(nan_idx_a, nan_idx_b, "same seed must hit the same slots");

        // tiny frac on a tiny vector: the at-least-one guarantee kicks in
        let g = VectorFault::Nan {
            frac: 1e-9,
            seed: 7,
        };
        let mut c = vec![1.0; 4];
        g.apply(&mut c);
        assert_eq!(c.iter().filter(|v| v.is_nan()).count(), 1);
    }

    #[test]
    fn scale_fault_scales_everything() {
        let f = VectorFault::Scale { factor: -3.0 };
        let mut v = vec![1.0, 2.0, -4.0];
        f.apply(&mut v);
        assert_eq!(v, vec![-3.0, -6.0, 12.0]);
    }

    #[test]
    fn plan_fires_only_at_scheduled_targets_and_logs() {
        let mut plan = FaultPlan::new(1)
            .nan_guess(3, 1, 0.1)
            .cap_solver(5, 0, 2)
            .drop_exchange(4, 1)
            .stall_lane(2, 0, FaultLane::Gpu, 0.25);
        assert_eq!(plan.planned().len(), 4);
        assert!(plan.guess_fault(2, 1).is_none(), "wrong step");
        assert!(plan.guess_fault(3, 0).is_none(), "wrong case");
        let g = plan.guess_fault(3, 1).expect("scheduled guess fault");
        assert!(matches!(g, VectorFault::Nan { frac, .. } if frac == 0.1));
        assert!(matches!(
            plan.solver_fault(5, 0),
            Some(SolverFault { max_iter: 2 })
        ));
        assert!(matches!(
            plan.exchange_fault(4, 1),
            Some(ExchangeFault::Drop)
        ));
        let lf = plan.lane_fault(2, 0).expect("scheduled lane fault");
        assert_eq!(lf.lane, FaultLane::Gpu);
        assert_eq!(lf.seconds, 0.25);
        assert!(plan.all_fired());
        assert_eq!(plan.injected().len(), 4);
    }

    #[test]
    fn admission_and_eviction_faults_fire_on_target() {
        let mut plan = FaultPlan::new(3)
            .reject_admission(0)
            .shed_admission(2)
            .evict(5, 7);
        assert_eq!(plan.admission_fault(0), Some(AdmissionFault::Reject));
        assert!(plan.admission_fault(1).is_none());
        assert_eq!(plan.admission_fault(2), Some(AdmissionFault::Shed));
        assert!(plan.eviction_fault(5, 6).is_none(), "wrong request");
        assert!(plan.eviction_fault(4, 7).is_none(), "wrong step");
        assert_eq!(plan.eviction_fault(5, 7), Some(EvictionFault));
        assert!(plan.all_fired());
        // Noop defaults stay None
        let mut noop = NoopFaults;
        assert!(noop.admission_fault(0).is_none());
        assert!(noop.eviction_fault(0, 0).is_none());
    }

    #[test]
    fn same_seed_same_plan_same_nan_pattern() {
        let mut p1 = FaultPlan::new(99).nan_guess(7, 2, 0.2);
        let mut p2 = FaultPlan::new(99).nan_guess(7, 2, 0.2);
        let f1 = p1.guess_fault(7, 2).unwrap();
        let f2 = p2.guess_fault(7, 2).unwrap();
        assert_eq!(f1, f2);
        // different seed -> different derived pattern seed
        let mut p3 = FaultPlan::new(100).nan_guess(7, 2, 0.2);
        let f3 = p3.guess_fault(7, 2).unwrap();
        assert_ne!(f1, f3);
    }

    #[test]
    fn snapshot_and_guess_seeds_differ() {
        let mut p = FaultPlan::new(5)
            .nan_guess(1, 0, 0.3)
            .nan_snapshot(1, 0, 0.3);
        let g = p.guess_fault(1, 0).unwrap();
        let s = p.snapshot_fault(1, 0).unwrap();
        assert_ne!(g, s, "guess and snapshot patterns must be independent");
    }

    #[test]
    fn crash_fault_is_one_shot() {
        let mut plan = FaultPlan::new(1).crash_at(4);
        assert!(!plan.crash_fault(3), "wrong boundary");
        assert!(plan.crash_fault(4), "planned crash fires");
        // The resumed run replays the same boundary with the same plan
        // instance — it must sail through.
        assert!(!plan.crash_fault(4), "crash already consumed");
        assert!(plan.all_fired());
        assert_eq!(plan.injected().len(), 1);
    }

    #[test]
    fn torn_write_is_one_shot_and_keyed_by_seq() {
        let mut plan = FaultPlan::new(1).tear_checkpoint(8, 0.5);
        assert!(plan.torn_write_fault(7).is_none(), "wrong sequence");
        let t = plan.torn_write_fault(8).expect("planned tear fires");
        assert_eq!(t.keep_frac, 0.5);
        assert!(
            plan.torn_write_fault(8).is_none(),
            "tear already consumed; the rewritten checkpoint survives"
        );
        assert!(plan.all_fired());
    }

    #[test]
    fn node_crash_is_one_shot_and_keyed_by_node() {
        let mut plan = FaultPlan::new(1).crash_node(3, 1);
        assert!(!plan.node_crash_fault(3, 0), "wrong node");
        assert!(!plan.node_crash_fault(2, 1), "wrong tick");
        assert!(plan.node_crash_fault(3, 1), "planned node crash fires");
        assert!(!plan.node_crash_fault(3, 1), "node crash already consumed");
        assert!(plan.all_fired());
    }

    #[test]
    fn replica_corruption_is_one_shot_and_keyed_by_node_and_seq() {
        let mut plan = FaultPlan::new(1).corrupt_replica(2, 5, 0.4);
        assert!(plan.replica_corruption_fault(1, 5).is_none(), "wrong node");
        assert!(plan.replica_corruption_fault(2, 4).is_none(), "wrong seq");
        let t = plan.replica_corruption_fault(2, 5).expect("planned fires");
        assert_eq!(t.keep_frac, 0.4);
        assert!(plan.replica_corruption_fault(2, 5).is_none(), "consumed");
        assert!(plan.all_fired());
    }

    #[test]
    fn link_partition_is_symmetric_and_one_shot() {
        let mut plan = FaultPlan::new(1).partition_link(4, 0, 2);
        assert!(!plan.link_partition_fault(4, 0, 1), "wrong pair");
        assert!(!plan.link_partition_fault(3, 0, 2), "wrong tick");
        assert!(plan.link_partition_fault(4, 2, 0), "symmetric pair fires");
        assert!(!plan.link_partition_fault(4, 0, 2), "link heals after tick");
        assert!(plan.all_fired());
        // Noop defaults never partition, crash nodes, or corrupt replicas
        let mut noop = NoopFaults;
        assert!(!noop.node_crash_fault(0, 0));
        assert!(noop.replica_corruption_fault(0, 0).is_none());
        assert!(!noop.link_partition_fault(0, 0, 1));
    }

    #[test]
    fn tenant_burst_and_stuck_scaledown_are_one_shot() {
        let mut plan = FaultPlan::new(1)
            .tenant_burst(4, 2, 50)
            .stuck_lane_scaledown(6);
        assert!(plan.tenant_burst_fault(3).is_none(), "wrong tick");
        assert_eq!(plan.tenant_burst_fault(4), Some((2, 50)));
        assert!(plan.tenant_burst_fault(4).is_none(), "burst consumed");
        assert!(!plan.stuck_scaledown_fault(5), "wrong tick");
        assert!(plan.stuck_scaledown_fault(6));
        assert!(!plan.stuck_scaledown_fault(6), "scaledown consumed");
        assert!(plan.all_fired());
        let mut noop = NoopFaults;
        assert!(noop.tenant_burst_fault(0).is_none());
        assert!(!noop.stuck_scaledown_fault(0));
    }

    #[test]
    fn bit_flip_is_deterministic_and_self_inverse() {
        let flip = BitFlip {
            seed: 0xDEAD_BEEF_CAFE,
        };
        let clean = vec![1.0, -2.5, 3.25, 0.0, 5.5];
        let mut v = clean.clone();
        let (idx, bit) = flip.apply(&mut v).expect("non-empty");
        assert_eq!(flip.target(v.len()), Some((idx, bit)));
        assert!(bit < 64 && idx < v.len());
        assert_ne!(
            v[idx].to_bits(),
            clean[idx].to_bits(),
            "exactly one word changed"
        );
        assert_eq!(
            v.iter()
                .zip(&clean)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count(),
            1
        );
        // flipping again restores the original bit pattern
        flip.apply(&mut v);
        for (a, b) in v.iter().zip(&clean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // empty buffers are a no-op, not a panic
        assert!(flip.apply(&mut []).is_none());
    }

    #[test]
    fn data_flip_faults_fire_on_target_only() {
        let mut plan = FaultPlan::new(11)
            .flip_state(3, 1, StateField::V)
            .flip_rhs(4, 0)
            .flip_operator(5)
            .flip_basis(6, 2);
        assert!(plan.state_flip_fault(3, 0).is_none(), "wrong case");
        assert!(plan.state_flip_fault(2, 1).is_none(), "wrong step");
        let (field, flip) = plan.state_flip_fault(3, 1).expect("scheduled");
        assert_eq!(field, StateField::V);
        assert!(plan.rhs_flip_fault(4, 1).is_none(), "wrong case");
        let rhs = plan.rhs_flip_fault(4, 0).expect("scheduled");
        assert_ne!(rhs.seed, flip.seed, "targets get independent seeds");
        assert!(plan.operator_flip_fault(4).is_none(), "wrong step");
        assert!(plan.operator_flip_fault(5).is_some());
        assert!(plan.basis_flip_fault(6, 0).is_none(), "wrong case");
        assert!(plan.basis_flip_fault(6, 2).is_some());
        assert!(plan.all_fired());
        let mut noop = NoopFaults;
        assert!(noop.state_flip_fault(0, 0).is_none());
        assert!(noop.rhs_flip_fault(0, 0).is_none());
        assert!(noop.operator_flip_fault(0).is_none());
        assert!(noop.basis_flip_fault(0, 0).is_none());
        assert!(noop.replica_flip_fault(0, 0).is_none());
    }

    #[test]
    fn replica_flip_is_one_shot_and_keyed_by_node_and_seq() {
        let mut plan = FaultPlan::new(2).flip_replica(1, 6);
        assert!(plan.replica_flip_fault(0, 6).is_none(), "wrong node");
        assert!(plan.replica_flip_fault(1, 5).is_none(), "wrong seq");
        assert!(
            plan.replica_flip_fault(1, 6).is_some(),
            "planned flip fires"
        );
        assert!(plan.replica_flip_fault(1, 6).is_none(), "consumed");
        assert!(plan.all_fired());
    }

    #[test]
    fn flip_seeds_are_stable_across_plan_instances() {
        let mut p1 = FaultPlan::new(7).flip_state(2, 0, StateField::U);
        let mut p2 = FaultPlan::new(7).flip_state(2, 0, StateField::U);
        assert_eq!(p1.state_flip_fault(2, 0), p2.state_flip_fault(2, 0));
        let mut p3 = FaultPlan::new(8).flip_state(2, 0, StateField::U);
        assert_ne!(
            p1.injected()[0],
            p3.state_flip_fault(2, 0)
                .map(|(field, flip)| FaultRecord {
                    step: 2,
                    kind: FaultKind::StateFlip {
                        case: 0,
                        field,
                        flip
                    },
                })
                .unwrap()
        );
    }

    #[test]
    fn distinct_crash_points_fire_independently() {
        let mut plan = FaultPlan::new(1).crash_at(2).crash_at(6);
        assert!(plan.crash_fault(2));
        assert!(!plan.crash_fault(2));
        assert!(plan.crash_fault(6));
        assert!(plan.all_fired());
        // Noop defaults never crash or tear
        let mut noop = NoopFaults;
        assert!(!noop.crash_fault(0));
        assert!(noop.torn_write_fault(0).is_none());
    }
}
