//! Criterion microbenchmarks of the *real host kernels* (genuine wall-clock
//! measurements, complementing the modeled Table 2):
//!
//! * 3×3 block-CRS SpMV (sequential and rayon-parallel),
//! * cached-matrix EBE vs compact matrix-free EBE,
//! * EBE with 1/2/4/8 fused right-hand sides (the multi-RHS amortization
//!   the paper measures as the EBE->EBE4 speedup),
//! * the data-driven predictor (MGS) at several windows,
//! * the FDD FFT.
//!
//! ```bash
//! cargo bench --bench kernels
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsolve_bench::bench_backend;
use hetsolve_core::Backend;
use hetsolve_predictor::DataDrivenPredictor;
use hetsolve_signal::rfft;
use hetsolve_sparse::{LinearOperator, MultiOperator};
use std::hint::black_box;

fn make_backend() -> Backend {
    bench_backend(8, 8, 5)
}

fn bench_spmv(c: &mut Criterion) {
    let backend = make_backend();
    let n = backend.n_dofs();
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let mut y = vec![0.0; n];

    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(n as u64));

    let crs = backend.crs_a();
    g.bench_function("crs_parallel", |b| {
        b.iter(|| crs.apply(black_box(&x), black_box(&mut y)))
    });
    let mut crs_seq = crs.clone();
    crs_seq.parallel = false;
    g.bench_function("crs_sequential", |b| {
        b.iter(|| crs_seq.apply(black_box(&x), black_box(&mut y)))
    });

    let ebe = backend.ebe_a(1);
    g.bench_function("ebe_compact", |b| {
        b.iter(|| ebe.apply(black_box(&x), black_box(&mut y)))
    });

    // cached-matrix EBE (streams the stored packed element matrices)
    let a = backend.problem.a_coeffs();
    let data = hetsolve_sparse::EbeData {
        n_nodes: backend.problem.n_nodes(),
        elems: &backend.problem.model.mesh.elems,
        me: &backend.problem.elements.me,
        ke: &backend.problem.elements.ke,
        faces: &backend.problem.dashpots.faces,
        cb: &backend.problem.dashpots.cb,
        c_m: a.c_m,
        c_k: a.c_k,
        c_b: a.c_b,
        fixed: &backend.fixed,
    };
    let cached = hetsolve_sparse::EbeOperator::new(data, &backend.coloring, true);
    g.bench_function("ebe_cached", |b| {
        b.iter(|| cached.apply(black_box(&x), black_box(&mut y)))
    });
    g.finish();
}

fn bench_multi_rhs(c: &mut Criterion) {
    let backend = make_backend();
    let n = backend.n_dofs();
    let mut g = c.benchmark_group("ebe_multi_rhs_per_case");
    for r in [1usize, 2, 4, 8] {
        let op = backend.ebe_a(r);
        let x: Vec<f64> = (0..n * r).map(|i| ((i as f64) * 0.21).cos()).collect();
        let mut y = vec![0.0; n * r];
        g.throughput(Throughput::Elements((n * r) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            b.iter(|| op.apply_multi(black_box(&x), black_box(&mut y)))
        });
    }
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let n = 60_000;
    let mut dd = DataDrivenPredictor::new(n, 384, 32);
    for k in 0..33 {
        let snap: Vec<f64> = (0..n)
            .map(|i| ((i + 31 * k) as f64 * 0.013).sin())
            .collect();
        dd.record(&snap);
    }
    let mut out = vec![0.0; n];
    let mut g = c.benchmark_group("predictor");
    for s in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("mgs_window", s), &s, |b, &s| {
            b.iter(|| {
                dd.predict(black_box(s), black_box(&mut out));
            })
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let x: Vec<f64> = (0..16_384).map(|i| (i as f64 * 0.011).sin()).collect();
    c.bench_function("fft_16k", |b| b.iter(|| rfft(black_box(&x))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_spmv, bench_multi_rhs, bench_predictor, bench_fft
}
criterion_main!(benches);
