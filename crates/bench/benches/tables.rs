//! Regenerates the paper's Tables 1–4.
//!
//! ```bash
//! cargo bench --bench tables            # all tables
//! cargo bench --bench tables -- table2  # one table
//! ```
//!
//! Numerics (iteration counts, convergence, adaptive windows) are measured
//! on a scaled model; wall-clock/energy values come from the calibrated
//! GH200/Alps machine model evaluated both at our scale and — for the
//! kernel rows — at the paper's 46.5M-DOF scale. `EXPERIMENTS.md` records
//! the paper-vs-measured comparison.

use hetsolve_bench::{bench_backend, bench_load, should_run};
use hetsolve_core::{
    apply_speedups, format_application_table, run, MethodKind, MethodSummary, RunConfig,
};
use hetsolve_fem::compact_ebe_counts;
use hetsolve_machine::{
    achieved_bw, achieved_flops, alps_node, crs_cg_cpu, crs_cg_cpu_gpu, crs_cg_gpu,
    ebe_mcg_cpu_gpu, format_table1, grace_480, h100, kernel_time, single_gh200, DeviceSpec,
    ExecCtx, ProblemDims,
};
use hetsolve_sparse::KernelCounts;

fn main() {
    if should_run("table1") {
        table1();
    }
    if should_run("table2") {
        table2();
    }
    if should_run("table3") {
        table3();
    }
    if should_run("table4") {
        table4();
    }
}

fn table1() {
    println!("\n================ Table 1: measurement environment ================\n");
    print!("{}", format_table1());
    println!("\n(encoded hardware profiles; identical numbers to the paper's Table 1)");
}

/// Counts of a paper-scale CRS SpMV (model a: 15.5M nodes, ~27 blocks/row).
fn paper_crs_counts() -> KernelCounts {
    let nodes = 15_509_903f64;
    let nnzb = nodes * 27.0;
    KernelCounts {
        flops: 18.0 * nnzb,
        bytes_stream: nnzb * 76.0 + nodes * 24.0 + nodes * 8.0,
        bytes_rand: 2.0 * nodes * 24.0,
        rand_transactions: nnzb,
        rhs_fused: 1,
    }
}

fn paper_ebe_counts(r: usize) -> KernelCounts {
    compact_ebe_counts(11_365_697, 145_920, 46_529_709, r)
}

fn table2() {
    println!(
        "\n================ Table 2: SpMV kernel performance (paper scale) ================\n"
    );
    println!(
        "{:<22} | {:>12} | {:>16} | {:>21} | {:>10}",
        "kernel", "time/case", "TFLOPS (%peak)", "mem BW TB/s (%peak)", "paper"
    );
    let rows: [(&str, DeviceSpec, KernelCounts, usize, f64); 5] = [
        ("CRS-rayon@CPU", grace_480(), paper_crs_counts(), 1, 0.163),
        ("CRS-colored@GPU", h100(), paper_crs_counts(), 1, 0.0168),
        ("EBE-colored@GPU", h100(), paper_ebe_counts(1), 1, 0.00456),
        ("EBE4-colored@GPU", h100(), paper_ebe_counts(4), 4, 0.00239),
        // the paper's CUDA-vs-OpenACC row: same kernel, same model (the
        // point is portability: directive and native implementations match)
        ("EBE4-native@GPU", h100(), paper_ebe_counts(4), 4, 0.00254),
    ];
    let ctx = ExecCtx::default();
    for (name, dev, counts, r, paper) in rows {
        let t = kernel_time(&dev, &counts, &ctx) / r as f64;
        let fl = achieved_flops(&dev, &counts, &ctx);
        let bw = achieved_bw(&dev, &counts, &ctx);
        println!(
            "{:<22} | {:>9.2} ms | {:>6.2} ({:>5.1}%) | {:>9.3} ({:>5.1}%)    | {:>7.2} ms",
            name,
            t * 1e3,
            fl / 1e12,
            100.0 * fl / dev.flops_peak,
            bw / 1e12,
            100.0 * bw / dev.mem_bw,
            paper * 1e3,
        );
    }
    println!("\npaper Table 2: 163 / 16.8 / 4.56 / 2.39 / 2.54 ms per case");
}

fn application_rows(node: hetsolve_machine::NodeSpec, threads: &[usize]) -> Vec<MethodSummary> {
    let backend = bench_backend(8, 8, 5);
    let steps = 120;
    let from = steps / 3;
    let dims = ProblemDims::paper_model_a();
    eprintln!(
        "  [model: {} elements, {} unknowns, {} steps, measuring from step {from}]",
        backend.problem.model.mesh.n_elems(),
        backend.n_dofs(),
        steps
    );

    let mut rows = Vec::new();
    let base_methods = [
        (MethodKind::CrsCgCpu, crs_cg_cpu(&dims)),
        (MethodKind::CrsCgGpu, crs_cg_gpu(&dims)),
        (MethodKind::CrsCgCpuGpu, crs_cg_cpu_gpu(&dims, 32)),
    ];
    for (method, mem) in base_methods {
        let mut cfg = RunConfig::new(method, node, steps);
        cfg.s_max = 16;
        cfg.load = bench_load();
        let result = run(&backend, &cfg).expect("run");
        rows.push(MethodSummary::from_run(&result, mem, from));
    }
    for &t in threads {
        let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, node, steps);
        cfg.s_max = 16;
        cfg.cpu_threads = t;
        cfg.load = bench_load();
        let result = run(&backend, &cfg).expect("run");
        rows.push(MethodSummary::from_run(
            &result,
            ebe_mcg_cpu_gpu(&dims, 32, 4),
            from,
        ));
    }
    apply_speedups(&mut rows);
    rows
}

fn table3() {
    println!(
        "\n================ Table 3: application performance, single-GH200 node ================\n"
    );
    let rows = application_rows(single_gh200(), &[36]);
    print!("{}", format_application_table(&rows));
    println!("\npaper Table 3 (46.5M unknowns): speedups 1.00 / 9.96 / 26.1 / 86.4;");
    println!("iterations 152 / 152 / 66.6 / 68.8; energy 9944 / 2163 / 1001 / 309 J/step/case;");
    println!("memory: 56.9/- , 104/44.9 , 178/57.8 , 340/60.5 GB (CPU/GPU)");
    table3_paper_scale_projection(&rows);
}

/// Combine the *measured* iteration-reduction ratios with *paper-scale*
/// modeled per-iteration costs to project the full-scale Table 3 rows.
fn table3_paper_scale_projection(rows: &[MethodSummary]) {
    let nodes = 15_509_903f64;
    let n = 3.0 * nodes;
    // shared per-iteration vector work: block-Jacobi + ~10 vector passes
    let aux = KernelCounts {
        flops: 15.0 * nodes + 10.0 * n,
        bytes_stream: 120.0 * nodes + 80.0 * n,
        bytes_rand: 0.0,
        rand_transactions: 0.0,
        rhs_fused: 1,
    };
    let ctx = ExecCtx::default();
    let crs = paper_crs_counts();
    let t_crs_cpu = kernel_time(&grace_480(), &crs.merged(aux), &ctx);
    let t_crs_gpu = kernel_time(&h100(), &crs.merged(aux), &ctx);
    let t_ebe4 = kernel_time(&h100(), &paper_ebe_counts(4).merged(aux.scaled(4.0)), &ctx) / 4.0;
    // measured iteration ratios (data-driven / Adams-Bashforth)
    let it_ab = rows[0].iterations;
    let ratio_crs = rows[2].iterations / it_ab;
    let ratio_ebe = rows[3].iterations / it_ab;
    let paper_iters = 152.0;
    let projected = [
        ("CRS-CG@CPU", paper_iters, t_crs_cpu),
        ("CRS-CG@GPU", paper_iters, t_crs_gpu),
        ("CRS-CG@CPU-GPU", paper_iters * ratio_crs, t_crs_gpu),
        ("EBE-MCG@CPU-GPU", paper_iters * ratio_ebe, t_ebe4),
    ];
    println!("\npaper-scale projection (measured iteration ratios x modeled 46.5M-DOF per-iteration costs):");
    println!(
        "{:<17} | {:>7} | {:>12} | {:>8} | {:>7}",
        "method", "iters", "step/case", "speedup", "paper"
    );
    let base = projected[0].1 * projected[0].2;
    for (i, (name, iters, t_iter)) in projected.iter().enumerate() {
        let t = iters * t_iter;
        let paper = [1.00, 9.96, 26.1, 86.4][i];
        println!(
            "{:<17} | {:>7.1} | {:>9.3} s | {:>7.1}x | {:>6.1}x",
            name,
            iters,
            t,
            base / t,
            paper
        );
    }
}

fn table4() {
    println!("\n================ Table 4: application performance, one Alps node (634 W cap) ================\n");
    println!("(EBE-MCG rows sweep predictor threads: 36 / 24 / 16 per process)\n");
    let rows = application_rows(alps_node(), &[36, 24, 16]);
    print!("{}", format_application_table(&rows));
    println!("\npaper Table 4: CRS-CG@CPU 23.1 s, CRS-CG@GPU 3.12 s;");
    println!("EBE-MCG 0.470 / 0.460 / 0.447 s per case at 36 / 24 / 16 threads");
    println!("(fewer predictor threads -> more power headroom for the GPU under the cap)");
}
