//! Regenerates the paper's Figs. 1, 3, 4 and 5 as printed data series.
//!
//! ```bash
//! cargo bench --bench figures           # all figures
//! cargo bench --bench figures -- fig3   # one figure
//! ```

use hetsolve_bench::{bench_backend, bench_load, should_run};
use hetsolve_core::{
    convergence_study, run, run_ensemble, Backend, EnsembleConfig, MethodKind, PartitionedProblem,
    RunConfig, StudyConfig,
};
use hetsolve_fem::FemProblem;
use hetsolve_machine::{
    alps_node, box_halo_pattern, single_gh200, weak_scaling_efficiency, weak_scaling_step_time,
};
use hetsolve_mesh::{GroundModelSpec, InterfaceShape};
use hetsolve_signal::WelchConfig;

fn main() {
    if should_run("fig1") {
        fig1();
    }
    if should_run("fig3") {
        fig3();
    }
    if should_run("fig4") {
        fig4();
    }
    if should_run("fig5") {
        fig5();
    }
}

/// Fig. 1: three ground structures and their surface dominant-frequency
/// distributions obtained from ensemble simulation + FDD.
fn fig1() {
    println!(
        "\n================ Fig. 1: ground structures & FDD dominant frequencies ================"
    );
    for (name, shape) in [
        ("(a) stratified", InterfaceShape::Stratified),
        ("(b) inclined", InterfaceShape::Inclined),
        ("(c) basin", InterfaceShape::Basin),
    ] {
        let spec = GroundModelSpec::paper_like(4, 4, 6, shape);
        let problem = FemProblem::build(&spec, 0.02, 0.2, 5.0, 0.01);
        let backend = Backend::new(problem, false, true);
        let mut cfg = EnsembleConfig::new(single_gh200(), 2, 1024).expect("valid config");
        cfg.run.r = 2;
        cfg.run.s_max = 8;
        cfg.run.tol = 1e-7;
        cfg.run.load = bench_load();
        let (res, _) = run_ensemble(&backend, &cfg).expect("ensemble");
        let welch = WelchConfig::new(512, 256, res.dt);
        let fmap = res.dominant_frequency_map(&welch, 5.0);
        let mean: f64 = fmap.iter().sum::<f64>() / fmap.len() as f64;
        let lo = fmap.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = fmap.iter().cloned().fold(0.0f64, f64::max);
        // coarse histogram of the distribution
        let mut hist = [0usize; 10];
        for &f in &fmap {
            let b = ((f / 5.0) * 10.0).floor().min(9.0) as usize;
            hist[b] += 1;
        }
        println!(
            "\n--- {name}: {} surface points, {} cases ---",
            res.n_points(),
            res.n_cases()
        );
        println!("dominant frequency: mean {mean:.3} Hz, range [{lo:.3}, {hi:.3}] Hz");
        println!("histogram (0-5 Hz, 10 bins): {hist:?}");
        let f_th: Vec<f64> = res
            .coords
            .iter()
            .map(|c| backend.problem.model.theoretical_site_frequency(c[0], c[1]))
            .collect();
        let th_mean: f64 = f_th.iter().sum::<f64>() / f_th.len() as f64;
        println!("1-D layer theory (Vs/4H): mean {th_mean:.3} Hz");
    }
    println!("\n(paper Fig. 1: all three models show distinct dominant-frequency distributions)");
}

/// Fig. 3: convergence history of the solver for each initial-guess method
/// at one representative time step.
fn fig3() {
    println!("\n================ Fig. 3: convergence history per initial guess ================\n");
    let backend = bench_backend(6, 6, 4);
    let cfg = StudyConfig {
        warmup_steps: 40,
        windows: vec![8, 16, 32],
        ..Default::default()
    };
    let study = convergence_study(&backend, &cfg);
    println!("probe step: {}\n", study.probe_step);
    println!(
        "{:<20} | {:>12} | {:>10}",
        "initial guess", "initial res", "iters@1e-8"
    );
    for r in &study.results {
        println!(
            "{:<20} | {:>12.3e} | {:>10}",
            r.label, r.initial_rel_res, r.iterations
        );
    }
    println!("\nresidual histories (semi-log series, every 4th iteration):");
    for r in &study.results {
        let pts: Vec<String> = r
            .history
            .iter()
            .step_by(4)
            .map(|v| format!("{v:.1e}"))
            .collect();
        println!("{:<20}: {}", r.label, pts.join(" "));
    }
    println!("\npaper Fig. 3: AB 1.86e-3 -> 154 iters; data-driven 9.46e-7 -> 59/51/43 iters (s=8/16/32)");
}

/// Fig. 4: per-step breakdown of solver/predictor time and the adaptive
/// window s during an EBE-MCG@CPU-GPU run.
fn fig4() {
    println!("\n================ Fig. 4: elapsed-time breakdown & adaptive s ================\n");
    let backend = bench_backend(6, 6, 4);
    let mut cfg = RunConfig::new(MethodKind::EbeMcgCpuGpu, single_gh200(), 120);
    cfg.r = 4;
    cfg.s_max = 32;
    cfg.load = bench_load();
    let result = run(&backend, &cfg).expect("run");
    println!("step,solver_s_per_case,predictor_s_per_case,s_used,iterations");
    for rec in result.records.iter().step_by(4) {
        println!(
            "{},{:.6e},{:.6e},{},{:.1}",
            rec.step,
            rec.solver_time_per_case,
            rec.predictor_time_per_case,
            rec.s_used,
            rec.iterations
        );
    }
    let from = 60;
    println!(
        "\nsteady state: solver {:.4} s/case, predictor {:.4} s/case (balanced by design), s -> {}",
        result.mean_solver_time(from),
        result.mean_predictor_time(from),
        result.records.last().map(|r| r.s_used).unwrap_or(0)
    );
    println!("paper Fig. 4: s adapts so predictor time tracks solver time through the run");
}

/// Fig. 5: weak scaling of EBE-MCG@CPU-GPU on Alps, 1 -> 1920 nodes.
fn fig5() {
    println!("\n================ Fig. 5: weak scaling on Alps ================\n");
    // real partitioned halo sizes from the benchmark mesh validate the
    // surface-area halo model used for the paper-scale extrapolation
    let backend = bench_backend(6, 6, 4);
    let parts = PartitionedProblem::new(&backend.problem, 4, true);
    let measured = parts.halo_pattern(0, 4);
    let nodes_per_part = backend.problem.n_nodes() as f64 / 4.0;
    let modeled = box_halo_pattern(nodes_per_part, 4, measured.n_neighbors());
    println!(
        "halo validation at {} nodes/part: measured {:.1} kB vs surface-area model {:.1} kB per exchange",
        nodes_per_part as usize,
        measured.total_bytes() / 1e3,
        modeled.total_bytes() / 1e3
    );

    // Per-module compute per step at PAPER scale: 2 sets x `iters`
    // MCG iterations, each costing an EBE4 apply + block-Jacobi +
    // vector passes on the modeled (power-capped) H100. The iteration
    // count per step at full scale is taken from the paper's Table 4
    // (70.4) — it is an input to the timing extrapolation here, not a
    // reproduced output (Fig. 3/Table 3 reproduce iteration *reductions*
    // at our scale).
    let node = alps_node();
    let iters_per_set = 70.4;
    let n_dofs = 46_529_709f64;
    let ebe4 = hetsolve_fem::compact_ebe_counts(11_365_697, 145_920, n_dofs as usize, 4);
    let per_iter = hetsolve_sparse::KernelCounts {
        // block-Jacobi (15 flops/node) + ~10 vector passes for 4 fused cases
        flops: ebe4.flops + 4.0 * (5.0 * n_dofs + 10.0 * n_dofs),
        bytes_stream: ebe4.bytes_stream + 4.0 * (96.0 + 80.0) * n_dofs / 2.0,
        ..ebe4
    };
    let mut clock = hetsolve_machine::ModuleClock::new(node.module, 16, true);
    let t_iter = clock.run_gpu(&per_iter);
    let compute = 2.0 * iters_per_set * t_iter;
    let exchanges = 2.0 * iters_per_set;
    let pat = box_halo_pattern(15.5e6, 4, 4);
    println!(
        "\nper-module compute: {:.3} s/step ({:.2} ms per MCG iteration x 2 sets x {:.1} iters)",
        compute,
        t_iter * 1e3,
        iters_per_set
    );

    println!("\nnodes,GPUs,time_per_step_s,efficiency_pct");
    let t1 = weak_scaling_step_time(&node, compute, exchanges, &pat, 1);
    for nodes in [1usize, 2, 8, 32, 120, 480, 960, 1920] {
        let p = nodes * 4;
        let tp = weak_scaling_step_time(&node, compute, exchanges, &pat, p);
        let eff = weak_scaling_efficiency(t1, tp);
        println!("{},{},{:.5},{:.1}", nodes, p, tp, eff * 100.0);
    }
    println!("\npaper Fig. 5: flat elapsed time 1 -> 1920 nodes, 94.3% efficiency at 1920 nodes");
}
