//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! * cached-matrix vs compact matrix-free EBE (memory-traffic trade),
//! * element-coloring parallel scatter vs sequential scatter,
//! * predictor region size sweep,
//! * snapshot-window sweep (iterations saved vs predictor cost),
//! * RCB vs greedy partitioner edge cut,
//! * multi-RHS fusing degree r on the modeled GPU.
//!
//! ```bash
//! cargo bench --bench ablation
//! ```

use hetsolve_bench::{bench_backend, should_run};
use hetsolve_core::{convergence_study, StudyConfig};
use hetsolve_fem::compact_ebe_counts;
use hetsolve_machine::{h100, kernel_time, ExecCtx};
use hetsolve_mesh::{edge_cut, partition_greedy, partition_rcb};
use hetsolve_sparse::{ebe_counts, LinearOperator};
use std::time::Instant;

fn main() {
    if should_run("storage") {
        ablate_storage();
    }
    if should_run("coloring") {
        ablate_coloring();
    }
    if should_run("region") {
        ablate_region_size();
    }
    if should_run("window") {
        ablate_window();
    }
    if should_run("partitioner") {
        ablate_partitioner();
    }
    if should_run("fusing") {
        ablate_fusing();
    }
    if should_run("precision") {
        ablate_precision();
    }
    if should_run("preconditioner") {
        ablate_preconditioner();
    }
}

/// Cached element matrices stream 7.4 kB/element; the compact kernel
/// streams ~170 B/element and recomputes. On high-flops/byte devices the
/// compact variant wins decisively (modeled), and even on the host CPU it
/// is competitive (measured).
fn ablate_storage() {
    println!("\n===== ablation: EBE storage (cached matrices vs compact recompute) =====\n");
    let backend = bench_backend(8, 8, 5);
    let n = backend.n_dofs();
    let ne = backend.problem.model.mesh.n_elems();
    let nf = backend.problem.dashpots.n_faces();
    let ctx = ExecCtx::default();
    for r in [1usize, 4] {
        let cached = ebe_counts(ne, nf, n, r);
        let compact = compact_ebe_counts(ne, nf, n, r);
        let t_cached = kernel_time(&h100(), &cached, &ctx) / r as f64;
        let t_compact = kernel_time(&h100(), &compact, &ctx) / r as f64;
        println!(
            "r={r}: modeled H100 time/case: cached {:.3} ms vs compact {:.3} ms ({:.2}x); stream bytes {:.1} vs {:.1} MB",
            t_cached * 1e3,
            t_compact * 1e3,
            t_cached / t_compact,
            cached.bytes_stream / 1e6,
            compact.bytes_stream / 1e6,
        );
    }
    // real host measurement
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).sin()).collect();
    let mut y = vec![0.0; n];
    let a = backend.problem.a_coeffs();
    let data = hetsolve_sparse::EbeData {
        n_nodes: backend.problem.n_nodes(),
        elems: &backend.problem.model.mesh.elems,
        me: &backend.problem.elements.me,
        ke: &backend.problem.elements.ke,
        faces: &backend.problem.dashpots.faces,
        cb: &backend.problem.dashpots.cb,
        c_m: a.c_m,
        c_k: a.c_k,
        c_b: a.c_b,
        fixed: &backend.fixed,
    };
    let cached = hetsolve_sparse::EbeOperator::new(data, &backend.coloring, true);
    let compact = backend.ebe_a(1);
    let time = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..20 {
            f();
        }
        t0.elapsed().as_secs_f64() / 20.0
    };
    let tc = time(&mut || cached.apply(&x, &mut y));
    let tm = time(&mut || compact.apply(&x, &mut y));
    println!(
        "host measurement: cached {:.3} ms vs compact {:.3} ms per apply; memory {:.1} vs {:.1} MB",
        tc * 1e3,
        tm * 1e3,
        backend.problem.elements.bytes() as f64 / 1e6,
        backend.compact.bytes() as f64 / 1e6,
    );
}

fn ablate_coloring() {
    println!("\n===== ablation: colored parallel scatter vs sequential EBE =====\n");
    let backend = bench_backend(8, 8, 5);
    let n = backend.n_dofs();
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).sin()).collect();
    let mut y = vec![0.0; n];
    println!(
        "coloring: {} colors for {} elements (group sizes {:?})",
        backend.coloring.n_colors,
        backend.problem.model.mesh.n_elems(),
        backend.coloring.group_size_range()
    );
    let par = backend.ebe_a(1);
    let mut seq = backend.ebe_a(1);
    seq.parallel = false;
    let time = |op: &dyn LinearOperator, y: &mut Vec<f64>| {
        let t0 = Instant::now();
        for _ in 0..20 {
            op.apply(&x, y);
        }
        t0.elapsed().as_secs_f64() / 20.0
    };
    let tp = time(&par, &mut y);
    let ts = time(&seq, &mut y);
    println!(
        "host: sequential {:.3} ms, colored-parallel {:.3} ms ({:.2}x on {} threads)",
        ts * 1e3,
        tp * 1e3,
        ts / tp,
        rayon::current_num_threads()
    );
}

fn ablate_region_size() {
    println!("\n===== ablation: predictor region size (DOFs per MGS block) =====\n");
    let backend = bench_backend(6, 6, 4);
    println!(
        "{:>12} | {:>12} | {:>12}",
        "region_dofs", "init res", "iters@1e-8"
    );
    for region in [96usize, 384, 1536, usize::MAX / 2] {
        let cfg = StudyConfig {
            warmup_steps: 40,
            windows: vec![16],
            region_dofs: region.min(backend.n_dofs()),
            ..Default::default()
        };
        let study = convergence_study(&backend, &cfg);
        let dd = study.results.last().unwrap();
        println!(
            "{:>12} | {:>12.3e} | {:>12}",
            region.min(backend.n_dofs()),
            dd.initial_rel_res,
            dd.iterations
        );
    }
    println!("(small regions localize the map; very large regions approach a global POD)");
}

fn ablate_window() {
    println!("\n===== ablation: snapshot window s (accuracy vs predictor cost) =====\n");
    let backend = bench_backend(6, 6, 4);
    let cfg = StudyConfig {
        warmup_steps: 40,
        windows: vec![2, 4, 8, 16, 32],
        ..Default::default()
    };
    let study = convergence_study(&backend, &cfg);
    println!("{:<20} | {:>12} | {:>10}", "guess", "init res", "iters");
    for r in &study.results {
        println!(
            "{:<20} | {:>12.3e} | {:>10}",
            r.label, r.initial_rel_res, r.iterations
        );
    }
    println!("(larger s -> better guess but quadratically growing MGS cost: the Fig. 4 balance)");
}

fn ablate_partitioner() {
    println!("\n===== ablation: RCB vs greedy graph-growing partitioner =====\n");
    let backend = bench_backend(8, 8, 5);
    let mesh = &backend.problem.model.mesh;
    println!("{:>6} | {:>12} | {:>12}", "parts", "RCB cut", "greedy cut");
    for np in [2usize, 4, 8, 16] {
        let rcb = partition_rcb(mesh, np);
        let greedy = partition_greedy(mesh, np);
        println!(
            "{:>6} | {:>12} | {:>12}",
            np,
            edge_cut(mesh, &rcb),
            edge_cut(mesh, &greedy)
        );
    }
}

/// Block-Jacobi (GPU-friendly, the paper's choice) vs block-SSOR (better
/// convergence, sequential sweeps) — the "more sophisticated solvers"
/// future-work direction the paper names.
fn ablate_preconditioner() {
    println!("\n===== ablation: block-Jacobi vs block-SSOR preconditioner =====\n");
    let backend = bench_backend(6, 6, 4);
    let n = backend.n_dofs();
    let mut f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).sin()).collect();
    backend.problem.mask.project(&mut f);
    let cfg = hetsolve_sparse::CgConfig {
        tol: 1e-8,
        max_iter: 10_000,
        ..Default::default()
    };
    let a = backend.crs_a();
    let mut x1 = vec![0.0; n];
    let s_bj = hetsolve_sparse::pcg(a, &backend.precond, &f, &mut x1, &cfg);
    let ssor = hetsolve_sparse::BlockSsor::new(a);
    let mut x2 = vec![0.0; n];
    let s_ssor = hetsolve_sparse::pcg(a, &ssor, &f, &mut x2, &cfg);
    println!(
        "block-Jacobi: {} iterations; block-SSOR: {} iterations ({:.2}x fewer)",
        s_bj.iterations,
        s_ssor.iterations,
        s_bj.iterations as f64 / s_ssor.iterations as f64
    );
    use hetsolve_sparse::Preconditioner;
    println!(
        "but per-iteration preconditioner work: BJ {:.1} Mflop vs SSOR {:.1} Mflop (and SSOR's sweeps are sequential)",
        backend.precond.counts().flops / 1e6,
        ssor.counts().flops / 1e6
    );
    println!("(the paper's GPU baseline keeps block-Jacobi: it parallelizes trivially)");
}

/// Mixed-precision (f32) matrix storage for the cached EBE variant:
/// halves memory + matrix traffic; CG still converges to the f64 tolerance
/// since the operator perturbation is O(1e-7).
fn ablate_precision() {
    println!("\n===== ablation: f64 vs f32 cached-matrix storage =====\n");
    let backend = bench_backend(6, 6, 4);
    let a = backend.problem.a_coeffs();
    let store = hetsolve_sparse::EbeStore32::from_f64(
        &backend.problem.elements.me,
        &backend.problem.elements.ke,
        &backend.problem.dashpots.cb,
    );
    let op32 = hetsolve_sparse::EbeOperator32::new(
        backend.problem.n_nodes(),
        &backend.problem.model.mesh.elems,
        &store,
        &backend.problem.dashpots.faces,
        (a.c_m, a.c_k, a.c_b),
        &backend.fixed,
        &backend.coloring,
        true,
        1,
    );
    let f64_bytes = backend.problem.elements.bytes() + backend.problem.dashpots.cb.len() * 8;
    println!(
        "memory: f64 cached {:.1} MB vs f32 cached {:.1} MB",
        f64_bytes as f64 / 1e6,
        store.bytes() as f64 / 1e6
    );
    let ctx = ExecCtx::default();
    use hetsolve_sparse::MultiOperator;
    let t64 = kernel_time(
        &h100(),
        &hetsolve_sparse::ebe_counts(
            backend.problem.model.mesh.n_elems(),
            backend.problem.dashpots.n_faces(),
            backend.n_dofs(),
            1,
        ),
        &ctx,
    );
    let t32 = kernel_time(&h100(), &op32.counts(), &ctx);
    println!(
        "modeled H100 apply: f64 {:.4} ms vs f32 {:.4} ms",
        t64 * 1e3,
        t32 * 1e3
    );
    // convergence check: solve one system with both operators
    let n = backend.n_dofs();
    let mut f: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.2).sin()).collect();
    backend.problem.mask.project(&mut f);
    let cfg = hetsolve_sparse::CgConfig {
        tol: 1e-8,
        max_iter: 10_000,
        ..Default::default()
    };
    let mut x64 = vec![0.0; n];
    let s64 = hetsolve_sparse::pcg(&backend.ebe_a(1), &backend.precond, &f, &mut x64, &cfg);
    let mut x32 = vec![0.0; n];
    let s32 = hetsolve_sparse::mcg(&op32, &backend.precond, &f, &mut x32, &cfg);
    let max_diff = x64
        .iter()
        .zip(&x32)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    let scale = x64.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    println!(
        "CG iterations: f64 {} vs f32 {}; solution rel. difference {:.2e}",
        s64.iterations,
        s32.fused_iterations,
        max_diff / scale.max(1e-300)
    );
    println!("(both refine to eps=1e-8 of their operator; the f32 operator differs by O(1e-7))");
}

fn ablate_fusing() {
    println!("\n===== ablation: multi-RHS fusing degree r (modeled H100, paper scale) =====\n");
    println!("{:>3} | {:>14} | {:>14}", "r", "time/case (ms)", "vs r=1");
    let ctx = ExecCtx::default();
    let t1 = kernel_time(
        &h100(),
        &compact_ebe_counts(11_365_697, 145_920, 46_529_709, 1),
        &ctx,
    );
    for r in [1usize, 2, 4, 8] {
        let c = compact_ebe_counts(11_365_697, 145_920, 46_529_709, r);
        let t = kernel_time(&h100(), &c, &ctx) / r as f64;
        println!("{:>3} | {:>14.3} | {:>13.2}x", r, t * 1e3, t1 / t);
    }
    println!("(the paper measures 1.91x from EBE to EBE4; gains saturate as the kernel");
    println!(" becomes compute-bound — the reason the paper stops at r=4)");
}
