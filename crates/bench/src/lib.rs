//! # hetsolve-bench
//!
//! Shared helpers for the benchmark harnesses that regenerate every table
//! and figure of the paper's evaluation section (see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured records):
//!
//! * `benches/tables.rs` — Tables 1–4 (`cargo bench --bench tables`),
//! * `benches/figures.rs` — Figs. 1, 3, 4, 5 (`cargo bench --bench figures`),
//! * `benches/kernels.rs` — criterion microbenchmarks of the real host
//!   kernels (CRS vs EBE vs EBE-multi-RHS, predictor, FFT),
//! * `benches/ablation.rs` — design-choice ablations (cached vs compact
//!   EBE, coloring, region size, window size, partitioners).

use hetsolve_core::Backend;
use hetsolve_fem::{FemProblem, RandomLoadSpec};
use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

/// The standard benchmark model: a scaled version of the paper's
/// horizontally stratified model a.
pub fn bench_spec(nx: usize, ny: usize, nz: usize) -> GroundModelSpec {
    GroundModelSpec::paper_like(nx, ny, nz, InterfaceShape::Stratified)
}

/// Backend for application-level benches (with CRS matrices).
pub fn bench_backend(nx: usize, ny: usize, nz: usize) -> Backend {
    Backend::new(FemProblem::paper_like(&bench_spec(nx, ny, nz)), true, true)
}

/// Load used across application benches: impulses early, free vibration
/// after (the paper's setting).
pub fn bench_load() -> RandomLoadSpec {
    RandomLoadSpec {
        n_sources: 16,
        impulses_per_source: 3.0,
        amplitude: 1e6,
        active_window: 0.12,
    }
}

/// Return the requested section filter from `cargo bench -- <filter>`.
pub fn section_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "bench")
}

/// Should section `name` run under the filter?
pub fn should_run(name: &str) -> bool {
    match section_filter() {
        None => true,
        Some(f) => name.contains(&f),
    }
}
