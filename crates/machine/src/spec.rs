//! Hardware profiles of the paper's measurement environments (Table 1),
//! plus the calibrated kernel-efficiency constants of the performance model.
//!
//! The *model form* is a first-order roofline with a separate
//! transaction-issue term (see [`crate::roofline`]); the constants below are
//! calibrated once against the paper's Table 2 kernel microbenchmarks and
//! then reused unchanged for every experiment, so all relative comparisons
//! (Tables 3/4, Figs. 4/5) are genuine model predictions.

/// A compute device (one Grace CPU or one H100 GPU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Peak FP64 throughput (FLOP/s).
    pub flops_peak: f64,
    /// Peak memory bandwidth (B/s).
    pub mem_bw: f64,
    /// Memory capacity (bytes).
    pub mem_capacity: u64,
    /// Core count (CPU thread scaling; 0 for GPUs).
    pub n_cores: usize,
    /// Achievable fraction of `flops_peak` for fused FE kernels.
    pub eff_flops: f64,
    /// Achievable fraction of `mem_bw` for streaming kernels.
    pub eff_stream: f64,
    /// Gather/scatter transactions retired per second at full device.
    pub txn_rate: f64,
    /// Idle power (W) attributed to this device (+ its memory).
    pub idle_power: f64,
    /// Additional power (W) at full utilization.
    pub active_power: f64,
}

/// CPU↔GPU link (NVLink-C2C on GH200).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth per direction (B/s).
    pub bw: f64,
    /// Per-transfer latency (s).
    pub latency: f64,
}

/// One GH200 module: a Grace CPU + an H100 GPU + their C2C link, under an
/// optional module power cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleSpec {
    pub name: &'static str,
    pub cpu: DeviceSpec,
    pub gpu: DeviceSpec,
    pub link: LinkSpec,
    /// Module power cap (W); `f64::INFINITY` when effectively uncapped.
    pub power_cap: f64,
}

/// A compute node: one or more modules plus the inter-node interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    pub name: &'static str,
    pub module: ModuleSpec,
    pub modules_per_node: usize,
    /// Inter-node interconnect bandwidth per module (B/s).
    pub interconnect_bw: f64,
    /// Interconnect message latency (s).
    pub interconnect_latency: f64,
}

/// Grace CPU of the single-GH200 node: 72 cores, 3.57 TFLOPS, 480 GB
/// LPDDR5X at 384 GB/s.
pub fn grace_480() -> DeviceSpec {
    DeviceSpec {
        name: "Grace (480 GB)",
        flops_peak: 3.57e12,
        mem_bw: 384e9,
        mem_capacity: 480_000_000_000,
        n_cores: 72,
        eff_flops: 0.50,
        eff_stream: 0.55, // Table 2: CRS@CPU reaches 54.6 % of peak BW
        txn_rate: 2.2e10, // ~3e8 gathers/s/core x 72 cores
        idle_power: 100.0,
        active_power: 150.0, // 327 W module - 76 W GPU idle - ~100 W base
    }
}

/// Grace CPU of an Alps GH200-NVL4 module: 72 cores, 128 GB at 512 GB/s.
pub fn grace_alps() -> DeviceSpec {
    DeviceSpec {
        mem_bw: 512e9,
        mem_capacity: 128_000_000_000,
        name: "Grace (Alps, 128 GB)",
        ..grace_480()
    }
}

/// H100 GPU (96 GB HBM3): 34 TFLOPS FP64, 4 TB/s.
pub fn h100() -> DeviceSpec {
    DeviceSpec {
        name: "H100 (96 GB)",
        flops_peak: 34e12,
        mem_bw: 4e12,
        mem_capacity: 96_000_000_000,
        n_cores: 0,
        // Table 2: EBE4 sustains 53.3 % of peak with gather overhead on
        // top; the pipeline efficiency without that overhead calibrates to
        // ~0.72 (see DESIGN.md / roofline tests).
        eff_flops: 0.72,
        eff_stream: 0.51, // Table 2: CRS@GPU reaches 51.0 % of peak BW
        txn_rate: 2.5e11,
        idle_power: 76.0,    // Table 3: GPU power of CRS-CG@CPU
        active_power: 560.0, // ~636 W at full load (Table 3: 608-652 W)
    }
}

/// NVLink-C2C: 900 GB/s bidirectional => 450 GB/s per direction.
pub fn nvlink_c2c() -> LinkSpec {
    LinkSpec {
        bw: 450e9,
        latency: 5e-6,
    }
}

/// The single-GH200 node of §3.3 (1000 W cap: CPU and GPU can run at full
/// clocks simultaneously, so the cap never binds).
pub fn single_gh200() -> NodeSpec {
    NodeSpec {
        name: "single-GH200",
        module: ModuleSpec {
            name: "GH200 (480 GB)",
            cpu: grace_480(),
            gpu: h100(),
            link: nvlink_c2c(),
            power_cap: 1000.0,
        },
        modules_per_node: 1,
        interconnect_bw: f64::INFINITY,
        interconnect_latency: 0.0,
    }
}

/// One Alps (GH200 NVL4) node of §3.4: 4 modules, 634 W cap per module,
/// 24 GB/s interconnect per module.
pub fn alps_node() -> NodeSpec {
    NodeSpec {
        name: "Alps (GH200 NVL4)",
        module: ModuleSpec {
            name: "GH200 (Alps)",
            cpu: grace_alps(),
            gpu: h100(),
            link: nvlink_c2c(),
            power_cap: 634.0,
        },
        modules_per_node: 4,
        interconnect_bw: 24e9,
        interconnect_latency: 2e-6,
    }
}

impl DeviceSpec {
    /// Fraction of peak flop/issue throughput available with `threads`
    /// active threads (CPUs; GPUs always return 1).
    pub fn thread_frac(&self, threads: usize) -> f64 {
        if self.n_cores == 0 {
            1.0
        } else {
            (threads.min(self.n_cores) as f64) / self.n_cores as f64
        }
    }

    /// Fraction of peak bandwidth with `threads` active threads: CPU memory
    /// bandwidth saturates well below full core count (t/(t+12), normalized
    /// to 1 at all cores).
    pub fn bw_frac(&self, threads: usize) -> f64 {
        if self.n_cores == 0 {
            return 1.0;
        }
        let t = threads.min(self.n_cores) as f64;
        let full = self.n_cores as f64;
        (t / (t + 12.0)) / (full / (full + 12.0))
    }

    /// Power drawn at utilization `u` in [0,1]: idle + u * active.
    pub fn power(&self, u: f64) -> f64 {
        self.idle_power + u.clamp(0.0, 1.0) * self.active_power
    }

    /// Power drawn with a subset of cores busy (CPU thread sweep of
    /// Table 4).
    pub fn power_threads(&self, threads: usize) -> f64 {
        if self.n_cores == 0 {
            self.power(1.0)
        } else {
            self.power(threads.min(self.n_cores) as f64 / self.n_cores as f64)
        }
    }
}

impl ModuleSpec {
    /// GPU clock factor under the module power cap when the CPU draws
    /// `cpu_power` W: the GPU gets whatever headroom remains (Alps behavior;
    /// §3.4 "power cap of 634 W per module, leading to lower GPU clocks at
    /// high CPU loads").
    pub fn gpu_throttle(&self, cpu_power: f64) -> f64 {
        if !self.power_cap.is_finite() {
            return 1.0;
        }
        let gpu_full = self.gpu.idle_power + self.gpu.active_power;
        let headroom = self.power_cap - cpu_power;
        (headroom / gpu_full).clamp(0.1, 1.0)
    }
}

/// Render Table 1 ("measurement environment") from the encoded profiles.
pub fn format_table1() -> String {
    let mut s = String::new();
    s.push_str(
        "System              | modules | CPU (FP64 peak, mem)           | GPU (FP64 peak, mem)        | cap/module | interconnect\n",
    );
    s.push_str(
        "--------------------+---------+--------------------------------+-----------------------------+------------+-------------\n",
    );
    for node in [single_gh200(), alps_node()] {
        let m = &node.module;
        s.push_str(&format!(
            "{:<19} | {:>7} | {:.2} TFLOPS, {:>3.0} GB ({:>3.0} GB/s) | {:.0} TFLOPS, {:.0} GB ({:.0} GB/s) | {:>6.0} W   | {}\n",
            node.name,
            node.modules_per_node,
            m.cpu.flops_peak / 1e12,
            m.cpu.mem_capacity as f64 / 1e9,
            m.cpu.mem_bw / 1e9,
            m.gpu.flops_peak / 1e12,
            m.gpu.mem_capacity as f64 / 1e9,
            m.gpu.mem_bw / 1e9,
            m.power_cap,
            if node.interconnect_bw.is_finite() {
                format!("{:.0} GB/s", node.interconnect_bw / 1e9)
            } else {
                "not used".into()
            }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let g = single_gh200();
        assert_eq!(g.module.cpu.mem_capacity, 480_000_000_000);
        assert_eq!(g.module.gpu.mem_capacity, 96_000_000_000);
        assert!((g.module.cpu.flops_peak - 3.57e12).abs() < 1e9);
        assert!((g.module.gpu.flops_peak - 34e12).abs() < 1e9);
        assert_eq!(g.module.power_cap, 1000.0);
        let a = alps_node();
        assert_eq!(a.modules_per_node, 4);
        assert_eq!(a.module.cpu.mem_capacity, 128_000_000_000);
        assert!((a.module.cpu.mem_bw - 512e9).abs() < 1.0);
        assert_eq!(a.module.power_cap, 634.0);
        assert!((a.interconnect_bw - 24e9).abs() < 1.0);
    }

    #[test]
    fn cpu_memory_ratio_is_5x() {
        // paper: "CPU memory capacity ... 480/96 = 5 times larger"
        let g = single_gh200();
        assert_eq!(g.module.cpu.mem_capacity / g.module.gpu.mem_capacity, 5);
    }

    #[test]
    fn link_is_quarter_of_gpu_bw() {
        // paper: 900 GB/s bidirectional ≈ 1/4 of 4 TB/s
        let g = single_gh200();
        let ratio = (2.0 * g.module.link.bw) / g.module.gpu.mem_bw;
        assert!((ratio - 0.225).abs() < 0.01);
    }

    #[test]
    fn thread_scaling_monotone() {
        let c = grace_480();
        assert!(c.thread_frac(72) == 1.0);
        assert!(c.thread_frac(36) == 0.5);
        assert!(c.bw_frac(72) == 1.0);
        assert!(c.bw_frac(16) < c.bw_frac(36));
        assert!(c.bw_frac(16) > 0.5); // BW saturates sublinearly
        let g = h100();
        assert_eq!(g.thread_frac(1), 1.0);
        assert_eq!(g.bw_frac(1), 1.0);
    }

    #[test]
    fn throttle_behaviour() {
        let m = alps_node().module;
        // CPU at full load (250 W): GPU throttled
        let f_hi = m.gpu_throttle(250.0);
        let f_lo = m.gpu_throttle(134.0);
        assert!(f_hi < f_lo);
        assert!(f_lo < 1.0); // 634 W cap binds even at 16 threads
        let un = single_gh200().module;
        assert_eq!(un.gpu_throttle(250.0), 1.0); // 1000 W cap never binds
    }

    #[test]
    fn power_model_matches_table3_anchors() {
        let m = single_gh200().module;
        // CRS-CG@CPU: CPU busy, GPU idle => ~327 W
        let p1 = m.cpu.power(1.0) + m.gpu.power(0.0);
        assert!((p1 - 327.0).abs() < 30.0, "CPU-only module power {p1}");
        // CRS-CG@GPU: GPU busy, CPU idle => ~709 W
        let p2 = m.cpu.power(0.0) + m.gpu.power(1.0);
        assert!((p2 - 709.0).abs() < 40.0, "GPU-only module power {p2}");
        // EBE-MCG@CPU-GPU: both busy => ~877 W
        let p3 = m.cpu.power(1.0) + m.gpu.power(1.0);
        assert!((p3 - 877.0).abs() < 50.0, "both-busy module power {p3}");
    }

    #[test]
    fn table1_formatting() {
        let t = format_table1();
        assert!(t.contains("single-GH200"));
        assert!(t.contains("Alps"));
        assert!(t.contains("not used"));
    }
}
