//! Memory-footprint accounting for the four methods, evaluable at any
//! problem scale — this regenerates the CPU/GPU memory-usage columns of
//! Tables 3 and 4 without allocating paper-scale arrays.

/// Structural dimensions of a discretized problem.
#[derive(Debug, Clone, Copy)]
pub struct ProblemDims {
    pub n_nodes: u64,
    pub n_elems: u64,
    /// Absorbing-boundary faces.
    pub n_faces: u64,
    /// Stored 3×3 blocks of the assembled matrix.
    pub nnz_blocks: u64,
}

impl ProblemDims {
    pub fn n_dofs(&self) -> u64 {
        3 * self.n_nodes
    }

    /// The paper's model a (§3.1): 15,509,903 nodes / 11,365,697 elements,
    /// 46.5M unknowns. Block count from the measured Tet10 stencil
    /// (~27 blocks/row); side faces estimated from the 950×950×120 m box at
    /// 2.5 m resolution.
    pub fn paper_model_a() -> Self {
        ProblemDims {
            n_nodes: 15_509_903,
            n_elems: 11_365_697,
            n_faces: 4 * 2 * 380 * 48, // 4 sides x 2 tris x (950/2.5)x(120/2.5)
            nnz_blocks: 27 * 15_509_903,
        }
    }
}

/// Memory usage of one configuration (bytes).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemUsage {
    pub cpu: u64,
    pub gpu: u64,
}

const F: u64 = 8; // f64

/// Fixed GPU runtime overhead (driver/runtime context, staging buffers).
const GPU_RUNTIME: u64 = 6_000_000_000;

/// Mesh storage: coordinates + connectivity + materials.
fn mesh_bytes(d: &ProblemDims) -> u64 {
    d.n_nodes * 24 + d.n_elems * (40 + 2) + d.n_faces * 24
}

/// Assembled 3×3 BCRS bytes (blocks + indices).
fn bcrs_bytes(d: &ProblemDims) -> u64 {
    d.nnz_blocks * 76 + d.n_nodes * 8
}

/// Solver vector set (x, r, z, p, q + u, v, a, f + AB history ≈ 13 vectors).
fn vectors_bytes(d: &ProblemDims, cases: u64) -> u64 {
    13 * d.n_dofs() * F * cases
}

/// Data-driven snapshot history: the predictor stores the input (`F`) and
/// output (`X`) series of Eq. (3) plus correction working storage — about
/// 2.5 vectors per retained step per case.
fn snapshot_bytes(d: &ProblemDims, s: usize, cases: u64) -> u64 {
    5 * (s as u64 + 1) * d.n_dofs() * F * cases / 2
}

/// CRS-CG@CPU: matrix A + mass matrix M (for the RHS recurrences) + vectors
/// + mesh, all in CPU memory.
pub fn crs_cg_cpu(d: &ProblemDims) -> MemUsage {
    MemUsage {
        cpu: 2 * bcrs_bytes(d) + vectors_bytes(d, 1) + mesh_bytes(d),
        gpu: 0,
    }
}

/// CRS-CG@GPU: matrices + vectors on the GPU; CPU keeps the mesh and an
/// assembly staging copy of A.
pub fn crs_cg_gpu(d: &ProblemDims) -> MemUsage {
    MemUsage {
        // host side keeps the assembly image of both matrices (the paper's
        // CRS-CG@GPU shows 104 GB of CPU memory in use)
        cpu: 2 * bcrs_bytes(d) + mesh_bytes(d) + vectors_bytes(d, 1),
        gpu: bcrs_bytes(d) + vectors_bytes(d, 1) + GPU_RUNTIME,
    }
}

/// CRS-CG@CPU-GPU (Algorithm 4): 2 processes × 1 case; GPU holds the
/// matrices + both cases' vectors, CPU holds snapshots for the predictor.
pub fn crs_cg_cpu_gpu(d: &ProblemDims, s: usize) -> MemUsage {
    MemUsage {
        cpu: 2 * bcrs_bytes(d) + mesh_bytes(d) + vectors_bytes(d, 2) + snapshot_bytes(d, s, 2),
        gpu: bcrs_bytes(d) + vectors_bytes(d, 2) + GPU_RUNTIME,
    }
}

/// EBE-MCG@CPU-GPU (Algorithm 3): 2 processes × r cases; GPU holds only the
/// compact element data (~168 B/element) + all cases' vectors; CPU holds
/// the snapshot histories of all 2r cases.
pub fn ebe_mcg_cpu_gpu(d: &ProblemDims, s: usize, r: u64) -> MemUsage {
    let compact = d.n_elems * (16 * F + 40) + d.n_faces * (171 * F + 24);
    MemUsage {
        cpu: mesh_bytes(d) + vectors_bytes(d, 2 * r) + snapshot_bytes(d, s, 2 * r),
        gpu: compact + vectors_bytes(d, 2 * r) + GPU_RUNTIME,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn d() -> ProblemDims {
        ProblemDims::paper_model_a()
    }

    #[test]
    fn crs_cpu_memory_near_table3() {
        // paper: 56.9 GB
        let m = crs_cg_cpu(&d());
        let gb = m.cpu as f64 / GB;
        assert!((45.0..80.0).contains(&gb), "CRS-CG@CPU cpu mem {gb} GB");
        assert_eq!(m.gpu, 0);
    }

    #[test]
    fn crs_gpu_memory_near_table3() {
        // paper: 44.9 GB GPU
        let m = crs_cg_gpu(&d());
        let gb = m.gpu as f64 / GB;
        assert!((40.0..80.0).contains(&gb), "CRS-CG@GPU gpu mem {gb} GB");
    }

    #[test]
    fn ebe_gpu_memory_fits_8_cases() {
        // paper: 60.5 GB GPU for 2x4 cases — CRS could not even fit 2 cases
        let m = ebe_mcg_cpu_gpu(&d(), 32, 4);
        let gb = m.gpu as f64 / GB;
        assert!((30.0..90.0).contains(&gb), "EBE-MCG gpu mem {gb} GB");
        assert!(m.gpu < 96_000_000_000, "must fit in H100 memory");
        // CRS with 8 cases would blow past the GPU:
        let crs8 = 2 * bcrs_bytes(&d()) + vectors_bytes(&d(), 8);
        assert!(crs8 > 96_000_000_000);
    }

    #[test]
    fn ebe_cpu_memory_near_table3() {
        // paper: 340 GB of the 480 GB CPU memory with s = 32
        let m = ebe_mcg_cpu_gpu(&d(), 32, 4);
        let gb = m.cpu as f64 / GB;
        assert!((250.0..450.0).contains(&gb), "EBE-MCG cpu mem {gb} GB");
        assert!(m.cpu < 480_000_000_000);
    }

    #[test]
    fn alps_memory_limits_window_to_11() {
        // paper: only 11 steps fit in the 128 GB Alps module
        let dims = d();
        let fits = |s: usize| ebe_mcg_cpu_gpu(&dims, s, 4).cpu < 128_000_000_000;
        assert!(fits(8), "s=8 should fit");
        assert!(!fits(14), "s=14 must not fit on Alps");
        assert!(!fits(32), "s=32 must not fit on Alps");
    }

    #[test]
    fn snapshots_dominate_ebe_cpu_memory() {
        let dims = d();
        let m = ebe_mcg_cpu_gpu(&dims, 32, 4);
        assert!(snapshot_bytes(&dims, 32, 8) as f64 > 0.7 * m.cpu as f64);
    }

    #[test]
    fn memory_ordering_matches_paper() {
        // Table 3 CPU memory: CRS@CPU < CRS@GPU(host side) < CPU-GPU < EBE-MCG
        let dims = d();
        let a = crs_cg_cpu(&dims).cpu;
        let c = crs_cg_cpu_gpu(&dims, 32).cpu;
        let e = ebe_mcg_cpu_gpu(&dims, 32, 4).cpu;
        assert!(a < c && c < e);
        // GPU memory: EBE fits more cases in comparable space
        let g_crs = crs_cg_gpu(&dims).gpu;
        let g_ebe = ebe_mcg_cpu_gpu(&dims, 32, 4).gpu;
        // 8x the cases in less than 2.5x the memory
        assert!(g_ebe < g_crs * 5 / 2);
    }
}
