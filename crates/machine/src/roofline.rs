//! Roofline + transaction-issue time model.
//!
//! Modeled time of one kernel invocation with counts `c` on device `d`
//! using `t` threads (CPUs) at clock factor `f` (power-cap throttle):
//!
//! ```text
//! t_flops = c.flops / (eff_flops · peak · thread_frac · f)
//! t_mem   = (c.bytes_stream + c.bytes_rand) / (eff_stream · bw · bw_frac · f^0.5)
//! t_txn   = c.rand_transactions / (txn_rate · thread_frac · f)
//! time    = max(t_flops, t_mem) + t_txn
//! ```
//!
//! Compute and memory pipelines overlap (the `max`), while address
//! generation / issue overhead of gathers adds on top — this reproduces the
//! paper's Table 2: CRS kernels land on the bandwidth roof, the EBE kernel
//! on the compute roof, and fusing r right-hand sides amortizes `t_txn`
//! per case by 1/r (memory clocks are less throttle-sensitive than core
//! clocks, hence `f^0.5` on the bandwidth term).

use hetsolve_sparse::KernelCounts;

use crate::spec::DeviceSpec;

/// Execution context of a kernel on a device.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx {
    /// Active threads (ignored on GPUs).
    pub threads: usize,
    /// Clock factor from power capping (1.0 = full clocks).
    pub clock: f64,
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx {
            threads: usize::MAX,
            clock: 1.0,
        }
    }
}

/// Modeled execution time (seconds) of one kernel invocation.
pub fn kernel_time(d: &DeviceSpec, c: &KernelCounts, ctx: &ExecCtx) -> f64 {
    let tf = d.thread_frac(ctx.threads.min(d.n_cores.max(1)));
    let bf = d.bw_frac(ctx.threads);
    let f = ctx.clock.clamp(0.05, 1.0);
    let t_flops = c.flops / (d.eff_flops * d.flops_peak * tf * f);
    let t_mem = (c.bytes_stream + c.bytes_rand) / (d.eff_stream * d.mem_bw * bf * f.sqrt());
    let t_txn = c.rand_transactions / (d.txn_rate * tf * f);
    t_flops.max(t_mem) + t_txn
}

/// Effective FLOP/s of the invocation (for Table 2's "TFLOPS" column).
pub fn achieved_flops(d: &DeviceSpec, c: &KernelCounts, ctx: &ExecCtx) -> f64 {
    c.flops / kernel_time(d, c, ctx)
}

/// Effective DRAM bandwidth of the invocation (Table 2's "Mem. bandwidth").
pub fn achieved_bw(d: &DeviceSpec, c: &KernelCounts, ctx: &ExecCtx) -> f64 {
    (c.bytes_stream + c.bytes_rand) / kernel_time(d, c, ctx)
}

/// Modeled time of a CPU↔GPU transfer of `bytes` over a link.
pub fn transfer_time(link: &crate::spec::LinkSpec, bytes: f64) -> f64 {
    link.latency + bytes / link.bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{grace_480, h100};
    use hetsolve_sparse::ebe::ebe_counts;

    /// Counts for the paper-scale model a: 11,365,697 elements,
    /// 15,509,903 nodes (46.5M DOF), ~27 blocks per row.
    fn paper_crs_counts() -> KernelCounts {
        let nodes = 15_509_903f64;
        let nnzb = nodes * 27.0;
        KernelCounts {
            flops: 18.0 * nnzb,
            bytes_stream: nnzb * 76.0 + nodes * 24.0 + nodes * 8.0,
            bytes_rand: 2.0 * nodes * 24.0,
            rand_transactions: nnzb,
            rhs_fused: 1,
        }
    }

    fn paper_compact_ebe(r: usize) -> KernelCounts {
        // compact_ebe_counts lives in hetsolve-fem (not a machine dep);
        // replicate its formula for the calibration check.
        let ne = 11_365_697f64;
        let ndofs = 46_529_709f64;
        let rf = r as f64;
        KernelCounts {
            flops: ne * (960.0 + 2800.0 * rf),
            bytes_stream: ne * (16.0 * 8.0 + 40.0),
            bytes_rand: 2.0 * 2.0 * ndofs * 8.0 * rf,
            rand_transactions: 2.0 * ne * 30.0,
            rhs_fused: r,
        }
    }

    /// Table 2 calibration: modeled kernel times must match the paper's
    /// measurements within 35 % (the model is first-order; what matters is
    /// that every *ratio* the paper reports is reproduced, checked below).
    #[test]
    fn table2_crs_cpu_time() {
        let t = kernel_time(&grace_480(), &paper_crs_counts(), &ExecCtx::default());
        let paper = 0.163;
        assert!(
            (t / paper - 1.0).abs() < 0.35,
            "CRS@CPU modeled {t:.4} s vs paper {paper} s"
        );
    }

    #[test]
    fn table2_crs_gpu_time() {
        let t = kernel_time(&h100(), &paper_crs_counts(), &ExecCtx::default());
        let paper = 0.0168;
        assert!(
            (t / paper - 1.0).abs() < 0.35,
            "CRS@GPU modeled {t:.5} s vs paper {paper} s"
        );
    }

    #[test]
    fn table2_ebe_gpu_time() {
        let t = kernel_time(&h100(), &paper_compact_ebe(1), &ExecCtx::default());
        let paper = 0.00456;
        assert!(
            (t / paper - 1.0).abs() < 0.35,
            "EBE@GPU modeled {t:.6} s vs paper {paper} s"
        );
    }

    #[test]
    fn table2_ebe4_gpu_time_per_case() {
        let t = kernel_time(&h100(), &paper_compact_ebe(4), &ExecCtx::default()) / 4.0;
        let paper = 0.00239;
        assert!(
            (t / paper - 1.0).abs() < 0.35,
            "EBE4@GPU modeled {t:.6} s/case vs paper {paper} s"
        );
    }

    /// The paper's headline kernel ratios.
    #[test]
    fn table2_ratios() {
        let ctx = ExecCtx::default();
        let crs_cpu = kernel_time(&grace_480(), &paper_crs_counts(), &ctx);
        let crs_gpu = kernel_time(&h100(), &paper_crs_counts(), &ctx);
        let ebe_gpu = kernel_time(&h100(), &paper_compact_ebe(1), &ctx);
        let ebe4_gpu = kernel_time(&h100(), &paper_compact_ebe(4), &ctx) / 4.0;
        // CPU -> GPU CRS speedup ~ 9.7x (bandwidth ratio); paper: 163/16.8 = 9.7
        let s1 = crs_cpu / crs_gpu;
        assert!((7.0..13.0).contains(&s1), "CRS CPU/GPU speedup {s1}");
        // CRS -> EBE on GPU: paper 16.8/4.56 = 3.68x
        let s2 = crs_gpu / ebe_gpu;
        assert!((2.5..5.5).contains(&s2), "CRS->EBE speedup {s2}");
        // EBE -> EBE4 per case: paper 4.56/2.39 = 1.91x
        let s3 = ebe_gpu / ebe4_gpu;
        assert!((1.4..2.6).contains(&s3), "EBE->EBE4 speedup {s3}");
    }

    #[test]
    fn crs_kernels_sit_on_bandwidth_roof() {
        let ctx = ExecCtx::default();
        let c = paper_crs_counts();
        for d in [grace_480(), h100()] {
            let bw = achieved_bw(&d, &c, &ctx);
            let frac = bw / d.mem_bw;
            assert!((0.3..0.6).contains(&frac), "{}: BW fraction {frac}", d.name);
            let fl = achieved_flops(&d, &c, &ctx) / d.flops_peak;
            assert!(fl < 0.05, "{}: flops fraction {fl}", d.name);
        }
    }

    #[test]
    fn ebe_kernel_sits_on_compute_roof() {
        let ctx = ExecCtx::default();
        let c = paper_compact_ebe(4);
        let d = h100();
        let fl = achieved_flops(&d, &c, &ctx) / d.flops_peak;
        assert!((0.35..0.72).contains(&fl), "EBE4 flops fraction {fl}");
        let bw = achieved_bw(&d, &c, &ctx) / d.mem_bw;
        assert!(bw < 0.25, "EBE4 BW fraction {bw}");
    }

    #[test]
    fn throttling_slows_kernels() {
        let c = paper_compact_ebe(4);
        let d = h100();
        let full = kernel_time(
            &d,
            &c,
            &ExecCtx {
                threads: usize::MAX,
                clock: 1.0,
            },
        );
        let thr = kernel_time(
            &d,
            &c,
            &ExecCtx {
                threads: usize::MAX,
                clock: 0.7,
            },
        );
        assert!(thr > full * 1.2 && thr < full / 0.55);
    }

    #[test]
    fn cpu_thread_scaling() {
        let c = paper_crs_counts();
        let d = grace_480();
        let t72 = kernel_time(
            &d,
            &c,
            &ExecCtx {
                threads: 72,
                clock: 1.0,
            },
        );
        let t16 = kernel_time(
            &d,
            &c,
            &ExecCtx {
                threads: 16,
                clock: 1.0,
            },
        );
        assert!(t16 > t72);
        // bandwidth-bound kernel: 16 threads lose less than 4.5x
        assert!(t16 < 2.5 * t72);
    }

    #[test]
    fn multi_rhs_amortizes_transactions() {
        let d = h100();
        let ctx = ExecCtx::default();
        let per_case_1 = kernel_time(&d, &ebe_counts(1_000_000, 0, 4_000_000, 1), &ctx);
        let per_case_4 = kernel_time(&d, &ebe_counts(1_000_000, 0, 4_000_000, 4), &ctx) / 4.0;
        assert!(per_case_4 < per_case_1, "{per_case_4} !< {per_case_1}");
    }

    #[test]
    fn transfer_time_model() {
        let link = crate::spec::nvlink_c2c();
        let t = transfer_time(&link, 450e9 * 0.001);
        assert!((t - (0.001 + 5e-6)).abs() < 1e-12);
    }
}
