//! # hetsolve-machine
//!
//! Heterogeneous machine model for the `hetsolve` reproduction of the SC24
//! paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.).
//!
//! We do not have a GH200 or the Alps supercomputer; per the substitution
//! strategy in `DESIGN.md`, all numerics run for real on the host while
//! wall-clock and energy are produced by this crate's calibrated,
//! first-order hardware model:
//!
//! * [`spec`] — Table-1 device/link/node profiles plus calibrated kernel
//!   efficiencies (provenance: the paper's Table 2 microbenchmarks),
//! * [`roofline`] — kernel time = roofline max(compute, memory) + a
//!   gather-transaction issue term; validated against every Table 2 row,
//! * [`clock`] — overlapped CPU/GPU virtual timelines with energy
//!   integration and the Alps module power-cap GPU throttle,
//! * [`cluster`] — inter-GPU halo-exchange and weak-scaling model (Fig. 5),
//! * [`memory`] — method memory footprints at paper scale (Tables 3/4).

#![forbid(unsafe_code)]

pub mod clock;
pub mod cluster;
pub mod memory;
pub mod roofline;
pub mod spec;

pub use clock::{
    ClockState, EnergyReport, LaneKind, LaneSpan, ManualClock, ModuleClock, SharedManualClock,
    SystemClock, WallClock,
};
pub use cluster::{
    box_halo_pattern, halo_exchange_time, link_transfer_time, weak_scaling_efficiency,
    weak_scaling_step_time, HaloPattern, LinkTraffic,
};
pub use memory::{crs_cg_cpu, crs_cg_cpu_gpu, crs_cg_gpu, ebe_mcg_cpu_gpu, MemUsage, ProblemDims};
pub use roofline::{achieved_bw, achieved_flops, kernel_time, transfer_time, ExecCtx};
pub use spec::{
    alps_node, format_table1, grace_480, grace_alps, h100, nvlink_c2c, single_gh200, DeviceSpec,
    LinkSpec, ModuleSpec, NodeSpec,
};
