//! Multi-node cluster model: inter-GPU halo exchange and weak-scaling
//! prediction (the paper's Fig. 2 execution scheme and Fig. 5 measurement).
//!
//! Per CG iteration each partition exchanges its interface ("shared node")
//! values with its neighbours over the interconnect (GPUDirect in the
//! paper: GPU↔GPU without staging through the CPU). The predictor needs no
//! communication at all — the key reason the method weak-scales at 94.3 %.

use crate::spec::NodeSpec;

/// Communication pattern of one partition: bytes per neighbour.
#[derive(Debug, Clone, Default)]
pub struct HaloPattern {
    /// For each neighbour: bytes exchanged per CG iteration (per case).
    pub neighbor_bytes: Vec<f64>,
}

impl HaloPattern {
    pub fn total_bytes(&self) -> f64 {
        self.neighbor_bytes.iter().sum()
    }

    pub fn n_neighbors(&self) -> usize {
        self.neighbor_bytes.len()
    }
}

/// Modeled time of one halo exchange for a partition on a node.
///
/// Messages to different neighbours are serialized on the module's NIC
/// (bandwidth shared), each paying the interconnect latency; an extra
/// synchronization latency models the collective nature of the exchange.
pub fn halo_exchange_time(node: &NodeSpec, pattern: &HaloPattern) -> f64 {
    if pattern.neighbor_bytes.is_empty() || !node.interconnect_bw.is_finite() {
        return 0.0;
    }
    let bw_time = pattern.total_bytes() / node.interconnect_bw;
    let lat = node.interconnect_latency * (pattern.n_neighbors() as f64 + 1.0);
    bw_time + lat
}

/// Fraction of halo-exchange time hidden behind interior computation.
///
/// The paper's Algorithm 3 synchronizes point-to-point around each
/// exchange (GPUDirect, but no boundary/interior overlap is described), so
/// the default model keeps exchanges fully visible.
pub const COMM_OVERLAP: f64 = 0.0;

/// Weak-scaling model: per-step time on `p` modules given the single-module
/// compute time per step, the iteration count, and the (worst-partition)
/// halo pattern. Compute time is assumed constant per module (same local
/// problem size — the definition of weak scaling); the non-overlapped part
/// of communication adds per iteration.
pub fn weak_scaling_step_time(
    node: &NodeSpec,
    compute_per_step: f64,
    iterations_per_step: f64,
    pattern: &HaloPattern,
    p_modules: usize,
) -> f64 {
    if p_modules <= 1 {
        return compute_per_step;
    }
    // allreduce-style residual norms: 2 small messages per iteration with
    // log2(p) latency depth
    let allreduce = 2.0 * node.interconnect_latency * (p_modules as f64).log2().max(1.0);
    let visible_halo = (1.0 - COMM_OVERLAP) * halo_exchange_time(node, pattern);
    compute_per_step + iterations_per_step * (visible_halo + allreduce)
}

/// Weak-scaling efficiency `t(1) / t(p)`.
pub fn weak_scaling_efficiency(t1: f64, tp: f64) -> f64 {
    t1 / tp
}

/// Modeled time of one point-to-point control/data transfer between two
/// cluster nodes: one interconnect latency each way (request + payload
/// acknowledge) plus the payload over the link bandwidth. This is the
/// cost the sharded serving layer charges for cross-node work stealing
/// (a request descriptor) and checkpoint replica mirroring (the full
/// serialized shard image).
pub fn link_transfer_time(node: &NodeSpec, bytes: f64) -> f64 {
    if !node.interconnect_bw.is_finite() || bytes <= 0.0 {
        return 2.0 * node.interconnect_latency;
    }
    2.0 * node.interconnect_latency + bytes / node.interconnect_bw
}

/// Byte/operation accounting for the cluster serving layer's cross-node
/// traffic, separate from the halo-exchange model above: stolen request
/// descriptors and mirrored checkpoint replicas ride the same modeled
/// interconnect but are bookkept per flow so the bench snapshot can
/// report them independently.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkTraffic {
    /// Cross-node work-steal control messages sent.
    pub steal_msgs: u64,
    /// Bytes moved by work stealing (request descriptors).
    pub steal_bytes: f64,
    /// Checkpoint replicas mirrored to a peer.
    pub replica_msgs: u64,
    /// Bytes moved by replica mirroring (serialized shard checkpoints).
    pub replica_bytes: f64,
    /// Modeled seconds charged to links for all of the above.
    pub link_time_s: f64,
}

impl LinkTraffic {
    /// Charge one work-steal transfer of `bytes` and return its modeled
    /// link time.
    pub fn charge_steal(&mut self, node: &NodeSpec, bytes: f64) -> f64 {
        let t = link_transfer_time(node, bytes);
        self.steal_msgs += 1;
        self.steal_bytes += bytes;
        self.link_time_s += t;
        t
    }

    /// Charge one replica mirror of `bytes` and return its modeled link
    /// time.
    pub fn charge_replica(&mut self, node: &NodeSpec, bytes: f64) -> f64 {
        let t = link_transfer_time(node, bytes);
        self.replica_msgs += 1;
        self.replica_bytes += bytes;
        self.link_time_s += t;
        t
    }

    /// Fold another accumulator in (per-node traffic → cluster totals).
    pub fn merge(&mut self, other: &LinkTraffic) {
        self.steal_msgs += other.steal_msgs;
        self.steal_bytes += other.steal_bytes;
        self.replica_msgs += other.replica_msgs;
        self.replica_bytes += other.replica_bytes;
        self.link_time_s += other.link_time_s;
    }
}

/// Surface-area model of halo size for a box-partitioned domain: a
/// partition holding `nodes_per_part` grid nodes has ≈ `6 (n^(1/3))²`
/// interface nodes split over up to 6 face neighbours. Returns bytes per
/// iteration for `dofs_per_node × 8`-byte values and `r` fused cases.
pub fn box_halo_pattern(nodes_per_part: f64, r: usize, n_neighbors: usize) -> HaloPattern {
    let side = nodes_per_part.powf(1.0 / 3.0);
    let face_nodes = side * side;
    let bytes = face_nodes * 3.0 * 8.0 * r as f64;
    HaloPattern {
        neighbor_bytes: vec![bytes; n_neighbors],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::alps_node;

    #[test]
    fn empty_pattern_costs_nothing() {
        let node = alps_node();
        assert_eq!(halo_exchange_time(&node, &HaloPattern::default()), 0.0);
    }

    #[test]
    fn exchange_time_scales_with_bytes() {
        let node = alps_node();
        let p1 = HaloPattern {
            neighbor_bytes: vec![24e9 * 0.001],
        }; // 1 ms of BW
        let t1 = halo_exchange_time(&node, &p1);
        let p2 = HaloPattern {
            neighbor_bytes: vec![24e9 * 0.002],
        };
        let t2 = halo_exchange_time(&node, &p2);
        assert!(t2 > t1);
        assert!((t1 - (0.001 + 2.0 * node.interconnect_latency)).abs() < 1e-9);
    }

    #[test]
    fn single_module_has_no_comm() {
        let node = alps_node();
        let pat = box_halo_pattern(1e6, 4, 6);
        let t = weak_scaling_step_time(&node, 0.45, 70.0, &pat, 1);
        assert_eq!(t, 0.45);
    }

    #[test]
    fn paper_scale_weak_scaling_efficiency() {
        // Fig. 5 scenario: one module advances 2 sets x 4 cases per step
        // (wall ~ 8 x 0.447 s = 3.58 s), with 2 x 70.4 halo exchanges per
        // step; 7680 GPUs: the paper measures 94.3 % efficiency.
        let node = alps_node();
        // one Alps module handles a 950x950x120 m slab (~15.5M nodes);
        // x-y slab partitioning gives 4 face neighbours.
        let pat = box_halo_pattern(15.5e6, 4, 4);
        let compute = 8.0 * 0.447;
        let exchanges = 2.0 * 70.4;
        let t1 = weak_scaling_step_time(&node, compute, exchanges, &pat, 1);
        let tp = weak_scaling_step_time(&node, compute, exchanges, &pat, 7680);
        let eff = weak_scaling_efficiency(t1, tp);
        assert!(
            (0.90..0.99).contains(&eff),
            "weak-scaling efficiency {eff} out of the paper's band (94.3 %)"
        );
    }

    #[test]
    fn efficiency_degrades_gracefully_with_modules() {
        let node = alps_node();
        let pat = box_halo_pattern(15.5e6, 4, 4);
        let (compute, exchanges) = (8.0 * 0.447, 2.0 * 70.4);
        let t1 = weak_scaling_step_time(&node, compute, exchanges, &pat, 1);
        let mut last = 1.0;
        for p in [4usize, 64, 1024, 7680] {
            let e = weak_scaling_efficiency(
                t1,
                weak_scaling_step_time(&node, compute, exchanges, &pat, p),
            );
            assert!(e <= last + 1e-12, "efficiency must be non-increasing");
            last = e;
        }
        assert!(last > 0.85);
    }

    #[test]
    fn link_transfer_pays_latency_and_bandwidth() {
        let node = alps_node();
        let lat_only = link_transfer_time(&node, 0.0);
        assert!((lat_only - 2.0 * node.interconnect_latency).abs() < 1e-15);
        let bytes = node.interconnect_bw * 0.002; // 2 ms of bandwidth
        let t = link_transfer_time(&node, bytes);
        assert!((t - (lat_only + 0.002)).abs() < 1e-12);
    }

    #[test]
    fn link_traffic_accumulates_and_merges() {
        let node = alps_node();
        let mut a = LinkTraffic::default();
        let t_steal = a.charge_steal(&node, 256.0);
        let t_rep = a.charge_replica(&node, 1_000_000.0);
        assert_eq!(a.steal_msgs, 1);
        assert_eq!(a.replica_msgs, 1);
        assert!((a.link_time_s - (t_steal + t_rep)).abs() < 1e-15);

        let mut b = LinkTraffic::default();
        b.charge_steal(&node, 256.0);
        b.merge(&a);
        assert_eq!(b.steal_msgs, 2);
        assert_eq!(b.replica_msgs, 1);
        assert!((b.steal_bytes - 512.0).abs() < 1e-12);
    }

    #[test]
    fn halo_grows_with_r() {
        let p1 = box_halo_pattern(1e6, 1, 6);
        let p4 = box_halo_pattern(1e6, 4, 6);
        assert!((p4.total_bytes() / p1.total_bytes() - 4.0).abs() < 1e-12);
    }
}
