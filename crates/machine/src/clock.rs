//! Virtual two-lane module clock: overlapped CPU/GPU execution with energy
//! integration.
//!
//! The paper's Algorithms 3–4 run the predictor on the CPU *while* the
//! solver runs on the GPU, synchronizing and exchanging data over
//! NVLink-C2C between phases. [`ModuleClock`] models exactly that: two
//! timelines that advance independently between `sync()` points, with every
//! kernel charged by the roofline model and every busy interval integrated
//! into per-device energy. The GPU clock factor reflects the module power
//! cap given the CPU's concurrent draw (Alps behaviour, Table 4).

use hetsolve_sparse::KernelCounts;

use crate::roofline::{kernel_time, transfer_time, ExecCtx};
use crate::spec::ModuleSpec;

/// One device timeline.
#[derive(Debug, Clone, Copy, Default)]
struct Lane {
    /// Local time (s).
    time: f64,
    /// Seconds spent busy.
    busy: f64,
    /// Busy-energy accumulated (J), excluding idle draw.
    busy_energy: f64,
}

/// Which timeline a recorded span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    Cpu,
    Gpu,
    /// CPU↔GPU C2C transfer (occupies both lanes; reported once).
    Link,
}

/// One busy interval on a device timeline, in modeled seconds. The clock
/// records *when* work ran; the caller (e.g. `hetsolve-core`'s
/// `StepTracer`) attaches *what* ran, since only it knows the kernel's
/// role — the clock sees opaque [`KernelCounts`].
#[derive(Debug, Clone, Copy)]
pub struct LaneSpan {
    pub lane: LaneKind,
    /// Span start on the lane's local timeline (s).
    pub start: f64,
    /// Span end (s); `end - start` is the modeled kernel time.
    pub end: f64,
}

/// Virtual clock of one GH200 module.
#[derive(Debug, Clone)]
pub struct ModuleClock {
    pub spec: ModuleSpec,
    /// CPU threads used by predictor work (power + speed).
    pub cpu_threads: usize,
    /// Whether CPU work overlaps GPU work (drives the power-cap throttle).
    pub overlapped: bool,
    cpu: Lane,
    gpu: Lane,
    /// Timeline span log (`None` until [`ModuleClock::enable_span_log`]:
    /// tracing must cost nothing when nobody is looking).
    spans: Option<Vec<LaneSpan>>,
}

/// Bitwise snapshot of a [`ModuleClock`]'s mutable timeline — what a
/// checkpoint must persist so a restored run's modeled times and energies
/// continue exactly where they left off. The configuration (spec,
/// threads, overlap) is *not* part of the state: it is re-derived from
/// the run configuration at restore, and a mismatch there is caught by
/// the checkpoint's config fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockState {
    pub cpu_time: f64,
    pub cpu_busy: f64,
    pub cpu_busy_energy: f64,
    pub gpu_time: f64,
    pub gpu_busy: f64,
    pub gpu_busy_energy: f64,
}

/// Summary of a finished (or in-progress) timeline.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Makespan (s).
    pub elapsed: f64,
    pub cpu_busy: f64,
    pub gpu_busy: f64,
    /// Total energy (J): busy energy + idle draw over the makespan.
    pub energy: f64,
    /// Time-averaged module power (W).
    pub avg_power: f64,
}

impl ModuleClock {
    pub fn new(spec: ModuleSpec, cpu_threads: usize, overlapped: bool) -> Self {
        ModuleClock {
            spec,
            cpu_threads,
            overlapped,
            cpu: Lane::default(),
            gpu: Lane::default(),
            spans: None,
        }
    }

    /// Start recording [`LaneSpan`]s for every subsequent charge.
    pub fn enable_span_log(&mut self) {
        if self.spans.is_none() {
            self.spans = Some(Vec::new());
        }
    }

    pub fn span_log_enabled(&self) -> bool {
        self.spans.is_some()
    }

    /// Take the spans recorded since the last drain (empty when the log is
    /// disabled). Logging stays enabled.
    pub fn drain_spans(&mut self) -> Vec<LaneSpan> {
        match self.spans.as_mut() {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    fn log_span(&mut self, lane: LaneKind, start: f64, end: f64) {
        if let Some(v) = self.spans.as_mut() {
            v.push(LaneSpan { lane, start, end });
        }
    }

    /// GPU clock factor under the power cap.
    pub fn gpu_clock(&self) -> f64 {
        let cpu_power = if self.overlapped {
            self.spec.cpu.power_threads(self.cpu_threads)
        } else {
            self.spec.cpu.power(0.0)
        };
        self.spec.gpu_throttle(cpu_power)
    }

    /// Charge a kernel to the CPU lane; returns its modeled time.
    pub fn run_cpu(&mut self, counts: &KernelCounts) -> f64 {
        let ctx = ExecCtx {
            threads: self.cpu_threads,
            clock: 1.0,
        };
        let t = kernel_time(&self.spec.cpu, counts, &ctx);
        let frac = self.spec.cpu.thread_frac(self.cpu_threads);
        let start = self.cpu.time;
        self.cpu.time += t;
        self.cpu.busy += t;
        self.cpu.busy_energy += t * self.spec.cpu.active_power * frac;
        self.log_span(LaneKind::Cpu, start, start + t);
        t
    }

    /// Charge a kernel to the GPU lane; returns its modeled time.
    pub fn run_gpu(&mut self, counts: &KernelCounts) -> f64 {
        let clock = self.gpu_clock();
        let ctx = ExecCtx {
            threads: usize::MAX,
            clock,
        };
        let t = kernel_time(&self.spec.gpu, counts, &ctx);
        let start = self.gpu.time;
        self.gpu.time += t;
        self.gpu.busy += t;
        // a throttled GPU draws proportionally less active power
        self.gpu.busy_energy += t * self.spec.gpu.active_power * clock;
        self.log_span(LaneKind::Gpu, start, start + t);
        t
    }

    /// Synchronize both lanes (barrier): both advance to the later time.
    pub fn sync(&mut self) {
        let t = self.cpu.time.max(self.gpu.time);
        self.cpu.time = t;
        self.gpu.time = t;
    }

    /// CPU↔GPU transfer of `bytes` over the C2C link; occupies both lanes
    /// (call after `sync()` to model the paper's sync-transfer-sync).
    pub fn transfer(&mut self, bytes: f64) -> f64 {
        let t = transfer_time(&self.spec.link, bytes);
        // one Link span at the later lane time: transfers are documented
        // to follow a sync(), where both lanes coincide
        let start = self.cpu.time.max(self.gpu.time);
        self.cpu.time += t;
        self.gpu.time += t;
        self.log_span(LaneKind::Link, start, start + t);
        // DMA engines draw little; fold into idle power.
        t
    }

    /// Stall one lane for `seconds` without doing work: the lane's local
    /// time advances but no busy time or active energy is charged (the
    /// device sits at idle draw — a hung kernel, OS jitter, or an injected
    /// fault). A [`LaneKind::Link`] stall models a blocked C2C channel and
    /// advances both lanes, like [`ModuleClock::transfer`]. Returns
    /// `seconds` for symmetry with the charge methods.
    pub fn stall(&mut self, lane: LaneKind, seconds: f64) -> f64 {
        match lane {
            LaneKind::Cpu => {
                let start = self.cpu.time;
                self.cpu.time += seconds;
                self.log_span(LaneKind::Cpu, start, start + seconds);
            }
            LaneKind::Gpu => {
                let start = self.gpu.time;
                self.gpu.time += seconds;
                self.log_span(LaneKind::Gpu, start, start + seconds);
            }
            LaneKind::Link => {
                let start = self.cpu.time.max(self.gpu.time);
                self.cpu.time += seconds;
                self.gpu.time += seconds;
                self.log_span(LaneKind::Link, start, start + seconds);
            }
        }
        seconds
    }

    /// Current CPU / GPU lane times.
    pub fn times(&self) -> (f64, f64) {
        (self.cpu.time, self.gpu.time)
    }

    /// Makespan so far.
    pub fn elapsed(&self) -> f64 {
        self.cpu.time.max(self.gpu.time)
    }

    /// Energy / power summary so far.
    pub fn report(&self) -> EnergyReport {
        let elapsed = self.elapsed();
        let idle = (self.spec.cpu.power(0.0) + self.spec.gpu.power(0.0)) * elapsed;
        let energy = idle + self.cpu.busy_energy + self.gpu.busy_energy;
        EnergyReport {
            elapsed,
            cpu_busy: self.cpu.busy,
            gpu_busy: self.gpu.busy,
            energy,
            avg_power: if elapsed > 0.0 { energy / elapsed } else { 0.0 },
        }
    }

    /// Reset the timeline (keep the configuration and span-log setting).
    pub fn reset(&mut self) {
        self.cpu = Lane::default();
        self.gpu = Lane::default();
        if let Some(v) = self.spans.as_mut() {
            v.clear();
        }
    }

    /// Snapshot the timeline for a checkpoint.
    pub fn state(&self) -> ClockState {
        ClockState {
            cpu_time: self.cpu.time,
            cpu_busy: self.cpu.busy,
            cpu_busy_energy: self.cpu.busy_energy,
            gpu_time: self.gpu.time,
            gpu_busy: self.gpu.busy,
            gpu_busy_energy: self.gpu.busy_energy,
        }
    }

    /// Restore a timeline snapshot taken by [`ModuleClock::state`].
    pub fn restore_state(&mut self, s: &ClockState) {
        self.cpu = Lane {
            time: s.cpu_time,
            busy: s.cpu_busy,
            busy_energy: s.cpu_busy_energy,
        };
        self.gpu = Lane {
            time: s.gpu_time,
            busy: s.gpu_busy,
            busy_energy: s.gpu_busy_energy,
        };
    }
}

// ---------------------------------------------------------------------------
// Wall clock (real time, as opposed to the modeled timeline above).

/// Injectable source of wall-clock seconds. Production code uses
/// [`SystemClock`]; deterministic tests (watchdog escalation, replay)
/// inject a [`ManualClock`] so no code path under test ever reads
/// `std::time` directly.
pub trait WallClock {
    /// Seconds since this clock's origin.
    fn now(&self) -> f64;
}

/// The real wall clock: seconds since construction.
#[derive(Debug, Clone, Copy)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl SystemClock {
    pub fn new() -> Self {
        Self::default()
    }
}

impl WallClock for SystemClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A hand-cranked wall clock for deterministic tests. Clones share the
/// same underlying time, so a test can keep one handle and advance the
/// clone it injected.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: std::rc::Rc<std::cell::Cell<f64>>,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, seconds: f64) {
        self.now.set(seconds);
    }

    pub fn advance(&self, seconds: f64) {
        self.now.set(self.now.get() + seconds);
    }
}

impl WallClock for ManualClock {
    fn now(&self) -> f64 {
        self.now.get()
    }
}

/// A hand-cranked wall clock that is `Send + Sync`, for deterministic
/// tests of the *threaded* drivers (`run_realtime_clocked` spawns scoped
/// workers that read the clock concurrently). Time is stored as `f64`
/// bits in an atomic; clones share the same underlying time.
#[derive(Debug, Clone, Default)]
pub struct SharedManualClock {
    bits: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl SharedManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, seconds: f64) {
        self.bits
            .store(seconds.to_bits(), std::sync::atomic::Ordering::SeqCst);
    }

    pub fn advance(&self, seconds: f64) {
        self.set(self.now() + seconds);
    }
}

impl WallClock for SharedManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(std::sync::atomic::Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{alps_node, single_gh200};

    fn counts(flops: f64) -> KernelCounts {
        KernelCounts {
            flops,
            ..Default::default()
        }
    }

    #[test]
    fn lanes_overlap_until_sync() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        let tc = clk.run_cpu(&counts(1e12));
        let tg = clk.run_gpu(&counts(1e12));
        assert!(tc > tg, "CPU should be slower on equal flops");
        // overlapped: elapsed is the max, not the sum
        assert!((clk.elapsed() - tc).abs() < 1e-12);
        clk.sync();
        let (c, g) = clk.times();
        assert_eq!(c, g);
    }

    #[test]
    fn transfer_charges_both_lanes() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.sync();
        let t = clk.transfer(450e9 * 0.01); // 10 ms of link time
        assert!((t - 0.01 - 5e-6).abs() < 1e-9);
        let (c, g) = clk.times();
        assert_eq!(c, g);
        assert!((c - t).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_hand_computation() {
        let m = single_gh200().module;
        let mut clk = ModuleClock::new(m, 72, true);
        let tg = clk.run_gpu(&counts(34e12 * 0.72)); // exactly 1 s of GPU work
        assert!((tg - 1.0).abs() < 1e-9);
        let rep = clk.report();
        let expect = (m.cpu.power(0.0) + m.gpu.power(0.0)) * 1.0 + m.gpu.active_power;
        assert!(
            (rep.energy - expect).abs() < 1e-6,
            "{} vs {expect}",
            rep.energy
        );
        assert!(rep.avg_power > m.cpu.power(0.0) + m.gpu.power(0.0));
    }

    #[test]
    fn alps_cap_throttles_gpu_when_overlapped() {
        let m = alps_node().module;
        let with_cpu = ModuleClock::new(m, 72, true).gpu_clock();
        let idle_cpu = ModuleClock::new(m, 72, false).gpu_clock();
        assert!(with_cpu < idle_cpu);
        let fewer_threads = ModuleClock::new(m, 16, true).gpu_clock();
        assert!(
            fewer_threads > with_cpu,
            "16 threads {fewer_threads} should beat 72 threads {with_cpu}"
        );
    }

    #[test]
    fn single_gh200_never_throttles() {
        let m = single_gh200().module;
        assert_eq!(ModuleClock::new(m, 72, true).gpu_clock(), 1.0);
    }

    #[test]
    fn throttled_gpu_is_slower_but_cheaper_per_second() {
        let alps = alps_node().module;
        let mut hot = ModuleClock::new(alps, 72, true);
        let mut cold = ModuleClock::new(alps, 72, false);
        let c = counts(1e13);
        let t_hot = hot.run_gpu(&c);
        let t_cold = cold.run_gpu(&c);
        assert!(t_hot > t_cold);
    }

    #[test]
    fn span_log_disabled_by_default_and_drains_when_enabled() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.run_gpu(&counts(1e12));
        assert!(clk.drain_spans().is_empty(), "no spans before enabling");

        clk.enable_span_log();
        let tc = clk.run_cpu(&counts(1e12));
        let tg = clk.run_gpu(&counts(1e12));
        clk.sync();
        let tx = clk.transfer(1e9);
        let spans = clk.drain_spans();
        assert_eq!(spans.len(), 3);
        // CPU span starts where the CPU lane was (0 here: the pre-enable
        // GPU work only advanced the GPU lane).
        assert_eq!(spans[0].lane, LaneKind::Cpu);
        assert!((spans[0].end - spans[0].start - tc).abs() < 1e-15);
        assert_eq!(spans[1].lane, LaneKind::Gpu);
        assert!((spans[1].end - spans[1].start - tg).abs() < 1e-15);
        // link span sits after the sync point and spans both lanes
        assert_eq!(spans[2].lane, LaneKind::Link);
        assert!((spans[2].end - spans[2].start - tx).abs() < 1e-15);
        assert!(spans[2].start >= spans[0].end.max(spans[1].end) - 1e-15);
        // drained: the log is empty but still enabled
        assert!(clk.drain_spans().is_empty());
        assert!(clk.span_log_enabled());
    }

    #[test]
    fn overlapped_lanes_yield_overlapping_spans() {
        // the Fig. 4 structure: predictor@CPU and solver@GPU both start at
        // the sync point, so their spans overlap in time
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.enable_span_log();
        clk.run_cpu(&counts(1e12));
        clk.run_gpu(&counts(1e12));
        let spans = clk.drain_spans();
        let (c, g) = (&spans[0], &spans[1]);
        assert!(c.start < g.end && g.start < c.end, "lanes did not overlap");
    }

    #[test]
    fn stall_advances_time_without_busy_or_energy() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.enable_span_log();
        let t = clk.stall(LaneKind::Gpu, 0.5);
        assert_eq!(t, 0.5);
        let (c, g) = clk.times();
        assert_eq!(c, 0.0, "CPU lane must not move on a GPU stall");
        assert_eq!(g, 0.5);
        let rep = clk.report();
        assert_eq!(rep.gpu_busy, 0.0, "a stall is not busy time");
        // only idle draw accrues over the stalled makespan
        let m = single_gh200().module;
        let idle = (m.cpu.power(0.0) + m.gpu.power(0.0)) * 0.5;
        assert!((rep.energy - idle).abs() < 1e-9);
        // the stall is visible on the timeline
        let spans = clk.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, LaneKind::Gpu);
        assert!((spans[0].end - spans[0].start - 0.5).abs() < 1e-15);
        // a link stall blocks both lanes (after a sync, like a transfer)
        clk.sync();
        clk.stall(LaneKind::Link, 0.25);
        let (c, g) = clk.times();
        assert!((c - 0.75).abs() < 1e-15);
        assert!((g - 0.75).abs() < 1e-15);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.run_gpu(&counts(1e12));
        clk.reset();
        assert_eq!(clk.elapsed(), 0.0);
        assert_eq!(clk.report().energy, 0.0);
    }
}
