//! Virtual two-lane module clock: overlapped CPU/GPU execution with energy
//! integration.
//!
//! The paper's Algorithms 3–4 run the predictor on the CPU *while* the
//! solver runs on the GPU, synchronizing and exchanging data over
//! NVLink-C2C between phases. [`ModuleClock`] models exactly that: two
//! timelines that advance independently between `sync()` points, with every
//! kernel charged by the roofline model and every busy interval integrated
//! into per-device energy. The GPU clock factor reflects the module power
//! cap given the CPU's concurrent draw (Alps behaviour, Table 4).

use hetsolve_sparse::KernelCounts;

use crate::roofline::{kernel_time, transfer_time, ExecCtx};
use crate::spec::ModuleSpec;

/// One device timeline.
#[derive(Debug, Clone, Copy, Default)]
struct Lane {
    /// Local time (s).
    time: f64,
    /// Seconds spent busy.
    busy: f64,
    /// Busy-energy accumulated (J), excluding idle draw.
    busy_energy: f64,
}

/// Virtual clock of one GH200 module.
#[derive(Debug, Clone)]
pub struct ModuleClock {
    pub spec: ModuleSpec,
    /// CPU threads used by predictor work (power + speed).
    pub cpu_threads: usize,
    /// Whether CPU work overlaps GPU work (drives the power-cap throttle).
    pub overlapped: bool,
    cpu: Lane,
    gpu: Lane,
}

/// Summary of a finished (or in-progress) timeline.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Makespan (s).
    pub elapsed: f64,
    pub cpu_busy: f64,
    pub gpu_busy: f64,
    /// Total energy (J): busy energy + idle draw over the makespan.
    pub energy: f64,
    /// Time-averaged module power (W).
    pub avg_power: f64,
}

impl ModuleClock {
    pub fn new(spec: ModuleSpec, cpu_threads: usize, overlapped: bool) -> Self {
        ModuleClock {
            spec,
            cpu_threads,
            overlapped,
            cpu: Lane::default(),
            gpu: Lane::default(),
        }
    }

    /// GPU clock factor under the power cap.
    pub fn gpu_clock(&self) -> f64 {
        let cpu_power = if self.overlapped {
            self.spec.cpu.power_threads(self.cpu_threads)
        } else {
            self.spec.cpu.power(0.0)
        };
        self.spec.gpu_throttle(cpu_power)
    }

    /// Charge a kernel to the CPU lane; returns its modeled time.
    pub fn run_cpu(&mut self, counts: &KernelCounts) -> f64 {
        let ctx = ExecCtx {
            threads: self.cpu_threads,
            clock: 1.0,
        };
        let t = kernel_time(&self.spec.cpu, counts, &ctx);
        let frac = self.spec.cpu.thread_frac(self.cpu_threads);
        self.cpu.time += t;
        self.cpu.busy += t;
        self.cpu.busy_energy += t * self.spec.cpu.active_power * frac;
        t
    }

    /// Charge a kernel to the GPU lane; returns its modeled time.
    pub fn run_gpu(&mut self, counts: &KernelCounts) -> f64 {
        let clock = self.gpu_clock();
        let ctx = ExecCtx {
            threads: usize::MAX,
            clock,
        };
        let t = kernel_time(&self.spec.gpu, counts, &ctx);
        self.gpu.time += t;
        self.gpu.busy += t;
        // a throttled GPU draws proportionally less active power
        self.gpu.busy_energy += t * self.spec.gpu.active_power * clock;
        t
    }

    /// Synchronize both lanes (barrier): both advance to the later time.
    pub fn sync(&mut self) {
        let t = self.cpu.time.max(self.gpu.time);
        self.cpu.time = t;
        self.gpu.time = t;
    }

    /// CPU↔GPU transfer of `bytes` over the C2C link; occupies both lanes
    /// (call after `sync()` to model the paper's sync-transfer-sync).
    pub fn transfer(&mut self, bytes: f64) -> f64 {
        let t = transfer_time(&self.spec.link, bytes);
        self.cpu.time += t;
        self.gpu.time += t;
        // DMA engines draw little; fold into idle power.
        t
    }

    /// Current CPU / GPU lane times.
    pub fn times(&self) -> (f64, f64) {
        (self.cpu.time, self.gpu.time)
    }

    /// Makespan so far.
    pub fn elapsed(&self) -> f64 {
        self.cpu.time.max(self.gpu.time)
    }

    /// Energy / power summary so far.
    pub fn report(&self) -> EnergyReport {
        let elapsed = self.elapsed();
        let idle = (self.spec.cpu.power(0.0) + self.spec.gpu.power(0.0)) * elapsed;
        let energy = idle + self.cpu.busy_energy + self.gpu.busy_energy;
        EnergyReport {
            elapsed,
            cpu_busy: self.cpu.busy,
            gpu_busy: self.gpu.busy,
            energy,
            avg_power: if elapsed > 0.0 { energy / elapsed } else { 0.0 },
        }
    }

    /// Reset the timeline (keep the configuration).
    pub fn reset(&mut self) {
        self.cpu = Lane::default();
        self.gpu = Lane::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{alps_node, single_gh200};

    fn counts(flops: f64) -> KernelCounts {
        KernelCounts {
            flops,
            ..Default::default()
        }
    }

    #[test]
    fn lanes_overlap_until_sync() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        let tc = clk.run_cpu(&counts(1e12));
        let tg = clk.run_gpu(&counts(1e12));
        assert!(tc > tg, "CPU should be slower on equal flops");
        // overlapped: elapsed is the max, not the sum
        assert!((clk.elapsed() - tc).abs() < 1e-12);
        clk.sync();
        let (c, g) = clk.times();
        assert_eq!(c, g);
    }

    #[test]
    fn transfer_charges_both_lanes() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.sync();
        let t = clk.transfer(450e9 * 0.01); // 10 ms of link time
        assert!((t - 0.01 - 5e-6).abs() < 1e-9);
        let (c, g) = clk.times();
        assert_eq!(c, g);
        assert!((c - t).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_hand_computation() {
        let m = single_gh200().module;
        let mut clk = ModuleClock::new(m, 72, true);
        let tg = clk.run_gpu(&counts(34e12 * 0.72)); // exactly 1 s of GPU work
        assert!((tg - 1.0).abs() < 1e-9);
        let rep = clk.report();
        let expect = (m.cpu.power(0.0) + m.gpu.power(0.0)) * 1.0 + m.gpu.active_power;
        assert!(
            (rep.energy - expect).abs() < 1e-6,
            "{} vs {expect}",
            rep.energy
        );
        assert!(rep.avg_power > m.cpu.power(0.0) + m.gpu.power(0.0));
    }

    #[test]
    fn alps_cap_throttles_gpu_when_overlapped() {
        let m = alps_node().module;
        let with_cpu = ModuleClock::new(m, 72, true).gpu_clock();
        let idle_cpu = ModuleClock::new(m, 72, false).gpu_clock();
        assert!(with_cpu < idle_cpu);
        let fewer_threads = ModuleClock::new(m, 16, true).gpu_clock();
        assert!(
            fewer_threads > with_cpu,
            "16 threads {fewer_threads} should beat 72 threads {with_cpu}"
        );
    }

    #[test]
    fn single_gh200_never_throttles() {
        let m = single_gh200().module;
        assert_eq!(ModuleClock::new(m, 72, true).gpu_clock(), 1.0);
    }

    #[test]
    fn throttled_gpu_is_slower_but_cheaper_per_second() {
        let alps = alps_node().module;
        let mut hot = ModuleClock::new(alps, 72, true);
        let mut cold = ModuleClock::new(alps, 72, false);
        let c = counts(1e13);
        let t_hot = hot.run_gpu(&c);
        let t_cold = cold.run_gpu(&c);
        assert!(t_hot > t_cold);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut clk = ModuleClock::new(single_gh200().module, 72, true);
        clk.run_gpu(&counts(1e12));
        clk.reset();
        assert_eq!(clk.elapsed(), 0.0);
        assert_eq!(clk.report().energy, 0.0);
    }
}
