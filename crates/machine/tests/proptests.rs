//! Property-based tests of the machine model: physical sanity of the
//! roofline/energy/power-cap models under arbitrary workloads.

use hetsolve_machine::{
    alps_node, ebe_mcg_cpu_gpu, grace_480, h100, kernel_time, single_gh200, ExecCtx, ModuleClock,
    ProblemDims,
};
use hetsolve_sparse::KernelCounts;
use proptest::prelude::*;

fn counts(flops: f64, stream: f64, rand: f64, txn: f64) -> KernelCounts {
    KernelCounts {
        flops,
        bytes_stream: stream,
        bytes_rand: rand,
        rand_transactions: txn,
        rhs_fused: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time is positive and monotone in every work component.
    #[test]
    fn kernel_time_monotone(
        flops in 1e6f64..1e15,
        stream in 0.0f64..1e12,
        rand in 0.0f64..1e11,
        txn in 0.0f64..1e10,
    ) {
        let ctx = ExecCtx::default();
        for dev in [grace_480(), h100()] {
            let base = kernel_time(&dev, &counts(flops, stream, rand, txn), &ctx);
            prop_assert!(base > 0.0 && base.is_finite());
            let more_flops = kernel_time(&dev, &counts(2.0 * flops, stream, rand, txn), &ctx);
            let more_bytes = kernel_time(&dev, &counts(flops, 2.0 * stream + 1.0, rand, txn), &ctx);
            let more_txn = kernel_time(&dev, &counts(flops, stream, rand, 2.0 * txn + 1.0), &ctx);
            prop_assert!(more_flops >= base);
            prop_assert!(more_bytes >= base);
            prop_assert!(more_txn > base);
        }
    }

    /// Throttling never speeds a kernel up; full clocks never slow it down.
    #[test]
    fn throttle_monotone(
        flops in 1e9f64..1e14,
        clock in 0.1f64..1.0,
    ) {
        let c = counts(flops, 1e9, 1e8, 1e7);
        let full = kernel_time(&h100(), &c, &ExecCtx { threads: usize::MAX, clock: 1.0 });
        let thr = kernel_time(&h100(), &c, &ExecCtx { threads: usize::MAX, clock });
        prop_assert!(thr >= full);
    }

    /// More CPU threads never slow a kernel down.
    #[test]
    fn threads_monotone(flops in 1e9f64..1e13, t1 in 1usize..72, t2 in 1usize..72) {
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let c = counts(flops, 1e9, 1e8, 1e7);
        let d = grace_480();
        let t_lo = kernel_time(&d, &c, &ExecCtx { threads: lo, clock: 1.0 });
        let t_hi = kernel_time(&d, &c, &ExecCtx { threads: hi, clock: 1.0 });
        prop_assert!(t_hi <= t_lo + 1e-12);
    }

    /// Energy accounting: total energy >= idle floor, average power within
    /// the physical band of the module.
    #[test]
    fn energy_within_physical_band(
        gpu_work in 1e10f64..1e14,
        cpu_work in 1e9f64..1e13,
    ) {
        let m = single_gh200().module;
        let mut clk = ModuleClock::new(m, 72, true);
        clk.run_gpu(&counts(gpu_work, 0.0, 0.0, 0.0));
        clk.run_cpu(&counts(cpu_work, 0.0, 0.0, 0.0));
        clk.sync();
        let rep = clk.report();
        let idle = m.cpu.power(0.0) + m.gpu.power(0.0);
        let max = m.cpu.power(1.0) + m.gpu.power(1.0);
        prop_assert!(rep.energy >= idle * rep.elapsed * 0.999);
        prop_assert!(rep.avg_power <= max * 1.001, "{} > {}", rep.avg_power, max);
        prop_assert!(rep.avg_power >= idle * 0.999);
    }

    /// The Alps power-cap throttle reacts monotonically to CPU load.
    #[test]
    fn alps_throttle_monotone(t1 in 1usize..72, t2 in 1usize..72) {
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let m = alps_node().module;
        let f_lo = ModuleClock::new(m, lo, true).gpu_clock();
        let f_hi = ModuleClock::new(m, hi, true).gpu_clock();
        prop_assert!(f_hi <= f_lo + 1e-12, "more threads must not raise GPU clocks");
    }

    /// Memory model: monotone in window size and case count, and the
    /// snapshot window that fits never grows when memory shrinks.
    #[test]
    fn memory_monotone(s1 in 1usize..40, s2 in 1usize..40, r in 1u64..9) {
        let d = ProblemDims::paper_model_a();
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        let m_lo = ebe_mcg_cpu_gpu(&d, lo, r);
        let m_hi = ebe_mcg_cpu_gpu(&d, hi, r);
        prop_assert!(m_hi.cpu >= m_lo.cpu);
        let m_r1 = ebe_mcg_cpu_gpu(&d, lo, 1);
        prop_assert!(m_lo.cpu >= m_r1.cpu || r == 1);
    }
}
