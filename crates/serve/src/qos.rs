//! Multi-tenant quality-of-service: per-tenant quotas, SLO targets, and
//! lane autoscaling configuration.
//!
//! The QoS layer is a *scheduling* layer. It decides which queued request
//! runs next (deficit-round-robin fair share across tenant sub-queues,
//! layered on the existing priority → deadline → seeded-tie ordering),
//! how much queue and lane capacity each tenant may hold, and how many
//! fused lanes the server keeps spun up. It never touches the numerics:
//! a served case's trajectory stays bitwise-equal to its solo
//! `run_ensemble` solve regardless of tenancy, quotas, or scaling events.
//!
//! Invariants (enforced by the qos suite and proptests):
//!
//! * Under saturating load from multiple tenants, each tenant's share of
//!   served work (steps) converges to its quota weight within 10%.
//! * A zero-weight tenant is rejected with a typed error at admission —
//!   never admitted and silently starved.
//! * Lane scale-up adds an empty lane at a step boundary; scale-down
//!   drains the highest lane (no new backfill) and removes it only when
//!   empty, so in-flight trajectories are untouched.
//! * Scaling state round-trips through `ServerCheckpoint` (optional,
//!   fingerprint-gated `QOS\0` section).

use crate::request::TenantId;

/// Per-tenant resource quota and SLO target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Fair-share weight: under saturation, tenants receive served work
    /// (case steps) in proportion to their weights. Zero means the tenant
    /// is administratively disabled — admissions are rejected typed.
    pub weight: u64,
    /// Maximum cases this tenant may have occupying lane slots at once
    /// (Batched/Solving). `usize::MAX` disables the cap.
    pub max_in_flight: usize,
    /// Fraction of the admission-queue capacity this tenant may hold
    /// (0 < share ≤ 1). Overflow is shed typed, per tenant, before the
    /// global capacity check.
    pub queue_share: f64,
    /// Target admit→done latency (modeled s). A completed request slower
    /// than this counts as an SLO miss in `ServeStats`; `None` tracks
    /// nothing.
    pub slo_latency_s: Option<f64>,
}

impl TenantQuota {
    pub fn new(weight: u64) -> Self {
        TenantQuota {
            weight,
            max_in_flight: usize::MAX,
            queue_share: 1.0,
            slo_latency_s: None,
        }
    }

    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    pub fn with_queue_share(mut self, queue_share: f64) -> Self {
        self.queue_share = queue_share.clamp(0.0, 1.0);
        self
    }

    pub fn with_slo(mut self, slo_latency_s: f64) -> Self {
        self.slo_latency_s = Some(slo_latency_s);
        self
    }
}

/// Multi-tenant scheduling configuration: one quota per tenant (dense by
/// [`TenantId`]) plus the deficit-round-robin quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Quota table; `TenantId(i)` maps to `tenants[i]`. Requests naming a
    /// tenant outside the table are rejected typed.
    pub tenants: Vec<TenantQuota>,
    /// DRR quantum: deficit credit (in case steps) granted per round per
    /// unit weight. Larger quanta are burstier but cheaper to schedule.
    pub quantum: u64,
}

impl QosConfig {
    pub fn new(tenants: Vec<TenantQuota>) -> Self {
        QosConfig {
            tenants,
            quantum: 8,
        }
    }

    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Quota for `tenant`, if configured.
    pub fn quota(&self, tenant: TenantId) -> Option<&TenantQuota> {
        self.tenants.get(tenant.0 as usize)
    }

    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }
}

/// Lane-autoscaling policy: spin fused lanes up/down at step boundaries,
/// driven by queue depth and modeled device occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Never scale below this many lanes (≥ 1).
    pub min_lanes: usize,
    /// Never scale above this many lanes.
    pub max_lanes: usize,
    /// Scale up when queued requests exceed this many per current lane —
    /// queue pressure means the fused width on device is underprovisioned.
    pub scale_up_queue_per_lane: usize,
    /// Scale down when the queue is empty and mean lane occupancy (filled
    /// columns / total columns across lanes) falls below this fraction —
    /// the device is mostly running vacant columns.
    pub scale_down_occupancy: f64,
    /// Ticks to wait after any scaling event before the next decision,
    /// so the autoscaler cannot flap within a burst.
    pub cooldown_ticks: u64,
}

impl AutoscaleConfig {
    pub fn new(min_lanes: usize, max_lanes: usize) -> Self {
        let min_lanes = min_lanes.max(1);
        AutoscaleConfig {
            min_lanes,
            max_lanes: max_lanes.max(min_lanes),
            scale_up_queue_per_lane: 8,
            scale_down_occupancy: 0.25,
            cooldown_ticks: 4,
        }
    }
}

/// Which way a scaling event moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    Up,
    Down,
}

impl ScaleDirection {
    pub fn label(&self) -> &'static str {
        match self {
            ScaleDirection::Up => "up",
            ScaleDirection::Down => "down",
        }
    }
}

/// One lane-scaling event, for tests and bench snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleEvent {
    /// Server tick at which the event took effect.
    pub tick: u64,
    pub direction: ScaleDirection,
    pub lanes_before: usize,
    pub lanes_after: usize,
}

/// Dynamic autoscaler state, checkpointed in the optional `QOS\0` section
/// so a restore mid-scale resumes the exact same schedule (registered in
/// the xtask schema-drift table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutoscalerState {
    /// Ticks left before the next scaling decision may fire.
    pub cooldown: u64,
    /// The highest lane is draining: backfill skips it and it is removed
    /// at the first step boundary where it is empty.
    pub draining: bool,
    /// Scaling events since server start (monotone; survives restore).
    pub events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_builders_clamp() {
        let q = TenantQuota::new(3)
            .with_max_in_flight(2)
            .with_queue_share(2.0)
            .with_slo(0.5);
        assert_eq!(q.weight, 3);
        assert_eq!(q.max_in_flight, 2);
        assert_eq!(q.queue_share, 1.0, "share clamps to [0, 1]");
        assert_eq!(q.slo_latency_s, Some(0.5));
        let qos = QosConfig::new(vec![q]).with_quantum(0);
        assert_eq!(qos.quantum, 1, "quantum floor is 1");
        assert!(qos.quota(TenantId(0)).is_some());
        assert!(qos.quota(TenantId(1)).is_none());
    }

    #[test]
    fn autoscale_bounds_are_ordered() {
        let a = AutoscaleConfig::new(0, 0);
        assert_eq!(a.min_lanes, 1);
        assert_eq!(a.max_lanes, 1);
        let a = AutoscaleConfig::new(4, 2);
        assert_eq!(a.max_lanes, 4, "max is lifted to min");
        assert_eq!(ScaleDirection::Up.label(), "up");
        assert_eq!(ScaleDirection::Down.label(), "down");
    }
}
