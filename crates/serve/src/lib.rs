//! # hetsolve-serve
//!
//! The serving layer of the `hetsolve` reproduction of the SC24 paper
//! *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.): a continuous-batching ensemble
//! service with admission control and fused-lane scheduling.
//!
//! The batch drivers in `hetsolve-core` solve a *fixed* set of `2r` cases
//! for a fixed number of steps; any case count that doesn't fill the
//! fused multi-RHS lanes wastes GPU time, because the EBE kernels cost
//! the same at any occupancy. This crate turns that batch engine into a
//! *service*:
//!
//! * [`request`] — [`SolveRequest`]s (seed, steps, priority, deadline,
//!   tolerance) and their `Queued → Batched → Solving → Done | Failed |
//!   Evicted` lifecycle,
//! * [`queue`] — bounded [`AdmissionQueue`] with typed backpressure
//!   ([`AdmitError::Rejected`] / [`AdmitError::ShedLoad`]) and
//!   deterministic priority/deadline/seeded-tie scheduling,
//! * [`batcher`] — the pure lane packer: compatible requests (same
//!   backend, bit-identical tolerance → same [`CompatKey`]) fill vacant
//!   columns of 2 × `r`-wide lanes under [`BatchPolicy::Continuous`] or
//!   the [`BatchPolicy::DrainThenRefill`] baseline, never moving an
//!   in-flight column,
//! * [`server`] — [`EnsembleServer`]: the tick loop driving the lanes
//!   through the predictor@CPU / fused-MCG@GPU pipeline with per-lane
//!   occupancy masks, the resumable recovery ladder, serving metrics
//!   ([`hetsolve_obs::ServeStats`]) and optional Chrome-trace export,
//! * [`qos`] — multi-tenant quality of service: per-tenant quotas
//!   ([`TenantQuota`]) with deficit-round-robin fair share, queue-share
//!   and max-in-flight caps, SLO tracking, and lane autoscaling
//!   ([`AutoscaleConfig`]) that floats the fused-lane count at step
//!   boundaries without ever touching in-flight trajectories,
//! * [`watchdog`] — deadline-based lane supervision with the
//!   retry-with-backoff → restart-from-checkpoint → evict escalation
//!   ladder ([`WatchdogConfig`], [`WatchdogEvent`]),
//! * [`checkpoint`] — [`ServerCheckpoint`]: crash-consistent snapshots of
//!   the whole server (queue, lanes, in-flight cases, records, stats) in
//!   the sectioned `hetsolve-ckpt` format, restorable to a server that
//!   continues bitwise-identically,
//! * [`shard`] — [`ClusterServer`]: N node-local shards behind a
//!   deterministic router, with cross-node work stealing, peer replica
//!   mirroring, and node-crash failover via restart-on-peer (eviction as
//!   `NodeLost` only when every replica is invalid).
//!
//! Served results are bitwise-identical to solo
//! [`run_ensemble`](hetsolve_core::run_ensemble) solves of the same seed
//! (see the `server` module docs for why), which the serve suite asserts
//! with `f64::to_bits`.

#![forbid(unsafe_code)]

pub mod batcher;
pub mod checkpoint;
pub mod qos;
pub mod queue;
pub mod request;
pub mod server;
pub mod shard;
pub mod watchdog;

pub use batcher::{Assignment, BatchPolicy, Batcher, CompatKey};
pub use checkpoint::{ServeFingerprint, ServerCheckpoint};
pub use qos::{
    AutoscaleConfig, AutoscaleEvent, AutoscalerState, QosConfig, ScaleDirection, TenantQuota,
};
pub use queue::{
    AdmissionQueue, AdmitError, DrrState, QueueEntrySnapshot, RejectReason, TenantPolicy,
};
pub use request::{EvictReason, RequestId, RequestRecord, RequestState, SolveRequest, TenantId};
pub use server::{EnsembleServer, ServeConfig};
pub use shard::{ClusterCheckpoint, ClusterConfig, ClusterFingerprint, ClusterServer, RouteEntry};
pub use watchdog::{WatchdogAction, WatchdogConfig, WatchdogEvent};
