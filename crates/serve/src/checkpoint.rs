//! Crash-consistent snapshots of a whole [`EnsembleServer`].
//!
//! [`ServerCheckpoint`] captures everything a serving run has accumulated
//! at a tick boundary — the admission queue (including its admission-time
//! tie-breaks), lane geometry and every in-flight [`CaseSlot`]'s state,
//! every [`RequestRecord`] lifecycle, the modeled clock, the serving
//! counters, and the recovery-ladder events — in the sectioned,
//! checksummed `hetsolve-ckpt` format. A restored server continues
//! *bitwise-identically*: the same requests finish with the same final
//! displacements on the same modeled timeline, and counters resume where
//! the saved run left off instead of resetting.
//!
//! A [`ServeFingerprint`] extends the core run fingerprint with the
//! serving knobs that shape the trajectory (queue capacity, scheduler
//! seed, batch policy, watchdog ladder); a snapshot restored against a
//! different configuration fails typed, and
//! [`CheckpointStore::load_latest_valid`] falls back to an older file.

use std::io;
use std::path::PathBuf;

use hetsolve_ckpt::{
    mix64, CheckpointStore, CkptError, Dec, Enc, RestoreReport, SectionReader, SectionWriter,
};
use hetsolve_core::{
    decode_clock_state, decode_corruption_report, decode_recovery_event, encode_clock_state,
    encode_corruption_report, encode_recovery_event, Backend, CaseSlot, ConfigFingerprint,
    CorruptionReport, RecoveryEvent, SlotState,
};
use hetsolve_fault::{FaultInjector, NoopFaults};
use hetsolve_machine::ClockState;
use hetsolve_obs::{FlightEvent, FlightRecorder, LogHistogram, ServeStats, TenantStats};

use crate::batcher::{BatchPolicy, CompatKey};
use crate::qos::{AutoscalerState, TenantQuota};
use crate::queue::{DrrState, QueueEntrySnapshot};
use crate::request::{EvictReason, RequestId, RequestRecord, RequestState, SolveRequest, TenantId};
use crate::server::{EnsembleServer, ServeConfig};

/// Section tags of the server-checkpoint format.
const TAG_META: [u8; 4] = *b"META";
const TAG_CLOCK: [u8; 4] = *b"CLK\0";
const TAG_QUEUE: [u8; 4] = *b"QUE\0";
const TAG_LANES: [u8; 4] = *b"LANE";
const TAG_REQUESTS: [u8; 4] = *b"REQ\0";
const TAG_STATS: [u8; 4] = *b"STAT";
const TAG_RECOVERIES: [u8; 4] = *b"RCVR";
/// Flight-recorder ring (added in telemetry v2). Optional on decode so
/// pre-v2 snapshots restore with an empty ring instead of failing typed.
const TAG_FLIGHT: [u8; 4] = *b"FLIT";
/// Multi-tenant QoS state (DRR deficits/cursor, autoscaler state, and the
/// quota table the run was configured with). Optional on decode so
/// pre-QoS snapshots restore with clean scheduler state.
const TAG_QOS: [u8; 4] = *b"QOS\0";
/// Silent-data-corruption defense state: the corruption reports collected
/// so far plus the per-lane SDC-ladder breach counters. Optional on
/// decode so pre-SDC snapshots restore with clean zeros.
const TAG_INTEGRITY: [u8; 4] = *b"INTG";

/// Hash of everything that determines a serving run's trajectory but is
/// rebuilt from `(backend, cfg)` on restore: the core run fingerprint
/// plus the scheduling and supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFingerprint(pub u64);

impl ServeFingerprint {
    pub fn of(backend: &Backend, cfg: &ServeConfig) -> Self {
        let mut h = ConfigFingerprint::of(backend, &cfg.run).0;
        h = mix64(h, cfg.queue_capacity as u64);
        h = mix64(h, cfg.sched_seed);
        h = mix64(
            h,
            match cfg.policy {
                BatchPolicy::Continuous => 0,
                BatchPolicy::DrainThenRefill => 1,
            },
        );
        h = mix64(h, cfg.checkpoint_every as u64);
        match cfg.watchdog {
            None => h = mix64(h, 0),
            Some(wd) => {
                h = mix64(h, 1);
                h = mix64(h, wd.step_deadline_s.to_bits());
                h = mix64(h, wd.max_retries as u64);
                h = mix64(h, wd.backoff_base_s.to_bits());
                h = mix64(h, wd.backoff_factor.to_bits());
            }
        }
        match &cfg.qos {
            None => h = mix64(h, 0),
            Some(q) => {
                h = mix64(h, 1);
                h = mix64(h, q.quantum);
                h = mix64(h, q.tenants.len() as u64);
                for t in &q.tenants {
                    h = mix64(h, t.weight);
                    h = mix64(h, t.max_in_flight as u64);
                    h = mix64(h, t.queue_share.to_bits());
                    h = mix64(h, t.slo_latency_s.map_or(0, f64::to_bits));
                }
            }
        }
        match cfg.autoscale {
            None => h = mix64(h, 0),
            Some(a) => {
                h = mix64(h, 1);
                h = mix64(h, a.min_lanes as u64);
                h = mix64(h, a.max_lanes as u64);
                h = mix64(h, a.scale_up_queue_per_lane as u64);
                h = mix64(h, a.scale_down_occupancy.to_bits());
                h = mix64(h, a.cooldown_ticks);
            }
        }
        h = mix64(h, u64::from(cfg.keep_results));
        ServeFingerprint(h)
    }
}

/// One lane as the checkpoint sees it: its compatibility key, its
/// consecutive-breach count, and each occupied column's request and
/// captured case state.
#[derive(Debug, Clone)]
pub struct LaneCheckpoint {
    pub key: Option<u64>,
    pub breach: u32,
    pub slots: Vec<Option<(RequestId, SlotState)>>,
}

/// One crash-consistent snapshot of a serving run at a tick boundary.
#[derive(Debug, Clone)]
pub struct ServerCheckpoint {
    pub fingerprint: ServeFingerprint,
    pub ticks: usize,
    pub admissions: usize,
    pub clock: ClockState,
    pub queue: Vec<QueueEntrySnapshot>,
    pub lanes: Vec<LaneCheckpoint>,
    pub records: Vec<RequestRecord>,
    pub stats: ServeStats,
    pub recoveries: Vec<RecoveryEvent>,
    pub flight: FlightRecorder,
    /// DRR fair-share cursor and per-tenant deficits at the boundary.
    pub drr: DrrState,
    /// Autoscaler cooldown/drain state at the boundary.
    pub autoscaler: AutoscalerState,
    /// The quota table the run was configured with (informational —
    /// the fingerprint already rejects restores into different quotas).
    pub quotas: Vec<TenantQuota>,
    /// Corruption detections (and recoveries) collected so far.
    pub corruptions: Vec<CorruptionReport>,
    /// Per-lane consecutive-corrupted-tick counters of the SDC ladder.
    pub sdc_breach: Vec<u32>,
}

fn encode_queue_entry(enc: &mut Enc, e: &QueueEntrySnapshot) {
    enc.put_u64(e.id.0);
    enc.put_u64(e.key.0);
    enc.put_u8(e.priority);
    enc.put_opt_f64(e.deadline);
    enc.put_u64(e.tie);
    enc.put_u32(e.tenant.0);
    enc.put_u32(e.cost);
}

fn decode_queue_entry(dec: &mut Dec<'_>) -> Result<QueueEntrySnapshot, CkptError> {
    Ok(QueueEntrySnapshot {
        id: RequestId(dec.u64()?),
        key: CompatKey(dec.u64()?),
        priority: dec.u8()?,
        deadline: dec.opt_f64()?,
        tie: dec.u64()?,
        tenant: TenantId(dec.u32()?),
        cost: dec.u32()?,
    })
}

pub(crate) fn encode_record(enc: &mut Enc, r: &RequestRecord) {
    enc.put_u64(r.id.0);
    enc.put_u64(r.request.seed);
    enc.put_usize(r.request.n_steps);
    enc.put_u8(r.request.priority);
    enc.put_opt_f64(r.request.deadline);
    enc.put_opt_f64(r.request.tol);
    enc.put_u32(r.request.tenant.0);
    enc.put_u8(r.state.code());
    enc.put_f64(r.admitted_at);
    enc.put_opt_f64(r.finished_at);
    match r.evict_reason {
        Some(er) => {
            enc.put_bool(true);
            enc.put_u8(er.code());
        }
        None => enc.put_bool(false),
    }
    match &r.result {
        Some(u) => {
            enc.put_bool(true);
            enc.put_f64s(u);
        }
        None => enc.put_bool(false),
    }
}

pub(crate) fn decode_record(dec: &mut Dec<'_>) -> Result<RequestRecord, CkptError> {
    let id = RequestId(dec.u64()?);
    let request = SolveRequest {
        seed: dec.u64()?,
        n_steps: dec.usize_()?,
        priority: dec.u8()?,
        deadline: dec.opt_f64()?,
        tol: dec.opt_f64()?,
        tenant: TenantId(dec.u32()?),
    };
    let state = RequestState::from_code(dec.u8()?)
        .ok_or_else(|| CkptError::Corrupt("unknown request-state code".into()))?;
    let admitted_at = dec.f64()?;
    let finished_at = dec.opt_f64()?;
    let evict_reason = if dec.bool_()? {
        Some(
            EvictReason::from_code(dec.u8()?)
                .ok_or_else(|| CkptError::Corrupt("unknown evict-reason code".into()))?,
        )
    } else {
        None
    };
    let result = if dec.bool_()? {
        Some(dec.f64s()?)
    } else {
        None
    };
    Ok(RequestRecord {
        id,
        request,
        state,
        admitted_at,
        finished_at,
        evict_reason,
        result,
    })
}

// Both codec bodies bind one local per `LogHistogram` field, under the
// field's own name: the schema-drift pass (`cargo xtask analyze`)
// cross-checks the struct's field list against these bodies, so a new
// field that is not serialized here fails the build.
fn encode_histogram(enc: &mut Enc, h: &LogHistogram) {
    let counts = h.counts();
    enc.put_usize(counts.len());
    for &c in counts {
        enc.put_u64(c);
    }
    let total = h.total();
    enc.put_u64(total);
    let sum = h.sum();
    enc.put_f64(sum);
    // raw views: the ±inf empty-histogram sentinels, not the clamped
    // public accessors — `from_parts` expects the in-memory field values
    let min = h.raw_min();
    enc.put_f64(min);
    let max = h.raw_max();
    enc.put_f64(max);
}

fn decode_histogram(dec: &mut Dec<'_>) -> Result<LogHistogram, CkptError> {
    let n = dec.usize_()?;
    let mut counts = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        counts.push(dec.u64()?);
    }
    let total = dec.u64()?;
    let sum = dec.f64()?;
    let min = dec.f64()?;
    let max = dec.f64()?;
    Ok(LogHistogram::from_parts(counts, total, sum, min, max))
}

// Both codec bodies bind one local per `TenantStats` field, under the
// field's own name, for the schema-drift pass.
fn encode_tenant_stats(enc: &mut Enc, t: &TenantStats) {
    let tenant = t.tenant;
    enc.put_u32(tenant);
    let completed = t.completed;
    enc.put_u64(completed);
    let rejected = t.rejected;
    enc.put_u64(rejected);
    let shed = t.shed;
    enc.put_u64(shed);
    let evicted = t.evicted;
    enc.put_u64(evicted);
    let deadline_miss = t.deadline_miss;
    enc.put_u64(deadline_miss);
    let slo_miss = t.slo_miss;
    enc.put_u64(slo_miss);
    let served_steps = t.served_steps;
    enc.put_u64(served_steps);
    let latency = &t.latency;
    encode_histogram(enc, latency);
}

fn decode_tenant_stats(dec: &mut Dec<'_>) -> Result<TenantStats, CkptError> {
    let tenant = dec.u32()?;
    let completed = dec.u64()?;
    let rejected = dec.u64()?;
    let shed = dec.u64()?;
    let evicted = dec.u64()?;
    let deadline_miss = dec.u64()?;
    let slo_miss = dec.u64()?;
    let served_steps = dec.u64()?;
    let latency = decode_histogram(dec)?;
    let mut t = TenantStats::new(tenant);
    t.completed = completed;
    t.rejected = rejected;
    t.shed = shed;
    t.evicted = evicted;
    t.deadline_miss = deadline_miss;
    t.slo_miss = slo_miss;
    t.served_steps = served_steps;
    t.latency = latency;
    Ok(t)
}

// Both codec bodies bind one local per `DrrState` field, under the
// field's own name, for the schema-drift pass.
pub(crate) fn encode_drr_state(enc: &mut Enc, d: &DrrState) {
    let deficits = &d.deficits;
    enc.put_usize(deficits.len());
    for &x in deficits {
        enc.put_u64(x);
    }
    let cursor = d.cursor;
    enc.put_usize(cursor);
}

pub(crate) fn decode_drr_state(dec: &mut Dec<'_>) -> Result<DrrState, CkptError> {
    let n = dec.usize_()?;
    let mut deficits = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        deficits.push(dec.u64()?);
    }
    let cursor = dec.usize_()?;
    Ok(DrrState { deficits, cursor })
}

// Both codec bodies bind one local per `AutoscalerState` field, under
// the field's own name, for the schema-drift pass.
pub(crate) fn encode_autoscaler_state(enc: &mut Enc, a: &AutoscalerState) {
    let cooldown = a.cooldown;
    enc.put_u64(cooldown);
    let draining = a.draining;
    enc.put_bool(draining);
    let events = a.events;
    enc.put_u64(events);
}

pub(crate) fn decode_autoscaler_state(dec: &mut Dec<'_>) -> Result<AutoscalerState, CkptError> {
    let cooldown = dec.u64()?;
    let draining = dec.bool_()?;
    let events = dec.u64()?;
    Ok(AutoscalerState {
        cooldown,
        draining,
        events,
    })
}

// Both codec bodies bind one local per `TenantQuota` field, under the
// field's own name, for the schema-drift pass.
fn encode_tenant_quota(enc: &mut Enc, q: &TenantQuota) {
    let weight = q.weight;
    enc.put_u64(weight);
    let max_in_flight = q.max_in_flight;
    enc.put_usize(max_in_flight);
    let queue_share = q.queue_share;
    enc.put_f64(queue_share);
    let slo_latency_s = q.slo_latency_s;
    enc.put_opt_f64(slo_latency_s);
}

fn decode_tenant_quota(dec: &mut Dec<'_>) -> Result<TenantQuota, CkptError> {
    let weight = dec.u64()?;
    let max_in_flight = dec.usize_()?;
    let queue_share = dec.f64()?;
    let slo_latency_s = dec.opt_f64()?;
    Ok(TenantQuota {
        weight,
        max_in_flight,
        queue_share,
        slo_latency_s,
    })
}

fn encode_flight_event(enc: &mut Enc, e: &FlightEvent) {
    let seq = e.seq;
    enc.put_u64(seq);
    let t_s = e.t_s;
    enc.put_f64(t_s);
    let kind = &e.kind;
    enc.put_str(kind);
    let request = e.request;
    enc.put_opt_u64(request);
    let lane = e.lane;
    enc.put_opt_u64(lane);
    let step = e.step;
    enc.put_opt_u64(step);
    let detail = &e.detail;
    enc.put_str(detail);
}

fn decode_flight_event(dec: &mut Dec<'_>) -> Result<FlightEvent, CkptError> {
    let seq = dec.u64()?;
    let t_s = dec.f64()?;
    let kind = dec.str_()?;
    let request = dec.opt_u64()?;
    let lane = dec.opt_u64()?;
    let step = dec.opt_u64()?;
    let detail = dec.str_()?;
    Ok(FlightEvent {
        seq,
        t_s,
        kind,
        request,
        lane,
        step,
        detail,
    })
}

pub(crate) fn encode_flight(enc: &mut Enc, f: &FlightRecorder) {
    let capacity = f.capacity();
    enc.put_usize(capacity);
    let events = f.events();
    enc.put_usize(f.len());
    for e in events {
        encode_flight_event(enc, e);
    }
    let next_seq = f.next_seq();
    enc.put_u64(next_seq);
    let dropped = f.dropped();
    enc.put_u64(dropped);
}

pub(crate) fn decode_flight(dec: &mut Dec<'_>) -> Result<FlightRecorder, CkptError> {
    let capacity = dec.usize_()?;
    let n = dec.usize_()?;
    let mut events = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        events.push(decode_flight_event(dec)?);
    }
    let next_seq = dec.u64()?;
    let dropped = dec.u64()?;
    Ok(FlightRecorder::from_parts(
        capacity, events, next_seq, dropped,
    ))
}

// Both codec bodies bind one local per `ServeStats` field, under the
// field's own name: the schema-drift pass (`cargo xtask analyze`)
// cross-checks the struct's field list against these bodies, so a new
// field that is not serialized here fails the build.
pub(crate) fn encode_stats(enc: &mut Enc, s: &ServeStats) {
    let queue_depth = s.queue_depth_samples();
    enc.put_usize(queue_depth.len());
    for &d in queue_depth {
        enc.put_usize(d);
    }
    let occupancy = s.occupancy_samples();
    enc.put_usize(occupancy.len());
    for &(o, w) in occupancy {
        enc.put_usize(o);
        enc.put_usize(w);
    }
    let latency = s.latency();
    encode_histogram(enc, latency);
    enc.put_usize(s.completed());
    enc.put_usize(s.failed());
    enc.put_usize(s.evicted());
    enc.put_usize(s.rejected());
    enc.put_usize(s.shed());
    enc.put_usize(s.watchdog_breaches());
    enc.put_usize(s.watchdog_restarts());
    enc.put_usize(s.node_crashes());
    enc.put_usize(s.failovers());
    enc.put_usize(s.stolen());
    enc.put_f64(s.elapsed_s());
    let shed_early = s.shed_early();
    enc.put_usize(shed_early);
    let deadline_miss = s.deadline_miss();
    enc.put_usize(deadline_miss);
    let slo_miss = s.slo_miss();
    enc.put_usize(slo_miss);
    let autoscale_events = s.autoscale_events();
    enc.put_usize(autoscale_events);
    let tenants = s.tenants();
    enc.put_usize(tenants.len());
    for t in tenants {
        encode_tenant_stats(enc, t);
    }
    let sdc_detected = s.sdc_detected();
    enc.put_usize(sdc_detected);
    let sdc_restarts = s.sdc_restarts();
    enc.put_usize(sdc_restarts);
    let sdc_evictions = s.sdc_evictions();
    enc.put_usize(sdc_evictions);
    let sdc_recovery = s.sdc_recovery();
    encode_histogram(enc, sdc_recovery);
}

pub(crate) fn decode_stats(dec: &mut Dec<'_>) -> Result<ServeStats, CkptError> {
    let n = dec.usize_()?;
    let mut queue_depth = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        queue_depth.push(dec.usize_()?);
    }
    let n = dec.usize_()?;
    let mut occupancy = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        occupancy.push((dec.usize_()?, dec.usize_()?));
    }
    let latency = decode_histogram(dec)?;
    let completed = dec.usize_()?;
    let failed = dec.usize_()?;
    let evicted = dec.usize_()?;
    let rejected = dec.usize_()?;
    let shed = dec.usize_()?;
    let watchdog_breaches = dec.usize_()?;
    let watchdog_restarts = dec.usize_()?;
    let node_crashes = dec.usize_()?;
    let failovers = dec.usize_()?;
    let stolen = dec.usize_()?;
    let elapsed_s = dec.f64()?;
    let shed_early = dec.usize_()?;
    let deadline_miss = dec.usize_()?;
    let slo_miss = dec.usize_()?;
    let autoscale_events = dec.usize_()?;
    let n = dec.usize_()?;
    let mut tenants = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        tenants.push(decode_tenant_stats(dec)?);
    }
    // SDC counters trail the QoS fields; a pre-SDC STAT payload simply
    // ends here and the fields restore as clean zeros
    let (sdc_detected, sdc_restarts, sdc_evictions, sdc_recovery) = if dec.remaining() > 0 {
        (
            dec.usize_()?,
            dec.usize_()?,
            dec.usize_()?,
            decode_histogram(dec)?,
        )
    } else {
        (0, 0, 0, LogHistogram::default())
    };
    Ok(ServeStats::from_parts(
        queue_depth,
        occupancy,
        latency,
        completed,
        failed,
        evicted,
        rejected,
        shed,
        watchdog_breaches,
        watchdog_restarts,
        node_crashes,
        failovers,
        stolen,
        elapsed_s,
    )
    .with_qos_parts(
        shed_early,
        deadline_miss,
        slo_miss,
        autoscale_events,
        tenants,
    )
    .with_sdc_parts(sdc_detected, sdc_restarts, sdc_evictions, sdc_recovery))
}

impl ServerCheckpoint {
    /// Serialize into the sectioned `hetsolve-ckpt` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        let mut meta = Enc::new();
        meta.put_u64(self.fingerprint.0);
        meta.put_usize(self.ticks);
        meta.put_usize(self.admissions);
        w.section(TAG_META, &meta.into_bytes());

        let mut clk = Enc::new();
        encode_clock_state(&mut clk, &self.clock);
        w.section(TAG_CLOCK, &clk.into_bytes());

        let mut que = Enc::new();
        que.put_usize(self.queue.len());
        for e in &self.queue {
            encode_queue_entry(&mut que, e);
        }
        w.section(TAG_QUEUE, &que.into_bytes());

        let mut lanes = Enc::new();
        lanes.put_usize(self.lanes.len());
        for lane in &self.lanes {
            lanes.put_opt_u64(lane.key);
            lanes.put_u32(lane.breach);
            lanes.put_usize(lane.slots.len());
            for slot in &lane.slots {
                match slot {
                    Some((id, st)) => {
                        lanes.put_bool(true);
                        lanes.put_u64(id.0);
                        st.encode_into(&mut lanes);
                    }
                    None => lanes.put_bool(false),
                }
            }
        }
        w.section(TAG_LANES, &lanes.into_bytes());

        let mut reqs = Enc::new();
        reqs.put_usize(self.records.len());
        for r in &self.records {
            encode_record(&mut reqs, r);
        }
        w.section(TAG_REQUESTS, &reqs.into_bytes());

        let mut stat = Enc::new();
        encode_stats(&mut stat, &self.stats);
        w.section(TAG_STATS, &stat.into_bytes());

        let mut rcvr = Enc::new();
        rcvr.put_usize(self.recoveries.len());
        for ev in &self.recoveries {
            encode_recovery_event(&mut rcvr, ev);
        }
        w.section(TAG_RECOVERIES, &rcvr.into_bytes());

        let mut flt = Enc::new();
        encode_flight(&mut flt, &self.flight);
        w.section(TAG_FLIGHT, &flt.into_bytes());

        let mut qos = Enc::new();
        encode_drr_state(&mut qos, &self.drr);
        encode_autoscaler_state(&mut qos, &self.autoscaler);
        qos.put_usize(self.quotas.len());
        for q in &self.quotas {
            encode_tenant_quota(&mut qos, q);
        }
        w.section(TAG_QOS, &qos.into_bytes());

        let mut intg = Enc::new();
        intg.put_usize(self.corruptions.len());
        for rep in &self.corruptions {
            encode_corruption_report(&mut intg, rep);
        }
        intg.put_usize(self.sdc_breach.len());
        for &b in &self.sdc_breach {
            intg.put_u32(b);
        }
        w.section(TAG_INTEGRITY, &intg.into_bytes());
        w.finish()
    }

    /// Parse and validate a snapshot. A fingerprint mismatch is typed
    /// corruption — the snapshot belongs to a different serving setup —
    /// so the store's restore scan skips it and keeps falling back.
    pub fn from_bytes(bytes: &[u8], expect: ServeFingerprint) -> Result<Self, CkptError> {
        let r = SectionReader::parse(bytes)?;
        let mut meta = Dec::new(r.section(TAG_META)?);
        let fingerprint = ServeFingerprint(meta.u64()?);
        let ticks = meta.usize_()?;
        let admissions = meta.usize_()?;
        meta.finish()?;
        if fingerprint != expect {
            return Err(CkptError::Corrupt(format!(
                "serve fingerprint mismatch: checkpoint {:#018x}, server {:#018x}",
                fingerprint.0, expect.0
            )));
        }

        let mut cd = Dec::new(r.section(TAG_CLOCK)?);
        let clock = decode_clock_state(&mut cd)?;
        cd.finish()?;

        let mut qd = Dec::new(r.section(TAG_QUEUE)?);
        let n_queue = qd.usize_()?;
        let mut queue = Vec::with_capacity(n_queue.min(1 << 20));
        for _ in 0..n_queue {
            queue.push(decode_queue_entry(&mut qd)?);
        }
        qd.finish()?;

        let mut ld = Dec::new(r.section(TAG_LANES)?);
        let n_lanes = ld.usize_()?;
        let mut lanes = Vec::with_capacity(n_lanes.min(1 << 10));
        for _ in 0..n_lanes {
            let key = ld.opt_u64()?;
            let breach = ld.u32()?;
            let n_slots = ld.usize_()?;
            let mut slots = Vec::with_capacity(n_slots.min(1 << 16));
            for _ in 0..n_slots {
                slots.push(if ld.bool_()? {
                    let id = RequestId(ld.u64()?);
                    Some((id, SlotState::decode_from(&mut ld)?))
                } else {
                    None
                });
            }
            lanes.push(LaneCheckpoint { key, breach, slots });
        }
        ld.finish()?;

        let mut rd = Dec::new(r.section(TAG_REQUESTS)?);
        let n_recs = rd.usize_()?;
        let mut records = Vec::with_capacity(n_recs.min(1 << 20));
        for _ in 0..n_recs {
            records.push(decode_record(&mut rd)?);
        }
        rd.finish()?;

        let mut sd = Dec::new(r.section(TAG_STATS)?);
        let stats = decode_stats(&mut sd)?;
        sd.finish()?;

        let mut vd = Dec::new(r.section(TAG_RECOVERIES)?);
        let n_rcv = vd.usize_()?;
        let mut recoveries = Vec::with_capacity(n_rcv.min(1 << 20));
        for _ in 0..n_rcv {
            recoveries.push(decode_recovery_event(&mut vd)?);
        }
        vd.finish()?;

        // optional: pre-telemetry-v2 snapshots have no flight section
        let flight = if r.has(TAG_FLIGHT) {
            let mut fd = Dec::new(r.section(TAG_FLIGHT)?);
            let flight = decode_flight(&mut fd)?;
            fd.finish()?;
            flight
        } else {
            FlightRecorder::default()
        };

        // optional: pre-QoS snapshots restore with clean scheduler state
        let (drr, autoscaler, quotas) = if r.has(TAG_QOS) {
            let mut qd = Dec::new(r.section(TAG_QOS)?);
            let drr = decode_drr_state(&mut qd)?;
            let autoscaler = decode_autoscaler_state(&mut qd)?;
            let n = qd.usize_()?;
            let mut quotas = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                quotas.push(decode_tenant_quota(&mut qd)?);
            }
            qd.finish()?;
            (drr, autoscaler, quotas)
        } else {
            (DrrState::default(), AutoscalerState::default(), Vec::new())
        };

        // optional: pre-SDC snapshots restore with no reports and clean
        // ladder counters
        let (corruptions, sdc_breach) = if r.has(TAG_INTEGRITY) {
            let mut id = Dec::new(r.section(TAG_INTEGRITY)?);
            let n = id.usize_()?;
            let mut corruptions = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                corruptions.push(decode_corruption_report(&mut id)?);
            }
            let n = id.usize_()?;
            let mut sdc_breach = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                sdc_breach.push(id.u32()?);
            }
            id.finish()?;
            (corruptions, sdc_breach)
        } else {
            (Vec::new(), Vec::new())
        };

        Ok(ServerCheckpoint {
            fingerprint,
            ticks,
            admissions,
            clock,
            queue,
            lanes,
            records,
            stats,
            recoveries,
            flight,
            drr,
            autoscaler,
            quotas,
            corruptions,
            sdc_breach,
        })
    }
}

impl<'b, F: FaultInjector> EnsembleServer<'b, F> {
    /// Snapshot the server as it stands at a tick boundary.
    pub fn checkpoint(&self) -> ServerCheckpoint {
        let lanes = (0..self.batcher.n_lanes())
            .map(|lane| LaneCheckpoint {
                key: self.batcher.lane_key(lane).map(|k| k.0),
                breach: self.watchdog_breach[lane],
                slots: (0..self.batcher.width())
                    .map(|slot| {
                        match (
                            self.batcher.slot(lane, slot),
                            self.slots[lane][slot].as_ref(),
                        ) {
                            (Some(id), Some(case)) => Some((id, case.state())),
                            _ => None,
                        }
                    })
                    .collect(),
            })
            .collect();
        ServerCheckpoint {
            fingerprint: ServeFingerprint::of(self.backend, &self.cfg),
            ticks: self.ticks,
            admissions: self.admissions,
            clock: self.clock.state(),
            queue: self.queue.snapshot(),
            lanes,
            records: self.records.clone(),
            stats: self.stats.clone(),
            recoveries: self.recoveries.clone(),
            flight: self.flight.clone(),
            drr: self.queue.drr_state().clone(),
            autoscaler: self.autoscaler,
            quotas: self
                .cfg
                .qos
                .as_ref()
                .map_or_else(Vec::new, |q| q.tenants.clone()),
            corruptions: self.corruptions.clone(),
            sdc_breach: self.sdc_breach.clone(),
        }
    }

    /// Serialized snapshot, ready for [`CheckpointStore::save`].
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        self.checkpoint().to_bytes()
    }

    /// Atomically write a snapshot to `store`, sequenced by the tick
    /// count (so newer boundaries sort after older ones). The write is
    /// itself a flight event — visible in the *next* snapshot's ring, so
    /// a post-restore dump shows where the restored state came from.
    pub fn save_checkpoint(&mut self, store: &CheckpointStore) -> io::Result<PathBuf> {
        let bytes = self.checkpoint_bytes();
        let path = store.save(self.ticks as u64, &bytes)?;
        self.flight.record(
            self.clock.elapsed(),
            "ckpt_write",
            None,
            None,
            Some(self.ticks as u64),
            format!("{} bytes", bytes.len()),
        );
        Ok(path)
    }

    /// Rebuild a server from a parsed snapshot. The restored server
    /// continues bitwise-identically to the one the snapshot was taken
    /// from — same results, same modeled timeline, counters intact.
    pub fn from_checkpoint(
        backend: &'b Backend,
        cfg: ServeConfig,
        faults: F,
        ck: ServerCheckpoint,
    ) -> Result<Self, CkptError> {
        let mut server = Self::with_faults(backend, cfg, faults);
        if ck
            .lanes
            .iter()
            .any(|l| l.slots.len() != server.batcher.width())
        {
            return Err(CkptError::Corrupt("lane geometry mismatch".into()));
        }
        if ck.lanes.len() != server.batcher.n_lanes() {
            // With autoscaling the snapshot may hold any lane count within
            // the configured [min, max] band (a fresh server starts at
            // `min_lanes`, so only growth is ever needed); anything else —
            // including any mismatch without autoscaling — is corruption.
            let within_band = server
                .cfg
                .autoscale
                .is_some_and(|a| (a.min_lanes.max(1)..=a.max_lanes).contains(&ck.lanes.len()));
            if !within_band {
                return Err(CkptError::Corrupt("lane geometry mismatch".into()));
            }
            while server.batcher.n_lanes() < ck.lanes.len() {
                server.batcher.add_lane();
                let r = server.batcher.width();
                server.slots.push((0..r).map(|_| None).collect());
                server.watchdog_breach.push(0);
                server.sdc_breach.push(0);
                server.lane_ckpt.push((0..r).map(|_| None).collect());
            }
        }
        server.queue.restore(ck.queue);
        server.queue.restore_drr(ck.drr);
        server.autoscaler = ck.autoscaler;
        if server.autoscaler.draining {
            if server.batcher.n_lanes() > 1 {
                // Re-mark the drain (the batcher's drain flag is derived —
                // it always targets the highest lane).
                server.batcher.drain_last();
            } else {
                server.autoscaler.draining = false;
            }
        }
        for (lane, lc) in ck.lanes.iter().enumerate() {
            server.watchdog_breach[lane] = lc.breach;
            for (slot, entry) in lc.slots.iter().enumerate() {
                let Some((id, st)) = entry else { continue };
                let key = lc
                    .key
                    .ok_or_else(|| CkptError::Corrupt("occupied lane without a key".into()))?;
                server.batcher.restore_slot(lane, slot, *id, CompatKey(key));
                server.slots[lane][slot] = Some(CaseSlot::from_state(backend, &server.cfg.run, st));
            }
        }
        server.records = ck.records;
        server.clock.restore_state(&ck.clock);
        server.stats = ck.stats;
        server.recoveries = ck.recoveries;
        server.corruptions = ck.corruptions;
        for (lane, &b) in ck.sdc_breach.iter().enumerate() {
            if lane < server.sdc_breach.len() {
                server.sdc_breach[lane] = b;
            }
        }
        server.admissions = ck.admissions;
        server.ticks = ck.ticks;
        server.flight = ck.flight;
        server.flight.record(
            server.clock.elapsed(),
            "restored",
            None,
            None,
            Some(server.ticks as u64),
            "server rebuilt from checkpoint",
        );
        // the in-memory lane checkpoints do not survive a crash; re-seed
        // them from the restored state so the watchdog's restart rung has
        // a rollback point from the first supervised tick on
        for lane in 0..server.batcher.n_lanes() {
            server.capture_lane(lane);
        }
        Ok(server)
    }

    /// Parse `bytes` (validating the fingerprint against `(backend, cfg)`)
    /// and rebuild the server.
    pub fn restore_with_faults(
        backend: &'b Backend,
        cfg: ServeConfig,
        faults: F,
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        let fp = ServeFingerprint::of(backend, &cfg);
        let ck = ServerCheckpoint::from_bytes(bytes, fp)?;
        Self::from_checkpoint(backend, cfg, faults, ck)
    }

    /// Restore from the newest valid checkpoint in `store`, falling back
    /// past torn or corrupt files (the [`RestoreReport`] says which were
    /// skipped). `None` when no valid checkpoint exists.
    pub fn restore_latest(
        backend: &'b Backend,
        cfg: ServeConfig,
        faults: F,
        store: &CheckpointStore,
    ) -> (Option<(u64, Self)>, RestoreReport) {
        let fp = ServeFingerprint::of(backend, &cfg);
        let (found, mut report) =
            store.load_latest_valid(|_, bytes| ServerCheckpoint::from_bytes(bytes, fp));
        match found {
            Some((seq, ck)) => match Self::from_checkpoint(backend, cfg, faults, ck) {
                Ok(server) => (Some((seq, server)), report),
                Err(error) => {
                    report.skipped.push(hetsolve_ckpt::SkippedCheckpoint {
                        seq,
                        path: store.path_for(seq),
                        error,
                    });
                    (None, report)
                }
            },
            None => (None, report),
        }
    }
}

impl<'b> EnsembleServer<'b, NoopFaults> {
    /// [`restore_with_faults`](Self::restore_with_faults) without
    /// injection.
    pub fn restore(
        backend: &'b Backend,
        cfg: ServeConfig,
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        Self::restore_with_faults(backend, cfg, NoopFaults, bytes)
    }
}
