//! Bounded admission queue with priority + deadline scheduling and a
//! seeded deterministic tie-break.
//!
//! Admission control is the serving layer's backpressure: the queue holds
//! at most `capacity` requests, and an `admit` past that sheds load with a
//! typed [`AdmitError::ShedLoad`] instead of growing without bound.
//! Scheduling order is total and deterministic: priority (desc), then
//! deadline (asc, `None` = never), then a splitmix64 hash of
//! `sched_seed ^ id` (so two servers with the same seed replay the same
//! schedule, and different seeds break ties differently), then the id
//! itself.

use crate::batcher::CompatKey;
use crate::request::RequestId;

/// Why an admission was refused outright (the request itself is at fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// `n_steps == 0`: a case must advance at least one step.
    ZeroSteps,
    /// Tolerance override is not a finite positive number.
    InvalidTol,
    /// An injected admission fault turned the request away.
    FaultInjected,
}

impl RejectReason {
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::ZeroSteps => "zero_steps",
            RejectReason::InvalidTol => "invalid_tol",
            RejectReason::FaultInjected => "fault_injected",
        }
    }
}

/// Typed admission failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitError {
    /// The request is malformed or incompatible; resubmitting the same
    /// request will never succeed.
    Rejected(RejectReason),
    /// The queue is at capacity (or an injected fault simulated it);
    /// resubmitting later may succeed.
    ShedLoad { queued: usize, capacity: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Rejected(r) => write!(f, "request rejected: {}", r.label()),
            AdmitError::ShedLoad { queued, capacity } => {
                write!(f, "load shed: queue at {queued}/{capacity}")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// splitmix64 — the same minimal deterministic stream the fault plan
/// uses for placement; good enough for tie-breaking, no dependency.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct QueueEntry {
    id: RequestId,
    key: CompatKey,
    priority: u8,
    deadline: Option<f64>,
    /// Seeded tie-break hash, fixed at admission.
    tie: u64,
}

/// One queued request as a checkpoint sees it — the full [`QueueEntry`],
/// including the admission-time tie-break (so a restored queue replays
/// the exact same schedule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntrySnapshot {
    pub id: RequestId,
    pub key: CompatKey,
    pub priority: u8,
    pub deadline: Option<f64>,
    pub tie: u64,
}

impl QueueEntry {
    /// Totally ordered scheduling rank: smaller runs first.
    fn rank(&self) -> (std::cmp::Reverse<u8>, u64, u64, u64) {
        (
            std::cmp::Reverse(self.priority),
            // deadline asc with None = never; finite f64 bits order like
            // the values for non-negative deadlines, and NaN is rejected
            // at admission
            self.deadline.map_or(u64::MAX, |d| d.max(0.0).to_bits()),
            self.tie,
            self.id.0,
        )
    }
}

/// The bounded, scheduled request queue.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    seed: u64,
    entries: Vec<QueueEntry>,
}

impl AdmissionQueue {
    pub fn new(capacity: usize, seed: u64) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            seed,
            entries: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue an already-validated request; sheds when full.
    pub fn push(
        &mut self,
        id: RequestId,
        key: CompatKey,
        priority: u8,
        deadline: Option<f64>,
    ) -> Result<(), AdmitError> {
        if self.entries.len() >= self.capacity {
            return Err(AdmitError::ShedLoad {
                queued: self.entries.len(),
                capacity: self.capacity,
            });
        }
        self.entries.push(QueueEntry {
            id,
            key,
            priority,
            deadline,
            tie: splitmix64(self.seed ^ id.0),
        });
        Ok(())
    }

    fn pop_at(&mut self, i: usize) -> (RequestId, CompatKey) {
        let e = self.entries.remove(i);
        (e.id, e.key)
    }

    /// Pop the scheduling-order head over all compatibility keys.
    pub fn pop_best(&mut self) -> Option<(RequestId, CompatKey)> {
        let i = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.rank())
            .map(|(i, _)| i)?;
        Some(self.pop_at(i))
    }

    /// Pop the scheduling-order head among requests with key `key`.
    pub fn pop_best_for(&mut self, key: CompatKey) -> Option<RequestId> {
        let i = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.key == key)
            .min_by_key(|(_, e)| e.rank())
            .map(|(i, _)| i)?;
        Some(self.pop_at(i).0)
    }

    /// Remove a specific queued request (cluster work stealing and
    /// failover reconciliation pull entries by id, not by rank); returns
    /// `false` when `id` is not queued.
    pub fn remove(&mut self, id: RequestId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() < before
    }

    /// Capture the queue's contents for a checkpoint, in insertion order.
    /// The admission-time tie-break hashes travel with the entries, so the
    /// restored queue replays the exact same schedule.
    pub fn snapshot(&self) -> Vec<QueueEntrySnapshot> {
        self.entries
            .iter()
            .map(|e| QueueEntrySnapshot {
                id: e.id,
                key: e.key,
                priority: e.priority,
                deadline: e.deadline,
                tie: e.tie,
            })
            .collect()
    }

    /// Replace the queue's contents with a captured snapshot (restore-side
    /// inverse of [`AdmissionQueue::snapshot`]).
    pub fn restore(&mut self, entries: Vec<QueueEntrySnapshot>) {
        self.entries = entries
            .into_iter()
            .map(|s| QueueEntry {
                id: s.id,
                key: s.key,
                priority: s.priority,
                deadline: s.deadline,
                tie: s.tie,
            })
            .collect();
    }

    /// Remove every queued request whose deadline has passed; returns the
    /// shed ids (the caller marks them `Evicted`).
    pub fn expire(&mut self, now: f64) -> Vec<RequestId> {
        let mut shed = Vec::new();
        self.entries.retain(|e| match e.deadline {
            Some(d) if d < now => {
                shed.push(e.id);
                false
            }
            _ => true,
        });
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> AdmissionQueue {
        AdmissionQueue::new(8, 1234)
    }

    const K: CompatKey = CompatKey(1);

    #[test]
    fn priority_beats_deadline_beats_tie() {
        let mut q = q();
        q.push(RequestId(0), K, 0, Some(0.1)).unwrap();
        q.push(RequestId(1), K, 5, None).unwrap();
        q.push(RequestId(2), K, 5, Some(9.0)).unwrap();
        assert_eq!(
            q.pop_best().unwrap().0,
            RequestId(2),
            "earliest deadline among top priority"
        );
        assert_eq!(q.pop_best().unwrap().0, RequestId(1));
        assert_eq!(q.pop_best().unwrap().0, RequestId(0));
        assert!(q.pop_best().is_none());
    }

    #[test]
    fn tie_break_is_seeded_and_deterministic() {
        let order = |seed: u64| {
            let mut q = AdmissionQueue::new(8, seed);
            for id in 0..6 {
                q.push(RequestId(id), K, 1, None).unwrap();
            }
            let mut out = Vec::new();
            while let Some((id, _)) = q.pop_best() {
                out.push(id.0);
            }
            out
        };
        assert_eq!(order(7), order(7), "same seed, same schedule");
        assert_ne!(order(7), order(8), "different seed breaks ties differently");
    }

    #[test]
    fn backpressure_sheds_typed() {
        let mut q = AdmissionQueue::new(2, 0);
        q.push(RequestId(0), K, 0, None).unwrap();
        q.push(RequestId(1), K, 0, None).unwrap();
        assert_eq!(
            q.push(RequestId(2), K, 0, None),
            Err(AdmitError::ShedLoad {
                queued: 2,
                capacity: 2
            })
        );
    }

    #[test]
    fn keyed_pop_and_expiry() {
        let mut q = q();
        q.push(RequestId(0), CompatKey(1), 0, None).unwrap();
        q.push(RequestId(1), CompatKey(2), 9, None).unwrap();
        q.push(RequestId(2), CompatKey(1), 1, Some(0.5)).unwrap();
        assert_eq!(q.pop_best_for(CompatKey(1)), Some(RequestId(2)));
        assert_eq!(q.pop_best_for(CompatKey(3)), None);
        assert_eq!(q.expire(1.0), Vec::<RequestId>::new(), "already popped");
        q.push(RequestId(3), CompatKey(1), 0, Some(0.25)).unwrap();
        assert_eq!(q.expire(1.0), vec![RequestId(3)]);
        assert_eq!(q.len(), 2);
    }
}
