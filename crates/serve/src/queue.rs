//! Bounded admission queue with priority + deadline scheduling, a seeded
//! deterministic tie-break, and (when QoS is enabled) deficit-round-robin
//! fair share across tenant sub-queues.
//!
//! Admission control is the serving layer's backpressure: the queue holds
//! at most `capacity` requests, and an `admit` past that sheds load with a
//! typed [`AdmitError::ShedLoad`] instead of growing without bound. With a
//! tenant policy attached, each tenant additionally owns a share of the
//! capacity and is shed typed when *its* share fills, so one tenant's
//! burst cannot occupy the whole queue.
//!
//! Scheduling order within a tenant is total and deterministic: priority
//! (desc), then deadline (asc, `None` = never), then a splitmix64 hash of
//! `sched_seed ^ id` (so two servers with the same seed replay the same
//! schedule, and different seeds break ties differently), then the id
//! itself. Across tenants, deficit round robin picks which tenant pops
//! next: each tenant accumulates `quantum × weight` credit (in case
//! steps) per round and spends its requests' step counts, so served work
//! converges to the weight ratio under saturation while staying exactly
//! deterministic.

use crate::batcher::CompatKey;
use crate::request::{RequestId, TenantId};

/// Why an admission was refused outright (the request itself is at fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// `n_steps == 0`: a case must advance at least one step.
    ZeroSteps,
    /// Tolerance override is not a finite positive number.
    InvalidTol,
    /// An injected admission fault turned the request away.
    FaultInjected,
    /// The request names a tenant outside the configured quota table.
    UnknownTenant,
    /// The request's tenant has a zero fair-share weight: it is
    /// administratively disabled and must hear that typed, not be
    /// admitted into a queue it can never drain from.
    ZeroQuota,
    /// A floating-point field (deadline) is NaN or infinite. Admitting it
    /// would poison every deadline comparison downstream — NaN compares
    /// false against everything, so the request would neither expire nor
    /// be shed as unmeetable. Rejected typed at the door instead.
    NonFiniteInput,
}

impl RejectReason {
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::ZeroSteps => "zero_steps",
            RejectReason::InvalidTol => "invalid_tol",
            RejectReason::FaultInjected => "fault_injected",
            RejectReason::UnknownTenant => "unknown_tenant",
            RejectReason::ZeroQuota => "zero_quota",
            RejectReason::NonFiniteInput => "non_finite_input",
        }
    }
}

/// Typed admission failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitError {
    /// The request is malformed or incompatible; resubmitting the same
    /// request will never succeed.
    Rejected(RejectReason),
    /// The queue is at capacity (or an injected fault simulated it);
    /// resubmitting later may succeed.
    ShedLoad { queued: usize, capacity: usize },
    /// The request's tenant is at its queue share; other tenants may
    /// still be admitted. Resubmitting later may succeed.
    TenantShed {
        tenant: TenantId,
        queued: usize,
        share: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Rejected(r) => write!(f, "request rejected: {}", r.label()),
            AdmitError::ShedLoad { queued, capacity } => {
                write!(f, "load shed: queue at {queued}/{capacity}")
            }
            AdmitError::TenantShed {
                tenant,
                queued,
                share,
            } => write!(f, "load shed: {tenant} at {queued}/{share} queue share"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// splitmix64 — the same minimal deterministic stream the fault plan
/// uses for placement; good enough for tie-breaking, no dependency.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct QueueEntry {
    id: RequestId,
    key: CompatKey,
    priority: u8,
    deadline: Option<f64>,
    /// Seeded tie-break hash, fixed at admission.
    tie: u64,
    tenant: TenantId,
    /// DRR cost: the request's step count (work, not request count, is
    /// the fair-share currency).
    cost: u32,
}

/// One queued request as a checkpoint sees it — the full [`QueueEntry`],
/// including the admission-time tie-break (so a restored queue replays
/// the exact same schedule) and the tenant/cost pair (so a restored DRR
/// scheduler charges the same deficits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntrySnapshot {
    pub id: RequestId,
    pub key: CompatKey,
    pub priority: u8,
    pub deadline: Option<f64>,
    pub tie: u64,
    pub tenant: TenantId,
    pub cost: u32,
}

impl QueueEntry {
    /// Totally ordered scheduling rank: smaller runs first.
    fn rank(&self) -> (std::cmp::Reverse<u8>, u64, u64, u64) {
        (
            std::cmp::Reverse(self.priority),
            // deadline asc with None = never; finite f64 bits order like
            // the values for non-negative deadlines, and NaN is rejected
            // at admission
            self.deadline.map_or(u64::MAX, |d| d.max(0.0).to_bits()),
            self.tie,
            self.id.0,
        )
    }
}

/// Derived (non-checkpointed) tenant scheduling policy: weights, DRR
/// quantum, and per-tenant queue-share caps, all computed from the server
/// config at construction. The *dynamic* scheduler state lives in
/// [`DrrState`] and is checkpointed.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Fair-share weight per tenant (dense by id).
    weights: Vec<u64>,
    /// Deficit credit granted per round per unit weight (case steps).
    quantum: u64,
    /// Max queued entries per tenant (derived from `queue_share`).
    share_cap: Vec<usize>,
}

impl TenantPolicy {
    /// Build from per-tenant `(weight, queue_share)` pairs against a queue
    /// of `capacity` entries.
    pub fn new(tenants: &[(u64, f64)], quantum: u64, capacity: usize) -> Self {
        TenantPolicy {
            weights: tenants.iter().map(|&(w, _)| w).collect(),
            quantum: quantum.max(1),
            share_cap: tenants
                .iter()
                .map(|&(_, s)| ((capacity as f64 * s.clamp(0.0, 1.0)).ceil() as usize).max(1))
                .collect(),
        }
    }

    pub fn n_tenants(&self) -> usize {
        self.weights.len()
    }
}

/// Dynamic deficit-round-robin state: per-tenant deficits plus the round
/// cursor. Checkpointed (optional `QOS\0` section) so a restored server
/// resumes the exact same fair-share schedule; registered in the xtask
/// schema-drift table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrrState {
    /// Unspent deficit credit per tenant (case steps).
    pub deficits: Vec<u64>,
    /// Tenant whose sub-queue the next round visits first.
    pub cursor: usize,
}

/// The bounded, scheduled request queue.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    seed: u64,
    entries: Vec<QueueEntry>,
    /// Tenant fair-share policy; `None` = single-tenant FIFO-by-rank.
    policy: Option<TenantPolicy>,
    /// DRR dynamic state (empty without a policy).
    drr: DrrState,
    /// Transient per-boundary pop budget (lane-slot grants left per tenant
    /// before its max-in-flight cap binds); recomputed by the server before
    /// every backfill and decremented per pop, never checkpointed. Empty =
    /// unlimited.
    budget: Vec<usize>,
}

impl AdmissionQueue {
    pub fn new(capacity: usize, seed: u64) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            seed,
            entries: Vec::new(),
            policy: None,
            drr: DrrState::default(),
            budget: Vec::new(),
        }
    }

    /// Attach a tenant fair-share policy (server construction only).
    pub fn with_policy(mut self, policy: TenantPolicy) -> Self {
        // Invariant: the cursor tenant's deficit already includes its
        // arrival grant (the scheduler re-grants only when the cursor
        // *moves*), so tenant 0 gets its first-round credit here.
        let mut deficits = vec![0; policy.n_tenants()];
        if let (Some(d), Some(&w)) = (deficits.first_mut(), policy.weights.first()) {
            *d = policy.quantum.saturating_mul(w);
        }
        self.drr = DrrState {
            deficits,
            cursor: 0,
        };
        self.policy = Some(policy);
        self
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued entries belonging to `tenant`.
    pub fn tenant_len(&self, tenant: TenantId) -> usize {
        self.entries.iter().filter(|e| e.tenant == tenant).count()
    }

    /// Enqueue an already-validated request; sheds when full (globally or
    /// for the request's tenant share).
    pub fn push(
        &mut self,
        id: RequestId,
        key: CompatKey,
        priority: u8,
        deadline: Option<f64>,
        tenant: TenantId,
        cost: u32,
    ) -> Result<(), AdmitError> {
        if let Some(policy) = &self.policy {
            if let Some(&cap) = policy.share_cap.get(tenant.0 as usize) {
                let queued = self.tenant_len(tenant);
                if queued >= cap {
                    return Err(AdmitError::TenantShed {
                        tenant,
                        queued,
                        share: cap,
                    });
                }
            }
        }
        if self.entries.len() >= self.capacity {
            return Err(AdmitError::ShedLoad {
                queued: self.entries.len(),
                capacity: self.capacity,
            });
        }
        self.entries.push(QueueEntry {
            id,
            key,
            priority,
            deadline,
            tie: splitmix64(self.seed ^ id.0),
            tenant,
            cost: cost.max(1),
        });
        Ok(())
    }

    /// Set the per-tenant pop budget for this step boundary: how many more
    /// lane slots each tenant may be granted before its max-in-flight cap
    /// binds. The server recomputes this before backfill; each pop spends
    /// one unit, and a tenant at zero is skipped (not starved — its budget
    /// is refreshed next boundary). An empty vec means unlimited.
    pub fn set_budgets(&mut self, budgets: Vec<usize>) {
        self.budget = budgets;
    }

    fn is_blocked(&self, tenant: TenantId) -> bool {
        self.budget
            .get(tenant.0 as usize)
            .is_some_and(|&left| left == 0)
    }

    fn pop_at(&mut self, i: usize) -> (RequestId, CompatKey) {
        let e = self.entries.remove(i);
        if let Some(left) = self.budget.get_mut(e.tenant.0 as usize) {
            *left = left.saturating_sub(1);
        }
        (e.id, e.key)
    }

    /// Index of the rank-best eligible entry, optionally restricted to a
    /// compat key and/or a tenant.
    fn best_idx(&self, key: Option<CompatKey>, tenant: Option<TenantId>) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| key.is_none_or(|k| e.key == k))
            .filter(|(_, e)| tenant.is_none_or(|t| e.tenant == t))
            .filter(|(_, e)| !self.is_blocked(e.tenant))
            .min_by_key(|(_, e)| e.rank())
            .map(|(i, _)| i)
    }

    /// Pick the next entry under deficit round robin: visit tenants from
    /// the cursor, grant `quantum × weight` credit per visit, and serve
    /// the first tenant whose accumulated deficit covers its best
    /// eligible entry's cost. Idle tenants forfeit their deficit (classic
    /// DRR), so credit cannot be hoarded across idle periods. Falls back
    /// to the global rank order when no policy is attached or no tenant
    /// can be scheduled within a bounded number of rounds.
    fn drr_idx(&mut self, key: Option<CompatKey>) -> Option<usize> {
        let Some(policy) = &self.policy else {
            return self.best_idx(key, None);
        };
        let n = policy.n_tenants();
        if n == 0 {
            return self.best_idx(key, None);
        }
        // Any eligible entry at all? (Also covers entries from tenants
        // outside the table, which only exist when no policy validates
        // admissions — served by the fallback below.)
        self.best_idx(key, None)?;
        let quantum = policy.quantum;
        let weights = policy.weights.clone();
        // Enough rounds for the largest plausible cost to accumulate; the
        // fallback keeps pathological costs from spinning.
        let max_visits = n * 4096;
        for _ in 0..max_visits {
            let t = self.drr.cursor;
            match self.best_idx(key, Some(TenantId(t as u32))) {
                Some(i) => {
                    let cost = u64::from(self.entries[i].cost);
                    if self.drr.deficits[t] >= cost {
                        self.drr.deficits[t] -= cost;
                        // cursor stays: remaining deficit serves this
                        // tenant's next entry first, as in classic DRR
                        return Some(i);
                    }
                }
                None => {
                    // no eligible backlog: forfeit credit this round
                    self.drr.deficits[t] = 0;
                }
            }
            // Turn over: quantum is granted exactly once per visit, as
            // the cursor *arrives* at a tenant. Re-granting the current
            // tenant in place would let any tenant with
            // `quantum × weight >= cost` hold the cursor forever and
            // starve the rest.
            self.drr.cursor = (self.drr.cursor + 1) % n;
            let next = self.drr.cursor;
            self.drr.deficits[next] =
                self.drr.deficits[next].saturating_add(quantum.saturating_mul(weights[next]));
        }
        // All weights zero on backlogged tenants (cannot happen through
        // validated admission) or absurd cost/quantum ratio: degrade to
        // plain rank order rather than stalling the server.
        self.best_idx(key, None)
    }

    /// Pop the scheduling-order head over all compatibility keys
    /// (fair-share order first when a tenant policy is attached).
    pub fn pop_best(&mut self) -> Option<(RequestId, CompatKey)> {
        let i = self.drr_idx(None)?;
        Some(self.pop_at(i))
    }

    /// Pop the scheduling-order head among requests with key `key`.
    pub fn pop_best_for(&mut self, key: CompatKey) -> Option<RequestId> {
        let i = self.drr_idx(Some(key))?;
        Some(self.pop_at(i).0)
    }

    /// Remove a specific queued request (cluster work stealing and
    /// failover reconciliation pull entries by id, not by rank); returns
    /// `false` when `id` is not queued.
    pub fn remove(&mut self, id: RequestId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() < before
    }

    /// Capture the queue's contents for a checkpoint, in insertion order.
    /// The admission-time tie-break hashes travel with the entries, so the
    /// restored queue replays the exact same schedule.
    pub fn snapshot(&self) -> Vec<QueueEntrySnapshot> {
        self.entries
            .iter()
            .map(|e| QueueEntrySnapshot {
                id: e.id,
                key: e.key,
                priority: e.priority,
                deadline: e.deadline,
                tie: e.tie,
                tenant: e.tenant,
                cost: e.cost,
            })
            .collect()
    }

    /// Replace the queue's contents with a captured snapshot (restore-side
    /// inverse of [`AdmissionQueue::snapshot`]).
    pub fn restore(&mut self, entries: Vec<QueueEntrySnapshot>) {
        self.entries = entries
            .into_iter()
            .map(|s| QueueEntry {
                id: s.id,
                key: s.key,
                priority: s.priority,
                deadline: s.deadline,
                tie: s.tie,
                tenant: s.tenant,
                cost: s.cost,
            })
            .collect();
    }

    /// Current DRR scheduler state (for checkpointing).
    pub fn drr_state(&self) -> &DrrState {
        &self.drr
    }

    /// Replace the DRR scheduler state (checkpoint restore). Lengths are
    /// reconciled against the configured tenant count, so a checkpoint
    /// from a differently-sized table cannot panic the scheduler.
    pub fn restore_drr(&mut self, mut state: DrrState) {
        let n = self.policy.as_ref().map_or(0, TenantPolicy::n_tenants);
        state.deficits.resize(n, 0);
        if n > 0 {
            state.cursor %= n;
        } else {
            state.cursor = 0;
        }
        self.drr = state;
    }

    /// Remove every queued request whose deadline has passed; returns the
    /// shed ids (the caller marks them `Evicted`).
    pub fn expire(&mut self, now: f64) -> Vec<RequestId> {
        let mut shed = Vec::new();
        self.entries.retain(|e| match e.deadline {
            Some(d) if d < now => {
                shed.push(e.id);
                false
            }
            _ => true,
        });
        shed
    }

    /// Remove every queued request whose deadline is *provably* unmeetable:
    /// even at the modeled per-step floor cost `step_floor_s`, its
    /// remaining steps cannot finish by the deadline. Returns the shed ids
    /// (the caller marks them `Evicted(DeadlineUnmeetable)`). This is the
    /// step-boundary re-evaluation of admission-time shedding: a request
    /// that can no longer win should stop occupying queue share now, not
    /// when `expire` catches it after the deadline has already passed.
    pub fn shed_unmeetable(&mut self, now: f64, step_floor_s: f64) -> Vec<RequestId> {
        if step_floor_s <= 0.0 {
            return Vec::new();
        }
        let mut shed = Vec::new();
        self.entries.retain(|e| match e.deadline {
            Some(d) if d < now + f64::from(e.cost) * step_floor_s => {
                shed.push(e.id);
                false
            }
            _ => true,
        });
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> AdmissionQueue {
        AdmissionQueue::new(8, 1234)
    }

    const K: CompatKey = CompatKey(1);

    #[test]
    fn priority_beats_deadline_beats_tie() {
        let mut q = q();
        q.push(RequestId(0), K, 0, Some(0.1), TenantId(0), 1)
            .unwrap();
        q.push(RequestId(1), K, 5, None, TenantId(0), 1).unwrap();
        q.push(RequestId(2), K, 5, Some(9.0), TenantId(0), 1)
            .unwrap();
        assert_eq!(
            q.pop_best().unwrap().0,
            RequestId(2),
            "earliest deadline among top priority"
        );
        assert_eq!(q.pop_best().unwrap().0, RequestId(1));
        assert_eq!(q.pop_best().unwrap().0, RequestId(0));
        assert!(q.pop_best().is_none());
    }

    #[test]
    fn tie_break_is_seeded_and_deterministic() {
        let order = |seed: u64| {
            let mut q = AdmissionQueue::new(8, seed);
            for id in 0..6 {
                q.push(RequestId(id), K, 1, None, TenantId(0), 1).unwrap();
            }
            let mut out = Vec::new();
            while let Some((id, _)) = q.pop_best() {
                out.push(id.0);
            }
            out
        };
        assert_eq!(order(7), order(7), "same seed, same schedule");
        assert_ne!(order(7), order(8), "different seed breaks ties differently");
    }

    #[test]
    fn backpressure_sheds_typed() {
        let mut q = AdmissionQueue::new(2, 0);
        q.push(RequestId(0), K, 0, None, TenantId(0), 1).unwrap();
        q.push(RequestId(1), K, 0, None, TenantId(0), 1).unwrap();
        assert_eq!(
            q.push(RequestId(2), K, 0, None, TenantId(0), 1),
            Err(AdmitError::ShedLoad {
                queued: 2,
                capacity: 2
            })
        );
    }

    #[test]
    fn keyed_pop_and_expiry() {
        let mut q = q();
        q.push(RequestId(0), CompatKey(1), 0, None, TenantId(0), 1)
            .unwrap();
        q.push(RequestId(1), CompatKey(2), 9, None, TenantId(0), 1)
            .unwrap();
        q.push(RequestId(2), CompatKey(1), 1, Some(0.5), TenantId(0), 1)
            .unwrap();
        assert_eq!(q.pop_best_for(CompatKey(1)), Some(RequestId(2)));
        assert_eq!(q.pop_best_for(CompatKey(3)), None);
        assert_eq!(q.expire(1.0), Vec::<RequestId>::new(), "already popped");
        q.push(RequestId(3), CompatKey(1), 0, Some(0.25), TenantId(0), 1)
            .unwrap();
        assert_eq!(q.expire(1.0), vec![RequestId(3)]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn tenant_share_sheds_before_global_capacity() {
        let policy = TenantPolicy::new(&[(1, 0.25), (1, 1.0)], 8, 8);
        let mut q = AdmissionQueue::new(8, 0).with_policy(policy);
        // 25% of 8 = 2 entries for tenant 0
        q.push(RequestId(0), K, 0, None, TenantId(0), 1).unwrap();
        q.push(RequestId(1), K, 0, None, TenantId(0), 1).unwrap();
        assert_eq!(
            q.push(RequestId(2), K, 0, None, TenantId(0), 1),
            Err(AdmitError::TenantShed {
                tenant: TenantId(0),
                queued: 2,
                share: 2
            })
        );
        // tenant 1 still has the rest of the queue
        for id in 3..9 {
            q.push(RequestId(id), K, 0, None, TenantId(1), 1).unwrap();
        }
        assert!(matches!(
            q.push(RequestId(9), K, 0, None, TenantId(1), 1),
            Err(AdmitError::ShedLoad { .. })
        ));
    }

    #[test]
    fn drr_shares_track_weights() {
        // tenant 0 weight 3, tenant 1 weight 1; equal unit costs → pops
        // alternate 3:1 over any window once deficits stabilize
        let policy = TenantPolicy::new(&[(3, 1.0), (1, 1.0)], 1, 64);
        let mut q = AdmissionQueue::new(64, 7).with_policy(policy);
        for id in 0..48 {
            let t = TenantId((id % 2) as u32);
            q.push(RequestId(id), K, 0, None, t, 1).unwrap();
        }
        let mut served = [0usize; 2];
        for _ in 0..32 {
            let (id, _) = q.pop_best().unwrap();
            served[(id.0 % 2) as usize] += 1;
        }
        let share = served[0] as f64 / 32.0;
        assert!(
            (share - 0.75).abs() <= 0.1,
            "tenant 0 served {share:.2}, want 0.75 ± 0.1"
        );
    }

    #[test]
    fn exhausted_budgets_are_skipped_not_starved() {
        let policy = TenantPolicy::new(&[(1, 1.0), (1, 1.0)], 8, 8);
        let mut q = AdmissionQueue::new(8, 0).with_policy(policy);
        q.push(RequestId(0), K, 9, None, TenantId(0), 1).unwrap();
        q.push(RequestId(1), K, 9, None, TenantId(0), 1).unwrap();
        q.push(RequestId(2), K, 0, None, TenantId(1), 1).unwrap();
        // tenant 0 may take exactly one slot this boundary
        q.set_budgets(vec![1, usize::MAX]);
        let first = q.pop_best().unwrap().0;
        assert!(
            first == RequestId(0) || first == RequestId(1),
            "tenant 0 outranks tenant 1 while it has budget"
        );
        assert_eq!(
            q.pop_best().unwrap().0,
            RequestId(2),
            "budget-exhausted tenant 0 must yield despite higher priority"
        );
        // fresh boundary, fresh budget: tenant 0's other request runs
        q.set_budgets(vec![1, usize::MAX]);
        let third = q.pop_best().unwrap().0;
        assert_ne!(third, first);
        assert!(third == RequestId(0) || third == RequestId(1));
    }

    #[test]
    fn unmeetable_deadlines_shed_early() {
        let mut q = q();
        // 4 steps × floor 1.0 s/step = needs 4 s; deadline at t=2 is
        // provably unmeetable at now=0 even though not yet expired
        q.push(RequestId(0), K, 0, Some(2.0), TenantId(0), 4)
            .unwrap();
        // 1 step × 1.0 s fits the same deadline
        q.push(RequestId(1), K, 0, Some(2.0), TenantId(0), 1)
            .unwrap();
        // no deadline → never shed
        q.push(RequestId(2), K, 0, None, TenantId(0), 64).unwrap();
        assert_eq!(q.shed_unmeetable(0.0, 1.0), vec![RequestId(0)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed_unmeetable(0.0, 0.0), Vec::<RequestId>::new());
    }

    #[test]
    fn drr_state_round_trips() {
        let policy = TenantPolicy::new(&[(2, 1.0), (1, 1.0)], 4, 16);
        let mut q = AdmissionQueue::new(16, 3).with_policy(policy.clone());
        for id in 0..8 {
            q.push(RequestId(id), K, 0, None, TenantId((id % 2) as u32), 3)
                .unwrap();
        }
        q.pop_best().unwrap();
        q.pop_best().unwrap();
        let snap = q.snapshot();
        let drr = q.drr_state().clone();

        let mut r = AdmissionQueue::new(16, 3).with_policy(policy);
        r.restore(snap);
        r.restore_drr(drr);
        let rest: Vec<u64> = std::iter::from_fn(|| r.pop_best())
            .map(|(id, _)| id.0)
            .collect();
        let orig: Vec<u64> = std::iter::from_fn(|| q.pop_best())
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(rest, orig, "restored DRR replays the same schedule");
    }
}
