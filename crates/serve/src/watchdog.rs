//! Deadline-based lane supervision with an escalation ladder.
//!
//! Each server tick, the watchdog compares every occupied lane's modeled
//! step time against [`WatchdogConfig::step_deadline_s`]. A healthy step
//! clears the lane's breach counter; consecutive breaches escalate:
//!
//! 1. **Retry with backoff** — up to [`WatchdogConfig::max_retries`]
//!    times, charging `backoff_base_s · factor^(breach-1)` of link stall
//!    to the modeled clock (the cost of waiting out a stalled exchange),
//! 2. **Restart from checkpoint** — roll the lane's columns back to the
//!    last in-memory lane checkpoint and continue,
//! 3. **Evict** — free the lane, marking every column `Evicted` with
//!    [`EvictReason::Watchdog`](crate::request::EvictReason::Watchdog).
//!
//! Every decision is logged as a [`WatchdogEvent`] carrying both the
//! modeled tick and an injectable wall-clock stamp
//! ([`hetsolve_machine::WallClock`]), so chaos tests drive the whole
//! ladder deterministically with a
//! [`ManualClock`](hetsolve_machine::ManualClock).

/// Watchdog tuning for one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// A lane step taking longer than this (modeled s) is a breach.
    pub step_deadline_s: f64,
    /// Breaches tolerated as retries before escalating to a restart.
    pub max_retries: u32,
    /// Link stall charged for the first retry (modeled s).
    pub backoff_base_s: f64,
    /// Multiplier on the stall per additional consecutive breach.
    pub backoff_factor: f64,
}

impl WatchdogConfig {
    /// Deadline with the default ladder: 2 retries, 1 ms base backoff
    /// doubling per breach.
    pub fn new(step_deadline_s: f64) -> Self {
        WatchdogConfig {
            step_deadline_s,
            max_retries: 2,
            backoff_base_s: 1e-3,
            backoff_factor: 2.0,
        }
    }

    /// Link stall charged for consecutive breach number `breach` (1-based).
    pub fn backoff_s(&self, breach: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(breach.saturating_sub(1) as i32)
    }
}

/// What the watchdog did about a breach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatchdogAction {
    /// Waited out the stall, charging `backoff_s` to the link lane.
    Retry { backoff_s: f64 },
    /// Rolled the lane back to its last checkpoint; `restored` columns
    /// were rebuilt.
    RestartLane { restored: usize },
    /// Gave up on the lane; `evicted` requests were marked
    /// `Evicted`/`Watchdog`.
    EvictLane { evicted: usize },
}

impl WatchdogAction {
    pub fn label(&self) -> &'static str {
        match self {
            WatchdogAction::Retry { .. } => "retry",
            WatchdogAction::RestartLane { .. } => "restart_lane",
            WatchdogAction::EvictLane { .. } => "evict_lane",
        }
    }
}

/// One supervision decision, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogEvent {
    /// Server tick the breach was detected at.
    pub tick: usize,
    /// Lane supervised.
    pub lane: usize,
    /// Consecutive-breach count that triggered this action (1-based).
    pub breach: u32,
    /// How far past the deadline the step ran (modeled s).
    pub overrun_s: f64,
    /// Injectable wall-clock stamp (s) — deterministic under a
    /// `ManualClock`.
    pub wall_s: f64,
    pub action: WatchdogAction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let wd = WatchdogConfig::new(0.5);
        assert_eq!(wd.backoff_s(1), 1e-3);
        assert_eq!(wd.backoff_s(2), 2e-3);
        assert_eq!(wd.backoff_s(3), 4e-3);
    }

    #[test]
    fn labels() {
        assert_eq!(WatchdogAction::Retry { backoff_s: 0.0 }.label(), "retry");
        assert_eq!(
            WatchdogAction::RestartLane { restored: 1 }.label(),
            "restart_lane"
        );
        assert_eq!(
            WatchdogAction::EvictLane { evicted: 2 }.label(),
            "evict_lane"
        );
    }
}
