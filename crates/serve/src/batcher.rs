//! Fused-lane batching: pack compatible queued requests into the vacant
//! columns of r-wide multi-RHS lanes.
//!
//! A *lane* is one process set's fused MCG solve: `width` columns that
//! iterate together under a single `CgConfig`. Cases may share a lane only
//! when they are *compatible* — same backend (mesh/operator/Δt, a given
//! for one server) and bit-identical solver tolerance, summarized as a
//! [`CompatKey`]. The batcher owns only ids and geometry (which request
//! sits in which slot); it never touches numerics, which is what makes it
//! a pure, property-testable core:
//!
//! * a lane never holds two different keys at once,
//! * a lane never exceeds its width,
//! * backfill assigns in scheduling order (priority/deadline/tie),
//! * backfill writes only vacant slots — in-flight columns never move.
//!
//! [`BatchPolicy::Continuous`] backfills any vacant slot at every step
//! boundary (continuous batching); [`BatchPolicy::DrainThenRefill`] is the
//! baseline that refills a lane only after *all* its columns finish — the
//! bench comparison that shows why continuous batching wins (a fused EBE
//! kernel costs the same at any occupancy, so a draining lane wastes GPU
//! time on vacant columns).

use crate::queue::AdmissionQueue;
use crate::request::RequestId;

/// Compatibility class of a request: cases with equal keys may share a
/// fused lane. For a single-backend server this is the effective solver
/// tolerance, compared by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompatKey(pub u64);

impl CompatKey {
    pub fn from_tol(tol: f64) -> Self {
        CompatKey(tol.to_bits())
    }

    pub fn tol(&self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// When vacant lane slots are refilled from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Backfill any vacant slot at every step boundary.
    #[default]
    Continuous,
    /// Refill a lane only once every one of its columns has finished
    /// (the drain-then-refill baseline).
    DrainThenRefill,
}

/// One slot filled by [`Batcher::backfill`], in assignment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    pub lane: usize,
    pub slot: usize,
    pub id: RequestId,
}

#[derive(Debug, Clone)]
struct Lane {
    /// Compatibility key of the current occupants; `None` when empty.
    key: Option<CompatKey>,
    slots: Vec<Option<RequestId>>,
}

impl Lane {
    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// The lane packer.
#[derive(Debug, Clone)]
pub struct Batcher {
    lanes: Vec<Lane>,
    width: usize,
    policy: BatchPolicy,
    /// Lanes ≥ this index are draining for scale-down: backfill skips
    /// them, so they empty naturally and can be removed at a step
    /// boundary. `None` = no drain in progress.
    draining_from: Option<usize>,
}

impl Batcher {
    pub fn new(n_lanes: usize, width: usize, policy: BatchPolicy) -> Self {
        Batcher {
            lanes: (0..n_lanes.max(1))
                .map(|_| Lane {
                    key: None,
                    slots: vec![None; width.max(1)],
                })
                .collect(),
            width: width.max(1),
            policy,
            draining_from: None,
        }
    }

    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Append one empty lane (autoscale scale-up at a step boundary).
    /// Returns the new lane's index.
    pub fn add_lane(&mut self) -> usize {
        self.lanes.push(Lane {
            key: None,
            slots: vec![None; self.width],
        });
        self.lanes.len() - 1
    }

    /// Mark the highest lane as draining (autoscale scale-down): backfill
    /// stops feeding it, in-flight columns keep running untouched.
    pub fn drain_last(&mut self) {
        self.draining_from = Some(self.lanes.len().saturating_sub(1));
    }

    /// Cancel a pending drain (scale-up pressure returned first).
    pub fn cancel_drain(&mut self) {
        self.draining_from = None;
    }

    /// Is lane `lane` currently draining?
    pub fn is_draining(&self, lane: usize) -> bool {
        self.draining_from.is_some_and(|d| lane >= d)
    }

    /// Remove the highest lane. Panics if it still holds work — the
    /// autoscaler only removes a drained (empty) lane, so a non-empty
    /// removal is a scheduling bug, not a runtime condition.
    pub fn remove_last_lane(&mut self) {
        assert!(self.lanes.len() > 1, "cannot remove the only lane");
        let last = self.lanes.last().expect("non-empty lane vec"); // PANIC-OK: len > 1 asserted above
        assert!(last.is_empty(), "removing a lane that still holds work");
        self.lanes.pop();
        self.draining_from = None;
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Compatibility key of lane `lane`'s occupants (`None` when empty).
    pub fn lane_key(&self, lane: usize) -> Option<CompatKey> {
        self.lanes[lane].key
    }

    /// Request occupying slot `slot` of lane `lane`.
    pub fn slot(&self, lane: usize, slot: usize) -> Option<RequestId> {
        self.lanes[lane].slots[slot]
    }

    /// Occupied columns of lane `lane`.
    pub fn occupied_count(&self, lane: usize) -> usize {
        self.lanes[lane].slots.iter().flatten().count()
    }

    /// Per-column occupancy mask of lane `lane` (the MCG lane mask).
    pub fn occupied_mask(&self, lane: usize) -> Vec<bool> {
        self.lanes[lane].slots.iter().map(Option::is_some).collect()
    }

    /// Every lane is empty.
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(Lane::is_empty)
    }

    /// Vacate one slot (its case finished, failed, or was evicted). An
    /// emptied lane drops its key and may take any compatibility class on
    /// the next backfill.
    pub fn free(&mut self, lane: usize, slot: usize) {
        self.lanes[lane].slots[slot] = None;
        if self.lanes[lane].is_empty() {
            self.lanes[lane].key = None;
        }
    }

    /// Place `id` directly into a vacant slot during checkpoint restore,
    /// bypassing the queue. Panics on an occupied slot or a key conflict —
    /// a checkpoint that violates the lane invariants is a bug, not data.
    pub fn restore_slot(&mut self, lane: usize, slot: usize, id: RequestId, key: CompatKey) {
        let l = &mut self.lanes[lane];
        assert!(l.slots[slot].is_none(), "restore into occupied slot");
        assert!(
            l.key.is_none() || l.key == Some(key),
            "restore key conflicts with lane key"
        );
        l.key = Some(key);
        l.slots[slot] = Some(id);
    }

    /// Fill vacant slots from the queue per the policy. Pops follow the
    /// queue's scheduling order; an empty lane adopts the key of the best
    /// request overall, an occupied lane only accepts its own key. Occupied
    /// slots are never written. Returns the assignments made, in order.
    pub fn backfill(&mut self, queue: &mut AdmissionQueue) -> Vec<Assignment> {
        let mut out = Vec::new();
        let draining_from = self.draining_from;
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            if draining_from.is_some_and(|d| li >= d) {
                // scale-down in progress: let this lane empty out
                continue;
            }
            let empty = lane.is_empty();
            if empty {
                lane.key = None;
            } else if self.policy == BatchPolicy::DrainThenRefill {
                continue;
            }
            for si in 0..lane.slots.len() {
                if lane.slots[si].is_some() {
                    continue;
                }
                let popped = match lane.key {
                    Some(k) => queue.pop_best_for(k).map(|id| (id, k)),
                    None => queue.pop_best(),
                };
                let Some((id, key)) = popped else {
                    // no (compatible) work left for this lane
                    break;
                };
                lane.key = Some(key);
                lane.slots[si] = Some(id);
                out.push(Assignment {
                    lane: li,
                    slot: si,
                    id,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::request::TenantId;

    fn queue_with(ids: &[(u64, u64, u8)]) -> AdmissionQueue {
        // (id, key, priority)
        let mut q = AdmissionQueue::new(64, 42);
        for &(id, key, prio) in ids {
            q.push(RequestId(id), CompatKey(key), prio, None, TenantId(0), 1)
                .unwrap();
        }
        q
    }

    #[test]
    fn continuous_backfills_vacant_slots_in_place() {
        let mut b = Batcher::new(1, 3, BatchPolicy::Continuous);
        // distinct priorities pin the pop order: 0, 1, 2, then 3
        let mut q = queue_with(&[(0, 1, 9), (1, 1, 8), (2, 1, 7), (3, 1, 6)]);
        let a = b.backfill(&mut q);
        assert_eq!(a.len(), 3);
        assert_eq!(b.occupied_count(0), 3);
        // finish the middle column; only that slot refills
        b.free(0, 1);
        let a = b.backfill(&mut q);
        assert_eq!(
            a,
            vec![Assignment {
                lane: 0,
                slot: 1,
                id: RequestId(3)
            }]
        );
        assert_eq!(
            b.slot(0, 0),
            Some(RequestId(0)),
            "in-flight column untouched"
        );
    }

    #[test]
    fn drain_then_refill_waits_for_empty_lane() {
        let mut b = Batcher::new(1, 2, BatchPolicy::DrainThenRefill);
        let mut q = queue_with(&[(0, 1, 0), (1, 1, 0), (2, 1, 0)]);
        b.backfill(&mut q);
        b.free(0, 0);
        assert!(b.backfill(&mut q).is_empty(), "lane still draining");
        b.free(0, 1);
        assert_eq!(b.backfill(&mut q).len(), 1, "refills once empty");
    }

    #[test]
    fn incompatible_keys_never_share_a_lane() {
        let mut b = Batcher::new(1, 4, BatchPolicy::Continuous);
        let mut q = queue_with(&[(0, 1, 1), (1, 2, 9), (2, 1, 0)]);
        // highest priority (key 2) seeds the empty lane; key-1 requests wait
        let a = b.backfill(&mut q);
        assert_eq!(a.len(), 1);
        assert_eq!(b.lane_key(0), Some(CompatKey(2)));
        assert_eq!(q.len(), 2);
        // lane empties -> key clears -> other class gets its turn
        b.free(0, 0);
        let a = b.backfill(&mut q);
        assert_eq!(a.len(), 2);
        assert_eq!(b.lane_key(0), Some(CompatKey(1)));
    }

    #[test]
    fn key_from_tol_roundtrips() {
        let k = CompatKey::from_tol(1e-8);
        assert_eq!(k.tol(), 1e-8);
        assert_ne!(k, CompatKey::from_tol(1e-6));
    }

    #[test]
    fn draining_lane_is_skipped_then_removed() {
        let mut b = Batcher::new(2, 2, BatchPolicy::Continuous);
        let mut q = queue_with(&[(0, 1, 9), (1, 1, 8), (2, 1, 7), (3, 1, 6)]);
        b.backfill(&mut q);
        assert_eq!(b.occupied_count(0) + b.occupied_count(1), 4);
        b.drain_last();
        assert!(b.is_draining(1));
        assert!(!b.is_draining(0));
        // free lane 1's columns; backfill must not refill them
        b.free(1, 0);
        b.free(1, 1);
        let mut q2 = queue_with(&[(9, 1, 5)]);
        let a = b.backfill(&mut q2);
        assert!(
            a.iter().all(|x| x.lane != 1),
            "draining lane must not be backfilled"
        );
        b.remove_last_lane();
        assert_eq!(b.n_lanes(), 1);
        assert!(!b.is_draining(0), "drain mark clears on removal");
        // scale back up: new empty lane takes work again
        assert_eq!(b.add_lane(), 1);
        let a = b.backfill(&mut q2);
        assert!(a.iter().any(|x| x.lane == 1) || q2.is_empty());
    }

    #[test]
    #[should_panic(expected = "still holds work")]
    fn removing_an_occupied_lane_panics() {
        let mut b = Batcher::new(2, 2, BatchPolicy::Continuous);
        let mut q = queue_with(&[(0, 1, 9), (1, 1, 8), (2, 1, 7)]);
        b.backfill(&mut q);
        b.remove_last_lane();
    }
}
