//! Distributed serving: [`EnsembleServer`](crate::EnsembleServer) shards
//! across the simulated cluster with node-crash failover.
//!
//! * [`cluster`] — [`ClusterServer`]: the deterministic router, per-node
//!   shards, cross-node work stealing through modeled link costs, peer
//!   replica mirroring, and the restart-on-peer failover rung,
//! * [`checkpoint`] — [`ClusterCheckpoint`]: crash-consistent snapshots
//!   of the whole cluster (router, counters, traffic ledger, one opaque
//!   shard image per node).

pub mod checkpoint;
pub mod cluster;

pub use checkpoint::{ClusterCheckpoint, ClusterFingerprint};
pub use cluster::{ClusterConfig, ClusterServer, RouteEntry};
