//! The sharded, fault-tolerant serving cluster.
//!
//! [`ClusterServer`] composes N node-local [`EnsembleServer`] shards with
//! the machine layer's cluster model: a deterministic **router** admits
//! each request exactly once and places it on a shard (compatibility-key
//! affinity → least load → seeded tie-break), **work stealing** rebalances
//! queued requests onto idle nodes at step boundaries through modeled
//! link costs, and **replica mirroring** keeps each shard's serialized
//! [`ServerCheckpoint`] on a peer so a node crash walks the extended
//! supervision ladder: the per-lane watchdog's retry → restart-lane rungs
//! stay shard-local, and node loss adds **restart-on-peer** — rebuild the
//! dead shard from its newest valid replica — with eviction
//! ([`EvictReason::NodeLost`]) only when every replica is torn or absent.
//!
//! # Bitwise equivalence under failover
//!
//! Every shard runs `WindowPolicy::FullWindow`, so a case's trajectory is
//! a pure function of its seed and step count — independent of placement,
//! lane companions, steals, and restarts. Stealing moves *queued* requests
//! only; failover restores a shard from a bitwise snapshot and replays the
//! lost boundary deterministically; link charges stall the modeled clock
//! without touching numerics. A request served through any crash/steal
//! history therefore finishes with the same final displacement bits as a
//! solo run of the same seed, which the chaos suite asserts per node and
//! per crash boundary.
//!
//! # Determinism
//!
//! Shard `i` schedules with `sched_seed = mix64(base, i)` — co-draining
//! shards break ties with uncorrelated hashes — and the router's
//! tie-break hashes `(placement_seed, request, shard)`. Every decision
//! (placement, donor choice, failover reconciliation order) is a function
//! of cluster state and seeds alone, so a replay under the same
//! [`FaultPlan`](hetsolve_fault::FaultPlan) reproduces the run exactly.

use hetsolve_ckpt::{mix64, ReplicaStore, RestoreReport};
use hetsolve_core::Backend;
use hetsolve_fault::{AdmissionFault, FaultInjector, NoopFaults};
use hetsolve_machine::{LaneKind, LinkTraffic};
use hetsolve_obs::{FlightRecorder, MetricsRegistry, ServeStats};

use crate::batcher::CompatKey;
use crate::checkpoint::{ServeFingerprint, ServerCheckpoint};
use crate::queue::AdmitError;
use crate::request::{EvictReason, RequestId, RequestRecord, RequestState, SolveRequest};
use crate::server::{EnsembleServer, ServeConfig};

/// Cluster-serving configuration: a per-shard [`ServeConfig`] template
/// plus the distribution knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Template every shard derives its config from; shard `i` runs with
    /// `sched_seed = mix64(serve.sched_seed, i)` so tie-breaks across
    /// shards are uncorrelated.
    pub serve: ServeConfig,
    /// Number of node-local shards.
    pub shards: usize,
    /// Seed of the router's placement tie-break.
    pub placement_seed: u64,
    /// Mirror a shard's checkpoint to its peer every this many shard
    /// ticks (0 disables replication — and with it, restart-on-peer).
    pub replica_every: usize,
    /// Replicas retained per shard (clamped to ≥ 2 by the store).
    pub replica_keep: usize,
    /// Enable cross-node work stealing at step boundaries.
    pub steal: bool,
    /// Modeled wire size of one stolen request descriptor (bytes).
    pub steal_bytes: f64,
}

impl ClusterConfig {
    pub fn new(serve: ServeConfig, shards: usize) -> Self {
        ClusterConfig {
            serve,
            shards: shards.max(1),
            placement_seed: 0xc1a5,
            replica_every: 1,
            replica_keep: 2,
            steal: true,
            steal_bytes: 256.0,
        }
    }

    /// The derived config shard `i` actually runs — the single source of
    /// truth for both construction and restore.
    pub fn shard_cfg(&self, i: usize) -> ServeConfig {
        let mut cfg = self.serve.clone();
        cfg.sched_seed = mix64(self.serve.sched_seed, i as u64);
        cfg
    }
}

/// Router entry: where one cluster-admitted request currently lives. The
/// request itself travels with the route so failover can re-admit work
/// the restored snapshot predates.
#[derive(Debug, Clone, Copy)]
pub struct RouteEntry {
    /// Shard currently owning the request.
    pub shard: usize,
    /// The request's shard-local id there.
    pub local: u64,
    /// The admitted request (placement-independent by construction).
    pub request: SolveRequest,
}

/// The sharded serving cluster: router + N shards + peer replicas.
///
/// Fields are `pub(crate)` for the sibling [`crate::shard::checkpoint`]
/// module, which serializes and rebuilds the whole cluster.
pub struct ClusterServer<'b, F: FaultInjector = NoopFaults> {
    pub(crate) backend: &'b Backend,
    pub(crate) cfg: ClusterConfig,
    /// Node-local shards; cluster-level faults are injected here, so the
    /// shards themselves run fault-free.
    pub(crate) shards: Vec<EnsembleServer<'b, NoopFaults>>,
    /// `replicas[i]` is the peer-held mirror of shard `i`'s checkpoints
    /// (modeled as living on node `(i + 1) % n`, surviving node `i`).
    pub(crate) replicas: Vec<ReplicaStore>,
    /// Cluster request id → current placement, indexed by `RequestId.0`.
    pub(crate) routes: Vec<RouteEntry>,
    /// Tombstones for requests lost with an unrecoverable node, indexed
    /// like `routes` (`None` = the routed shard holds the live record).
    pub(crate) lost: Vec<Option<RequestRecord>>,
    /// Cluster-level counters only (crashes, failovers, steals, and
    /// router-side sheds); [`ClusterServer::stats`] merges shard stats in.
    pub(crate) cluster_stats: ServeStats,
    /// Modeled cross-node link traffic (steals + replica mirroring).
    pub(crate) traffic: LinkTraffic,
    /// Cluster-level flight ring: routing, steals, crashes, failovers.
    pub(crate) flight: FlightRecorder,
    pub(crate) faults: F,
    /// Cluster admission attempts (fault-injection index).
    pub(crate) admissions: usize,
    /// Cluster scheduling boundaries executed.
    pub(crate) ticks: usize,
    /// Checkpoint images mirrored to peers.
    pub(crate) replica_writes: usize,
    /// Replica images skipped: mirrors dropped by link partitions plus
    /// invalid (torn / mismatched) images skipped during failover.
    pub(crate) replica_skipped: usize,
    /// Modeled node-loss → serving-again latency of each failover.
    pub(crate) recovery_s: Vec<f64>,
    /// Restore scan of each failover, in order (tests assert fallback
    /// past torn replicas here).
    failover_reports: Vec<(usize, RestoreReport)>,
}

impl<'b> ClusterServer<'b, NoopFaults> {
    pub fn new(backend: &'b Backend, cfg: ClusterConfig) -> Self {
        Self::with_faults(backend, cfg, NoopFaults)
    }
}

impl<'b, F: FaultInjector> ClusterServer<'b, F> {
    /// Cluster with a fault injector on the node-crash / replica /
    /// partition / admission hooks.
    pub fn with_faults(backend: &'b Backend, cfg: ClusterConfig, faults: F) -> Self {
        let shards = (0..cfg.shards)
            .map(|i| EnsembleServer::new(backend, cfg.shard_cfg(i)))
            .collect();
        let replicas = (0..cfg.shards)
            .map(|_| ReplicaStore::new(cfg.replica_keep))
            .collect();
        ClusterServer {
            backend,
            shards,
            replicas,
            routes: Vec::new(),
            lost: Vec::new(),
            cluster_stats: ServeStats::new(),
            traffic: LinkTraffic::default(),
            flight: FlightRecorder::new(cfg.serve.flight_capacity),
            faults,
            admissions: 0,
            ticks: 0,
            replica_writes: 0,
            replica_skipped: 0,
            recovery_s: Vec::new(),
            failover_reports: Vec::new(),
            cfg,
        }
    }

    /// Deterministic placement order for one request: shards with a lane
    /// already keyed to the request's [`CompatKey`] first (they can fuse
    /// it without opening a new lane), then least loaded, then a seeded
    /// hash of `(placement_seed, request, shard)`, then the index.
    fn placement_order(&self, gid: u64, key: CompatKey) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by_key(|&i| {
            let sh = &self.shards[i];
            let affinity =
                (0..sh.batcher.n_lanes()).any(|lane| sh.batcher.lane_key(lane) == Some(key));
            let load = sh.queue_depth() + sh.in_flight();
            let tie = mix64(mix64(self.cfg.placement_seed, gid), i as u64);
            (!affinity, load, tie, i)
        });
        order
    }

    /// Route one request into the cluster. The request is admitted *once*:
    /// the router walks its placement order, skipping shards that shed
    /// load, and returns the cluster-wide [`RequestId`]. A typed rejection
    /// (bad steps / tolerance) is final — it would fail identically on
    /// every shard.
    pub fn admit(&mut self, request: SolveRequest) -> Result<RequestId, AdmitError> {
        let index = self.admissions;
        self.admissions += 1;
        let now = self.elapsed();
        match self.faults.admission_fault(index) {
            Some(AdmissionFault::Reject) => {
                self.cluster_stats.record_rejection();
                self.flight
                    .record(now, "admit_rejected", None, None, None, "fault injected");
                return Err(AdmitError::Rejected(
                    crate::queue::RejectReason::FaultInjected,
                ));
            }
            Some(AdmissionFault::Shed) => {
                self.cluster_stats.record_shed();
                self.flight
                    .record(now, "admit_shed", None, None, None, "fault injected");
                return Err(AdmitError::ShedLoad {
                    queued: self.queue_depth(),
                    capacity: self.cfg.serve.queue_capacity * self.shards.len(),
                });
            }
            None => {}
        }
        let gid = self.routes.len() as u64;
        let key = CompatKey::from_tol(request.tol.unwrap_or(self.cfg.serve.run.tol));
        let mut last_shed = None;
        for &i in &self.placement_order(gid, key) {
            match self.shards[i].admit(request) {
                Ok(local) => {
                    self.routes.push(RouteEntry {
                        shard: i,
                        local: local.0,
                        request,
                    });
                    self.lost.push(None);
                    self.flight.record(
                        now,
                        "routed",
                        Some(gid),
                        Some(i as u64),
                        Some(self.ticks as u64),
                        format!("shard {i} local req#{}", local.0),
                    );
                    return Ok(RequestId(gid));
                }
                Err(e @ AdmitError::Rejected(_)) => return Err(e),
                // a shard at global capacity or at this tenant's queue
                // share both mean "try the next shard"
                Err(e @ (AdmitError::ShedLoad { .. } | AdmitError::TenantShed { .. })) => {
                    last_shed = Some(e);
                }
            }
        }
        self.flight.record(
            now,
            "admit_shed",
            Some(gid),
            None,
            Some(self.ticks as u64),
            "every shard at capacity",
        );
        Err(last_shed.unwrap_or(AdmitError::ShedLoad {
            queued: self.queue_depth(),
            capacity: self.cfg.serve.queue_capacity * self.shards.len(),
        }))
    }

    /// One cluster scheduling boundary: resolve this tick's link
    /// partitions, mirror replicas to peers, process node crashes
    /// (failover before work moves), steal work onto idle nodes, then
    /// advance every non-idle shard by one tick.
    ///
    /// Mirrors precede crash processing — the replica push at a boundary
    /// lands on the peer before the node can die at that same boundary —
    /// which, together with mirroring from shard tick 0 on, guarantees
    /// that a crash at *any* boundary has a replica to restore from (the
    /// chaos suite's kill-anywhere property). Idle shards mirror too:
    /// their finished results are exactly what a late crash would
    /// otherwise destroy.
    pub fn tick(&mut self) {
        let tick = self.ticks;
        let n = self.shards.len();
        let mut severed: Vec<(usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.faults.link_partition_fault(tick, a, b) {
                    severed.push((a, b));
                    self.flight.record(
                        self.elapsed(),
                        "link_partition",
                        None,
                        None,
                        Some(tick as u64),
                        format!("nodes {a} and {b} unreachable this boundary"),
                    );
                }
            }
        }
        if self.cfg.replica_every > 0 {
            for node in 0..n {
                if self.shards[node]
                    .ticks()
                    .is_multiple_of(self.cfg.replica_every)
                {
                    self.mirror(node, &severed);
                }
            }
        }
        for node in 0..n {
            if self.faults.node_crash_fault(tick, node) {
                self.failover(node);
            }
        }
        if self.cfg.steal && n > 1 {
            self.steal(&severed);
        }
        for node in 0..n {
            let sh = &mut self.shards[node];
            if !(sh.queue.is_empty() && sh.batcher.is_idle()) {
                sh.tick();
            }
        }
        self.ticks += 1;
    }

    /// Tick until every shard's queue and lanes are empty; returns the
    /// cluster ticks executed, bounded by `serve.max_ticks`.
    pub fn run_until_idle(&mut self) -> usize {
        let mut n = 0;
        while !self.is_idle() && n < self.cfg.serve.max_ticks {
            self.tick();
            n += 1;
        }
        n
    }

    pub fn is_idle(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.queue.is_empty() && s.batcher.is_idle())
    }

    /// Advance the modeled cluster clock by `dt` without scheduling any
    /// work: every shard idles in lock-step, so open-loop load generators
    /// can wait out gaps between arrivals on the modeled timeline.
    pub fn advance_idle(&mut self, dt: f64) {
        for sh in &mut self.shards {
            sh.advance_idle(dt);
        }
    }

    fn is_severed(severed: &[(usize, usize)], x: usize, y: usize) -> bool {
        severed
            .iter()
            .any(|&(a, b)| (a == x && b == y) || (a == y && b == x))
    }

    /// The cluster id currently routed to `(shard, local)`, skipping
    /// tombstoned routes (a post-failover fresh shard reuses local ids).
    fn gid_for(&self, shard: usize, local: u64) -> Option<usize> {
        self.routes
            .iter()
            .enumerate()
            .find(|(g, r)| self.lost[*g].is_none() && r.shard == shard && r.local == local)
            .map(|(g, _)| g)
    }

    /// Work stealing at a step boundary: each node whose queue is empty
    /// and whose lanes have vacancy pulls one queued request from the
    /// deepest-backlog reachable donor, charging the modeled link.
    fn steal(&mut self, severed: &[(usize, usize)]) {
        let n = self.shards.len();
        for thief in 0..n {
            let sh = &self.shards[thief];
            if !sh.queue.is_empty() {
                continue;
            }
            if sh.in_flight() >= sh.batcher.n_lanes() * sh.batcher.width() {
                continue;
            }
            let donor = (0..n)
                .filter(|&d| d != thief && !Self::is_severed(severed, thief, d))
                .filter(|&d| self.shards[d].queue_depth() > 0)
                .max_by_key(|&d| (self.shards[d].queue_depth(), std::cmp::Reverse(d)));
            let Some(donor) = donor else { continue };
            let Some((donor_local, key)) = self.shards[donor].queue.pop_best() else {
                continue;
            };
            let request = self.shards[donor].records[donor_local.0 as usize].request;
            match self.shards[thief].admit(request) {
                Ok(new_local) => {
                    let gid = self.gid_for(donor, donor_local.0);
                    let at = self.shards[donor].elapsed();
                    let rec = &mut self.shards[donor].records[donor_local.0 as usize];
                    rec.state = RequestState::Migrated;
                    rec.finished_at = Some(at);
                    if let Some(gid) = gid {
                        self.routes[gid].shard = thief;
                        self.routes[gid].local = new_local.0;
                    }
                    self.cluster_stats.record_steal();
                    let t = self
                        .traffic
                        .charge_steal(&self.cfg.serve.run.node, self.cfg.steal_bytes);
                    self.shards[thief].clock.stall(LaneKind::Link, t);
                    self.flight.record(
                        self.shards[thief].elapsed(),
                        "steal",
                        gid.map(|g| g as u64),
                        Some(thief as u64),
                        Some(self.ticks as u64),
                        format!("from node {donor} ({t:.3e}s link)"),
                    );
                }
                Err(_) => {
                    // the thief unexpectedly refused (full queue can't
                    // happen — it was empty); re-queue on the donor: the
                    // tie-break re-hashes to the identical value
                    let _ = self.shards[donor].queue.push(
                        donor_local,
                        key,
                        request.priority,
                        request.deadline,
                        request.tenant,
                        request.n_steps.min(u32::MAX as usize) as u32,
                    );
                }
            }
        }
    }

    /// Mirror shard `node`'s checkpoint to its peer store, charging the
    /// link and applying any planned replica corruption. Skipped (and
    /// counted) when the node↔peer link is partitioned this boundary.
    fn mirror(&mut self, node: usize, severed: &[(usize, usize)]) {
        let peer = (node + 1) % self.shards.len();
        let seq = self.shards[node].ticks() as u64;
        if peer != node && Self::is_severed(severed, node, peer) {
            self.replica_skipped += 1;
            self.flight.record(
                self.shards[node].elapsed(),
                "replica_skipped",
                None,
                Some(node as u64),
                Some(self.ticks as u64),
                format!("link to peer {peer} partitioned, seq {seq}"),
            );
            return;
        }
        let bytes = self.shards[node].checkpoint_bytes();
        let t = self
            .traffic
            .charge_replica(&self.cfg.serve.run.node, bytes.len() as f64);
        self.shards[node].clock.stall(LaneKind::Link, t);
        self.replicas[node].mirror(seq, &bytes);
        self.replica_writes += 1;
        if let Some(flip) = self.faults.replica_flip_fault(node, seq) {
            self.replicas[node].flip_bit(seq, flip.seed);
            self.flight.record(
                self.shards[node].elapsed(),
                "replica_flipped",
                None,
                Some(node as u64),
                Some(self.ticks as u64),
                format!("seq {seq} silently bit-flipped in the peer mirror"),
            );
        }
        if let Some(torn) = self.faults.replica_corruption_fault(node, seq) {
            self.replicas[node].tear(seq, torn.keep_frac);
            self.flight.record(
                self.shards[node].elapsed(),
                "replica_torn",
                None,
                Some(node as u64),
                Some(self.ticks as u64),
                format!("seq {seq} torn to {:.0}%", torn.keep_frac * 100.0),
            );
        } else {
            self.flight.record(
                self.shards[node].elapsed(),
                "replica_mirrored",
                None,
                Some(node as u64),
                Some(self.ticks as u64),
                format!("seq {seq}, {} bytes to peer {peer}", bytes.len()),
            );
        }
    }

    /// Node crash: the extended ladder's restart-on-peer rung. Rebuild the
    /// dead shard from its newest valid peer replica (falling back past
    /// torn images) and reconcile the router; evict the node's requests
    /// ([`EvictReason::NodeLost`]) only when no replica validates.
    fn failover(&mut self, node: usize) {
        let cfg = self.shards[node].config().clone();
        let dead_elapsed = self.shards[node].elapsed();
        self.cluster_stats.record_node_crash();
        self.flight.record(
            dead_elapsed,
            "node_crash",
            None,
            Some(node as u64),
            Some(self.ticks as u64),
            "injected node crash",
        );
        let fp = ServeFingerprint::of(self.backend, &cfg);
        let (found, report) = self.replicas[node].load_latest_valid(|_, bytes| {
            ServerCheckpoint::from_bytes(bytes, fp).map(|ck| (ck, bytes.len()))
        });
        self.replica_skipped += report.skipped.len();
        for sk in &report.skipped {
            self.flight.record(
                dead_elapsed,
                "replica_invalid",
                None,
                Some(node as u64),
                Some(self.ticks as u64),
                format!("seq {} skipped: {}", sk.seq, sk.error),
            );
        }
        self.failover_reports.push((node, report));
        let restored = found.and_then(|(seq, (ck, nbytes))| {
            EnsembleServer::from_checkpoint(self.backend, cfg.clone(), NoopFaults, ck)
                .ok()
                .map(|sh| (seq, sh, nbytes))
        });
        match restored {
            Some((seq, mut shard, nbytes)) => {
                let snap_elapsed = shard.elapsed();
                let t = self
                    .traffic
                    .charge_replica(&self.cfg.serve.run.node, nbytes as f64);
                shard.clock.stall(LaneKind::Link, t);
                let recovery = (dead_elapsed - snap_elapsed).max(0.0) + t;
                self.recovery_s.push(recovery);
                self.cluster_stats.record_failover();
                self.shards[node] = shard;
                self.reconcile(node);
                self.flight.record(
                    self.shards[node].elapsed(),
                    "failover",
                    None,
                    Some(node as u64),
                    Some(self.ticks as u64),
                    format!("restored on peer from replica seq {seq}, recovery {recovery:.3e}s"),
                );
            }
            None => self.evict_node(node, cfg, dead_elapsed),
        }
    }

    /// Reconcile the router with a shard just restored from a replica:
    /// re-admit cluster requests the snapshot predates (admitted or
    /// stolen-in after the mirror) and mark requests the snapshot still
    /// holds but the router has since stolen away as `Migrated`, so no
    /// case runs twice and none is dropped.
    fn reconcile(&mut self, node: usize) {
        let snap_admitted = self.shards[node].admitted() as u64;
        let now = self.shards[node].elapsed();
        for gid in 0..self.routes.len() {
            if self.lost[gid].is_some() {
                continue;
            }
            let RouteEntry {
                shard,
                local,
                request,
            } = self.routes[gid];
            if shard != node || local < snap_admitted {
                continue;
            }
            match self.shards[node].admit(request) {
                Ok(new_local) => {
                    self.routes[gid].local = new_local.0;
                    self.flight.record(
                        now,
                        "readmitted",
                        Some(gid as u64),
                        Some(node as u64),
                        Some(self.ticks as u64),
                        "admission postdated the restored replica",
                    );
                }
                Err(_) => self.tombstone(gid, now),
            }
        }
        for local in 0..snap_admitted {
            if self.gid_for(node, local).is_some() {
                continue;
            }
            if self.shards[node].records[local as usize]
                .state
                .is_terminal()
            {
                continue;
            }
            // live in the snapshot but routed elsewhere now: the request
            // was stolen away after the mirror — drop this stale copy
            self.shards[node].queue.remove(RequestId(local));
            let rec = &mut self.shards[node].records[local as usize];
            rec.state = RequestState::Migrated;
            rec.finished_at = Some(now);
            self.flight.record(
                now,
                "steal_reconciled",
                Some(local),
                Some(node as u64),
                Some(self.ticks as u64),
                "stale snapshot copy of a stolen request dropped",
            );
        }
    }

    /// Last resort: no valid replica — replace the shard with a fresh one
    /// and tombstone every request routed to it as `NodeLost`.
    fn evict_node(&mut self, node: usize, cfg: ServeConfig, now: f64) {
        self.shards[node] = EnsembleServer::new(self.backend, cfg);
        for gid in 0..self.routes.len() {
            if self.lost[gid].is_some() || self.routes[gid].shard != node {
                continue;
            }
            self.tombstone(gid, now);
        }
        self.flight.record(
            now,
            "node_evicted",
            None,
            Some(node as u64),
            Some(self.ticks as u64),
            "no valid replica; node's requests evicted as node_lost",
        );
    }

    /// Tombstone one cluster request as lost with its node.
    fn tombstone(&mut self, gid: usize, now: f64) {
        self.lost[gid] = Some(RequestRecord {
            id: RequestId(gid as u64),
            request: self.routes[gid].request,
            state: RequestState::Evicted,
            admitted_at: 0.0,
            finished_at: Some(now),
            evict_reason: Some(EvictReason::NodeLost),
            result: None,
        });
        self.cluster_stats.record_eviction();
        self.flight.record(
            now,
            "evicted",
            Some(gid as u64),
            None,
            Some(self.ticks as u64),
            EvictReason::NodeLost.label(),
        );
    }

    /// Merged serving metrics: cluster-level counters (crashes,
    /// failovers, steals, router sheds, node-lost evictions) plus every
    /// shard's stats, with elapsed = the slowest shard (shards run
    /// concurrently). Built fresh on each call — [`ServeStats::merge`]
    /// sums counters, so merging is only valid into a fresh accumulator.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.cluster_stats.clone();
        for sh in &self.shards {
            s.merge(sh.stats());
        }
        s.set_elapsed(self.elapsed());
        s
    }

    /// Telemetry snapshot: the merged [`ServeStats`] mapped onto the
    /// declared `serve_*` names plus the cluster-only series (shard
    /// count, replica traffic, link time, per-failover recovery latency).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("serve_requests_admitted_total", self.routes.len() as f64);
        self.stats().to_registry(&mut reg);
        reg.gauge_set("serve_shards", self.shards.len() as f64);
        reg.inc("serve_replica_writes_total", self.replica_writes as f64);
        reg.inc("serve_replica_skipped_total", self.replica_skipped as f64);
        reg.gauge_set("serve_link_time_s", self.traffic.link_time_s);
        for &r in &self.recovery_s {
            reg.observe("serve_failover_recovery_s", r);
        }
        reg.inc("flight_events_dropped_total", self.flight.dropped() as f64);
        reg
    }

    /// Cluster-wide record of an admitted request (`id` rewritten to the
    /// cluster id; tombstones win over routed records).
    pub fn record(&self, id: RequestId) -> RequestRecord {
        let gid = id.0 as usize;
        if let Some(t) = &self.lost[gid] {
            return t.clone();
        }
        let r = &self.routes[gid];
        let mut rec = self.shards[r.shard].record(RequestId(r.local)).clone();
        rec.id = id;
        rec
    }

    /// Final displacement of a `Done` request.
    pub fn result(&self, id: RequestId) -> Option<Vec<f64>> {
        let gid = id.0 as usize;
        if self.lost[gid].is_some() {
            return None;
        }
        let r = &self.routes[gid];
        self.shards[r.shard]
            .result(RequestId(r.local))
            .map(|x| x.to_vec())
    }

    /// Lifecycle state of a cluster request.
    pub fn state(&self, id: RequestId) -> RequestState {
        self.record(id).state
    }

    /// Requests ever routed (cluster ids are `0..admitted()`).
    pub fn admitted(&self) -> usize {
        self.routes.len()
    }

    /// Current placement `(shard, shard-local id)` of a request.
    pub fn route(&self, id: RequestId) -> (usize, u64) {
        let r = &self.routes[id.0 as usize];
        (r.shard, r.local)
    }

    /// Modeled cluster clock: the slowest shard's elapsed time (shards
    /// run concurrently on their own nodes).
    pub fn elapsed(&self) -> f64 {
        self.shards.iter().map(|s| s.elapsed()).fold(0.0, f64::max)
    }

    /// Queued requests across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth()).sum()
    }

    /// Requests occupying lane slots across all shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.in_flight()).sum()
    }

    /// Cluster scheduling boundaries executed.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The node-local shards (tests inspect per-shard placement).
    pub fn shards(&self) -> &[EnsembleServer<'b, NoopFaults>] {
        &self.shards
    }

    /// Peer-held replica mirror of shard `node`.
    pub fn replica(&self, node: usize) -> &ReplicaStore {
        &self.replicas[node]
    }

    /// Modeled cross-node link traffic so far.
    pub fn traffic(&self) -> &LinkTraffic {
        &self.traffic
    }

    /// Node-loss → serving-again latency of each failover, in order.
    pub fn recovery_latencies(&self) -> &[f64] {
        &self.recovery_s
    }

    /// `(node, restore scan)` of each failover, in order.
    pub fn failover_reports(&self) -> &[(usize, RestoreReport)] {
        &self.failover_reports
    }

    /// The cluster-level flight ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
}
