//! Crash-consistent snapshots of a whole [`ClusterServer`].
//!
//! [`ClusterCheckpoint`] captures the router (every [`RouteEntry`] and
//! tombstone), the cluster counters, the modeled link-traffic ledger, the
//! cluster flight ring, and an opaque serialized [`ServerCheckpoint`]
//! image per shard — each validated by its own fingerprint/CRC path on
//! restore, so a torn shard image fails the whole cluster snapshot typed
//! instead of silently dropping a node. Peer [`ReplicaStore`]s are
//! volatile by design and *not* checkpointed: a restored cluster refills
//! them at the next mirror boundary, exactly as a rebooted peer would.
//!
//! [`ReplicaStore`]: hetsolve_ckpt::ReplicaStore

use std::io;
use std::path::PathBuf;

use hetsolve_ckpt::{
    mix64, CheckpointStore, CkptError, Dec, Enc, RestoreReport, SectionReader, SectionWriter,
};
use hetsolve_core::Backend;
use hetsolve_fault::{FaultInjector, NoopFaults};
use hetsolve_machine::LinkTraffic;
use hetsolve_obs::{FlightRecorder, ServeStats};

use crate::checkpoint::{
    decode_flight, decode_record, decode_stats, encode_flight, encode_record, encode_stats,
    ServeFingerprint,
};
use crate::request::{RequestRecord, SolveRequest, TenantId};
use crate::server::EnsembleServer;
use crate::shard::cluster::{ClusterConfig, ClusterServer, RouteEntry};

/// Section tags of the cluster-checkpoint format.
const TAG_META: [u8; 4] = *b"META";
const TAG_ROUTES: [u8; 4] = *b"ROUT";
const TAG_LOST: [u8; 4] = *b"LOST";
const TAG_STATS: [u8; 4] = *b"STAT";
const TAG_TRAFFIC: [u8; 4] = *b"TRAF";
const TAG_RECOVERY: [u8; 4] = *b"RCVY";
const TAG_FLIGHT: [u8; 4] = *b"FLIT";
const TAG_SHARDS: [u8; 4] = *b"SHRD";

/// Hash of everything that determines a cluster run's trajectory but is
/// rebuilt from `(backend, cfg)` on restore: every shard's
/// [`ServeFingerprint`] plus the distribution knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterFingerprint(pub u64);

impl ClusterFingerprint {
    pub fn of(backend: &Backend, cfg: &ClusterConfig) -> Self {
        let mut h = mix64(0xc1a5_7e12, cfg.shards as u64);
        for i in 0..cfg.shards {
            h = mix64(h, ServeFingerprint::of(backend, &cfg.shard_cfg(i)).0);
        }
        h = mix64(h, cfg.placement_seed);
        h = mix64(h, cfg.replica_every as u64);
        h = mix64(h, cfg.replica_keep as u64);
        h = mix64(h, cfg.steal as u64);
        h = mix64(h, cfg.steal_bytes.to_bits());
        ClusterFingerprint(h)
    }
}

/// One crash-consistent snapshot of a cluster run at a tick boundary.
#[derive(Debug, Clone)]
pub struct ClusterCheckpoint {
    pub fingerprint: ClusterFingerprint,
    pub ticks: usize,
    pub admissions: usize,
    pub routes: Vec<RouteEntry>,
    pub lost: Vec<Option<RequestRecord>>,
    pub stats: ServeStats,
    pub replica_writes: usize,
    pub replica_skipped: usize,
    pub recovery_s: Vec<f64>,
    pub traffic: LinkTraffic,
    pub flight: FlightRecorder,
    /// One serialized [`crate::checkpoint::ServerCheckpoint`] per shard,
    /// kept opaque here and validated by the shard's own restore path.
    pub shards: Vec<Vec<u8>>,
}

// Both codec bodies bind one local per `RouteEntry` field, under the
// field's own name: the schema-drift pass (`cargo xtask analyze`)
// cross-checks the struct's field list against these bodies.
fn encode_route(enc: &mut Enc, r: &RouteEntry) {
    let shard = r.shard;
    enc.put_usize(shard);
    let local = r.local;
    enc.put_u64(local);
    let request = &r.request;
    enc.put_u64(request.seed);
    enc.put_usize(request.n_steps);
    enc.put_u8(request.priority);
    enc.put_opt_f64(request.deadline);
    enc.put_opt_f64(request.tol);
    enc.put_u32(request.tenant.0);
}

fn decode_route(dec: &mut Dec<'_>) -> Result<RouteEntry, CkptError> {
    let shard = dec.usize_()?;
    let local = dec.u64()?;
    let request = SolveRequest {
        seed: dec.u64()?,
        n_steps: dec.usize_()?,
        priority: dec.u8()?,
        deadline: dec.opt_f64()?,
        tol: dec.opt_f64()?,
        tenant: TenantId(dec.u32()?),
    };
    Ok(RouteEntry {
        shard,
        local,
        request,
    })
}

// Both codec bodies bind one local per `LinkTraffic` field, under the
// field's own name, for the same schema-drift cross-check.
fn encode_traffic(enc: &mut Enc, t: &LinkTraffic) {
    let steal_msgs = t.steal_msgs;
    enc.put_u64(steal_msgs);
    let steal_bytes = t.steal_bytes;
    enc.put_f64(steal_bytes);
    let replica_msgs = t.replica_msgs;
    enc.put_u64(replica_msgs);
    let replica_bytes = t.replica_bytes;
    enc.put_f64(replica_bytes);
    let link_time_s = t.link_time_s;
    enc.put_f64(link_time_s);
}

fn decode_traffic(dec: &mut Dec<'_>) -> Result<LinkTraffic, CkptError> {
    let steal_msgs = dec.u64()?;
    let steal_bytes = dec.f64()?;
    let replica_msgs = dec.u64()?;
    let replica_bytes = dec.f64()?;
    let link_time_s = dec.f64()?;
    Ok(LinkTraffic {
        steal_msgs,
        steal_bytes,
        replica_msgs,
        replica_bytes,
        link_time_s,
    })
}

impl ClusterCheckpoint {
    /// Serialize into the sectioned `hetsolve-ckpt` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        let mut meta = Enc::new();
        let fingerprint = self.fingerprint;
        meta.put_u64(fingerprint.0);
        let ticks = self.ticks;
        meta.put_usize(ticks);
        let admissions = self.admissions;
        meta.put_usize(admissions);
        let replica_writes = self.replica_writes;
        meta.put_usize(replica_writes);
        let replica_skipped = self.replica_skipped;
        meta.put_usize(replica_skipped);
        w.section(TAG_META, &meta.into_bytes());

        let mut rt = Enc::new();
        let routes = &self.routes;
        rt.put_usize(routes.len());
        for r in routes {
            encode_route(&mut rt, r);
        }
        w.section(TAG_ROUTES, &rt.into_bytes());

        let mut lo = Enc::new();
        let lost = &self.lost;
        lo.put_usize(lost.len());
        for t in lost {
            match t {
                Some(rec) => {
                    lo.put_bool(true);
                    encode_record(&mut lo, rec);
                }
                None => lo.put_bool(false),
            }
        }
        w.section(TAG_LOST, &lo.into_bytes());

        let mut st = Enc::new();
        let stats = &self.stats;
        encode_stats(&mut st, stats);
        w.section(TAG_STATS, &st.into_bytes());

        let mut tr = Enc::new();
        let traffic = &self.traffic;
        encode_traffic(&mut tr, traffic);
        w.section(TAG_TRAFFIC, &tr.into_bytes());

        let mut rc = Enc::new();
        let recovery_s = &self.recovery_s;
        rc.put_f64s(recovery_s);
        w.section(TAG_RECOVERY, &rc.into_bytes());

        let mut fl = Enc::new();
        let flight = &self.flight;
        encode_flight(&mut fl, flight);
        w.section(TAG_FLIGHT, &fl.into_bytes());

        let mut sh = Enc::new();
        let shards = &self.shards;
        sh.put_usize(shards.len());
        for image in shards {
            sh.put_bytes(image);
        }
        w.section(TAG_SHARDS, &sh.into_bytes());
        w.finish()
    }

    /// Parse and validate a snapshot. A fingerprint mismatch is typed
    /// corruption — the snapshot belongs to a different cluster setup.
    pub fn from_bytes(bytes: &[u8], expect: ClusterFingerprint) -> Result<Self, CkptError> {
        let r = SectionReader::parse(bytes)?;
        let mut meta = Dec::new(r.section(TAG_META)?);
        let fingerprint = ClusterFingerprint(meta.u64()?);
        let ticks = meta.usize_()?;
        let admissions = meta.usize_()?;
        let replica_writes = meta.usize_()?;
        let replica_skipped = meta.usize_()?;
        meta.finish()?;
        if fingerprint != expect {
            return Err(CkptError::Corrupt(format!(
                "cluster fingerprint mismatch: checkpoint {:#018x}, cluster {:#018x}",
                fingerprint.0, expect.0
            )));
        }

        let mut rd = Dec::new(r.section(TAG_ROUTES)?);
        let n = rd.usize_()?;
        let mut routes = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            routes.push(decode_route(&mut rd)?);
        }
        rd.finish()?;

        let mut ld = Dec::new(r.section(TAG_LOST)?);
        let n = ld.usize_()?;
        let mut lost = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            lost.push(if ld.bool_()? {
                Some(decode_record(&mut ld)?)
            } else {
                None
            });
        }
        ld.finish()?;

        let mut sd = Dec::new(r.section(TAG_STATS)?);
        let stats = decode_stats(&mut sd)?;
        sd.finish()?;

        let mut td = Dec::new(r.section(TAG_TRAFFIC)?);
        let traffic = decode_traffic(&mut td)?;
        td.finish()?;

        let mut cd = Dec::new(r.section(TAG_RECOVERY)?);
        let recovery_s = cd.f64s()?;
        cd.finish()?;

        let mut fd = Dec::new(r.section(TAG_FLIGHT)?);
        let flight = decode_flight(&mut fd)?;
        fd.finish()?;

        let mut hd = Dec::new(r.section(TAG_SHARDS)?);
        let n = hd.usize_()?;
        let mut shards = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            shards.push(hd.bytes_()?);
        }
        hd.finish()?;

        Ok(ClusterCheckpoint {
            fingerprint,
            ticks,
            admissions,
            routes,
            lost,
            stats,
            replica_writes,
            replica_skipped,
            recovery_s,
            traffic,
            flight,
            shards,
        })
    }
}

impl<'b, F: FaultInjector> ClusterServer<'b, F> {
    /// Snapshot the cluster as it stands at a tick boundary.
    pub fn checkpoint(&self) -> ClusterCheckpoint {
        ClusterCheckpoint {
            fingerprint: ClusterFingerprint::of(self.backend, &self.cfg),
            ticks: self.ticks,
            admissions: self.admissions,
            routes: self.routes.clone(),
            lost: self.lost.clone(),
            stats: self.cluster_stats.clone(),
            replica_writes: self.replica_writes,
            replica_skipped: self.replica_skipped,
            recovery_s: self.recovery_s.clone(),
            traffic: self.traffic,
            flight: self.flight.clone(),
            shards: self.shards.iter().map(|s| s.checkpoint_bytes()).collect(),
        }
    }

    /// Serialized snapshot, ready for [`CheckpointStore::save`].
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        self.checkpoint().to_bytes()
    }

    /// Atomically write a snapshot to `store`, sequenced by the cluster
    /// tick count.
    pub fn save_checkpoint(&mut self, store: &CheckpointStore) -> io::Result<PathBuf> {
        let bytes = self.checkpoint_bytes();
        let path = store.save(self.ticks as u64, &bytes)?;
        self.flight.record(
            self.elapsed(),
            "ckpt_write",
            None,
            None,
            Some(self.ticks as u64),
            format!("cluster snapshot, {} bytes", bytes.len()),
        );
        Ok(path)
    }

    /// Rebuild a cluster from a parsed snapshot. Each shard image is
    /// validated and restored through the shard's own checkpoint path;
    /// peer replica stores start empty and refill at the next mirror
    /// boundary.
    pub fn from_checkpoint(
        backend: &'b Backend,
        cfg: ClusterConfig,
        faults: F,
        ck: ClusterCheckpoint,
    ) -> Result<Self, CkptError> {
        if ck.shards.len() != cfg.shards {
            return Err(CkptError::Corrupt(format!(
                "shard count mismatch: checkpoint {}, config {}",
                ck.shards.len(),
                cfg.shards
            )));
        }
        let mut cluster = Self::with_faults(backend, cfg, faults);
        for (i, image) in ck.shards.iter().enumerate() {
            cluster.shards[i] = EnsembleServer::restore_with_faults(
                backend,
                cluster.cfg.shard_cfg(i),
                NoopFaults,
                image,
            )?;
        }
        cluster.routes = ck.routes;
        cluster.lost = ck.lost;
        cluster.cluster_stats = ck.stats;
        cluster.traffic = ck.traffic;
        cluster.flight = ck.flight;
        cluster.admissions = ck.admissions;
        cluster.ticks = ck.ticks;
        cluster.replica_writes = ck.replica_writes;
        cluster.replica_skipped = ck.replica_skipped;
        cluster.recovery_s = ck.recovery_s;
        cluster.flight.record(
            cluster.elapsed(),
            "restored",
            None,
            None,
            Some(cluster.ticks as u64),
            "cluster rebuilt from checkpoint",
        );
        Ok(cluster)
    }

    /// Parse `bytes` (validating the fingerprint against `(backend, cfg)`)
    /// and rebuild the cluster.
    pub fn restore_with_faults(
        backend: &'b Backend,
        cfg: ClusterConfig,
        faults: F,
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        let fp = ClusterFingerprint::of(backend, &cfg);
        let ck = ClusterCheckpoint::from_bytes(bytes, fp)?;
        Self::from_checkpoint(backend, cfg, faults, ck)
    }

    /// Restore from the newest valid cluster checkpoint in `store`,
    /// falling back past torn or corrupt files. `None` when no valid
    /// checkpoint exists.
    pub fn restore_latest(
        backend: &'b Backend,
        cfg: ClusterConfig,
        faults: F,
        store: &CheckpointStore,
    ) -> (Option<(u64, Self)>, RestoreReport) {
        let fp = ClusterFingerprint::of(backend, &cfg);
        let (found, mut report) =
            store.load_latest_valid(|_, bytes| ClusterCheckpoint::from_bytes(bytes, fp));
        match found {
            Some((seq, ck)) => match Self::from_checkpoint(backend, cfg, faults, ck) {
                Ok(cluster) => (Some((seq, cluster)), report),
                Err(error) => {
                    report.skipped.push(hetsolve_ckpt::SkippedCheckpoint {
                        seq,
                        path: store.path_for(seq),
                        error,
                    });
                    (None, report)
                }
            },
            None => (None, report),
        }
    }
}

impl<'b> ClusterServer<'b, NoopFaults> {
    /// [`restore_with_faults`](Self::restore_with_faults) without
    /// injection.
    pub fn restore(
        backend: &'b Backend,
        cfg: ClusterConfig,
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        Self::restore_with_faults(backend, cfg, NoopFaults, bytes)
    }
}
