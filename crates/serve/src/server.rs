//! The continuous-batching ensemble server.
//!
//! [`EnsembleServer`] owns one [`Backend`] worth of serving: requests are
//! [`admit`](EnsembleServer::admit)ted at any time (with backpressure),
//! packed by the [`Batcher`] into 2 process sets × `r` fused MCG lanes
//! (the EBE-MCG@CPU-GPU layout of the paper's Algorithm 3), and advanced
//! one time step per [`tick`](EnsembleServer::tick). At every tick
//! boundary, finished / failed / evicted columns are freed and — under
//! [`BatchPolicy::Continuous`] — immediately backfilled from the queue, so
//! the fused GPU kernels (whose modeled cost is the same at any occupancy)
//! keep running at high occupancy.
//!
//! # Bitwise equivalence
//!
//! A served case advances through the *same* `CaseSlot::prepare_step` /
//! `solve_set_resumable` / `CaseSlot::advance` sequence as a solo
//! [`run_ensemble`](hetsolve_core::run_ensemble) case, with
//! [`WindowPolicy::FullWindow`] making the snapshot window purely
//! case-local and the MCG lane mask making vacant columns invisible to
//! occupied ones. A request with seed `s`, the server's `RunConfig`, and
//! `n_steps` matching a solo run therefore produces a bitwise-identical
//! final displacement — under any load, any companions, any backfill
//! order. The serve suite asserts this with `f64::to_bits`.

use std::path::PathBuf;

use hetsolve_core::{
    basis_sentinel, boundary_guard, driver_cg_config, rhs_guard, scrub_state, solve_set_resumable,
    Backend, CaseSlot, CorruptionReport, MethodKind, RecoveryEvent, RhsScratch, RunConfig,
    SlotState, WindowPolicy, TID_CPU, TID_GPU, TID_LINK,
};
use hetsolve_fault::{AdmissionFault, FaultInjector, FaultLane, NoopFaults};
use hetsolve_machine::{LaneKind, ModuleClock, NodeSpec, SystemClock, WallClock};
use hetsolve_obs::{
    flow_id_for_request, FlightRecorder, Json, MetricsRegistry, ServeStats, TraceBuilder,
    DEFAULT_FLIGHT_CAPACITY,
};
use hetsolve_sparse::vecops::{extract_case, insert_case};

use crate::batcher::{BatchPolicy, Batcher, CompatKey};
use crate::qos::{AutoscaleConfig, AutoscaleEvent, AutoscalerState, QosConfig, ScaleDirection};
use crate::queue::{splitmix64, AdmissionQueue, AdmitError, RejectReason, TenantPolicy};
use crate::request::{EvictReason, RequestId, RequestRecord, RequestState, SolveRequest, TenantId};
use crate::watchdog::{WatchdogAction, WatchdogConfig, WatchdogEvent};

/// Default process-set count (the paper's 2-process layout: while one set
/// solves on the GPU, the other's predictors run on the CPU). With an
/// [`AutoscaleConfig`] the lane count floats between its bounds instead.
const DEFAULT_LANES: usize = 2;

/// SDC ladder rung 2: after this many *consecutive* corrupted ticks on
/// one lane, in-place recovery has clearly not cleared the fault — roll
/// the whole lane back to its last in-memory checkpoint.
const SDC_RESTART_AFTER: u32 = 3;

/// SDC ladder rung 3: corruption recurring even after the lane restart —
/// evict the lane's columns rather than serve a possibly-wrong answer.
const SDC_EVICT_AFTER: u32 = 4;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Numerics and machine model shared by every request. The server
    /// forces `method = EbeMcgCpuGpu` and `window = FullWindow` (the
    /// case-local window is what makes served results bitwise-equal to
    /// solo runs); `run.n_steps` is unused — each request brings its own.
    pub run: RunConfig,
    /// Admission-queue bound (backpressure past it).
    pub queue_capacity: usize,
    /// When vacant lane slots are refilled.
    pub policy: BatchPolicy,
    /// Seed of the scheduler's deterministic tie-break.
    pub sched_seed: u64,
    /// Safety bound for [`EnsembleServer::run_until_idle`].
    pub max_ticks: usize,
    /// Lane supervision (deadline watchdog with the retry → restart →
    /// evict ladder); `None` disables it.
    pub watchdog: Option<WatchdogConfig>,
    /// Capture an in-memory per-lane checkpoint every this many ticks
    /// (the watchdog's restart rung rolls back to it). 0 disables.
    pub checkpoint_every: usize,
    /// Flight-recorder ring capacity (recent structured events kept for
    /// the crash-time dump). Telemetry only — not part of the checkpoint
    /// fingerprint, because it never shapes the trajectory.
    pub flight_capacity: usize,
    /// Where the flight recorder dumps on watchdog breach, eviction, or
    /// injected crash (convention: under `target/artifacts/`). `None`
    /// keeps the ring in memory only.
    pub flight_dump: Option<PathBuf>,
    /// Multi-tenant QoS: per-tenant quotas and deficit-round-robin fair
    /// share. `None` runs single-tenant (all requests under `TenantId(0)`,
    /// no quota checks). Scheduling-only — never touches numerics.
    pub qos: Option<QosConfig>,
    /// Lane autoscaling: float the fused-lane count between bounds from
    /// queue depth and modeled occupancy, at step boundaries only. `None`
    /// keeps the paper's fixed 2-lane layout.
    pub autoscale: Option<AutoscaleConfig>,
    /// Store each `Done` request's final displacement in its record.
    /// Soak runs over 10^5+ requests turn this off — results are O(n_dofs)
    /// each and the load generator only audits scheduling outcomes.
    pub keep_results: bool,
}

impl ServeConfig {
    pub fn new(node: NodeSpec) -> Self {
        let mut run = RunConfig::new(MethodKind::EbeMcgCpuGpu, node, 0);
        run.window = WindowPolicy::FullWindow;
        ServeConfig {
            run,
            queue_capacity: 64,
            policy: BatchPolicy::Continuous,
            sched_seed: 0x5e7e,
            max_ticks: 100_000,
            watchdog: None,
            checkpoint_every: 4,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_dump: None,
            qos: None,
            autoscale: None,
            keep_results: true,
        }
    }

    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = Some(qos);
        self
    }

    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    pub fn with_keep_results(mut self, keep_results: bool) -> Self {
        self.keep_results = keep_results;
        self
    }

    /// Lane count the server starts with: the autoscaler's floor when one
    /// is configured, the paper's 2-process layout otherwise.
    pub fn initial_lanes(&self) -> usize {
        self.autoscale.map_or(DEFAULT_LANES, |a| a.min_lanes)
    }
}

/// The serving subsystem: queue + batcher + lanes over one backend.
/// Fields are `pub(crate)` for the sibling [`crate::checkpoint`] module,
/// which serializes and rebuilds the whole server.
pub struct EnsembleServer<'b, F: FaultInjector = NoopFaults> {
    pub(crate) backend: &'b Backend,
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: AdmissionQueue,
    pub(crate) batcher: Batcher,
    /// Live per-column simulation state, `[lane][slot]` matching the
    /// batcher's geometry.
    pub(crate) slots: Vec<Vec<Option<CaseSlot>>>,
    /// Every admitted request, indexed by `RequestId.0`.
    pub(crate) records: Vec<RequestRecord>,
    pub(crate) clock: ModuleClock,
    pub(crate) scratch: RhsScratch,
    pub(crate) stats: ServeStats,
    pub(crate) recoveries: Vec<RecoveryEvent>,
    /// Corruption detections + the recovery taken, in order (the serving
    /// twin of `RunResult::corruptions`); checkpointed in the optional
    /// `INTG` section.
    pub(crate) corruptions: Vec<CorruptionReport>,
    /// Consecutive corrupted ticks per lane — the SDC escalation ladder's
    /// counter (in-place recovery → lane restart → evict).
    pub(crate) sdc_breach: Vec<u32>,
    pub(crate) faults: F,
    /// Admission attempts made (rejected ones included) — the fault
    /// injector's admission index.
    pub(crate) admissions: usize,
    pub(crate) ticks: usize,
    trace: Option<TraceBuilder>,
    /// Injectable wall clock stamped onto watchdog events (never used for
    /// deadlines or latencies, which live on the modeled clock) — a
    /// `ManualClock` makes supervision tests fully deterministic.
    wall: Box<dyn WallClock>,
    /// Consecutive step-deadline breaches per lane.
    pub(crate) watchdog_breach: Vec<u32>,
    /// Supervision decisions, in order.
    watchdog_events: Vec<WatchdogEvent>,
    /// Last in-memory lane checkpoint, `[lane][slot]`: the occupant and
    /// its captured state at the boundary. The watchdog's restart rung
    /// rolls back to this.
    pub(crate) lane_ckpt: Vec<Vec<Option<(RequestId, SlotState)>>>,
    /// Always-on ring of recent structured events (admissions, steps,
    /// watchdog rungs, checkpoints); dumped to `cfg.flight_dump` on
    /// failure triggers and checkpointed with the server.
    pub(crate) flight: FlightRecorder,
    /// Set by an injected `crash_fault`: the server stops ticking (the
    /// modeled `kill -9`) until restored from a checkpoint.
    crashed: bool,
    /// Autoscaler dynamic state (cooldown / drain-in-progress / event
    /// count); checkpointed in the optional `QOS\0` section.
    pub(crate) autoscaler: AutoscalerState,
    /// Every lane-scaling event taken, in order (telemetry, not
    /// checkpointed — the monotone count in `autoscaler.events` is).
    scale_events: Vec<AutoscaleEvent>,
    /// Modeled lower bound on one served step's duration (the per-step
    /// exchange transfer at the configured width) — the provable floor the
    /// unmeetable-deadline shedder multiplies by remaining steps.
    step_floor: f64,
}

impl<'b> EnsembleServer<'b, NoopFaults> {
    pub fn new(backend: &'b Backend, cfg: ServeConfig) -> Self {
        Self::with_faults(backend, cfg, NoopFaults)
    }
}

impl<'b, F: FaultInjector> EnsembleServer<'b, F> {
    /// Server with a fault injector on the admission/eviction hooks.
    pub fn with_faults(backend: &'b Backend, mut cfg: ServeConfig, faults: F) -> Self {
        cfg.run.method = MethodKind::EbeMcgCpuGpu;
        cfg.run.window = WindowPolicy::FullWindow;
        let r = cfg.run.r.max(1);
        cfg.run.r = r;
        let lanes = cfg.initial_lanes();
        let clock = ModuleClock::new(cfg.run.node.module, cfg.run.cpu_threads, true);
        // provable per-step floor: every served step charges at least the
        // exchange transfer at width r, so remaining_steps × floor is a
        // lower bound on any queued request's service time
        let step_floor = {
            let mut probe = clock.clone();
            probe.transfer(2.0 * (backend.n_dofs() * r) as f64 * 8.0)
        };
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.sched_seed);
        if let Some(qos) = &cfg.qos {
            let pairs: Vec<(u64, f64)> = qos
                .tenants
                .iter()
                .map(|q| (q.weight, q.queue_share))
                .collect();
            queue = queue.with_policy(TenantPolicy::new(&pairs, qos.quantum, cfg.queue_capacity));
        }
        EnsembleServer {
            backend,
            queue,
            batcher: Batcher::new(lanes, r, cfg.policy),
            slots: (0..lanes).map(|_| (0..r).map(|_| None).collect()).collect(),
            records: Vec::new(),
            clock,
            scratch: RhsScratch::new(backend.n_dofs()),
            stats: ServeStats::new(),
            recoveries: Vec::new(),
            corruptions: Vec::new(),
            sdc_breach: vec![0; lanes],
            faults,
            admissions: 0,
            ticks: 0,
            trace: None,
            wall: Box::new(SystemClock::new()),
            watchdog_breach: vec![0; lanes],
            watchdog_events: Vec::new(),
            lane_ckpt: (0..lanes).map(|_| (0..r).map(|_| None).collect()).collect(),
            flight: FlightRecorder::new(cfg.flight_capacity),
            crashed: false,
            autoscaler: AutoscalerState::default(),
            scale_events: Vec::new(),
            step_floor,
            cfg,
        }
    }

    /// Replace the wall clock stamped onto watchdog events (tests inject a
    /// [`hetsolve_machine::ManualClock`] for deterministic replay).
    pub fn set_wall_clock(&mut self, wall: Box<dyn WallClock>) {
        self.wall = wall;
    }

    /// Record a Chrome-trace timeline of the serving run (queue-depth
    /// counters plus per-lane predictor/solver/exchange spans).
    pub fn enable_trace(&mut self) {
        let mut t = TraceBuilder::new();
        t.set_meta("subsystem", Json::from("hetsolve-serve"));
        t.name_process(0, "scheduler");
        let max_lanes = self.cfg.autoscale.map_or(self.batcher.n_lanes(), |a| {
            a.max_lanes.max(self.batcher.n_lanes())
        });
        for lane in 0..max_lanes {
            let pid = 1 + lane;
            t.name_process(pid, &format!("process set {lane}"));
            t.name_thread(pid, TID_CPU, "CPU (predictors)");
            t.name_thread(pid, TID_GPU, "GPU (fused MCG)");
            t.name_thread(pid, TID_LINK, "C2C link");
        }
        self.trace = Some(t);
    }

    /// Take the recorded trace (if [`enable_trace`](Self::enable_trace)
    /// was called), ready for [`TraceBuilder::write_to`].
    pub fn take_trace(&mut self) -> Option<TraceBuilder> {
        self.trace.take()
    }

    /// Submit a request. Validation failures are typed
    /// ([`AdmitError::Rejected`]); a full queue sheds load
    /// ([`AdmitError::ShedLoad`]). Admitted requests start `Queued`.
    pub fn admit(&mut self, request: SolveRequest) -> Result<RequestId, AdmitError> {
        let index = self.admissions;
        self.admissions += 1;
        let now = self.clock.elapsed();
        let tenant = request.tenant;
        match self.faults.admission_fault(index) {
            Some(AdmissionFault::Reject) => {
                self.stats.record_rejection();
                self.stats.tenant_rejection(tenant.0);
                self.flight
                    .record(now, "admit_rejected", None, None, None, "fault injected");
                return Err(AdmitError::Rejected(RejectReason::FaultInjected));
            }
            Some(AdmissionFault::Shed) => {
                self.stats.record_shed();
                self.stats.tenant_shed(tenant.0);
                self.flight
                    .record(now, "admit_shed", None, None, None, "fault injected");
                return Err(AdmitError::ShedLoad {
                    queued: self.queue.len(),
                    capacity: self.queue.capacity(),
                });
            }
            None => {}
        }
        if request.n_steps == 0 {
            self.stats.record_rejection();
            self.stats.tenant_rejection(tenant.0);
            self.flight
                .record(now, "admit_rejected", None, None, None, "zero steps");
            return Err(AdmitError::Rejected(RejectReason::ZeroSteps));
        }
        if request.deadline.is_some_and(|d| !d.is_finite()) {
            // a NaN/inf deadline would compare false against every clock
            // reading — never expiring, never shed as unmeetable
            self.stats.record_rejection();
            self.stats.tenant_rejection(tenant.0);
            self.flight.record(
                now,
                "admit_rejected",
                None,
                None,
                None,
                "non-finite deadline",
            );
            return Err(AdmitError::Rejected(RejectReason::NonFiniteInput));
        }
        let tol = request.tol.unwrap_or(self.cfg.run.tol);
        if !tol.is_finite() || tol <= 0.0 {
            self.stats.record_rejection();
            self.stats.tenant_rejection(tenant.0);
            self.flight
                .record(now, "admit_rejected", None, None, None, "invalid tol");
            return Err(AdmitError::Rejected(RejectReason::InvalidTol));
        }
        if let Some(qos) = &self.cfg.qos {
            match qos.quota(tenant) {
                None => {
                    self.stats.record_rejection();
                    self.stats.tenant_rejection(tenant.0);
                    self.flight
                        .record(now, "admit_rejected", None, None, None, "unknown tenant");
                    return Err(AdmitError::Rejected(RejectReason::UnknownTenant));
                }
                Some(q) if q.weight == 0 => {
                    // a zero-weight tenant can never win a DRR round —
                    // reject typed instead of admitting into starvation
                    self.stats.record_rejection();
                    self.stats.tenant_rejection(tenant.0);
                    self.flight
                        .record(now, "admit_rejected", None, None, None, "zero quota");
                    return Err(AdmitError::Rejected(RejectReason::ZeroQuota));
                }
                Some(_) => {}
            }
        }
        let id = RequestId(self.records.len() as u64);
        if let Err(e) = self.queue.push(
            id,
            CompatKey::from_tol(tol),
            request.priority,
            request.deadline,
            tenant,
            request.n_steps.min(u32::MAX as usize) as u32,
        ) {
            self.stats.record_shed();
            self.stats.tenant_shed(tenant.0);
            self.flight
                .record(now, "admit_shed", Some(id.0), None, None, "queue full");
            return Err(e);
        }
        self.records.push(RequestRecord {
            id,
            request,
            state: RequestState::Queued,
            admitted_at: now,
            finished_at: None,
            evict_reason: None,
            result: None,
        });
        self.flight.record(
            now,
            "admitted",
            Some(id.0),
            None,
            None,
            format!("n_steps={} depth={}", request.n_steps, self.queue.len()),
        );
        if let Some(t) = self.trace.as_mut() {
            // the request's causal flow starts on the scheduler row; each
            // later hop (batched/step/done) binds to the same stable id
            t.flow_start(
                0,
                0,
                "request",
                "admitted",
                now * 1e6,
                flow_id_for_request(id.0),
            );
        }
        Ok(id)
    }

    /// One scheduling boundary: shed expired deadlines, apply injected
    /// evictions, backfill vacant slots per the policy, then advance every
    /// non-empty lane by one time step (supervised by the watchdog when
    /// one is configured).
    pub fn tick(&mut self) {
        let now = self.clock.elapsed();
        if self.faults.crash_fault(self.ticks) {
            // modeled `kill -9`: the flight ring is the black box — dump
            // it with the crash as its last event and stop ticking
            self.flight.record(
                now,
                "crash",
                None,
                None,
                Some(self.ticks as u64),
                "injected crash_fault at tick boundary",
            );
            self.dump_flight("crash");
            self.crashed = true;
            return;
        }
        if let Some((tenant, count)) = self.faults.tenant_burst_fault(self.ticks) {
            // chaos hook: one tenant floods the server at this boundary.
            // Typed admission failures (shed / zero quota / unknown) are
            // the point — the burst must not starve other tenants.
            let base = splitmix64(0xb065_u64 ^ (self.ticks as u64) << 8 ^ u64::from(tenant));
            for i in 0..count {
                let seed = splitmix64(base ^ u64::from(i));
                let _ = self.admit(SolveRequest::new(seed, 1).with_tenant(TenantId(tenant)));
            }
        }
        let mut dump_eviction = false;
        for id in self.queue.expire(now) {
            self.finish(id, RequestState::Evicted, now);
            self.records[id.0 as usize].evict_reason = Some(EvictReason::DeadlineExpired);
            self.stats.record_eviction();
            let t = self.records[id.0 as usize].request.tenant.0;
            self.stats.tenant_eviction(t);
            self.stats.tenant_deadline_miss(t);
            self.record_eviction_event(id, None, EvictReason::DeadlineExpired, now);
            dump_eviction = true;
        }
        // ShedLoad re-evaluation: a queued request whose remaining steps
        // cannot fit before its deadline even at the modeled per-step
        // floor is shed *now*, freeing its queue share for requests that
        // can still win
        for id in self.queue.shed_unmeetable(now, self.step_floor) {
            self.finish(id, RequestState::Evicted, now);
            self.records[id.0 as usize].evict_reason = Some(EvictReason::DeadlineUnmeetable);
            self.stats.record_eviction();
            self.stats.record_shed_early();
            let t = self.records[id.0 as usize].request.tenant.0;
            self.stats.tenant_eviction(t);
            self.stats.tenant_deadline_miss(t);
            self.record_eviction_event(id, None, EvictReason::DeadlineUnmeetable, now);
            dump_eviction = true;
        }
        for lane in 0..self.batcher.n_lanes() {
            for slot in 0..self.batcher.width() {
                let Some(id) = self.batcher.slot(lane, slot) else {
                    continue;
                };
                if self
                    .faults
                    .eviction_fault(self.ticks, id.0 as usize)
                    .is_some()
                {
                    self.batcher.free(lane, slot);
                    self.slots[lane][slot] = None;
                    self.finish(id, RequestState::Evicted, now);
                    self.records[id.0 as usize].evict_reason = Some(EvictReason::Injected);
                    self.stats.record_eviction();
                    self.stats
                        .tenant_eviction(self.records[id.0 as usize].request.tenant.0);
                    self.record_eviction_event(id, Some(lane), EvictReason::Injected, now);
                    dump_eviction = true;
                }
            }
        }
        if dump_eviction {
            self.dump_flight("eviction");
        }
        self.autoscale_step(now);
        self.refresh_tenant_budgets();
        for a in self.batcher.backfill(&mut self.queue) {
            let req = self.records[a.id.0 as usize].request;
            self.slots[a.lane][a.slot] = Some(CaseSlot::with_seed(
                self.backend,
                &self.cfg.run,
                req.seed,
                req.n_steps,
                0,
            ));
            self.records[a.id.0 as usize].state = RequestState::Batched;
            self.flight.record(
                now,
                "batched",
                Some(a.id.0),
                Some(a.lane as u64),
                Some(self.ticks as u64),
                format!("slot {}", a.slot),
            );
            if let Some(t) = self.trace.as_mut() {
                t.flow_step(
                    1 + a.lane,
                    TID_GPU,
                    "request",
                    "batched",
                    now * 1e6,
                    flow_id_for_request(a.id.0),
                );
            }
        }
        self.stats.sample_queue_depth(self.queue.len());
        if let Some(t) = self.trace.as_mut() {
            t.counter(0, "queue", now * 1e6, &[("depth", self.queue.len() as f64)]);
        }
        let supervised = self.cfg.watchdog;
        // the SDC ladder's restart rung rolls back to the same lane
        // checkpoint the watchdog uses, so detection alone keeps captures
        // alive (they are read-only and charge no modeled time)
        let capture = (supervised.is_some() || self.cfg.run.integrity.detect)
            && self.cfg.checkpoint_every > 0
            && self.ticks.is_multiple_of(self.cfg.checkpoint_every);
        for lane in 0..self.batcher.n_lanes() {
            if capture {
                self.capture_lane(lane);
            }
            let before = self.clock.elapsed();
            // injected lane stall (PR 3's fault hook): the watchdog is
            // what turns this timing fault into a supervised recovery
            if self.batcher.occupied_count(lane) > 0 {
                if let Some(lf) = self.faults.lane_fault(self.ticks, lane) {
                    let kind = match lf.lane {
                        FaultLane::Cpu => LaneKind::Cpu,
                        FaultLane::Gpu => LaneKind::Gpu,
                    };
                    self.clock.stall(kind, lf.seconds);
                }
            }
            self.advance_lane(lane);
            let dt = self.clock.elapsed() - before;
            if let Some(wd) = supervised {
                self.supervise(lane, dt, wd);
            }
        }
        self.stats.set_elapsed(self.clock.elapsed());
        self.ticks += 1;
    }

    /// One autoscaling decision at a step boundary. Scale-up appends an
    /// empty lane (backfilled this same tick); scale-down marks the
    /// highest lane draining and removes it at the first boundary where it
    /// is empty — in-flight trajectories are never touched, which is what
    /// keeps scaling invisible to the numerics.
    fn autoscale_step(&mut self, now: f64) {
        let Some(a) = self.cfg.autoscale else {
            return;
        };
        if self.autoscaler.draining {
            let last = self.batcher.n_lanes() - 1;
            if self.batcher.occupied_count(last) == 0 && self.batcher.n_lanes() > a.min_lanes.max(1)
            {
                self.batcher.remove_last_lane();
                self.slots.pop();
                self.watchdog_breach.pop();
                self.sdc_breach.pop();
                self.lane_ckpt.pop();
                self.autoscaler.draining = false;
                self.record_scale_event(ScaleDirection::Down, now);
            } else if self.batcher.n_lanes() <= a.min_lanes.max(1) {
                // a restored checkpoint may carry a drain mark the bounds
                // no longer allow; drop it instead of eating the only lane
                self.batcher.cancel_drain();
                self.autoscaler.draining = false;
            }
            return;
        }
        let stuck = self.faults.stuck_scaledown_fault(self.ticks);
        if self.autoscaler.cooldown > 0 {
            self.autoscaler.cooldown -= 1;
            if !stuck {
                return;
            }
        }
        let lanes = self.batcher.n_lanes();
        if stuck && lanes > a.min_lanes {
            // chaos hook: force a drain while columns are still in flight,
            // exercising the shrink path under load (the drained lane
            // keeps running until its occupants finish)
            self.batcher.drain_last();
            self.autoscaler.draining = true;
            self.flight.record(
                now,
                "scale_drain",
                None,
                Some((lanes - 1) as u64),
                Some(self.ticks as u64),
                "injected stuck_lane_scaledown",
            );
            return;
        }
        let depth = self.queue.len();
        if depth > a.scale_up_queue_per_lane * lanes && lanes < a.max_lanes {
            let li = self.batcher.add_lane();
            let r = self.batcher.width();
            self.slots.push((0..r).map(|_| None).collect());
            self.watchdog_breach.push(0);
            self.sdc_breach.push(0);
            self.lane_ckpt.push((0..r).map(|_| None).collect());
            let _ = li;
            self.record_scale_event(ScaleDirection::Up, now);
            return;
        }
        if depth == 0 && lanes > a.min_lanes {
            let total = lanes * self.batcher.width();
            let occ: usize = (0..lanes).map(|l| self.batcher.occupied_count(l)).sum();
            if (occ as f64) < a.scale_down_occupancy * total as f64 {
                self.batcher.drain_last();
                self.autoscaler.draining = true;
                self.flight.record(
                    now,
                    "scale_drain",
                    None,
                    Some((lanes - 1) as u64),
                    Some(self.ticks as u64),
                    format!("occupancy {occ}/{total} below threshold"),
                );
            }
        }
    }

    /// Bookkeeping shared by both scaling directions: cooldown, monotone
    /// event count, telemetry.
    fn record_scale_event(&mut self, direction: ScaleDirection, now: f64) {
        let a = self.cfg.autoscale.unwrap_or(AutoscaleConfig::new(1, 1));
        let lanes = self.batcher.n_lanes();
        let before = match direction {
            ScaleDirection::Up => lanes - 1,
            ScaleDirection::Down => lanes + 1,
        };
        self.autoscaler.cooldown = a.cooldown_ticks;
        self.autoscaler.events += 1;
        self.stats.record_autoscale();
        self.scale_events.push(AutoscaleEvent {
            tick: self.ticks as u64,
            direction,
            lanes_before: before,
            lanes_after: lanes,
        });
        self.flight.record(
            now,
            match direction {
                ScaleDirection::Up => "scale_up",
                ScaleDirection::Down => "scale_down",
            },
            None,
            Some(lanes as u64),
            Some(self.ticks as u64),
            format!("lanes {before} -> {lanes}"),
        );
    }

    /// Recompute each tenant's pop budget (max_in_flight minus columns it
    /// already occupies) for this step boundary's backfill.
    fn refresh_tenant_budgets(&mut self) {
        let Some(qos) = &self.cfg.qos else {
            return;
        };
        let mut in_flight = vec![0usize; qos.n_tenants()];
        for lane in 0..self.batcher.n_lanes() {
            for slot in 0..self.batcher.width() {
                if let Some(id) = self.batcher.slot(lane, slot) {
                    let t = self.records[id.0 as usize].request.tenant.0 as usize;
                    if let Some(c) = in_flight.get_mut(t) {
                        *c += 1;
                    }
                }
            }
        }
        let budgets = qos
            .tenants
            .iter()
            .zip(&in_flight)
            .map(|(q, &used)| q.max_in_flight.saturating_sub(used))
            .collect();
        self.queue.set_budgets(budgets);
    }

    /// Tick until the queue and every lane are empty; returns the ticks
    /// executed. Bounded by `cfg.max_ticks` as a safety net. Stops early
    /// when an injected crash fires ([`Self::crashed`]).
    pub fn run_until_idle(&mut self) -> usize {
        let mut n = 0;
        while !(self.crashed || self.queue.is_empty() && self.batcher.is_idle())
            && n < self.cfg.max_ticks
        {
            self.tick();
            n += 1;
        }
        n
    }

    /// An injected `crash_fault` stopped the server mid-run. Work still
    /// in flight stays in flight; only a checkpoint restore resumes it.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The always-on flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Dump the flight ring to `cfg.flight_dump` (no-op without a path).
    /// Dump failures are swallowed: the black box must never turn a
    /// recoverable fault into an I/O error.
    fn dump_flight(&self, trigger: &str) {
        if let Some(path) = &self.cfg.flight_dump {
            let _ = self.flight.dump_to(path, trigger);
        }
    }

    /// Flight + trace bookkeeping for one evicted request.
    fn record_eviction_event(
        &mut self,
        id: RequestId,
        lane: Option<usize>,
        reason: EvictReason,
        now: f64,
    ) {
        self.flight.record(
            now,
            "evicted",
            Some(id.0),
            lane.map(|l| l as u64),
            Some(self.ticks as u64),
            reason.label(),
        );
        if let Some(t) = self.trace.as_mut() {
            let pid = lane.map_or(0, |l| 1 + l);
            t.flow_end(
                pid,
                if lane.is_some() { TID_GPU } else { 0 },
                "request",
                "evicted",
                now * 1e6,
                flow_id_for_request(id.0),
            );
        }
    }

    /// Telemetry-v2 snapshot of the serving layer: [`ServeStats`] mapped
    /// onto the declared `serve_*` metric names plus admission and
    /// flight-ring counters. Mergeable into run-level registries.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("serve_requests_admitted_total", self.records.len() as f64);
        self.stats.to_registry(&mut reg);
        reg.gauge_set("serve_lanes", self.batcher.n_lanes() as f64);
        reg.gauge_set(
            "serve_tenants",
            self.cfg.qos.as_ref().map_or(1, QosConfig::n_tenants) as f64,
        );
        reg.inc("flight_events_dropped_total", self.flight.dropped() as f64);
        reg
    }

    /// Advance one lane's occupied columns by one time step. An entirely
    /// vacant lane is skipped without charging any kernel or transfer —
    /// the modeled cost of the fused solve otherwise scales with the full
    /// width `r` regardless of occupancy, which is exactly why backfilling
    /// matters.
    fn advance_lane(&mut self, lane: usize) {
        let occupied = self.batcher.occupied_mask(lane);
        let n_occ = occupied.iter().filter(|&&o| o).count();
        if n_occ == 0 {
            return;
        }
        let detect = self.cfg.run.integrity.detect;
        let t_detect = self.clock.elapsed();
        let mut lane_corruptions: Vec<CorruptionReport> = Vec::new();
        let r = self.batcher.width();
        let n = self.backend.n_dofs();
        self.stats.sample_occupancy(n_occ, r);
        let tol = self
            .batcher
            .lane_key(lane)
            // PANIC-OK: `n_occ > 0` (early return above) and the batcher
            // clears a lane's key only when its last slot frees, so an
            // occupied lane always has a key.
            .expect("occupied lane has a key")
            .tol();
        let cg_cfg = driver_cg_config(tol);

        // predictors (CPU lane), RHS assembly, fused-vector packing
        let mut ab_guesses: Vec<Vec<f64>> = vec![Vec::new(); r];
        let mut lane_cases: Vec<Option<usize>> = vec![None; r];
        let mut f_multi = vec![0.0; n * r];
        let mut x_multi = vec![0.0; n * r];
        let mut pred_t = 0.0;
        for k in 0..r {
            if !occupied[k] {
                continue;
            }
            // PANIC-OK: guarded by `occupied[k]` from the same batcher's
            // occupancy mask, read under the same borrow.
            let id = self.batcher.slot(lane, k).expect("occupied slot");
            lane_cases[k] = Some(id.0 as usize);
            self.records[id.0 as usize].state = RequestState::Solving;
            let case = self.slots[lane][k]
                .as_mut()
                // PANIC-OK: `slots` mirrors the batcher occupancy —
                // populated on admit, cleared on free — and `occupied[k]`
                // held at the top of this loop body.
                .expect("occupied slot has a case");
            // SDC boundary guard: checksum the column's state, let any
            // injected flips land, verify and roll back bitwise
            boundary_guard(
                case,
                &mut self.faults,
                self.ticks,
                id.0 as usize,
                detect,
                &mut lane_corruptions,
            );
            let every = self.cfg.run.integrity.basis_check_every;
            if detect && every > 0 && self.ticks > 0 && self.ticks.is_multiple_of(every) {
                if let Some(rep) = basis_sentinel(
                    case,
                    self.ticks,
                    id.0 as usize,
                    self.cfg.run.integrity.basis_defect_tol,
                ) {
                    lane_corruptions.push(rep);
                }
            }
            let s = self.cfg.run.s_max.max(1).min(case.available_s());
            let (ab, s_used) = case.prepare_step(self.backend, &mut self.scratch, s);
            // RHS checksum between assembly and the fused solve
            rhs_guard(
                self.backend,
                case,
                &mut self.scratch,
                &mut self.faults,
                self.ticks,
                id.0 as usize,
                detect,
                &mut lane_corruptions,
            );
            pred_t += self.clock.run_cpu(&case.predictor_cost(s_used.max(1)));
            insert_case(&mut f_multi, r, k, case.rhs());
            insert_case(&mut x_multi, r, k, case.guess());
            ab_guesses[k] = ab;
        }

        // fused masked solve (GPU lane) through the resumable ladder:
        // a column that exhausts it keeps its failure, companions survive
        let outcome = solve_set_resumable(
            &self.backend.ebe_a(r),
            &self.backend.precond,
            &f_multi,
            &mut x_multi,
            &ab_guesses,
            &occupied,
            &lane_cases,
            &cg_cfg,
            &cg_cfg,
            self.ticks,
            lane,
            true,
            &mut self.recoveries,
        );
        let solver_t = self
            .clock
            .run_gpu(&self.backend.rhs_counts_ebe(r).merged(outcome.stats.counts));

        // harvest columns; flow hops collect each occupant's fate for the
        // causal-trace arrows emitted with the spans below
        let mut flow_hops: Vec<(u64, RequestState)> = Vec::with_capacity(n_occ);
        let mut x = vec![0.0; n];
        for k in 0..r {
            if !occupied[k] {
                continue;
            }
            // PANIC-OK: same `occupied[k]` guard as the packing loop; the
            // solve does not admit or free slots.
            let id = self.batcher.slot(lane, k).expect("occupied slot");
            if outcome.stats.case_termination[k].is_failure() {
                self.slots[lane][k] = None;
                self.batcher.free(lane, k);
                let failed_at = self.clock.elapsed();
                self.finish(id, RequestState::Failed, failed_at);
                self.stats.record_failure();
                self.flight.record(
                    failed_at,
                    "failed",
                    Some(id.0),
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    "solver failure after recovery ladder",
                );
                flow_hops.push((id.0, RequestState::Failed));
                continue;
            }
            extract_case(&x_multi, r, k, &mut x);
            let case = self.slots[lane][k]
                .as_mut()
                // PANIC-OK: `occupied[k]` held and the failure arm above
                // `continue`s after clearing, so this slot is still live.
                .expect("occupied slot has a case");
            case.advance(self.backend, &x, &ab_guesses[k], None);
            if detect && scrub_state(case).is_some() {
                // non-finite state slipped past every checksum: free the
                // column rather than carry NaNs forward (zero silent
                // wrong answers)
                self.slots[lane][k] = None;
                self.batcher.free(lane, k);
                let at = self.clock.elapsed();
                self.finish(id, RequestState::Evicted, at);
                self.records[id.0 as usize].evict_reason = Some(EvictReason::Corruption);
                self.stats.record_eviction();
                self.stats.record_sdc_eviction();
                self.stats
                    .tenant_eviction(self.records[id.0 as usize].request.tenant.0);
                self.record_eviction_event(id, Some(lane), EvictReason::Corruption, at);
                continue;
            }
            if case.is_done() {
                let result = if self.cfg.keep_results {
                    Some(case.displacement().to_vec())
                } else {
                    None
                };
                self.slots[lane][k] = None;
                self.batcher.free(lane, k);
                let done_at = self.clock.elapsed();
                let req = self.records[id.0 as usize].request;
                let latency = done_at - self.records[id.0 as usize].admitted_at;
                self.finish(id, RequestState::Done, done_at);
                self.records[id.0 as usize].result = result;
                self.stats.record_completion(latency);
                self.stats
                    .tenant_completion(req.tenant.0, latency, req.n_steps as u64);
                if req.deadline.is_some_and(|d| done_at > d) {
                    self.stats.tenant_deadline_miss(req.tenant.0);
                }
                if let Some(slo) = self
                    .cfg
                    .qos
                    .as_ref()
                    .and_then(|q| q.quota(req.tenant))
                    .and_then(|q| q.slo_latency_s)
                {
                    if latency > slo {
                        self.stats.tenant_slo_miss(req.tenant.0);
                    }
                }
                self.flight.record(
                    done_at,
                    "done",
                    Some(id.0),
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    format!("latency {latency:.3e}s"),
                );
                flow_hops.push((id.0, RequestState::Done));
            } else {
                self.flight.record(
                    self.clock.elapsed(),
                    "step",
                    Some(id.0),
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    "",
                );
                flow_hops.push((id.0, RequestState::Solving));
            }
        }

        // sync + exchange predictions/solutions, as in the ensemble driver
        self.clock.sync();
        let xfer = self.clock.transfer(2.0 * (n * r) as f64 * 8.0);

        if let Some(t) = self.trace.as_mut() {
            let pid = 1 + lane;
            let end = self.clock.elapsed();
            t.span(
                pid,
                TID_CPU,
                "predict",
                "predictors",
                (end - xfer - pred_t) * 1e6,
                pred_t * 1e6,
                vec![("occupied".to_string(), Json::from(n_occ))],
            );
            t.span(
                pid,
                TID_GPU,
                "solve",
                "fused MCG",
                (end - xfer - solver_t) * 1e6,
                solver_t * 1e6,
                vec![
                    ("occupied".to_string(), Json::from(n_occ)),
                    (
                        "fused_iterations".to_string(),
                        Json::from(outcome.stats.fused_iterations),
                    ),
                    ("attempts".to_string(), Json::from(outcome.attempts)),
                ],
            );
            t.span(
                pid,
                TID_LINK,
                "transfer",
                "exchange",
                (end - xfer) * 1e6,
                xfer * 1e6,
                Vec::new(),
            );
            // causal arrows: one hop per occupant, anchored inside this
            // tick's fused-MCG span so Perfetto binds them to the slice
            let hop_ts = (end - xfer - 0.5 * solver_t) * 1e6;
            for (rid, fate) in &flow_hops {
                let fid = flow_id_for_request(*rid);
                match fate {
                    RequestState::Done => t.flow_end(pid, TID_GPU, "request", "done", hop_ts, fid),
                    RequestState::Failed => {
                        t.flow_end(pid, TID_GPU, "request", "failed", hop_ts, fid)
                    }
                    _ => t.flow_step(pid, TID_GPU, "request", "step", hop_ts, fid),
                }
            }
        }

        // SDC escalation ladder: every report above was recovered in
        // place; what escalates is corruption *recurring* tick after tick
        // on the same lane — in-place rollback, then a lane restart, then
        // eviction rather than a possibly-wrong answer.
        if lane_corruptions.is_empty() {
            self.sdc_breach[lane] = 0;
        } else {
            self.sdc_breach[lane] += 1;
            let breach = self.sdc_breach[lane];
            let now = self.clock.elapsed();
            for rep in &lane_corruptions {
                self.stats.record_sdc_detection();
                self.flight.record(
                    now,
                    "sdc_recovered",
                    rep.case.map(|c| c as u64),
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    format!("{rep}"),
                );
            }
            if breach == SDC_RESTART_AFTER {
                let restored = self.restart_lane(lane);
                self.stats.record_sdc_restart();
                self.flight.record(
                    now,
                    "sdc_restart",
                    None,
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    format!("breach {breach}: {restored} column(s) rolled back"),
                );
            } else if breach >= SDC_EVICT_AFTER {
                let evicted = self.evict_lane_with(lane, EvictReason::Corruption);
                for _ in 0..evicted {
                    self.stats.record_sdc_eviction();
                }
                self.sdc_breach[lane] = 0;
                self.flight.record(
                    now,
                    "sdc_evict",
                    None,
                    Some(lane as u64),
                    Some(self.ticks as u64),
                    format!("breach {breach}: {evicted} column(s) evicted"),
                );
                self.dump_flight("sdc_evict");
            }
            self.stats.observe_sdc_recovery(now - t_detect);
            self.corruptions.extend(lane_corruptions);
        }
    }

    /// Capture lane `lane`'s occupants into the in-memory lane checkpoint
    /// (the watchdog's restart rung rolls back to this).
    pub(crate) fn capture_lane(&mut self, lane: usize) {
        for slot in 0..self.batcher.width() {
            self.lane_ckpt[lane][slot] = match (
                self.batcher.slot(lane, slot),
                self.slots[lane][slot].as_ref(),
            ) {
                (Some(id), Some(case)) => Some((id, case.state())),
                _ => None,
            };
        }
    }

    /// Judge one supervised lane step against the watchdog deadline and
    /// walk the escalation ladder on consecutive breaches.
    fn supervise(&mut self, lane: usize, dt: f64, wd: WatchdogConfig) {
        if self.batcher.occupied_count(lane) == 0 || dt <= wd.step_deadline_s {
            self.watchdog_breach[lane] = 0;
            return;
        }
        self.watchdog_breach[lane] += 1;
        let breach = self.watchdog_breach[lane];
        self.stats.record_watchdog_breach();
        self.flight.record(
            self.clock.elapsed(),
            "watchdog_breach",
            None,
            Some(lane as u64),
            Some(self.ticks as u64),
            format!("breach {breach}, overrun {:.3e}s", dt - wd.step_deadline_s),
        );
        let action = if breach <= wd.max_retries {
            // rung 1: wait out the stall, charging exponential backoff
            // to the link lane of the modeled clock
            let backoff_s = wd.backoff_s(breach);
            self.clock.stall(LaneKind::Link, backoff_s);
            WatchdogAction::Retry { backoff_s }
        } else if breach == wd.max_retries + 1 {
            // rung 2: roll the lane back to its last checkpoint; the
            // breach counter persists so a still-stalled lane escalates
            let restored = self.restart_lane(lane);
            self.stats.record_watchdog_restart();
            WatchdogAction::RestartLane { restored }
        } else {
            // rung 3: give up on the lane entirely
            let evicted = self.evict_lane(lane);
            self.watchdog_breach[lane] = 0;
            WatchdogAction::EvictLane { evicted }
        };
        self.flight.record(
            self.clock.elapsed(),
            "watchdog_action",
            None,
            Some(lane as u64),
            Some(self.ticks as u64),
            action.label(),
        );
        self.watchdog_events.push(WatchdogEvent {
            tick: self.ticks,
            lane,
            breach,
            overrun_s: dt - wd.step_deadline_s,
            wall_s: self.wall.now(),
            action,
        });
        self.dump_flight("watchdog_breach");
    }

    /// Roll lane `lane`'s surviving columns back to the last in-memory
    /// lane checkpoint; returns how many columns were restored. Columns
    /// whose occupant changed since the capture (finished and backfilled)
    /// keep their live state.
    fn restart_lane(&mut self, lane: usize) -> usize {
        let mut restored = 0;
        for slot in 0..self.batcher.width() {
            let Some(id) = self.batcher.slot(lane, slot) else {
                continue;
            };
            let Some((ckpt_id, st)) = self.lane_ckpt[lane][slot].as_ref() else {
                continue;
            };
            if *ckpt_id != id {
                continue;
            }
            self.slots[lane][slot] = Some(CaseSlot::from_state(self.backend, &self.cfg.run, st));
            self.records[id.0 as usize].state = RequestState::Batched;
            restored += 1;
            let now = self.clock.elapsed();
            self.flight.record(
                now,
                "lane_restored",
                Some(id.0),
                Some(lane as u64),
                Some(self.ticks as u64),
                "rolled back to lane checkpoint",
            );
            if let Some(t) = self.trace.as_mut() {
                // the flow id is derived from the request id alone, so
                // this hop chains onto the same arrow the case had before
                // the restart — across lanes and rollbacks
                t.flow_step(
                    1 + lane,
                    TID_GPU,
                    "request",
                    "restored",
                    now * 1e6,
                    flow_id_for_request(id.0),
                );
            }
        }
        restored
    }

    /// Free every column of lane `lane`, marking its requests
    /// `Evicted`/`Watchdog`; returns how many were evicted.
    fn evict_lane(&mut self, lane: usize) -> usize {
        self.evict_lane_with(lane, EvictReason::Watchdog)
    }

    /// [`Self::evict_lane`] with an explicit reason — the SDC ladder's
    /// last rung evicts with [`EvictReason::Corruption`].
    fn evict_lane_with(&mut self, lane: usize, reason: EvictReason) -> usize {
        let now = self.clock.elapsed();
        let mut evicted = 0;
        for slot in 0..self.batcher.width() {
            let Some(id) = self.batcher.slot(lane, slot) else {
                continue;
            };
            self.batcher.free(lane, slot);
            self.slots[lane][slot] = None;
            self.lane_ckpt[lane][slot] = None;
            self.finish(id, RequestState::Evicted, now);
            self.records[id.0 as usize].evict_reason = Some(reason);
            self.stats.record_eviction();
            self.stats
                .tenant_eviction(self.records[id.0 as usize].request.tenant.0);
            self.record_eviction_event(id, Some(lane), reason, now);
            evicted += 1;
        }
        evicted
    }

    /// Supervision decisions taken so far, in order.
    pub fn watchdog_events(&self) -> &[WatchdogEvent] {
        &self.watchdog_events
    }

    /// Move a request to a terminal state.
    fn finish(&mut self, id: RequestId, state: RequestState, at: f64) {
        let rec = &mut self.records[id.0 as usize];
        rec.state = state;
        rec.finished_at = Some(at);
    }

    /// The serving metrics collected so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Record of an admitted request.
    pub fn record(&self, id: RequestId) -> &RequestRecord {
        &self.records[id.0 as usize]
    }

    /// Number of requests ever admitted (ids are `0..admitted()`).
    pub fn admitted(&self) -> usize {
        self.records.len()
    }

    /// Records of every admitted request, in admission order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Final displacement of a `Done` request.
    pub fn result(&self, id: RequestId) -> Option<&[f64]> {
        self.records[id.0 as usize].result.as_deref()
    }

    /// Recovery-ladder events across all lanes so far.
    pub fn recoveries(&self) -> &[RecoveryEvent] {
        &self.recoveries
    }

    /// Corruption detections (and the recovery each took) so far.
    pub fn corruptions(&self) -> &[CorruptionReport] {
        &self.corruptions
    }

    /// Scheduling boundaries executed so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Modeled server clock (s).
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    /// Queued (not yet batched) requests.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying lane slots.
    pub fn in_flight(&self) -> usize {
        (0..self.batcher.n_lanes())
            .map(|l| self.batcher.occupied_count(l))
            .sum()
    }

    /// Fused lanes currently spun up (fixed at 2 without autoscaling).
    pub fn lanes(&self) -> usize {
        self.batcher.n_lanes()
    }

    /// Lane-scaling events taken so far, in order.
    pub fn scale_events(&self) -> &[AutoscaleEvent] {
        &self.scale_events
    }

    /// Autoscaler dynamic state (cooldown / draining / monotone count).
    pub fn autoscaler(&self) -> &AutoscalerState {
        &self.autoscaler
    }

    /// Nothing queued and nothing in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.batcher.is_idle()
    }

    /// Modeled per-step floor the unmeetable-deadline shedder uses.
    pub fn step_floor_s(&self) -> f64 {
        self.step_floor
    }

    /// Advance the modeled clock by `dt` seconds without running any work
    /// — the open-loop load generator's "wait for the next arrival" while
    /// the server is idle. Charged to the link lane so both device
    /// timelines (and [`Self::elapsed`]) move together.
    pub fn advance_idle(&mut self, dt: f64) {
        if dt > 0.0 {
            self.clock.stall(LaneKind::Link, dt);
            self.stats.set_elapsed(self.clock.elapsed());
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }
}
