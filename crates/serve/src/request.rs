//! Requests, their lifecycle states, and the per-request record the
//! server keeps.
//!
//! A [`SolveRequest`] names *one* simulation case — the seed and step
//! count that pin its random load — plus the scheduling knobs (priority,
//! deadline) and an optional solver-tolerance override. Every admitted
//! request walks the lifecycle
//! `Queued → Batched → Solving → Done | Failed | Evicted` recorded in its
//! [`RequestRecord`].

/// Handle to an admitted request (dense: the `n`-th admitted request is
/// `RequestId(n)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One solve case submitted to the serving layer.
///
/// A request served with seed `s` reproduces the exact trajectory of a
/// solo [`run_ensemble`](hetsolve_core::run_ensemble) case whose seed is
/// `s` (same backend, same `RunConfig` load/window settings) — the
/// serving layer's bitwise-equivalence contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRequest {
    /// Absolute RNG seed for this case's random load.
    pub seed: u64,
    /// Time steps this case runs for.
    pub n_steps: usize,
    /// Scheduling priority (higher runs first).
    pub priority: u8,
    /// Absolute modeled deadline (s on the server clock); a request still
    /// queued past it is shed as `Evicted`.
    pub deadline: Option<f64>,
    /// Solver-tolerance override; `None` uses the server default. Cases
    /// only share a fused lane when their effective tolerances are
    /// bit-identical (one `CgConfig` drives all columns of a lane).
    pub tol: Option<f64>,
    /// Submitting tenant. Tenant 0 is the default; when the server runs
    /// with a [`QosConfig`](crate::qos::QosConfig) the id must name a
    /// configured quota, and fair-share scheduling + per-tenant limits
    /// apply. Tenancy is a scheduling dimension only — it never touches
    /// the numerics of the solve.
    pub tenant: TenantId,
}

impl SolveRequest {
    pub fn new(seed: u64, n_steps: usize) -> Self {
        SolveRequest {
            seed,
            n_steps,
            priority: 0,
            deadline: None,
            tol: None,
            tenant: TenantId(0),
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Identity of a submitting tenant (dense: index into the server's
/// configured quota table when QoS is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Lifecycle state of an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Admitted, waiting in the queue.
    Queued,
    /// Assigned a lane slot at a step boundary, not yet solving.
    Batched,
    /// Its lane is iterating.
    Solving,
    /// All steps completed; result available.
    Done,
    /// Its column exhausted the recovery ladder; the slot was freed.
    Failed,
    /// Shed past its deadline, or force-evicted (injected / operator).
    Evicted,
    /// Handed to another shard of the serving cluster (work stealing or
    /// failover reconciliation); this shard's copy is terminal and the
    /// cluster router points at the new owner.
    Migrated,
}

impl RequestState {
    pub fn label(&self) -> &'static str {
        match self {
            RequestState::Queued => "queued",
            RequestState::Batched => "batched",
            RequestState::Solving => "solving",
            RequestState::Done => "done",
            RequestState::Failed => "failed",
            RequestState::Evicted => "evicted",
            RequestState::Migrated => "migrated",
        }
    }

    /// The request will never run again (on this shard).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RequestState::Done
                | RequestState::Failed
                | RequestState::Evicted
                | RequestState::Migrated
        )
    }

    /// Stable wire code for checkpoint encoding (append-only).
    pub fn code(&self) -> u8 {
        match self {
            RequestState::Queued => 0,
            RequestState::Batched => 1,
            RequestState::Solving => 2,
            RequestState::Done => 3,
            RequestState::Failed => 4,
            RequestState::Evicted => 5,
            RequestState::Migrated => 6,
        }
    }

    /// Inverse of [`RequestState::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => RequestState::Queued,
            1 => RequestState::Batched,
            2 => RequestState::Solving,
            3 => RequestState::Done,
            4 => RequestState::Failed,
            5 => RequestState::Evicted,
            6 => RequestState::Migrated,
            _ => return None,
        })
    }
}

/// Why an `Evicted` request was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// Still queued past its deadline.
    DeadlineExpired,
    /// An injected eviction fault (chaos testing / operator cancel).
    Injected,
    /// The watchdog supervisor exhausted its escalation ladder on the
    /// request's lane (retry → restart-from-checkpoint → evict).
    Watchdog,
    /// The request's cluster node died and no valid peer replica existed
    /// to fail over from — the extended ladder's true last resort.
    NodeLost,
    /// Shed at a step boundary because its deadline became *provably*
    /// unmeetable while queued: even at the modeled per-step floor cost
    /// the remaining steps cannot finish before the deadline, so the
    /// request is shed early instead of occupying queue share until
    /// `expire` catches it.
    DeadlineUnmeetable,
    /// The SDC ladder exhausted itself on the request's column: corruption
    /// kept recurring after rollback and a lane restart, so the column was
    /// freed rather than serve a possibly-wrong answer.
    Corruption,
}

impl EvictReason {
    pub fn label(&self) -> &'static str {
        match self {
            EvictReason::DeadlineExpired => "deadline_expired",
            EvictReason::Injected => "injected",
            EvictReason::Watchdog => "watchdog",
            EvictReason::NodeLost => "node_lost",
            EvictReason::DeadlineUnmeetable => "deadline_unmeetable",
            EvictReason::Corruption => "corruption",
        }
    }

    /// Stable wire code for checkpoint encoding (append-only).
    pub fn code(&self) -> u8 {
        match self {
            EvictReason::DeadlineExpired => 0,
            EvictReason::Injected => 1,
            EvictReason::Watchdog => 2,
            EvictReason::NodeLost => 3,
            EvictReason::DeadlineUnmeetable => 4,
            EvictReason::Corruption => 5,
        }
    }

    /// Inverse of [`EvictReason::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => EvictReason::DeadlineExpired,
            1 => EvictReason::Injected,
            2 => EvictReason::Watchdog,
            3 => EvictReason::NodeLost,
            4 => EvictReason::DeadlineUnmeetable,
            5 => EvictReason::Corruption,
            _ => return None,
        })
    }
}

/// Everything the server remembers about one admitted request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    pub id: RequestId,
    pub request: SolveRequest,
    pub state: RequestState,
    /// Server clock (modeled s) at admission.
    pub admitted_at: f64,
    /// Server clock when the request reached a terminal state.
    pub finished_at: Option<f64>,
    /// Why the request was evicted (only for `Evicted`).
    pub evict_reason: Option<EvictReason>,
    /// Final displacement vector (only for `Done`).
    pub result: Option<Vec<f64>>,
}

impl RequestRecord {
    /// Admit→done latency; `None` until the request is terminal.
    pub fn latency(&self) -> Option<f64> {
        self.finished_at.map(|t| t - self.admitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_labels() {
        let r = SolveRequest::new(42, 10)
            .with_priority(3)
            .with_deadline(1.5)
            .with_tol(1e-6)
            .with_tenant(TenantId(2));
        assert_eq!(r.priority, 3);
        assert_eq!(r.deadline, Some(1.5));
        assert_eq!(r.tol, Some(1e-6));
        assert_eq!(r.tenant, TenantId(2));
        assert_eq!(SolveRequest::new(1, 1).tenant, TenantId(0));
        assert_eq!(TenantId(3).to_string(), "tenant#3");
        assert_eq!(
            EvictReason::DeadlineUnmeetable.label(),
            "deadline_unmeetable"
        );
        assert_eq!(
            EvictReason::from_code(EvictReason::DeadlineUnmeetable.code()),
            Some(EvictReason::DeadlineUnmeetable)
        );
        assert!(!RequestState::Solving.is_terminal());
        assert!(RequestState::Evicted.is_terminal());
        assert_eq!(RequestState::Done.label(), "done");
        assert_eq!(RequestId(7).to_string(), "req#7");
    }
}
