//! Property-based tests of the fused-lane batcher: the scheduling-safety
//! invariants the serving layer's correctness rests on, under arbitrary
//! workloads and backfill/free interleavings.
//!
//! * a lane never holds two compatibility classes at once,
//! * a lane never exceeds its width, even under heavy overload,
//! * backfill assigns in scheduling order (priority preserved among
//!   equal deadlines),
//! * backfill writes only vacant slots — in-flight columns never move
//!   (moving one would re-associate a CG trajectory with a different
//!   request mid-solve).

use std::collections::HashMap;

use hetsolve_serve::{
    AdmissionQueue, AdmitError, BatchPolicy, Batcher, CompatKey, RequestId, TenantId, TenantPolicy,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-simulation invariants: run arbitrary requests (mixed keys and
    /// priorities) through arbitrary backfill/free interleavings under
    /// both policies, checking after every backfill that lanes are
    /// single-key, within width, and that pre-existing occupants kept
    /// their exact slots.
    #[test]
    fn lanes_stay_compatible_and_stable(
        reqs in vec((0u64..3, 0u8..8), 1..40),
        n_lanes in 1usize..4,
        width in 1usize..6,
        drain in any::<bool>(),
        free_bits in vec(any::<bool>(), 144),
    ) {
        let policy = if drain {
            BatchPolicy::DrainThenRefill
        } else {
            BatchPolicy::Continuous
        };
        let mut q = AdmissionQueue::new(reqs.len().max(1), 99);
        let mut keys = Vec::new();
        for (i, &(key, prio)) in reqs.iter().enumerate() {
            let k = CompatKey(key);
            q.push(RequestId(i as u64), k, prio, None, TenantId(0), 1).unwrap();
            keys.push(k);
        }
        let mut b = Batcher::new(n_lanes, width, policy);
        let mut bit = free_bits.iter().cycle();

        for _round in 0..400 {
            let pre: Vec<Vec<Option<RequestId>>> = (0..b.n_lanes())
                .map(|l| (0..b.width()).map(|s| b.slot(l, s)).collect())
                .collect();
            let assigned = b.backfill(&mut q);
            for a in &assigned {
                prop_assert!(pre[a.lane][a.slot].is_none(), "assigned into an occupied slot");
            }
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if let Some(id) = pre[l][s] {
                        prop_assert_eq!(b.slot(l, s), Some(id), "in-flight column moved");
                    }
                }
                prop_assert!(b.occupied_count(l) <= b.width());
                let lane_keys: Vec<CompatKey> = (0..b.width())
                    .filter_map(|s| b.slot(l, s))
                    .map(|id| keys[id.0 as usize])
                    .collect();
                match b.lane_key(l) {
                    Some(k) => prop_assert!(
                        lane_keys.iter().all(|&lk| lk == k),
                        "lane mixed compatibility classes"
                    ),
                    None => prop_assert!(lane_keys.is_empty(), "occupied lane without a key"),
                }
            }
            if q.is_empty() && b.is_idle() {
                break;
            }
            // free a pseudo-random subset; force at least one free so the
            // simulation always progresses
            let mut freed = false;
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if b.slot(l, s).is_some() && *bit.next().unwrap() {
                        b.free(l, s);
                        freed = true;
                    }
                }
            }
            if !freed {
                'force: for l in 0..b.n_lanes() {
                    for s in 0..b.width() {
                        if b.slot(l, s).is_some() {
                            b.free(l, s);
                            break 'force;
                        }
                    }
                }
            }
        }
        prop_assert!(q.is_empty() && b.is_idle(), "workload did not drain");
    }

    /// Among requests with equal deadlines, backfill hands out slots in
    /// non-increasing priority order — across rounds, lanes, and slots.
    #[test]
    fn priority_order_preserved_among_equal_deadlines(
        prios in vec(0u8..8, 1..30),
        width in 1usize..6,
        n_lanes in 1usize..3,
        with_deadline in any::<bool>(),
    ) {
        let mut q = AdmissionQueue::new(prios.len(), 7);
        let deadline = if with_deadline { Some(1e9) } else { None };
        for (i, &p) in prios.iter().enumerate() {
            q.push(RequestId(i as u64), CompatKey(1), p, deadline, TenantId(0), 1).unwrap();
        }
        let mut b = Batcher::new(n_lanes, width, BatchPolicy::Continuous);
        let mut order: Vec<u8> = Vec::new();
        while !q.is_empty() {
            let assigned = b.backfill(&mut q);
            prop_assert!(!assigned.is_empty(), "empty lanes must take work");
            for a in &assigned {
                order.push(prios[a.id.0 as usize]);
            }
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if b.slot(l, s).is_some() {
                        b.free(l, s);
                    }
                }
            }
        }
        prop_assert!(
            order.windows(2).all(|w| w[0] >= w[1]),
            "priorities not non-increasing: {:?}",
            order
        );
    }

    /// Overload never overfills: one backfill against a deep queue places
    /// exactly lanes×width requests and leaves the rest queued.
    #[test]
    fn width_never_exceeded_under_overload(
        extra in 0usize..64,
        width in 1usize..6,
    ) {
        let n_req = 2 * width + extra;
        let mut q = AdmissionQueue::new(n_req, 3);
        for i in 0..n_req {
            q.push(RequestId(i as u64), CompatKey(0), 0, None, TenantId(0), 1).unwrap();
        }
        let mut b = Batcher::new(2, width, BatchPolicy::Continuous);
        let assigned = b.backfill(&mut q);
        prop_assert_eq!(assigned.len(), 2 * width);
        for l in 0..2 {
            prop_assert_eq!(b.occupied_count(l), width);
        }
        prop_assert_eq!(q.len(), extra);
    }

    /// Continuous backfill across an arbitrary admit/free stream: every
    /// in-flight request stays in the slot it was assigned until freed.
    #[test]
    fn inflight_columns_never_move(
        seq in vec((0usize..8, any::<bool>()), 4..40),
        width in 2usize..6,
    ) {
        let mut q = AdmissionQueue::new(256, 11);
        let mut next_id = 0u64;
        let mut b = Batcher::new(1, width, BatchPolicy::Continuous);
        let mut position: HashMap<u64, usize> = HashMap::new();
        for &(slot, push_two) in &seq {
            for _ in 0..if push_two { 2 } else { 1 } {
                q.push(RequestId(next_id), CompatKey(0), 0, None, TenantId(0), 1).unwrap();
                next_id += 1;
            }
            let s = slot % width;
            if let Some(id) = b.slot(0, s) {
                position.remove(&id.0);
                b.free(0, s);
            }
            for a in b.backfill(&mut q) {
                position.insert(a.id.0, a.slot);
            }
            for (&id, &s) in &position {
                prop_assert_eq!(b.slot(0, s), Some(RequestId(id)), "column moved");
            }
        }
    }

    /// Two saturated tenants: served *work* (cost-weighted pops) converges
    /// to the quota-weight ratio within ±10%, for arbitrary weights,
    /// quanta, and per-tenant costs. Both backlogs are kept deep enough
    /// that neither tenant ever idles (idle tenants forfeit deficit by
    /// design, which would skew the share).
    #[test]
    fn drr_served_work_tracks_weights_under_saturation(
        w0 in 1u64..=4,
        w1 in 1u64..=4,
        quantum in 1u64..=3,
        c0 in 1u32..=2,
        c1 in 1u32..=2,
        seed in any::<u64>(),
    ) {
        let policy = TenantPolicy::new(&[(w0, 1.0), (w1, 1.0)], quantum, 4096);
        let mut q = AdmissionQueue::new(4096, seed).with_policy(policy);
        let per_tenant = 1300u64;
        for i in 0..per_tenant {
            q.push(RequestId(2 * i), CompatKey(0), 0, None, TenantId(0), c0).unwrap();
            q.push(RequestId(2 * i + 1), CompatKey(0), 0, None, TenantId(1), c1).unwrap();
        }
        // 48 full rotations: one rotation's grant granularity (plus a
        // carried deficit of at most quantum×w + cost) is ≲2% of the
        // total, well inside the ±10% tolerance
        let target = 48 * quantum * (w0 + w1);
        let mut served = [0u64; 2];
        while served[0] + served[1] < target {
            let (id, _) = q.pop_best().unwrap();
            if id.0 % 2 == 0 {
                served[0] += u64::from(c0);
            } else {
                served[1] += u64::from(c1);
            }
        }
        let share = served[0] as f64 / (served[0] + served[1]) as f64;
        let want = w0 as f64 / (w0 + w1) as f64;
        prop_assert!(
            (share - want).abs() <= 0.10 * want,
            "served-work share {share:.3} strays from weight share {want:.3} \
             (w {w0}:{w1}, quantum {quantum}, costs {c0}/{c1})"
        );
    }

    /// No positive-weight tenant is starved: whatever the weight spread,
    /// every backlogged tenant gets its first pop within a couple of DRR
    /// rotations, and the queue drains completely.
    #[test]
    fn drr_never_starves_a_positive_weight_tenant(
        weights in vec(1u64..=4, 2..5),
        quantum in 1u64..=4,
        seed in any::<u64>(),
    ) {
        let n = weights.len();
        let tens: Vec<(u64, f64)> = weights.iter().map(|&w| (w, 1.0)).collect();
        let policy = TenantPolicy::new(&tens, quantum, 256);
        let mut q = AdmissionQueue::new(256, seed).with_policy(policy);
        let per = 8u64;
        let mut id = 0u64;
        for t in 0..n {
            for _ in 0..per {
                q.push(RequestId(id), CompatKey(0), 0, None, TenantId(t as u32), 4).unwrap();
                id += 1;
            }
        }
        let mut first_pop = vec![None; n];
        let mut pops = 0u64;
        while let Some((rid, _)) = q.pop_best() {
            let t = (rid.0 / per) as usize;
            first_pop[t].get_or_insert(pops);
            pops += 1;
        }
        prop_assert_eq!(pops, per * n as u64, "queue did not drain");
        for (t, first) in first_pop.iter().enumerate() {
            let first = first.expect("tenant never served");
            prop_assert!(
                first < 8 * n as u64,
                "tenant {t} (weight {}) waited {first} pops for its first \
                 serve",
                weights[t]
            );
        }
    }

    /// Share caps shed exactly the tenant that overfilled, typed with its
    /// own occupancy — the other tenant keeps admitting into the rest of
    /// the queue.
    #[test]
    fn share_caps_shed_the_overfull_tenant_typed(
        share_pct in 1u32..=50,
        capacity in 8usize..=32,
        seed in any::<u64>(),
    ) {
        let share = f64::from(share_pct) / 100.0;
        let policy = TenantPolicy::new(&[(1, share), (1, 1.0)], 4, capacity);
        let mut q = AdmissionQueue::new(capacity, seed).with_policy(policy);
        let cap0 = ((capacity as f64 * share).ceil() as usize).max(1);
        for i in 0..cap0 {
            q.push(RequestId(i as u64), CompatKey(0), 0, None, TenantId(0), 1).unwrap();
        }
        match q.push(RequestId(1000), CompatKey(0), 0, None, TenantId(0), 1) {
            Err(AdmitError::TenantShed { tenant, queued, share: cap }) => {
                prop_assert_eq!(tenant, TenantId(0));
                prop_assert_eq!(queued, cap0);
                prop_assert_eq!(cap, cap0);
            }
            other => prop_assert!(false, "expected TenantShed, got {other:?}"),
        }
        // tenant 1 is unaffected by tenant 0's full share
        q.push(RequestId(2000), CompatKey(0), 0, None, TenantId(1), 1).unwrap();
    }
}
