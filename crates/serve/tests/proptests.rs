//! Property-based tests of the fused-lane batcher: the scheduling-safety
//! invariants the serving layer's correctness rests on, under arbitrary
//! workloads and backfill/free interleavings.
//!
//! * a lane never holds two compatibility classes at once,
//! * a lane never exceeds its width, even under heavy overload,
//! * backfill assigns in scheduling order (priority preserved among
//!   equal deadlines),
//! * backfill writes only vacant slots — in-flight columns never move
//!   (moving one would re-associate a CG trajectory with a different
//!   request mid-solve).

use std::collections::HashMap;

use hetsolve_serve::{AdmissionQueue, BatchPolicy, Batcher, CompatKey, RequestId};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-simulation invariants: run arbitrary requests (mixed keys and
    /// priorities) through arbitrary backfill/free interleavings under
    /// both policies, checking after every backfill that lanes are
    /// single-key, within width, and that pre-existing occupants kept
    /// their exact slots.
    #[test]
    fn lanes_stay_compatible_and_stable(
        reqs in vec((0u64..3, 0u8..8), 1..40),
        n_lanes in 1usize..4,
        width in 1usize..6,
        drain in any::<bool>(),
        free_bits in vec(any::<bool>(), 144),
    ) {
        let policy = if drain {
            BatchPolicy::DrainThenRefill
        } else {
            BatchPolicy::Continuous
        };
        let mut q = AdmissionQueue::new(reqs.len().max(1), 99);
        let mut keys = Vec::new();
        for (i, &(key, prio)) in reqs.iter().enumerate() {
            let k = CompatKey(key);
            q.push(RequestId(i as u64), k, prio, None).unwrap();
            keys.push(k);
        }
        let mut b = Batcher::new(n_lanes, width, policy);
        let mut bit = free_bits.iter().cycle();

        for _round in 0..400 {
            let pre: Vec<Vec<Option<RequestId>>> = (0..b.n_lanes())
                .map(|l| (0..b.width()).map(|s| b.slot(l, s)).collect())
                .collect();
            let assigned = b.backfill(&mut q);
            for a in &assigned {
                prop_assert!(pre[a.lane][a.slot].is_none(), "assigned into an occupied slot");
            }
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if let Some(id) = pre[l][s] {
                        prop_assert_eq!(b.slot(l, s), Some(id), "in-flight column moved");
                    }
                }
                prop_assert!(b.occupied_count(l) <= b.width());
                let lane_keys: Vec<CompatKey> = (0..b.width())
                    .filter_map(|s| b.slot(l, s))
                    .map(|id| keys[id.0 as usize])
                    .collect();
                match b.lane_key(l) {
                    Some(k) => prop_assert!(
                        lane_keys.iter().all(|&lk| lk == k),
                        "lane mixed compatibility classes"
                    ),
                    None => prop_assert!(lane_keys.is_empty(), "occupied lane without a key"),
                }
            }
            if q.is_empty() && b.is_idle() {
                break;
            }
            // free a pseudo-random subset; force at least one free so the
            // simulation always progresses
            let mut freed = false;
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if b.slot(l, s).is_some() && *bit.next().unwrap() {
                        b.free(l, s);
                        freed = true;
                    }
                }
            }
            if !freed {
                'force: for l in 0..b.n_lanes() {
                    for s in 0..b.width() {
                        if b.slot(l, s).is_some() {
                            b.free(l, s);
                            break 'force;
                        }
                    }
                }
            }
        }
        prop_assert!(q.is_empty() && b.is_idle(), "workload did not drain");
    }

    /// Among requests with equal deadlines, backfill hands out slots in
    /// non-increasing priority order — across rounds, lanes, and slots.
    #[test]
    fn priority_order_preserved_among_equal_deadlines(
        prios in vec(0u8..8, 1..30),
        width in 1usize..6,
        n_lanes in 1usize..3,
        with_deadline in any::<bool>(),
    ) {
        let mut q = AdmissionQueue::new(prios.len(), 7);
        let deadline = if with_deadline { Some(1e9) } else { None };
        for (i, &p) in prios.iter().enumerate() {
            q.push(RequestId(i as u64), CompatKey(1), p, deadline).unwrap();
        }
        let mut b = Batcher::new(n_lanes, width, BatchPolicy::Continuous);
        let mut order: Vec<u8> = Vec::new();
        while !q.is_empty() {
            let assigned = b.backfill(&mut q);
            prop_assert!(!assigned.is_empty(), "empty lanes must take work");
            for a in &assigned {
                order.push(prios[a.id.0 as usize]);
            }
            for l in 0..b.n_lanes() {
                for s in 0..b.width() {
                    if b.slot(l, s).is_some() {
                        b.free(l, s);
                    }
                }
            }
        }
        prop_assert!(
            order.windows(2).all(|w| w[0] >= w[1]),
            "priorities not non-increasing: {:?}",
            order
        );
    }

    /// Overload never overfills: one backfill against a deep queue places
    /// exactly lanes×width requests and leaves the rest queued.
    #[test]
    fn width_never_exceeded_under_overload(
        extra in 0usize..64,
        width in 1usize..6,
    ) {
        let n_req = 2 * width + extra;
        let mut q = AdmissionQueue::new(n_req, 3);
        for i in 0..n_req {
            q.push(RequestId(i as u64), CompatKey(0), 0, None).unwrap();
        }
        let mut b = Batcher::new(2, width, BatchPolicy::Continuous);
        let assigned = b.backfill(&mut q);
        prop_assert_eq!(assigned.len(), 2 * width);
        for l in 0..2 {
            prop_assert_eq!(b.occupied_count(l), width);
        }
        prop_assert_eq!(q.len(), extra);
    }

    /// Continuous backfill across an arbitrary admit/free stream: every
    /// in-flight request stays in the slot it was assigned until freed.
    #[test]
    fn inflight_columns_never_move(
        seq in vec((0usize..8, any::<bool>()), 4..40),
        width in 2usize..6,
    ) {
        let mut q = AdmissionQueue::new(256, 11);
        let mut next_id = 0u64;
        let mut b = Batcher::new(1, width, BatchPolicy::Continuous);
        let mut position: HashMap<u64, usize> = HashMap::new();
        for &(slot, push_two) in &seq {
            for _ in 0..if push_two { 2 } else { 1 } {
                q.push(RequestId(next_id), CompatKey(0), 0, None).unwrap();
                next_id += 1;
            }
            let s = slot % width;
            if let Some(id) = b.slot(0, s) {
                position.remove(&id.0);
                b.free(0, s);
            }
            for a in b.backfill(&mut q) {
                position.insert(a.id.0, a.slot);
            }
            for (&id, &s) in &position {
                prop_assert_eq!(b.slot(0, s), Some(RequestId(id)), "column moved");
            }
        }
    }
}
