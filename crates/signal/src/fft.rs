//! Iterative radix-2 Cooley-Tukey FFT (from scratch; the FDD
//! post-processing substrate of the paper's Fig. 1).

use crate::complex::C64;

/// `true` if `n` is a power of two (and nonzero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Next power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

fn bit_reverse_permute(a: &mut [C64]) {
    let n = a.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
}

/// In-place FFT. `inverse = true` computes the unnormalized inverse
/// transform; divide by `n` afterwards (done by [`ifft`]).
pub fn fft_inplace(a: &mut [C64], inverse: bool) {
    let n = a.len();
    assert!(is_pow2(n), "FFT length must be a power of two (got {n})");
    bit_reverse_permute(a);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = C64::cis(ang);
        for chunk in a.chunks_mut(len) {
            let mut w = C64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wl;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum.
pub fn rfft(signal: &[f64]) -> Vec<C64> {
    let n = next_pow2(signal.len().max(1));
    let mut a: Vec<C64> = signal.iter().map(|&x| C64::from_re(x)).collect();
    a.resize(n, C64::ZERO);
    fft_inplace(&mut a, false);
    a
}

/// Inverse FFT (normalized).
pub fn ifft(spectrum: &[C64]) -> Vec<C64> {
    let mut a = spectrum.to_vec();
    fft_inplace(&mut a, true);
    let inv = 1.0 / a.len() as f64;
    for v in a.iter_mut() {
        *v = v.scale(inv);
    }
    a
}

/// Frequency (Hz) of spectrum bin `k` for sample interval `dt` and length
/// `n`.
pub fn bin_frequency(k: usize, n: usize, dt: f64) -> f64 {
    k as f64 / (n as f64 * dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(x: &[C64]) -> Vec<C64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = C64::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    acc += xj * C64::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 64;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut a = x.clone();
        fft_inplace(&mut a, false);
        let d = dft_naive(&x);
        for k in 0..n {
            assert!((a[k] - d[k]).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<f64> = (0..128).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let spec = rfft(&x);
        let back = ifft(&spec);
        for i in 0..x.len() {
            assert!((back[i].re - x[i]).abs() < 1e-10);
            assert!(back[i].im.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let x: Vec<f64> = (0..256)
            .map(|i| (i as f64 * 0.11).sin() * (i as f64 * 0.02).cos())
            .collect();
        let spec = rfft(&x);
        let t_energy: f64 = x.iter().map(|v| v * v).sum();
        let f_energy: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / spec.len() as f64;
        assert!((t_energy - f_energy).abs() < 1e-9 * t_energy);
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 19;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&x);
        // energy at bins k0 and n-k0 only
        for (k, c) in spec.iter().enumerate() {
            let mag = c.abs();
            if k == k0 || k == n - k0 {
                assert!((mag - n as f64 / 2.0).abs() < 1e-8);
            } else {
                assert!(mag < 1e-8, "bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.83).cos()).collect();
        let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let (sx, sy, sz) = (rfft(&x), rfft(&y), rfft(&z));
        for k in 0..n {
            let lin = sx[k].scale(2.0) - sy[k].scale(3.0);
            assert!((sz[k] - lin).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_padding_to_pow2() {
        let x = vec![1.0; 100];
        let spec = rfft(&x);
        assert_eq!(spec.len(), 128);
    }

    #[test]
    fn bin_frequency_formula() {
        // 1024 samples at dt=0.005 -> df = 1/(1024*0.005) ≈ 0.195 Hz
        let f = bin_frequency(10, 1024, 0.005);
        assert!((f - 10.0 / 5.12).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_non_pow2() {
        let mut a = vec![C64::ZERO; 12];
        fft_inplace(&mut a, false);
    }
}
