//! # hetsolve-signal
//!
//! Signal-processing substrate for the `hetsolve` reproduction of the SC24
//! paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.): the post-processing pipeline that turns
//! ensemble surface waveforms into the dominant-frequency maps of Fig. 1.
//!
//! * [`complex`] — minimal complex arithmetic,
//! * [`fft`] — iterative radix-2 FFT,
//! * [`spectra`] — Hann window, Welch PSD/CSD estimation,
//! * [`eig`] — Hermitian Jacobi eigensolver (per-bin CSD decomposition),
//! * [`fdd`] — Frequency Domain Decomposition and dominant-frequency
//!   picking (paper ref. [9]).

#![forbid(unsafe_code)]

pub mod complex;
pub mod eig;
pub mod fdd;
pub mod fft;
pub mod spectra;

pub use complex::C64;
pub use eig::{herm_eig, herm_largest, HermEig};
pub use fdd::{dominant_frequency_psd, fdd, FddResult};
pub use fft::{bin_frequency, fft_inplace, ifft, is_pow2, next_pow2, rfft};
pub use spectra::{hann, peak_bin, welch_csd, welch_psd, WelchConfig};
