//! Welch power- and cross-spectral density estimation.

use crate::complex::C64;
use crate::fft::{fft_inplace, is_pow2};

/// Hann window of length `n`.
pub fn hann(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = std::f64::consts::PI * i as f64 / n as f64;
            let s = x.sin();
            s * s
        })
        .collect()
}

/// Welch segmentation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WelchConfig {
    /// Segment length (power of two).
    pub segment: usize,
    /// Overlap in samples (< segment; 50 % is customary).
    pub overlap: usize,
    /// Sample interval (s).
    pub dt: f64,
}

impl WelchConfig {
    pub fn new(segment: usize, overlap: usize, dt: f64) -> Self {
        assert!(is_pow2(segment), "segment length must be a power of two");
        assert!(overlap < segment);
        assert!(dt > 0.0);
        WelchConfig {
            segment,
            overlap,
            dt,
        }
    }

    /// Number of segments available in a signal of length `n`.
    pub fn n_segments(&self, n: usize) -> usize {
        if n < self.segment {
            0
        } else {
            1 + (n - self.segment) / (self.segment - self.overlap)
        }
    }

    /// Frequency of bin `k`.
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 / (self.segment as f64 * self.dt)
    }

    /// One-sided bin count (DC..Nyquist inclusive).
    pub fn n_bins(&self) -> usize {
        self.segment / 2 + 1
    }
}

/// Windowed FFTs of every Welch segment of `x` (one spectrum per segment,
/// one-sided bins).
fn segment_spectra(x: &[f64], cfg: &WelchConfig, window: &[f64]) -> Vec<Vec<C64>> {
    let step = cfg.segment - cfg.overlap;
    let mut out = Vec::new();
    let mut start = 0;
    while start + cfg.segment <= x.len() {
        let mut seg: Vec<C64> = (0..cfg.segment)
            .map(|i| C64::from_re(x[start + i] * window[i]))
            .collect();
        fft_inplace(&mut seg, false);
        seg.truncate(cfg.n_bins());
        out.push(seg);
        start += step;
    }
    out
}

/// Welch auto power spectral density (one-sided, arbitrary scale — only
/// *relative* spectra matter for dominant-frequency picking).
pub fn welch_psd(x: &[f64], cfg: &WelchConfig) -> Vec<f64> {
    let window = hann(cfg.segment);
    let segs = segment_spectra(x, cfg, &window);
    assert!(!segs.is_empty(), "signal shorter than one Welch segment");
    let mut psd = vec![0.0; cfg.n_bins()];
    for seg in &segs {
        for (p, c) in psd.iter_mut().zip(seg) {
            *p += c.norm_sq();
        }
    }
    let norm = 1.0 / segs.len() as f64;
    for p in psd.iter_mut() {
        *p *= norm;
    }
    psd
}

/// Welch cross-spectral density matrices of a set of channels:
/// `csd[k][i * nc + j] = E[ X_i(f_k) conj(X_j(f_k)) ]` (Hermitian per bin).
pub fn welch_csd(channels: &[&[f64]], cfg: &WelchConfig) -> Vec<Vec<C64>> {
    let nc = channels.len();
    assert!(nc > 0);
    let window = hann(cfg.segment);
    let per_channel: Vec<Vec<Vec<C64>>> = channels
        .iter()
        .map(|x| segment_spectra(x, cfg, &window))
        .collect();
    let n_segs = per_channel[0].len();
    assert!(n_segs > 0, "signals shorter than one Welch segment");
    assert!(
        per_channel.iter().all(|s| s.len() == n_segs),
        "channel lengths differ"
    );
    let nb = cfg.n_bins();
    let mut csd = vec![vec![C64::ZERO; nc * nc]; nb];
    for s in 0..n_segs {
        for k in 0..nb {
            for i in 0..nc {
                let xi = per_channel[i][s][k];
                for j in 0..nc {
                    let xj = per_channel[j][s][k];
                    csd[k][i * nc + j] += xi * xj.conj();
                }
            }
        }
    }
    let norm = 1.0 / n_segs as f64;
    for bin in csd.iter_mut() {
        for v in bin.iter_mut() {
            *v = v.scale(norm);
        }
    }
    csd
}

/// Index of the largest entry of `psd`, ignoring the DC bin and anything
/// above `max_bin`.
pub fn peak_bin(psd: &[f64], max_bin: usize) -> usize {
    let hi = psd.len().min(max_bin + 1);
    (1..hi).fold(1, |best, k| if psd[k] > psd[best] { k } else { best })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 * dt).sin())
            .collect()
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = hann(64);
        assert!(w[0].abs() < 1e-15);
        assert!((w[32] - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn psd_peaks_at_tone_frequency() {
        let dt = 0.005;
        let cfg = WelchConfig::new(512, 256, dt);
        let x = tone(2.0, dt, 4096);
        let psd = welch_psd(&x, &cfg);
        let k = peak_bin(&psd, cfg.n_bins() - 1);
        let f = cfg.frequency(k);
        assert!((f - 2.0).abs() < 2.0 * cfg.frequency(1), "peak at {f} Hz");
    }

    #[test]
    fn psd_separates_two_tones() {
        let dt = 0.005;
        let cfg = WelchConfig::new(1024, 512, dt);
        let n = 8192;
        let x: Vec<f64> = tone(1.5, dt, n)
            .iter()
            .zip(&tone(4.0, dt, n))
            .map(|(a, b)| a + 0.5 * b)
            .collect();
        let psd = welch_psd(&x, &cfg);
        let k1 = (1.5 * cfg.segment as f64 * dt).round() as usize;
        let k2 = (4.0 * cfg.segment as f64 * dt).round() as usize;
        // both tones visible, stronger one stronger
        let background = psd[(k1 + k2) / 2 + 3];
        assert!(psd[k1] > 10.0 * background);
        assert!(psd[k2] > 10.0 * background);
        assert!(psd[k1] > psd[k2]);
    }

    #[test]
    fn csd_diagonal_matches_psd() {
        let dt = 0.01;
        let cfg = WelchConfig::new(256, 128, dt);
        let x = tone(3.0, dt, 2048);
        let psd = welch_psd(&x, &cfg);
        let csd = welch_csd(&[&x], &cfg);
        for k in 0..cfg.n_bins() {
            assert!((csd[k][0].re - psd[k]).abs() < 1e-9 * psd[k].max(1e-12));
            assert!(csd[k][0].im.abs() < 1e-9);
        }
    }

    #[test]
    fn csd_is_hermitian() {
        let dt = 0.01;
        let cfg = WelchConfig::new(128, 64, dt);
        let a = tone(2.0, dt, 1024);
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v * 0.7 + (i as f64 * 0.05).sin())
            .collect();
        let csd = welch_csd(&[&a, &b], &cfg);
        for bin in &csd {
            for i in 0..2 {
                for j in 0..2 {
                    let h = bin[i * 2 + j];
                    let ht = bin[j * 2 + i].conj();
                    assert!((h - ht).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn segment_count() {
        let cfg = WelchConfig::new(256, 128, 0.01);
        assert_eq!(cfg.n_segments(256), 1);
        assert_eq!(cfg.n_segments(384), 2);
        assert_eq!(cfg.n_segments(255), 0);
    }

    #[test]
    #[should_panic]
    fn psd_rejects_short_signal() {
        let cfg = WelchConfig::new(256, 128, 0.01);
        welch_psd(&[1.0; 100], &cfg);
    }
}
