//! Minimal complex arithmetic (kept local: the workspace uses no external
//! numerics crates beyond the sanctioned list).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    pub re: f64,
    pub im: f64,
}

impl C64 {
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    #[inline]
    pub fn from_re(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^(i theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, o: C64) -> C64 {
        let d = o.norm_sq();
        C64::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-14);
        assert!((back.im - a.im).abs() < 1e-14);
    }

    #[test]
    fn cis_and_conj() {
        let z = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
        assert_eq!(z.conj().im, -1.0);
        assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
    }
}
