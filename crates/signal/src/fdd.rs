//! Frequency Domain Decomposition (FDD, Brincker et al. 2001 — the paper's
//! ref. [9]).
//!
//! FDD identifies modal frequencies of an output-only system: at each
//! frequency bin the cross-spectral density matrix of the observed channels
//! is decomposed; peaks of the *first singular value* spectrum are the
//! dominant (modal) frequencies and the corresponding first singular
//! vectors are the operating mode shapes. The paper applies FDD to the
//! simulated surface waveforms to map the dominant frequency over the
//! ground surface (Fig. 1).

use rayon::prelude::*;

use crate::complex::C64;
use crate::eig::herm_largest;
use crate::spectra::{peak_bin, welch_csd, welch_psd, WelchConfig};

/// FDD result over all frequency bins.
#[derive(Debug, Clone)]
pub struct FddResult {
    /// Bin frequencies (Hz).
    pub freqs: Vec<f64>,
    /// First singular value per bin.
    pub sv1: Vec<f64>,
    /// First singular vector per bin (column-major, `nc` entries per bin).
    pub modes: Vec<Vec<C64>>,
}

impl FddResult {
    /// Dominant frequency: the peak of the first-singular-value spectrum
    /// below `f_max` Hz (DC excluded).
    pub fn dominant_frequency(&self, f_max: f64) -> f64 {
        let max_bin = self
            .freqs
            .iter()
            .position(|&f| f > f_max)
            .unwrap_or(self.freqs.len())
            .saturating_sub(1);
        let k = peak_bin(&self.sv1, max_bin);
        self.freqs[k]
    }

    /// Mode shape (first singular vector) at the dominant frequency.
    pub fn dominant_mode(&self, f_max: f64) -> &[C64] {
        let max_bin = self
            .freqs
            .iter()
            .position(|&f| f > f_max)
            .unwrap_or(self.freqs.len())
            .saturating_sub(1);
        let k = peak_bin(&self.sv1, max_bin);
        &self.modes[k]
    }
}

/// Run FDD on a set of channels (equal-length waveforms).
pub fn fdd(channels: &[&[f64]], cfg: &WelchConfig) -> FddResult {
    let nc = channels.len();
    let csd = welch_csd(channels, cfg);
    let results: Vec<(f64, Vec<C64>)> = csd.par_iter().map(|bin| herm_largest(bin, nc)).collect();
    let freqs = (0..csd.len()).map(|k| cfg.frequency(k)).collect();
    let (sv1, modes) = results.into_iter().unzip();
    FddResult { freqs, sv1, modes }
}

/// Per-point dominant frequency from the auto-spectrum alone (used to map
/// every surface point when running one CSD per point would be wasteful;
/// equivalent to single-channel FDD).
pub fn dominant_frequency_psd(x: &[f64], cfg: &WelchConfig, f_max: f64) -> f64 {
    let psd = welch_psd(x, cfg);
    let max_bin = ((f_max * cfg.segment as f64 * cfg.dt).floor() as usize).min(cfg.n_bins() - 1);
    cfg.frequency(peak_bin(&psd, max_bin))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-mode synthetic "structure": channels respond as a mix of two
    /// damped oscillations with distinct spatial shapes, driven by
    /// deterministic pseudo-random impulses.
    fn two_mode_response(nc: usize, n: usize, dt: f64, f1: f64, f2: f64) -> Vec<Vec<f64>> {
        let shape1: Vec<f64> = (0..nc).map(|i| ((i + 1) as f64 * 0.6).sin()).collect();
        let shape2: Vec<f64> = (0..nc).map(|i| ((i + 1) as f64 * 1.9).cos()).collect();
        let (w1, w2) = (
            2.0 * std::f64::consts::PI * f1,
            2.0 * std::f64::consts::PI * f2,
        );
        let (z1, z2) = (0.02, 0.02);
        // modal SDOF responses to an impulse train
        let mut q1 = vec![0.0; n];
        let mut q2 = vec![0.0; n];
        let mut s = 12345u64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let mut impulses = vec![0.0; n];
        for imp in impulses.iter_mut() {
            if rnd().abs() > 0.98 {
                *imp = rnd();
            }
        }
        // integrate two SDOFs with central differences
        let step = |q: &mut [f64], w: f64, z: f64| {
            let mut u = 0.0;
            let mut v = 0.0;
            for k in 0..n {
                let a = impulses[k] - 2.0 * z * w * v - w * w * u;
                v += dt * a;
                u += dt * v;
                q[k] = u;
            }
        };
        step(&mut q1, w1, z1);
        step(&mut q2, w2, z2);
        (0..nc)
            .map(|c| {
                (0..n)
                    .map(|k| shape1[c] * q1[k] + 0.6 * shape2[c] * q2[k])
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fdd_finds_the_dominant_mode() {
        let dt = 0.005;
        let (f1, f2) = (1.8, 4.2);
        let chans = two_mode_response(6, 16384, dt, f1, f2);
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let cfg = WelchConfig::new(2048, 1024, dt);
        let res = fdd(&refs, &cfg);
        let fd = res.dominant_frequency(5.0);
        let df = cfg.frequency(1);
        assert!((fd - f1).abs() < 3.0 * df, "dominant {fd} Hz vs {f1} Hz");
    }

    #[test]
    fn sv1_has_peaks_at_both_modes() {
        let dt = 0.005;
        let (f1, f2) = (1.5, 4.0);
        let chans = two_mode_response(5, 16384, dt, f1, f2);
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let cfg = WelchConfig::new(2048, 1024, dt);
        let res = fdd(&refs, &cfg);
        let bin = |f: f64| (f * cfg.segment as f64 * dt).round() as usize;
        let (k1, k2) = (bin(f1), bin(f2));
        let kmid = bin(0.5 * (f1 + f2));
        assert!(res.sv1[k1] > 5.0 * res.sv1[kmid]);
        assert!(res.sv1[k2] > 5.0 * res.sv1[kmid]);
    }

    #[test]
    fn mode_shape_recovered_at_peak() {
        let dt = 0.005;
        let nc = 6;
        let chans = two_mode_response(nc, 16384, dt, 1.8, 4.2);
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let cfg = WelchConfig::new(2048, 1024, dt);
        let res = fdd(&refs, &cfg);
        let mode = res.dominant_mode(5.0);
        let truth: Vec<f64> = (0..nc).map(|i| ((i + 1) as f64 * 0.6).sin()).collect();
        // modal assurance criterion |<mode, truth>|^2 / (|mode|^2 |truth|^2)
        let mut ip = C64::ZERO;
        let mut nm = 0.0;
        let mut nt = 0.0;
        for i in 0..nc {
            ip += mode[i].conj().scale(truth[i]);
            nm += mode[i].norm_sq();
            nt += truth[i] * truth[i];
        }
        let mac = ip.norm_sq() / (nm * nt);
        assert!(mac > 0.95, "MAC = {mac}");
    }

    #[test]
    fn psd_dominant_matches_fdd_for_single_channel() {
        let dt = 0.005;
        let chans = two_mode_response(1, 16384, dt, 2.2, 4.5);
        let cfg = WelchConfig::new(2048, 1024, dt);
        let f_psd = dominant_frequency_psd(&chans[0], &cfg, 5.0);
        let res = fdd(&[&chans[0]], &cfg);
        let f_fdd = res.dominant_frequency(5.0);
        assert!((f_psd - f_fdd).abs() < 1e-12);
    }

    #[test]
    fn f_max_limits_the_search() {
        let dt = 0.005;
        let chans = two_mode_response(3, 16384, dt, 1.2, 4.6);
        let refs: Vec<&[f64]> = chans.iter().map(|c| c.as_slice()).collect();
        let cfg = WelchConfig::new(2048, 1024, dt);
        let res = fdd(&refs, &cfg);
        // restrict below the first mode: result must stay under the cap
        let fd = res.dominant_frequency(0.8);
        assert!(fd <= 0.8 + 1e-9);
    }
}
