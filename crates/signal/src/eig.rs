//! Hermitian eigendecomposition by complex Jacobi rotations — the small
//! dense eigen-solve FDD needs at every frequency bin (the CSD matrix of
//! the observed channels is Hermitian positive semi-definite).

use crate::complex::C64;

/// Eigen-decomposition of a Hermitian matrix.
#[derive(Debug, Clone)]
pub struct HermEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors, column-major (`vectors[col * n + row]`), matching
    /// `values` order, unit length.
    pub vectors: Vec<C64>,
}

/// Jacobi eigendecomposition of the Hermitian `n×n` matrix `a` (row-major).
/// Intended for the small matrices of FDD (n ≲ 64).
pub fn herm_eig(a: &[C64], n: usize) -> HermEig {
    assert_eq!(a.len(), n * n);
    let mut m = a.to_vec();
    // v starts as identity, accumulates rotations (column-major)
    let mut v = vec![C64::ZERO; n * n];
    for i in 0..n {
        v[i * n + i] = C64::ONE;
    }

    let off = |m: &[C64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j].norm_sq();
                }
            }
        }
        s
    };
    let scale: f64 = m.iter().map(|c| c.norm_sq()).sum::<f64>().max(1e-300);

    for _sweep in 0..100 {
        if off(&m) <= 1e-28 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.norm_sq() <= 1e-32 * scale {
                    continue;
                }
                // Hermitian Jacobi rotation zeroing (p,q):
                // phase: apq = |apq| e^{i phi}
                let abs_apq = apq.abs();
                let phase = C64::new(apq.re / abs_apq, apq.im / abs_apq);
                let app = m[p * n + p].re;
                let aqq = m[q * n + q].re;
                let theta = 0.5 * (2.0 * abs_apq).atan2(app - aqq);
                let (c, s) = (theta.cos(), theta.sin());
                // rotation: [c, s*e^{i phi}; -s*e^{-i phi}, c]
                let spe = phase.scale(s);
                // rows/cols update: A <- R^H A R, V <- V R
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = akp.scale(c) + akq * spe.conj();
                    m[k * n + q] = akq.scale(c) - akp * spe;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = apk.scale(c) + aqk * spe;
                    m[q * n + k] = aqk.scale(c) - apk * spe.conj();
                }
                for k in 0..n {
                    let vkp = v[p * n + k];
                    let vkq = v[q * n + k];
                    v[p * n + k] = vkp.scale(c) + vkq * spe.conj();
                    v[q * n + k] = vkq.scale(c) - vkp * spe;
                }
            }
        }
    }

    // extract eigenvalues (real diagonal) and sort descending
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[i * n + i].re).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = vec![C64::ZERO; n * n];
    for (col, &i) in order.iter().enumerate() {
        for row in 0..n {
            vectors[col * n + row] = v[i * n + row];
        }
    }
    HermEig { values, vectors }
}

/// Largest eigenvalue + eigenvector of a Hermitian matrix (the "first
/// singular value" of FDD, since CSD matrices are PSD).
pub fn herm_largest(a: &[C64], n: usize) -> (f64, Vec<C64>) {
    let e = herm_eig(a, n);
    (e.values[0], e.vectors[..n].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[C64], n: usize, x: &[C64]) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let mut acc = C64::ZERO;
                for j in 0..n {
                    acc += a[i * n + j] * x[j];
                }
                acc
            })
            .collect()
    }

    fn hermitian_test_matrix(n: usize, seed: u64) -> Vec<C64> {
        // A = B^H B (Hermitian PSD) + diag boost
        let mut s = seed;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 2000) as f64 / 1000.0 - 1.0
        };
        let b: Vec<C64> = (0..n * n).map(|_| C64::new(rnd(), rnd())).collect();
        let mut a = vec![C64::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { C64::from_re(0.5) } else { C64::ZERO };
                for k in 0..n {
                    acc += b[k * n + i].conj() * b[k * n + j];
                }
                a[i * n + j] = acc;
            }
        }
        a
    }

    #[test]
    fn eigen_pairs_satisfy_definition() {
        let n = 6;
        let a = hermitian_test_matrix(n, 42);
        let e = herm_eig(&a, n);
        for col in 0..n {
            let v: Vec<C64> = e.vectors[col * n..(col + 1) * n].to_vec();
            let av = mat_vec(&a, n, &v);
            for row in 0..n {
                let expect = v[row].scale(e.values[col]);
                assert!(
                    (av[row] - expect).abs() < 1e-8,
                    "pair {col} row {row}: {:?} vs {:?}",
                    av[row],
                    expect
                );
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_and_real_trace_preserved() {
        let n = 5;
        let a = hermitian_test_matrix(n, 7);
        let e = herm_eig(&a, n);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        let tr: f64 = (0..n).map(|i| a[i * n + i].re).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-9 * tr.abs().max(1.0));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 4;
        let a = hermitian_test_matrix(n, 3);
        let e = herm_eig(&a, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = C64::ZERO;
                for k in 0..n {
                    acc += e.vectors[i * n + k].conj() * e.vectors[j * n + k];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((acc.re - expect).abs() < 1e-9 && acc.im.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn diagonal_matrix_is_instant() {
        let n = 3;
        let mut a = vec![C64::ZERO; 9];
        a[0] = C64::from_re(1.0);
        a[4] = C64::from_re(5.0);
        a[8] = C64::from_re(3.0);
        let e = herm_eig(&a, n);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_one_matrix_recovers_mode() {
        // A = lambda v v^H: the FDD situation at a resonance
        let n = 4;
        let v = [
            C64::new(0.5, 0.1),
            C64::new(-0.3, 0.4),
            C64::new(0.2, -0.6),
            C64::new(0.1, 0.2),
        ];
        let norm: f64 = v.iter().map(|c| c.norm_sq()).sum::<f64>().sqrt();
        let v: Vec<C64> = v.iter().map(|c| c.scale(1.0 / norm)).collect();
        let lam = 7.5;
        let mut a = vec![C64::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = (v[i] * v[j].conj()).scale(lam);
            }
        }
        let (val, vec) = herm_largest(&a, n);
        assert!((val - lam).abs() < 1e-9);
        // vector matches up to a global phase: |<v, vec>| = 1
        let mut ip = C64::ZERO;
        for k in 0..n {
            ip += v[k].conj() * vec[k];
        }
        assert!((ip.abs() - 1.0).abs() < 1e-9);
    }
}
