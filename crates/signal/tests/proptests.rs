//! Property-based tests of the signal-processing substrate.

use hetsolve_signal::{herm_eig, ifft, next_pow2, rfft, welch_psd, WelchConfig, C64};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT round-trip is the identity for any real signal.
    #[test]
    fn fft_roundtrip(xs in proptest::collection::vec(-100.0f64..100.0, 1..300)) {
        let spec = rfft(&xs);
        let back = ifft(&spec);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((back[i].re - x).abs() < 1e-8 * (1.0 + x.abs()));
            prop_assert!(back[i].im.abs() < 1e-8);
        }
        // padding is zero-extended
        for b in back.iter().skip(xs.len()) {
            prop_assert!(b.re.abs() < 1e-8 && b.im.abs() < 1e-8);
        }
    }

    /// Parseval holds for any power-of-two signal.
    #[test]
    fn parseval(xs in proptest::collection::vec(-10.0f64..10.0, 64..65)) {
        let spec = rfft(&xs);
        let t: f64 = xs.iter().map(|v| v * v).sum();
        let f: f64 = spec.iter().map(|c| c.norm_sq()).sum::<f64>() / spec.len() as f64;
        prop_assert!((t - f).abs() < 1e-8 * t.max(1.0));
    }

    /// FFT is linear: F(a x + b y) = a F(x) + b F(y).
    #[test]
    fn fft_linear(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let n = 128usize;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let y: Vec<f64> = (0..n).map(|_| next()).collect();
        let z: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + b * yi).collect();
        let (sx, sy, sz) = (rfft(&x), rfft(&y), rfft(&z));
        for k in 0..n {
            let lin = sx[k].scale(a) + sy[k].scale(b);
            prop_assert!((sz[k] - lin).abs() < 1e-7);
        }
    }

    /// PSD is non-negative and scales quadratically with amplitude.
    #[test]
    fn psd_scaling(amp in 0.1f64..50.0, f0 in 0.5f64..4.0) {
        let dt = 0.01;
        let n = 1024;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 * dt).sin()).collect();
        let xs: Vec<f64> = x.iter().map(|v| amp * v).collect();
        let cfg = WelchConfig::new(256, 128, dt);
        let p1 = welch_psd(&x, &cfg);
        let p2 = welch_psd(&xs, &cfg);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!(*a >= 0.0 && *b >= 0.0);
            prop_assert!((b - amp * amp * a).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Hermitian eigendecomposition: trace preserved, eigenvalues sorted,
    /// residual small, for random Hermitian PSD matrices.
    #[test]
    fn herm_eig_invariants(n in 2usize..8, seed in any::<u64>()) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 33) % 1000) as f64 / 500.0 - 1.0
        };
        // A = B^H B + 0.1 I
        let b: Vec<C64> = (0..n * n).map(|_| C64::new(next(), next())).collect();
        let mut a = vec![C64::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { C64::from_re(0.1) } else { C64::ZERO };
                for k in 0..n {
                    acc += b[k * n + i].conj() * b[k * n + j];
                }
                a[i * n + j] = acc;
            }
        }
        let e = herm_eig(&a, n);
        // sorted descending, all >= 0 (PSD)
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(e.values.iter().all(|&v| v > -1e-9));
        // trace preserved
        let tr: f64 = (0..n).map(|i| a[i * n + i].re).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-7 * tr.abs().max(1.0));
        // A v = lambda v for the dominant pair
        let v = &e.vectors[..n];
        for row in 0..n {
            let mut av = C64::ZERO;
            for k in 0..n {
                av += a[row * n + k] * v[k];
            }
            let expect = v[row].scale(e.values[0]);
            prop_assert!((av - expect).abs() < 1e-6 * (1.0 + e.values[0]));
        }
    }

    /// next_pow2 sanity.
    #[test]
    fn next_pow2_properties(n in 1usize..1_000_000) {
        let p = next_pow2(n);
        prop_assert!(p >= n);
        prop_assert!(p < 2 * n);
        prop_assert_eq!(p & (p - 1), 0);
    }
}
