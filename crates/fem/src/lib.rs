//! # hetsolve-fem
//!
//! Finite element substrate for the `hetsolve` reproduction of the SC24
//! paper *"Heterogeneous computing in a strongly-connected CPU-GPU
//! environment"* (Ichimura et al.): 10-node tetrahedral elements for 3-D
//! linear dynamic elasticity, exactly the discretization of the paper's
//! §3.1 target problem.
//!
//! * [`quad`] — positive-weight quadrature rules (tet degree 2/5, tri degree 4),
//! * [`shape`] — Tet10 / Tri6 shape functions and physical gradients,
//! * [`sym`] — packed symmetric element matrices and the fused
//!   (multi-RHS) `c_M M_e + c_K K_e` kernels used by EBE,
//! * [`material`] — isotropic elasticity and Rayleigh damping fits,
//! * [`element`] — consistent mass / stiffness element matrices,
//! * [`faces`] — Lysmer absorbing-boundary dashpot face matrices,
//! * [`constraint`] — Dirichlet DOF masking,
//! * [`newmark`] — Newmark-β (trapezoidal) time integration,
//! * [`loads`] — random surface impulse generation (uniform-spectrum inputs),
//! * [`model`] — the bundled [`model::FemProblem`].

pub mod constraint;
pub mod ebe_compact;
pub mod element;
pub mod faces;
pub mod loads;
pub mod material;
pub mod model;
pub mod newmark;
pub mod nonlinear;
pub mod quad;
pub mod shape;

/// Re-export of the packed-symmetric kernels (they live in `hetsolve-sparse`
/// where the EBE operator consumes them).
pub use hetsolve_sparse::sym;

pub use constraint::DofMask;
pub use ebe_compact::{compact_ebe_counts, CompactEbe, CompactElements};
pub use element::{ElementMatrices, NDOF, PACKED};
pub use faces::{FaceDashpots, FACE_NDOF, FACE_PACKED};
pub use loads::{RandomLoad, RandomLoadSpec};
pub use material::{elasticity_matrix, Rayleigh};
pub use model::{FemProblem, OpCoeffs};
pub use newmark::{Newmark, TimeState};
pub use nonlinear::{octahedral_strain, HyperbolicModel, NonlinearState};
