//! Material nonlinearity support — the extension the paper motivates for
//! the matrix-free method: "the introduction of EBE makes the computations
//! matrix-free, enabling the use of the proposed method for solving
//! nonlinear problems" (§2.2), because updating element properties costs a
//! 16-f64 geometry-record refresh per element instead of a global CRS
//! reassembly.
//!
//! The implemented constitutive model is the standard equivalent-linear
//! (secant) treatment of soil nonlinearity: the shear modulus degrades with
//! the element's octahedral shear strain by the hyperbolic law
//!
//! `μ_eff(γ) = μ₀ / (1 + γ/γ_ref)`,
//!
//! clamped below by `min_ratio·μ₀`; the bulk modulus is held constant
//! (λ_eff = K − 2/3 μ_eff), preserving positive definiteness.

use hetsolve_mesh::TetMesh10;

use crate::ebe_compact::{CompactElements, GEO_STRIDE};
use crate::shape::tet_bary_gradients;

/// Hyperbolic shear-modulus degradation model.
#[derive(Debug, Clone, Copy)]
pub struct HyperbolicModel {
    /// Reference octahedral shear strain at which μ halves.
    pub gamma_ref: f64,
    /// Floor for μ_eff/μ₀.
    pub min_ratio: f64,
}

impl HyperbolicModel {
    pub fn new(gamma_ref: f64, min_ratio: f64) -> Self {
        assert!(gamma_ref > 0.0 && (0.0..1.0).contains(&min_ratio));
        HyperbolicModel {
            gamma_ref,
            min_ratio,
        }
    }

    /// Secant modulus ratio at octahedral shear strain `gamma`.
    #[inline]
    pub fn ratio(&self, gamma: f64) -> f64 {
        (1.0 / (1.0 + gamma.abs() / self.gamma_ref)).max(self.min_ratio)
    }
}

/// Octahedral (engineering) shear strain of an element under nodal
/// displacements `u`, evaluated from the linear part of the displacement
/// gradient at the element (vertex gradients — exact for the mean strain
/// of straight Tet10 elements).
pub fn octahedral_strain(mesh: &TetMesh10, e: usize, u: &[f64]) -> f64 {
    let verts = mesh.vertices(e);
    let (dl, _) = tet_bary_gradients(&verts);
    // mean displacement gradient: H = sum over vertices of u_v ⊗ dl_v
    // (vertex shape gradients of the P1 part; adequate as an element-mean)
    let mut h = [0.0f64; 9];
    let el = &mesh.elems[e];
    for (k, dlv) in dl.iter().enumerate() {
        let n = el[k] as usize;
        let (ux, uy, uz) = (u[3 * n], u[3 * n + 1], u[3 * n + 2]);
        let d = dlv.to_array();
        h[0] += ux * d[0];
        h[1] += ux * d[1];
        h[2] += ux * d[2];
        h[3] += uy * d[0];
        h[4] += uy * d[1];
        h[5] += uy * d[2];
        h[6] += uz * d[0];
        h[7] += uz * d[1];
        h[8] += uz * d[2];
    }
    // deviatoric strain invariant
    let exx = h[0];
    let eyy = h[4];
    let ezz = h[8];
    let exy = 0.5 * (h[1] + h[3]);
    let eyz = 0.5 * (h[5] + h[7]);
    let ezx = 0.5 * (h[2] + h[6]);
    let em = (exx + eyy + ezz) / 3.0;
    let (dx, dy, dz) = (exx - em, eyy - em, ezz - em);
    // octahedral engineering shear strain
    (2.0 / 3.0)
        * (((dx - dy).powi(2) + (dy - dz).powi(2) + (dz - dx).powi(2)) / 2.0
            + 3.0 * (exy * exy + eyz * eyz + ezx * ezx))
            .sqrt()
        * std::f64::consts::SQRT_2
}

/// Per-element nonlinear state: the pristine moduli plus the current
/// secant ratio (for reporting / convergence checks).
#[derive(Debug, Clone)]
pub struct NonlinearState {
    /// μ₀, λ₀ per element (copied at construction).
    mu0: Vec<f64>,
    lambda0: Vec<f64>,
    /// Latest secant ratio per element.
    pub ratio: Vec<f64>,
}

impl NonlinearState {
    pub fn from_compact(c: &CompactElements) -> Self {
        let ne = c.n_elems;
        let mut mu0 = vec![0.0; ne];
        let mut lambda0 = vec![0.0; ne];
        for e in 0..ne {
            lambda0[e] = c.geo[e * GEO_STRIDE + 14];
            mu0[e] = c.geo[e * GEO_STRIDE + 15];
        }
        NonlinearState {
            mu0,
            lambda0,
            ratio: vec![1.0; ne],
        }
    }

    /// Update the compact geometry records in place from the current
    /// displacement field (the matrix-free "reassembly": 2 f64 writes per
    /// element). Returns the largest relative modulus change, the natural
    /// secant-iteration convergence measure.
    pub fn update(
        &mut self,
        compact: &mut CompactElements,
        mesh: &TetMesh10,
        u: &[f64],
        model: &HyperbolicModel,
    ) -> f64 {
        let mut max_change = 0.0f64;
        for e in 0..compact.n_elems {
            let gamma = octahedral_strain(mesh, e, u);
            let r = model.ratio(gamma);
            max_change = max_change.max((r - self.ratio[e]).abs());
            self.ratio[e] = r;
            let mu = self.mu0[e] * r;
            // hold the bulk modulus K = lambda0 + 2/3 mu0 fixed
            let k_bulk = self.lambda0[e] + 2.0 / 3.0 * self.mu0[e];
            let lambda = k_bulk - 2.0 / 3.0 * mu;
            compact.geo[e * GEO_STRIDE + 14] = lambda;
            compact.geo[e * GEO_STRIDE + 15] = mu;
        }
        max_change
    }

    /// Restore the pristine (linear) moduli.
    pub fn reset(&mut self, compact: &mut CompactElements) {
        for e in 0..compact.n_elems {
            compact.geo[e * GEO_STRIDE + 14] = self.lambda0[e];
            compact.geo[e * GEO_STRIDE + 15] = self.mu0[e];
            self.ratio[e] = 1.0;
        }
    }

    /// Mean secant ratio (1.0 = fully linear).
    pub fn mean_ratio(&self) -> f64 {
        self.ratio.iter().sum::<f64>() / self.ratio.len().max(1) as f64
    }
}

/// Modeled cost of one nonlinear operator refresh.
///
/// * EBE (matrix-free): stream the geometry table once and rewrite 2 slots
///   per element — `O(16·8 B)` per element;
/// * CRS: full reassembly of the global matrix — every element's 30×30
///   contribution recomputed and scattered (~the cost of ~10 EBE applies),
///   the overhead the paper avoids by going matrix-free.
pub fn refresh_counts_ebe(n_elems: usize) -> hetsolve_sparse::KernelCounts {
    hetsolve_sparse::KernelCounts {
        flops: n_elems as f64 * 120.0,
        bytes_stream: n_elems as f64 * (GEO_STRIDE as f64 * 8.0 * 2.0),
        bytes_rand: 0.0,
        rand_transactions: 0.0,
        rhs_fused: 1,
    }
}

/// Modeled cost of a CRS reassembly (element integration + global scatter).
pub fn refresh_counts_crs(n_elems: usize, nnz_blocks: usize) -> hetsolve_sparse::KernelCounts {
    hetsolve_sparse::KernelCounts {
        // ~30 kflops to integrate a Tet10 stiffness + mass combine
        flops: n_elems as f64 * 30_000.0,
        // write the full block-CRS image
        bytes_stream: nnz_blocks as f64 * 76.0 * 2.0,
        bytes_rand: n_elems as f64 * 100.0 * 8.0,
        rand_transactions: n_elems as f64 * 100.0,
        rhs_fused: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_mesh::{GroundModelSpec, InterfaceShape};

    fn setup() -> (TetMesh10, CompactElements) {
        let gm = GroundModelSpec::small(InterfaceShape::Stratified).build();
        let mats = gm.spec.materials();
        let compact = CompactElements::compute(&gm.mesh, &mats);
        (gm.mesh, compact)
    }

    #[test]
    fn ratio_curve_shape() {
        let m = HyperbolicModel::new(1e-3, 0.1);
        assert_eq!(m.ratio(0.0), 1.0);
        assert!((m.ratio(1e-3) - 0.5).abs() < 1e-12);
        assert!(m.ratio(1e-1) >= 0.1);
        assert!(m.ratio(5e-4) > m.ratio(2e-3));
    }

    #[test]
    fn zero_displacement_keeps_moduli() {
        let (mesh, mut compact) = setup();
        let mut st = NonlinearState::from_compact(&compact);
        let u = vec![0.0; mesh.n_dofs()];
        let change = st.update(&mut compact, &mesh, &u, &HyperbolicModel::new(1e-3, 0.05));
        assert_eq!(change, 0.0);
        assert_eq!(st.mean_ratio(), 1.0);
    }

    #[test]
    fn shear_field_softens_elements() {
        let (mesh, mut compact) = setup();
        let mu_before: Vec<f64> = (0..compact.n_elems)
            .map(|e| compact.geo[e * GEO_STRIDE + 15])
            .collect();
        let mut st = NonlinearState::from_compact(&compact);
        // simple shear u_x = gamma * z
        let gamma = 5e-3;
        let mut u = vec![0.0; mesh.n_dofs()];
        for (n, c) in mesh.coords.iter().enumerate() {
            u[3 * n] = gamma * c[2];
        }
        let model = HyperbolicModel::new(1e-3, 0.05);
        let change = st.update(&mut compact, &mesh, &u, &model);
        assert!(change > 0.0);
        assert!(st.mean_ratio() < 0.7, "mean ratio {}", st.mean_ratio());
        for e in 0..compact.n_elems {
            let mu = compact.geo[e * GEO_STRIDE + 15];
            assert!(mu < mu_before[e]);
            assert!(mu > 0.0);
            // bulk modulus preserved
            let lam = compact.geo[e * GEO_STRIDE + 14];
            let st0 = (st.lambda0[e] + 2.0 / 3.0 * st.mu0[e]) - (lam + 2.0 / 3.0 * mu);
            assert!(st0.abs() < 1e-6 * st.lambda0[e].abs());
        }
    }

    #[test]
    fn octahedral_strain_of_pure_shear() {
        let (mesh, _) = setup();
        // u_x = g*z => eps_zx = g/2, octahedral engineering strain
        let g = 2e-3;
        let mut u = vec![0.0; mesh.n_dofs()];
        for (n, c) in mesh.coords.iter().enumerate() {
            u[3 * n] = g * c[2];
        }
        let gam = octahedral_strain(&mesh, 0, &u);
        // gamma_oct = 2/3 * sqrt(6*(g/2)^2) * sqrt(2) = (2/sqrt(3)) g / sqrt(...)
        // just check the magnitude lands within [0.5 g, 1.5 g]
        assert!(
            (0.5 * g..1.5 * g).contains(&gam),
            "gamma_oct = {gam} for g = {g}"
        );
    }

    #[test]
    fn reset_restores_linearity() {
        let (mesh, mut compact) = setup();
        let original = compact.geo.clone();
        let mut st = NonlinearState::from_compact(&compact);
        let mut u = vec![0.0; mesh.n_dofs()];
        for (n, c) in mesh.coords.iter().enumerate() {
            u[3 * n] = 1e-2 * c[2];
        }
        st.update(&mut compact, &mesh, &u, &HyperbolicModel::new(1e-3, 0.05));
        assert_ne!(compact.geo, original);
        st.reset(&mut compact);
        assert_eq!(compact.geo, original);
    }

    #[test]
    fn refresh_cost_gap() {
        // the paper's point: nonlinear updates are ~free for EBE, expensive
        // for assembled CRS
        let ebe = refresh_counts_ebe(11_365_697);
        let crs = refresh_counts_crs(11_365_697, 27 * 15_509_903);
        assert!(crs.flops > 100.0 * ebe.flops);
        assert!(crs.bytes_stream > 10.0 * ebe.bytes_stream);
    }
}
