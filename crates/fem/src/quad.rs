//! Quadrature rules on the reference tetrahedron and reference triangle.
//!
//! Points are given in barycentric coordinates; weights are relative to the
//! simplex measure (they sum to 1) and must be multiplied by the element
//! volume/area. All rules have strictly positive weights so that consistent
//! mass and dashpot matrices stay positive (semi-)definite.

/// A quadrature point on the reference tetrahedron: 4 barycentric
/// coordinates plus a relative weight.
#[derive(Debug, Clone, Copy)]
pub struct TetQp {
    pub l: [f64; 4],
    pub w: f64,
}

/// 4-point rule, exact for polynomials of total degree ≤ 2.
/// Used for stiffness integrands (∇N·∇N is degree 2 on straight tets).
pub fn tet_rule_deg2() -> Vec<TetQp> {
    let a = 0.585_410_196_624_968_5; // (5 + 3*sqrt(5)) / 20
    let b = 0.138_196_601_125_010_5; // (5 - sqrt(5)) / 20
    let w = 0.25;
    (0..4)
        .map(|i| {
            let mut l = [b; 4];
            l[i] = a;
            TetQp { l, w }
        })
        .collect()
}

/// 14-point rule, exact for polynomials of total degree ≤ 5, all weights
/// positive. Used for mass integrands (N·N is degree 4).
pub fn tet_rule_deg5() -> Vec<TetQp> {
    let mut qps = Vec::with_capacity(14);
    // orbit 1: (a, b, b, b), 4 permutations
    let a1 = 0.067_342_242_210_098_3;
    let b1 = 0.310_885_919_263_300_5;
    let w1 = 0.112_687_925_718_015_5;
    for i in 0..4 {
        let mut l = [b1; 4];
        l[i] = a1;
        qps.push(TetQp { l, w: w1 });
    }
    // orbit 2: (a, b, b, b), 4 permutations
    let a2 = 0.721_794_249_067_326_3;
    let b2 = 0.092_735_250_310_891_2;
    let w2 = 0.073_493_043_116_361_95;
    for i in 0..4 {
        let mut l = [b2; 4];
        l[i] = a2;
        qps.push(TetQp { l, w: w2 });
    }
    // orbit 3: (a, a, b, b), 6 permutations
    let a3 = 0.454_496_295_874_350_4;
    let b3 = 0.045_503_704_125_649_6;
    let w3 = 0.042_546_020_777_081_47;
    for i in 0..4 {
        for j in (i + 1)..4 {
            let mut l = [b3; 4];
            l[i] = a3;
            l[j] = a3;
            qps.push(TetQp { l, w: w3 });
        }
    }
    qps
}

/// A quadrature point on the reference triangle: 3 barycentric coordinates
/// plus a relative weight.
#[derive(Debug, Clone, Copy)]
pub struct TriQp {
    pub l: [f64; 3],
    pub w: f64,
}

/// 6-point rule, exact for polynomials of total degree ≤ 4, all weights
/// positive. Used for quadratic-triangle dashpot matrices (N·N degree 4).
pub fn tri_rule_deg4() -> Vec<TriQp> {
    let mut qps = Vec::with_capacity(6);
    let a1 = 0.445_948_490_915_965;
    let w1 = 0.223_381_589_678_011;
    let a2 = 0.091_576_213_509_771;
    let w2 = 0.109_951_743_655_322;
    for (a, w) in [(a1, w1), (a2, w2)] {
        for i in 0..3 {
            let mut l = [a; 3];
            l[i] = 1.0 - 2.0 * a;
            qps.push(TriQp { l, w });
        }
    }
    qps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ∫ L1^p L2^q L3^r L4^s dV over the reference tet (volume 1/6... here
    /// relative measure 1) = p! q! r! s! 3! / (p+q+r+s+3)!
    fn tet_monomial_exact(p: u32, q: u32, r: u32, s: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|k| k as f64).product()
        }
        fact(p) * fact(q) * fact(r) * fact(s) * fact(3) / fact(p + q + r + s + 3)
    }

    fn tet_integrate(rule: &[TetQp], p: u32, q: u32, r: u32, s: u32) -> f64 {
        rule.iter()
            .map(|qp| {
                qp.w * qp.l[0].powi(p as i32)
                    * qp.l[1].powi(q as i32)
                    * qp.l[2].powi(r as i32)
                    * qp.l[3].powi(s as i32)
            })
            .sum()
    }

    #[test]
    fn tet_deg2_weights_sum_to_one() {
        let s: f64 = tet_rule_deg2().iter().map(|q| q.w).sum();
        assert!((s - 1.0).abs() < 1e-14);
    }

    #[test]
    fn tet_deg5_weights_sum_to_one() {
        let s: f64 = tet_rule_deg5().iter().map(|q| q.w).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(tet_rule_deg5().len(), 14);
    }

    #[test]
    fn tet_deg2_exact_to_degree_2() {
        let rule = tet_rule_deg2();
        for (p, q, r, s) in [
            (0, 0, 0, 0),
            (1, 0, 0, 0),
            (2, 0, 0, 0),
            (1, 1, 0, 0),
            (0, 1, 1, 0),
        ] {
            let num = tet_integrate(&rule, p, q, r, s);
            let ex = tet_monomial_exact(p, q, r, s);
            assert!(
                (num - ex).abs() < 1e-14,
                "L^({p},{q},{r},{s}): {num} vs {ex}"
            );
        }
    }

    #[test]
    fn tet_deg5_exact_to_degree_5() {
        let rule = tet_rule_deg5();
        // exhaustively test all monomials of total degree <= 5
        for p in 0..=5u32 {
            for q in 0..=(5 - p) {
                for r in 0..=(5 - p - q) {
                    for s in 0..=(5 - p - q - r) {
                        let num = tet_integrate(&rule, p, q, r, s);
                        let ex = tet_monomial_exact(p, q, r, s);
                        assert!(
                            (num - ex).abs() < 1e-12,
                            "L^({p},{q},{r},{s}): {num} vs {ex}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tet_deg5_not_exact_at_degree_6() {
        // sanity: the rule must NOT integrate L1^6 exactly (otherwise the
        // exactness test above proves nothing).
        let rule = tet_rule_deg5();
        let num = tet_integrate(&rule, 6, 0, 0, 0);
        let ex = tet_monomial_exact(6, 0, 0, 0);
        assert!((num - ex).abs() > 1e-9);
    }

    /// ∫ L1^p L2^q L3^r dA over the reference triangle (relative measure) =
    /// p! q! r! 2! / (p+q+r+2)!
    fn tri_monomial_exact(p: u32, q: u32, r: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|k| k as f64).product()
        }
        fact(p) * fact(q) * fact(r) * fact(2) / fact(p + q + r + 2)
    }

    #[test]
    fn tri_deg4_exact_to_degree_4() {
        let rule = tri_rule_deg4();
        let s: f64 = rule.iter().map(|q| q.w).sum();
        assert!((s - 1.0).abs() < 1e-12);
        for p in 0..=4u32 {
            for q in 0..=(4 - p) {
                for r in 0..=(4 - p - q) {
                    let num: f64 = rule
                        .iter()
                        .map(|qp| {
                            qp.w * qp.l[0].powi(p as i32)
                                * qp.l[1].powi(q as i32)
                                * qp.l[2].powi(r as i32)
                        })
                        .sum();
                    let ex = tri_monomial_exact(p, q, r);
                    assert!((num - ex).abs() < 1e-12, "L^({p},{q},{r}): {num} vs {ex}");
                }
            }
        }
    }

    #[test]
    fn all_weights_positive() {
        assert!(tet_rule_deg2().iter().all(|q| q.w > 0.0));
        assert!(tet_rule_deg5().iter().all(|q| q.w > 0.0));
        assert!(tri_rule_deg4().iter().all(|q| q.w > 0.0));
    }
}
