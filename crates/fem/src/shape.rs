//! Shape functions for the 10-node tetrahedron (Tet10) and the 6-node
//! triangle (Tri6), in barycentric coordinates.
//!
//! Node ordering matches `hetsolve-mesh`:
//!
//! * Tet10: vertices 0–3 ↔ barycentric L0–L3; mid-edge nodes 4=(0,1),
//!   5=(1,2), 6=(0,2), 7=(0,3), 8=(1,3), 9=(2,3).
//! * Tri6: vertices 0–2 ↔ L0–L2; mid-edge nodes 3=(0,1), 4=(1,2), 5=(2,0).

use hetsolve_mesh::mesh::TET_EDGES;
use hetsolve_mesh::Vec3;

/// Tet10 shape function values at barycentric point `l`.
pub fn tet10_shape(l: [f64; 4]) -> [f64; 10] {
    let mut n = [0.0; 10];
    for i in 0..4 {
        n[i] = l[i] * (2.0 * l[i] - 1.0);
    }
    for (k, &(a, b)) in TET_EDGES.iter().enumerate() {
        n[4 + k] = 4.0 * l[a] * l[b];
    }
    n
}

/// Gradients of the Tet10 shape functions with respect to the barycentric
/// coordinates, contracted with given gradients `dl[i]` of the barycentric
/// coordinates themselves (i.e. returns ∇Nᵢ in physical space when `dl` are
/// the physical barycentric gradients).
pub fn tet10_grad(l: [f64; 4], dl: &[Vec3; 4]) -> [Vec3; 10] {
    let mut g = [Vec3::ZERO; 10];
    for i in 0..4 {
        g[i] = dl[i] * (4.0 * l[i] - 1.0);
    }
    for (k, &(a, b)) in TET_EDGES.iter().enumerate() {
        g[4 + k] = 4.0 * (dl[a] * l[b] + dl[b] * l[a]);
    }
    g
}

/// Physical gradients of the barycentric coordinates of a straight-sided
/// tetrahedron with vertices `x`, together with its (signed) volume.
///
/// For vertex i with opposite face (j,k,l): ∇Lᵢ = (face normal) / (3V) with
/// orientation chosen so ∇Lᵢ points from the face toward vertex i.
pub fn tet_bary_gradients(x: &[Vec3; 4]) -> ([Vec3; 4], f64) {
    let v6 = (x[1] - x[0]).cross(x[2] - x[0]).dot(x[3] - x[0]);
    let vol = v6 / 6.0;
    // Opposite faces (ordered so the cross product points inward, toward i).
    let d0 = (x[3] - x[1]).cross(x[2] - x[1]) / v6;
    let d1 = (x[2] - x[0]).cross(x[3] - x[0]) / v6;
    let d2 = (x[3] - x[0]).cross(x[1] - x[0]) / v6;
    let d3 = (x[1] - x[0]).cross(x[2] - x[0]) / v6;
    ([d0, d1, d2, d3], vol)
}

/// Tri6 shape function values at barycentric point `l`.
pub fn tri6_shape(l: [f64; 3]) -> [f64; 6] {
    [
        l[0] * (2.0 * l[0] - 1.0),
        l[1] * (2.0 * l[1] - 1.0),
        l[2] * (2.0 * l[2] - 1.0),
        4.0 * l[0] * l[1],
        4.0 * l[1] * l[2],
        4.0 * l[2] * l[0],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad::{tet_rule_deg2, tet_rule_deg5};

    fn unit_tet() -> [Vec3; 4] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    /// Barycentric coordinates of the 10 conventional nodes.
    fn node_bary() -> [[f64; 4]; 10] {
        let mut b = [[0.0; 4]; 10];
        for i in 0..4 {
            b[i][i] = 1.0;
        }
        for (k, &(a, c)) in TET_EDGES.iter().enumerate() {
            b[4 + k][a] = 0.5;
            b[4 + k][c] = 0.5;
        }
        b
    }

    #[test]
    fn kronecker_delta_property() {
        let nodes = node_bary();
        for (i, &l) in nodes.iter().enumerate() {
            let n = tet10_shape(l);
            for (j, &nj) in n.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((nj - expect).abs() < 1e-14, "N{j} at node {i} = {nj}");
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        for qp in tet_rule_deg5() {
            let n = tet10_shape(qp.l);
            let s: f64 = n.iter().sum();
            assert!((s - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn gradients_sum_to_zero() {
        let (dl, _) = tet_bary_gradients(&unit_tet());
        for qp in tet_rule_deg2() {
            let g = tet10_grad(qp.l, &dl);
            let s = g.iter().fold(Vec3::ZERO, |acc, &v| acc + v);
            assert!(s.norm() < 1e-13);
        }
    }

    #[test]
    fn bary_gradients_of_unit_tet() {
        let (dl, vol) = tet_bary_gradients(&unit_tet());
        assert!((vol - 1.0 / 6.0).abs() < 1e-15);
        // L1 = x => grad = (1,0,0), etc.; L0 = 1-x-y-z.
        assert!((dl[1] - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-14);
        assert!((dl[2] - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-14);
        assert!((dl[3] - Vec3::new(0.0, 0.0, 1.0)).norm() < 1e-14);
        assert!((dl[0] - Vec3::new(-1.0, -1.0, -1.0)).norm() < 1e-14);
    }

    #[test]
    fn bary_gradients_delta_property() {
        // dLi/dxj evaluated by finite differences of barycentric coordinates.
        let x = [
            Vec3::new(0.2, 0.1, -0.3),
            Vec3::new(1.4, 0.3, 0.1),
            Vec3::new(0.3, 1.2, 0.2),
            Vec3::new(0.4, 0.2, 1.5),
        ];
        let (dl, vol) = tet_bary_gradients(&x);
        assert!(vol > 0.0);
        // Li is affine with Li(xj) = delta_ij, so dl[i] . (x[j] - x[k]) must
        // equal Li(xj) - Li(xk).
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let lhs = dl[i].dot(x[j] - x[k]);
                    let rhs = (i == j) as i32 as f64 - (i == k) as i32 as f64;
                    assert!((lhs - rhs).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn linear_field_reproduced_exactly() {
        // u(x) = a + b.x must be interpolated exactly by Tet10.
        let x = unit_tet();
        let (dl, _) = tet_bary_gradients(&x);
        let b = Vec3::new(1.5, -2.0, 0.7);
        let field = |p: Vec3| 3.0 + b.dot(p);
        // nodal values at all 10 nodes
        let bary = node_bary();
        let mut pos10 = [Vec3::ZERO; 10];
        for (n, l) in bary.iter().enumerate() {
            pos10[n] = (0..4).fold(Vec3::ZERO, |acc, i| acc + x[i] * l[i]);
        }
        let vals: Vec<f64> = pos10.iter().map(|&p| field(p)).collect();
        for qp in tet_rule_deg5() {
            let n = tet10_shape(qp.l);
            let p = (0..4).fold(Vec3::ZERO, |acc, i| acc + x[i] * qp.l[i]);
            let interp: f64 = n.iter().zip(&vals).map(|(ni, vi)| ni * vi).sum();
            assert!((interp - field(p)).abs() < 1e-12);
            // gradient must equal b
            let g = tet10_grad(qp.l, &dl);
            let grad = g
                .iter()
                .zip(&vals)
                .fold(Vec3::ZERO, |acc, (gi, &vi)| acc + *gi * vi);
            assert!((grad - b).norm() < 1e-12);
        }
    }

    #[test]
    fn quadratic_field_reproduced_exactly() {
        // u(x) = x² is quadratic: Tet10 must reproduce it exactly.
        let x = unit_tet();
        let bary = node_bary();
        let mut vals = [0.0; 10];
        for (n, l) in bary.iter().enumerate() {
            let p = (0..4).fold(Vec3::ZERO, |acc, i| acc + x[i] * l[i]);
            vals[n] = p.x * p.x;
        }
        for qp in tet_rule_deg5() {
            let n = tet10_shape(qp.l);
            let p = (0..4).fold(Vec3::ZERO, |acc, i| acc + x[i] * qp.l[i]);
            let interp: f64 = n.iter().zip(&vals).map(|(ni, vi)| ni * vi).sum();
            assert!((interp - p.x * p.x).abs() < 1e-12);
        }
    }

    #[test]
    fn tri6_kronecker_and_unity() {
        let nodes = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.5, 0.5, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
        ];
        for (i, &l) in nodes.iter().enumerate() {
            let n = tri6_shape(l);
            for (j, &nj) in n.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((nj - expect).abs() < 1e-14);
            }
        }
        let n = tri6_shape([1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }
}
