//! Element matrix computation for the Tet10 solid element.
//!
//! Produces the consistent mass matrix `M_e` and the stiffness matrix `K_e`
//! (both 30×30, packed symmetric). The element damping matrix is never
//! stored: Rayleigh damping `C_e = α M_e + β K_e` is folded into the
//! coefficients of the fused EBE kernel, and absorbing-boundary dashpots are
//! separate face matrices (see [`crate::faces`]).
//!
//! DOF ordering within an element: node-major, `dof = 3*node + component`.

use hetsolve_mesh::{Material, TetMesh10, Vec3};

use crate::quad::{tet_rule_deg2, tet_rule_deg5, TetQp};
use crate::shape::{tet10_grad, tet10_shape, tet_bary_gradients};
use hetsolve_sparse::sym::{packed_idx, packed_len};

/// Number of DOFs of a Tet10 solid element.
pub const NDOF: usize = 30;
/// Packed length of a 30×30 symmetric matrix.
pub const PACKED: usize = packed_len(NDOF); // 465

/// Consistent element mass matrix (packed symmetric, 465 entries).
///
/// `M_e[(3i+a),(3j+b)] = δ_ab ρ ∫ N_i N_j dV`, integrated with the
/// degree-5 rule (exact: the integrand is degree 4).
pub fn mass_matrix(x: &[Vec3; 10], rho: f64, rule: &[TetQp]) -> Vec<f64> {
    let verts = [x[0], x[1], x[2], x[3]];
    let (_, vol) = tet_bary_gradients(&verts);
    assert!(vol > 0.0, "element has non-positive volume {vol}");
    let mut m = vec![0.0; PACKED];
    for qp in rule {
        let n = tet10_shape(qp.l);
        let w = qp.w * vol * rho;
        for i in 0..10 {
            for j in 0..=i {
                let v = w * n[i] * n[j];
                for a in 0..3 {
                    m[packed_idx(3 * i + a, 3 * j + a)] += v;
                }
            }
        }
    }
    m
}

/// Element stiffness matrix (packed symmetric, 465 entries) for an isotropic
/// material:
///
/// `K_e[(3i+a),(3j+b)] = ∫ λ ∂_a N_i ∂_b N_j + μ (∂_b N_i ∂_a N_j +
/// δ_ab ∇N_i·∇N_j) dV`, integrated with the degree-2 rule (exact on
/// straight-sided elements, where ∇N is linear).
pub fn stiffness_matrix(x: &[Vec3; 10], mat: &Material, rule: &[TetQp]) -> Vec<f64> {
    let verts = [x[0], x[1], x[2], x[3]];
    let (dl, vol) = tet_bary_gradients(&verts);
    assert!(vol > 0.0, "element has non-positive volume {vol}");
    let (lambda, mu) = (mat.lambda(), mat.mu());
    let mut k = vec![0.0; PACKED];
    for qp in rule {
        let g = tet10_grad(qp.l, &dl);
        let w = qp.w * vol;
        for i in 0..10 {
            let gi = g[i].to_array();
            for j in 0..=i {
                let gj = g[j].to_array();
                let dot = gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2];
                for a in 0..3 {
                    // only b <= (full row for j < i; b <= a for j == i)
                    let bmax = if j == i { a + 1 } else { 3 };
                    for b in 0..bmax {
                        let val = lambda * gi[a] * gj[b]
                            + mu * (gi[b] * gj[a] + if a == b { dot } else { 0.0 });
                        k[packed_idx(3 * i + a, 3 * j + b)] += w * val;
                    }
                }
            }
        }
    }
    k
}

/// Per-element matrices for an entire mesh, stored flat
/// (`me[e*PACKED..][..PACKED]`), with the material table applied by each
/// element's material id. This is the data the EBE operator gathers from.
#[derive(Debug, Clone)]
pub struct ElementMatrices {
    pub me: Vec<f64>,
    pub ke: Vec<f64>,
    pub n_elems: usize,
}

impl ElementMatrices {
    /// Compute all element matrices of `mesh` with materials `mats`.
    pub fn compute(mesh: &TetMesh10, mats: &[Material]) -> Self {
        let rule_m = tet_rule_deg5();
        let rule_k = tet_rule_deg2();
        let ne = mesh.n_elems();
        let mut me = vec![0.0; ne * PACKED];
        let mut ke = vec![0.0; ne * PACKED];
        use rayon::prelude::*;
        me.par_chunks_mut(PACKED)
            .zip(ke.par_chunks_mut(PACKED))
            .enumerate()
            .for_each(|(e, (me_e, ke_e))| {
                let x = mesh.elem_coords(e);
                let mat = &mats[mesh.material[e] as usize];
                me_e.copy_from_slice(&mass_matrix(&x, mat.rho, &rule_m));
                ke_e.copy_from_slice(&stiffness_matrix(&x, mat, &rule_k));
            });
        ElementMatrices {
            me,
            ke,
            n_elems: ne,
        }
    }

    /// Packed M_e of element `e`.
    #[inline]
    pub fn me_of(&self, e: usize) -> &[f64] {
        &self.me[e * PACKED..(e + 1) * PACKED]
    }

    /// Packed K_e of element `e`.
    #[inline]
    pub fn ke_of(&self, e: usize) -> &[f64] {
        &self.ke[e * PACKED..(e + 1) * PACKED]
    }

    /// Bytes used by the stored matrices.
    pub fn bytes(&self) -> usize {
        (self.me.len() + self.ke.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsolve_mesh::mesh::TET_EDGES;
    use hetsolve_sparse::sym::sym_matvec_add;

    fn unit_tet10_coords() -> [Vec3; 10] {
        let v = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let mut x = [Vec3::ZERO; 10];
        x[..4].copy_from_slice(&v);
        for (k, &(a, b)) in TET_EDGES.iter().enumerate() {
            x[4 + k] = v[a].midpoint(v[b]);
        }
        x
    }

    fn skewed_tet10_coords() -> [Vec3; 10] {
        let v = [
            Vec3::new(0.1, 0.0, -0.2),
            Vec3::new(1.3, 0.2, 0.1),
            Vec3::new(0.2, 1.1, 0.3),
            Vec3::new(-0.1, 0.3, 1.4),
        ];
        let mut x = [Vec3::ZERO; 10];
        x[..4].copy_from_slice(&v);
        for (k, &(a, b)) in TET_EDGES.iter().enumerate() {
            x[4 + k] = v[a].midpoint(v[b]);
        }
        x
    }

    fn mat() -> Material {
        Material::new(1800.0, 200.0, 700.0)
    }

    #[test]
    fn mass_total_equals_rho_v() {
        let x = skewed_tet10_coords();
        let rho = 1800.0;
        let m = mass_matrix(&x, rho, &tet_rule_deg5());
        let verts = [x[0], x[1], x[2], x[3]];
        let (_, vol) = tet_bary_gradients(&verts);
        // sum over all (i,j) of the x-component blocks = rho * V
        // (partition of unity: sum_i Ni = 1)
        let ones_x: Vec<f64> = (0..NDOF)
            .map(|d| if d % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut y = vec![0.0; NDOF];
        sym_matvec_add(&m, &ones_x, &mut y, NDOF);
        let total: f64 = y.iter().zip(&ones_x).map(|(a, b)| a * b).sum();
        assert!((total - rho * vol).abs() < 1e-9 * rho * vol);
    }

    #[test]
    fn mass_is_positive_definite() {
        let x = skewed_tet10_coords();
        let m = mass_matrix(&x, 1000.0, &tet_rule_deg5());
        // x^T M x > 0 for a few deterministic non-zero vectors
        for seed in 1..8u64 {
            let v: Vec<f64> = (0..NDOF)
                .map(|i| (((i as u64 + 1) * seed * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                .collect();
            let mut y = vec![0.0; NDOF];
            sym_matvec_add(&m, &v, &mut y, NDOF);
            let q: f64 = y.iter().zip(&v).map(|(a, b)| a * b).sum();
            assert!(q > 0.0, "x^T M x = {q} for seed {seed}");
        }
    }

    #[test]
    fn stiffness_annihilates_rigid_translations() {
        let x = skewed_tet10_coords();
        let k = stiffness_matrix(&x, &mat(), &tet_rule_deg2());
        for a in 0..3 {
            let v: Vec<f64> = (0..NDOF)
                .map(|d| if d % 3 == a { 1.0 } else { 0.0 })
                .collect();
            let mut y = vec![0.0; NDOF];
            sym_matvec_add(&k, &v, &mut y, NDOF);
            let n: f64 = y.iter().map(|t| t * t).sum::<f64>().sqrt();
            assert!(n < 1e-6, "K * translation_{a} = {n}");
        }
    }

    #[test]
    fn stiffness_annihilates_rigid_rotations() {
        let x = skewed_tet10_coords();
        let k = stiffness_matrix(&x, &mat(), &tet_rule_deg2());
        // rotation about axis w: u(p) = w × p (linear field => representable)
        for w in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.3, -0.5, 0.8),
        ] {
            let mut v = vec![0.0; NDOF];
            for i in 0..10 {
                let u = w.cross(x[i]);
                v[3 * i] = u.x;
                v[3 * i + 1] = u.y;
                v[3 * i + 2] = u.z;
            }
            let mut y = vec![0.0; NDOF];
            sym_matvec_add(&k, &v, &mut y, NDOF);
            let n: f64 = y.iter().map(|t| t * t).sum::<f64>().sqrt();
            let scale: f64 = k.iter().map(|t| t * t).sum::<f64>().sqrt();
            assert!(n < 1e-10 * scale, "K * rotation = {n} (scale {scale})");
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite() {
        let x = unit_tet10_coords();
        let k = stiffness_matrix(&x, &mat(), &tet_rule_deg2());
        for seed in 1..8u64 {
            let v: Vec<f64> = (0..NDOF)
                .map(|i| (((i as u64 + 3) * seed * 1099511628211) % 997) as f64 / 499.0 - 1.0)
                .collect();
            let mut y = vec![0.0; NDOF];
            sym_matvec_add(&k, &v, &mut y, NDOF);
            let q: f64 = y.iter().zip(&v).map(|(a, b)| a * b).sum();
            assert!(q > -1e-6, "x^T K x = {q}");
        }
    }

    #[test]
    fn uniform_strain_energy_matches_continuum() {
        // u(p) = eps * p_x e_x: uniform strain exx = eps. Strain energy =
        // 1/2 (lambda + 2 mu) eps^2 V.
        let x = skewed_tet10_coords();
        let m = mat();
        let k = stiffness_matrix(&x, &m, &tet_rule_deg2());
        let verts = [x[0], x[1], x[2], x[3]];
        let (_, vol) = tet_bary_gradients(&verts);
        let eps = 1e-3;
        let mut v = vec![0.0; NDOF];
        for i in 0..10 {
            v[3 * i] = eps * x[i].x;
        }
        let mut y = vec![0.0; NDOF];
        sym_matvec_add(&k, &v, &mut y, NDOF);
        let energy: f64 = 0.5 * y.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
        let expect = 0.5 * (m.lambda() + 2.0 * m.mu()) * eps * eps * vol;
        assert!(
            (energy - expect).abs() < 1e-9 * expect,
            "energy {energy} vs continuum {expect}"
        );
    }

    #[test]
    fn element_matrices_store_layout() {
        let gm = hetsolve_mesh::GroundModelSpec::small(hetsolve_mesh::InterfaceShape::Stratified)
            .build();
        let mats = gm.spec.materials();
        let em = ElementMatrices::compute(&gm.mesh, &mats);
        assert_eq!(em.n_elems, gm.mesh.n_elems());
        assert_eq!(em.me.len(), em.n_elems * PACKED);
        // element 0's stored mass equals a direct computation
        let x = gm.mesh.elem_coords(0);
        let rho = mats[gm.mesh.material[0] as usize].rho;
        let m0 = mass_matrix(&x, rho, &tet_rule_deg5());
        assert_eq!(em.me_of(0), &m0[..]);
        assert!(em.bytes() > 0);
    }
}
